"""Legacy shim so `pip install -e .` works offline (no `wheel` package).

All metadata lives in pyproject.toml; setuptools reads it from there.
"""

from setuptools import setup

setup()
