"""Deliberate lint violations — exactly one per registered rule.

Never imported by anything: the file exists so
``tests/integration/test_lint_repo_clean.py`` can prove every rule
fires and that ``repro lint`` exits non-zero on a dirty file.  The
``fixtures`` directory is excluded from the default lint roots, so the
repo-wide pass stays clean.

The ``Actor``/``ActorRef``/``ClusterConfig`` stand-ins keep the file
self-contained (the rules match on names, not on imports).
"""

import random
import time

__all__ = ["missing_name"]  # API-EXPORT-ALL: never bound below


# repro: waive[DET-GLOBAL-RNG]
WAIVED_NOTHING = 1  # WAIVER-JUSTIFY: no '-- why' text, suppresses nothing


def wallclock() -> float:
    return time.time()  # DET-WALLCLOCK


def global_rng() -> float:
    return random.random()  # DET-GLOBAL-RNG


def set_iteration() -> list:
    visited = []
    for item in {3, 1, 2}:  # DET-SET-ITER
        visited.append(item)
    return visited


def id_ordering(items) -> list:
    return sorted(items, key=id)  # DET-ID-ORDER


def float_sum() -> float:
    return sum({0.125, 0.25, 0.5})  # DET-FLOAT-SUM


class Actor:
    """Stand-in base so the hygiene rules see an actor class."""


class ActorRef:
    """Stand-in reference type."""


def ClusterConfig(**kwargs):
    """Stand-in for the real config; the rule matches the name."""
    return kwargs


class RogueActor(Actor):
    def poke(self, other):
        other.count = 1  # ACT-FOREIGN-STATE: writes a non-self param

    def nap(self):
        time.sleep(0.1)  # ACT-BLOCKING-IO

    def shortcut(self, ref: ActorRef):
        return ref.ping()  # ACT-DIRECT-SEND: bypasses Call/Tell


def deprecated_api():
    return ClusterConfig(call_timeout=0.5)  # API-DEPRECATED
