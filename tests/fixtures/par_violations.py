"""Deliberate PAR violations — exactly one per sharding-readiness rule.

Never imported by anything: ``tests/unit/test_par_rules.py`` runs the
PAR pass over this file and asserts that exactly the five PAR rules
fire (one finding each).  Every positive sits next to a negative that
differs in exactly the property the rule checks, so the tests pin both
directions.  The ``fixtures`` directory is excluded from the default
lint roots, so the repo-wide pass stays clean.

Like the other fixtures, the ``Actor``/``ActorRef``/``Call``/``Tell``/
``ClusterConfig`` stand-ins keep the file self-contained: the analysis
resolves names within its project index, so in-file stand-ins behave
like the real substrate.
"""


class Actor:
    """Stand-in base so the index sees actor classes."""


class ActorRef:
    """Stand-in reference type (the evaluator matches the name)."""

    def __init__(self, actor_type, key):
        self.actor_type = actor_type
        self.key = key


class Call:
    def __init__(self, target, method, *args, **kwargs):
        self.target, self.method, self.args = target, method, args


class Tell:
    def __init__(self, target, method, *args, **kwargs):
        self.target, self.method, self.args = target, method, args


class ClusterConfig:
    """Stand-in config (the model discovery matches the call name)."""

    def __init__(self, num_servers=1, network_latency=0.0005,
                 network_jitter=0.1, time_scale=1.0):
        self.num_servers = num_servers
        self.network_latency = network_latency
        self.network_jitter = network_jitter
        self.time_scale = time_scale


# PAR-GLOBAL-MUTABLE: mutated by an actor method below, so every silo
# process forks its own diverging copy.
PENDING_ROSTER = []

# Negative: mutable initializer, read by an actor, but never mutated —
# a forked read-only table is the same table in every silo.
ROUTING_HINTS = [3, 5, 7]


def boot_zero_window():
    # PAR-ZERO-LOOKAHEAD: base latency 0 admits same-instant cross-silo
    # arrivals, so no conservative window width is sound.
    return ClusterConfig(num_servers=2, network_latency=0.0)


def boot_sound_window():
    # Negative: positive base latency resolves to a positive lookahead.
    return ClusterConfig(num_servers=2, network_latency=0.002,
                         network_jitter=0.05)


class LobbyActor(Actor):
    """Touches the module globals above (one mutated, one read-only)."""

    def enqueue(self, who):
        PENDING_ROSTER.append(who)

    def pick_shard(self):
        return ROUTING_HINTS[0]


class FanoutActor(Actor):
    """Ships its own mutable list to a *different* actor type."""

    def __init__(self):
        self.members = []

    def join(self, who):
        self.members.append(who)

    def broadcast(self):
        # PAR-CROSS-SILO-CONFLICT: the partitioner may host "fanout"
        # and "mirror" on different silos; the alias becomes two copies.
        ack = yield Call(ActorRef("mirror", 0), "sync", self.members)
        return ack


class SpillActor(Actor):
    """Negative: the same alias shipped to its OWN type stays silent —
    one type is never split across silos by the partitioner."""

    def __init__(self):
        self.overflow = []

    def absorb(self, item):
        self.overflow.append(item)

    def rebalance(self):
        yield Tell(ActorRef("spill", 1), "absorb", self.overflow)


class WindowHistogram:
    """PAR-NONMERGEABLE-METRIC: observe() but no merge(other)."""

    def __init__(self):
        self.samples = []

    def observe(self, value):
        self.samples.append(value)


class MergeableCounter:
    """Negative: record() with a merge(), so the barrier can fold it."""

    def __init__(self):
        self.total = 0.0

    def record(self, value):
        self.total += value

    def merge(self, other):
        self.total += other.total


def collect_latencies(values):
    hist = WindowHistogram()
    counter = MergeableCounter()
    for value in values:
        hist.observe(value)
        counter.record(value)
    return hist, counter


class ReplayActor(Actor):
    """Stores a closure in migratable state."""

    def __init__(self):
        self.history = []
        # Negative: '_'-prefixed fields are ephemeral by convention
        # (rebuilt on activation), so the lattice verdict is waived.
        self._decoder = lambda turn: turn

    def arm(self):
        # PAR-UNPORTABLE-SILO-STATE: a lambda cannot pickle, so this
        # activation could never migrate between silo processes.
        self.transform = lambda turn: turn + 1


class MirrorActor(Actor):
    """The clean receiver: messages land here; nothing escapes."""

    def __init__(self):
        self.synced = 0

    def sync(self, payload):
        self.synced += 1
        return self.synced


def wire(runtime):
    runtime.register_actor("lobby", LobbyActor)
    runtime.register_actor("fanout", FanoutActor)
    runtime.register_actor("spill", SpillActor)
    runtime.register_actor("replay", ReplayActor)
    runtime.register_actor("mirror", MirrorActor)
