"""Deliberate XB violations — exactly one per cross-backend rule.

Never imported by anything: ``tests/unit/test_xbackend_rules.py`` runs
the xbackend pass over this file and asserts that exactly the four XB
rules fire (one finding each).  The ``fixtures`` directory is excluded
from the default lint roots, so the repo-wide pass stays clean.

Like the other fixtures, the ``Actor``/``ActorRef``/``Call``/``Tell``
stand-ins keep the file self-contained: the analysis resolves names
within its project index, so in-file stand-ins behave like the real
substrate.
"""


class Actor:
    """Stand-in base so the index sees actor classes."""


class ActorRef:
    """Stand-in reference type (the evaluator matches the name)."""

    def __init__(self, actor_type, key):
        self.actor_type = actor_type
        self.key = key


class Call:
    def __init__(self, target, method, *args, **kwargs):
        self.target, self.method, self.args = target, method, args


class Tell:
    def __init__(self, target, method, *args, **kwargs):
        self.target, self.method, self.args = target, method, args


class RosterActor(Actor):
    """Sends its own mutable list: the receiver and the sender now share
    one object on inproc, two objects on TCP."""

    def __init__(self):
        self.members = []

    def join(self, who):
        self.members.append(who)

    def broadcast(self):
        # XB-ALIASED-MUTABLE: self.members escapes by reference.
        ack = yield Call(ActorRef("mirror", 0), "sync", self.members)
        return ack


class StreamActor(Actor):
    """Sends a generator expression: fine on inproc, pickle error on TCP."""

    def publish(self):
        # XB-UNPICKLABLE-PAYLOAD: generators cannot cross pickle.
        yield Tell(ActorRef("mirror", 0), "sync", (x for x in range(3)))


class SplitActor(Actor):
    """Mutates state on both sides of a yield while reentrant."""

    REENTRANT = True

    def __init__(self):
        self.balance = 0

    def transfer(self, n):
        self.balance -= n
        # XB-AWAIT-TURN-SPLIT: interleavings can observe the debit
        # without the credit on the asyncio backend.
        yield Call(ActorRef("mirror", 0), "sync", n)
        self.balance += n


class CheckpointActor(Actor):
    """Declares PERSISTED but mutates a field outside it."""

    PERSISTED = ("committed",)

    def __init__(self):
        self.committed = 0
        self.staged = 0

    def stage(self, n):
        # XB-UNPERSISTED-RESTORE: a supervised restart resets staged.
        self.staged += n


class MirrorActor(Actor):
    """The clean receiver: messages land here; nothing escapes."""

    def __init__(self):
        self.synced = 0

    def sync(self, payload):
        self.synced += 1
        return self.synced
