"""Deliberate FLOW violations — exactly one per flow rule.

Never imported by anything: ``tests/integration/test_flow_repo.py``
runs the flow pass over this file and asserts that exactly the five
FLOW rules fire (one finding each).  The ``fixtures`` directory is
excluded from the default lint roots, so the repo-wide pass stays
clean.

Like ``lint_violations.py``, the ``Actor``/``ActorRef``/``Call``/
``RetryPolicy`` stand-ins keep the file self-contained: the flow
analysis resolves names within its project index, so in-file stand-ins
behave like the real substrate.
"""

import time


class Actor:
    """Stand-in base so the flow index sees actor classes."""


class ActorRef:
    """Stand-in reference type (the evaluator matches the name)."""

    def __init__(self, actor_type, key):
        self.actor_type = actor_type
        self.key = key


class Call:
    def __init__(self, target, method, *args, **kwargs):
        self.target, self.method, self.args = target, method, args


class RetryPolicy:
    """Stand-in retry policy; constructing one arms the retry rule."""


RETRY = RetryPolicy()


def wire(runtime):
    runtime.register_actor("ping", PingActor)
    runtime.register_actor("pong", PongActor)
    runtime.register_actor("ledger", LedgerActor)
    runtime.register_actor("logger", LoggerActor)


class PingActor(Actor):
    """Half of a two-class synchronous Call cycle."""

    def ping(self, n):
        ack = yield Call(ActorRef("pong", 0), "pong", n)
        return ack

    def poke(self):
        # FLOW-UNKNOWN-METHOD: PongActor defines no method 'pongg'.
        yield Call(ActorRef("pong", 0), "pongg", 1)


class PongActor(Actor):
    """FLOW-CALL-CYCLE: non-reentrant participant of ping <-> pong."""

    REENTRANT = False

    def pong(self, n):
        ack = yield Call(ActorRef("ping", 0), "ping", n)
        return ack


class LedgerActor(Actor):
    """Append-only ledger: replaying an append double-applies it."""

    def __init__(self):
        super().__init__()
        self.entries = []

    def append_entry(self, entry):
        self.entries.append(entry)
        return len(self.entries)


class LoggerActor(Actor):
    def __init__(self):
        super().__init__()
        # FLOW-MIGRATION-UNSAFE: a generator cannot leave the process.
        self.pending = (line for line in [])

    def save(self, line):
        flush_to_disk()  # FLOW-BLOCKING-TRANSITIVE: helper wraps sleep
        return True


def flush_to_disk():
    time.sleep(0.005)


def drive(runtime):
    # FLOW-RETRY-NONIDEMPOTENT: retry policy armed above, append_entry
    # mutates, and the request is not declared idempotent=False.
    runtime.client_request(ActorRef("ledger", 1), "append_entry", "evt")
