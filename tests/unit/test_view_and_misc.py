"""Unit tests: partition views, RNG helpers, and small odds and ends."""

import pytest

from repro.core.partitioning.view import PartitionView
from repro.sim.rng import RngRegistry, poisson_process


def test_view_local_vertices_resolve_locally_even_if_resolver_disagrees():
    view = PartitionView(
        server_id=3,
        edges={"v": {"u": 1.0}},
        locate=lambda vertex: 9,   # stale resolver says elsewhere
        size=1,
        peer_sizes={3: 1, 9: 5},
    )
    assert view.locate("v") == 3       # local knowledge wins
    assert view.locate("u") == 9       # remote falls back to the resolver


def test_view_unknown_location_is_none():
    view = PartitionView(0, {}, lambda v: None, 0, {0: 0, 1: 0})
    assert view.locate("mystery") is None


def test_view_peers_excludes_self():
    view = PartitionView(1, {}, lambda v: None, 4, {0: 3, 1: 4, 2: 5})
    assert sorted(view.peers()) == [0, 2]


def test_view_neighbors_default_empty():
    view = PartitionView(0, {"v": {"u": 2.0}}, lambda v: None, 1, {0: 1})
    assert view.neighbors("v") == {"u": 2.0}
    assert view.neighbors("unknown") == {}


def test_poisson_process_generates_positive_gaps():
    rng = RngRegistry(4).stream("pp")
    gen = poisson_process(rng, rate=100.0)
    gaps = [next(gen) for _ in range(1000)]
    assert all(g >= 0 for g in gaps)
    assert sum(gaps) / len(gaps) == pytest.approx(0.01, rel=0.15)
