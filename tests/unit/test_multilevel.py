"""Unit tests for the centralized multilevel partitioner."""

import random

from repro.graph.comm_graph import CommGraph
from repro.graph.generators import clustered_graph, random_graph, ring_of_cliques
from repro.graph.multilevel import multilevel_partition
from repro.graph.quality import cut_cost, partition_sizes


def test_covers_every_vertex():
    g = random_graph(200, rng=random.Random(0))
    assignment = multilevel_partition(g, 4)
    assert set(assignment) == set(g.vertices())
    assert set(assignment.values()) <= {0, 1, 2, 3}


def test_single_part_trivial():
    g = random_graph(20, rng=random.Random(0))
    assignment = multilevel_partition(g, 1)
    assert set(assignment.values()) == {0}


def test_balance_within_tolerance():
    g = random_graph(400, rng=random.Random(1))
    assignment = multilevel_partition(g, 4, imbalance=0.05)
    sizes = partition_sizes(assignment)
    cap = (400 / 4) * 1.05 + 1
    assert all(s <= cap for s in sizes.values())


def test_beats_random_assignment_on_clustered_graph():
    g = clustered_graph(16, 8, intra_weight=10.0, inter_edges_per_cluster=1,
                        rng=random.Random(2))
    rng = random.Random(3)
    vertices = list(g.vertices())
    rng.shuffle(vertices)
    random_assign = {v: i % 4 for i, v in enumerate(vertices)}
    ml_assign = multilevel_partition(g, 4, rng=random.Random(4))
    assert cut_cost(g, ml_assign) < 0.4 * cut_cost(g, random_assign)


def test_near_optimal_on_ring_of_cliques():
    # 8 cliques of 6, 4 parts: the optimum cuts 4 bridges (weight 4.0).
    g = ring_of_cliques(8, 6, bridge_weight=1.0, clique_weight=5.0)
    assignment = multilevel_partition(g, 4, rng=random.Random(5))
    # Allow slack (the heuristic is not exact) but demand it finds the
    # clique structure: never cut clique edges beyond a couple.
    assert cut_cost(g, assignment) <= 14.0


def test_handles_disconnected_graph():
    g = CommGraph()
    for i in range(10):
        g.add_vertex(i)
    g.add_edge(0, 1)
    g.add_edge(5, 6)
    assignment = multilevel_partition(g, 2)
    assert len(assignment) == 10


def test_deterministic_given_rng():
    g = random_graph(150, rng=random.Random(9))
    a = multilevel_partition(g, 3, rng=random.Random(1))
    b = multilevel_partition(g, 3, rng=random.Random(1))
    assert a == b
