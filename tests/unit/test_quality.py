"""Unit tests for partition-quality metrics."""

from repro.graph.comm_graph import CommGraph
from repro.graph.quality import (
    cut_cost,
    is_balanced,
    max_imbalance,
    partition_sizes,
    remote_fraction,
)


def triangle():
    g = CommGraph()
    g.add_edge("a", "b", 1.0)
    g.add_edge("b", "c", 2.0)
    g.add_edge("a", "c", 4.0)
    return g


def test_cut_cost_all_same_server_is_zero():
    g = triangle()
    assert cut_cost(g, {"a": 0, "b": 0, "c": 0}) == 0.0


def test_cut_cost_counts_crossing_weights():
    g = triangle()
    # c alone: cuts (b,c)=2 and (a,c)=4.
    assert cut_cost(g, {"a": 0, "b": 0, "c": 1}) == 6.0


def test_partition_sizes():
    sizes = partition_sizes({"a": 0, "b": 0, "c": 1})
    assert sizes == {0: 2, 1: 1}


def test_max_imbalance_counts_empty_servers():
    assignment = {"a": 0, "b": 0, "c": 0}
    assert max_imbalance(assignment, num_servers=2) == 3
    assert max_imbalance(assignment, num_servers=1) == 0


def test_is_balanced():
    assignment = {"a": 0, "b": 1, "c": 0}
    assert is_balanced(assignment, 2, delta=1)
    assert not is_balanced(assignment, 2, delta=0)


def test_remote_fraction():
    g = triangle()
    assert remote_fraction(g, {"a": 0, "b": 0, "c": 1}) == 6.0 / 7.0
    assert remote_fraction(g, {"a": 0, "b": 0, "c": 0}) == 0.0


def test_remote_fraction_empty_graph():
    g = CommGraph()
    g.add_vertex(1)
    assert remote_fraction(g, {1: 0}) == 0.0
