"""Unit tests for SEDA stages."""

import pytest

from repro.seda.stage import Stage
from repro.sim.cpu import CpuPool
from repro.sim.engine import Simulator


def make_stage(threads=1, processors=4, blocking=False, **kw):
    sim = Simulator()
    cpu = CpuPool(sim, processors, switch_factor=0.0, dispatch_overhead=0.0)
    stage = Stage(sim, cpu, "s", threads=threads, blocking=blocking, **kw)
    return sim, cpu, stage


def test_event_flows_through_and_fires_callback():
    sim, cpu, stage = make_stage()
    done = []
    stage.submit(1.0, lambda ev: done.append(sim.now))
    sim.run()
    assert done == [1.0]


def test_thread_limit_serializes_work():
    sim, cpu, stage = make_stage(threads=1)
    finish = []
    for _ in range(3):
        stage.submit(1.0, lambda ev: finish.append(sim.now))
    sim.run()
    assert finish == [1.0, 2.0, 3.0]


def test_more_threads_more_parallelism():
    sim, cpu, stage = make_stage(threads=3)
    finish = []
    for _ in range(3):
        stage.submit(1.0, lambda ev: finish.append(sim.now))
    sim.run()
    assert finish == [1.0, 1.0, 1.0]


def test_threads_capped_by_processors():
    # 4 threads but 2 cores: ready time shows up in z but not queue wait.
    sim = Simulator()
    cpu = CpuPool(sim, 2, switch_factor=0.0, dispatch_overhead=0.0)
    stage = Stage(sim, cpu, "s", threads=4)
    events = []
    for _ in range(4):
        stage.submit(1.0, lambda ev: events.append(ev))
    sim.run()
    assert sorted(ev.complete_time for ev in events) == [1.0, 1.0, 2.0, 2.0]
    assert all(ev.queue_wait == 0.0 for ev in events)
    assert sorted(ev.ready_time for ev in events) == [0.0, 0.0, 1.0, 1.0]


def test_queue_wait_recorded_when_threads_busy():
    sim, cpu, stage = make_stage(threads=1)
    events = []
    stage.submit(1.0, lambda ev: events.append(ev))
    stage.submit(1.0, lambda ev: events.append(ev))
    sim.run()
    assert events[0].queue_wait == 0.0
    assert events[1].queue_wait == pytest.approx(1.0)


def test_blocking_wait_releases_core_but_holds_thread():
    sim = Simulator()
    cpu = CpuPool(sim, 1, switch_factor=0.0, dispatch_overhead=0.0)
    blocking = Stage(sim, cpu, "b", threads=1, blocking=True)
    other = Stage(sim, cpu, "o", threads=1)
    finish = {}
    blocking.submit(0.5, lambda ev: finish.setdefault("b", sim.now), wait=5.0)
    other.submit(1.0, lambda ev: finish.setdefault("o", sim.now))
    sim.run()
    # The blocking event holds its thread for 5.5s but frees the core at
    # 0.5s, letting the other stage finish at 1.5s.
    assert finish["o"] == pytest.approx(1.5)
    assert finish["b"] == pytest.approx(5.5)


def test_wait_on_nonblocking_stage_rejected():
    sim, cpu, stage = make_stage(blocking=False)
    with pytest.raises(ValueError):
        stage.submit(1.0, lambda ev: None, wait=1.0)


def test_set_threads_grows_dispatches_queued_work():
    sim, cpu, stage = make_stage(threads=1)
    finish = []
    for _ in range(2):
        stage.submit(1.0, lambda ev: finish.append(sim.now))

    sim.schedule(0.1, stage.set_threads, 2)
    sim.run()
    assert finish == [pytest.approx(1.0), pytest.approx(1.1)]


def test_set_threads_shrink_is_lazy():
    sim, cpu, stage = make_stage(threads=2)
    finish = []
    for _ in range(4):
        stage.submit(1.0, lambda ev: finish.append(sim.now))
    stage.set_threads(1)  # two events already running keep going
    sim.run()
    assert finish == [1.0, 1.0, 2.0, 3.0]


def test_set_threads_updates_cpu_registration():
    sim, cpu, stage = make_stage(threads=2)
    assert cpu.registered_threads == 2
    stage.set_threads(5)
    assert cpu.registered_threads == 5
    stage.set_threads(1)
    assert cpu.registered_threads == 1


def test_minimum_one_thread():
    sim, cpu, stage = make_stage()
    with pytest.raises(ValueError):
        stage.set_threads(0)
    with pytest.raises(ValueError):
        Stage(sim, cpu, "bad", threads=0)


def test_stats_windows():
    sim, cpu, stage = make_stage(threads=1)
    stage.submit(2.0, lambda ev: None)
    stage.submit(2.0, lambda ev: None)
    before = stage.stats.snapshot()
    sim.run()
    window = stage.stats.window(before, elapsed=4.0)
    assert window.completions == 2
    assert window.arrivals == 0  # both arrived before the snapshot
    assert window.mean_x == pytest.approx(2.0)
    assert window.mean_z == pytest.approx(2.0)
    assert window.mean_queue_wait == pytest.approx(1.0)  # 0 and 2, mean 1


def test_observers_called_per_event():
    traced = []
    sim, cpu, stage = make_stage()
    stage.observers.append(lambda st, ev: traced.append((st.name, ev.cpu_time)))
    stage.submit(1.5, lambda ev: None)
    sim.run()
    assert traced == [("s", pytest.approx(1.5))]


def test_multiple_observers_fire_in_registration_order():
    order = []
    sim, cpu, stage = make_stage()
    stage.observers.append(lambda st, ev: order.append("first"))
    stage.observers.append(lambda st, ev: order.append("second"))
    # The event's own callback runs after every observer.
    stage.submit(1.0, lambda ev: order.append("callback"))
    sim.run()
    assert order == ["first", "second", "callback"]


def test_legacy_tracer_kwarg_is_deprecated_but_works():
    traced = []
    with pytest.deprecated_call():
        sim, cpu, stage = make_stage(
            tracer=lambda st, ev: traced.append(ev.cpu_time))
    assert stage.tracer is not None
    stage.submit(1.5, lambda ev: None)
    sim.run()
    assert traced == [pytest.approx(1.5)]
    # Replacing the legacy tracer swaps, not stacks.
    with pytest.deprecated_call():
        stage.tracer = lambda st, ev: traced.append(-1.0)
    assert len(stage.observers) == 1
    with pytest.deprecated_call():
        stage.tracer = None
    assert stage.observers == []


def test_queue_length_property():
    sim, cpu, stage = make_stage(threads=1)
    for _ in range(3):
        stage.submit(1.0, lambda ev: None)
    assert stage.queue_length == 2
    assert stage.busy_threads == 1
