"""Unit tests for the offline driver — Theorem 1's claims on static graphs."""

import random

import pytest

from repro.core.partitioning.offline import OfflinePartitioner
from repro.graph.generators import clustered_graph, random_graph, ring_of_cliques
from repro.graph.quality import cut_cost, remote_fraction


def test_cost_monotonically_decreases():
    g = clustered_graph(10, 6, intra_weight=10.0, inter_edges_per_cluster=1,
                        rng=random.Random(0))
    part = OfflinePartitioner(g, num_servers=4, delta=4, k=16, seed=1)
    part.run(max_sweeps=30)
    history = part.cost_history
    assert all(b <= a + 1e-9 for a, b in zip(history, history[1:]))
    assert history[-1] < history[0]


def test_converges_to_quiet_state():
    g = clustered_graph(8, 5, inter_edges_per_cluster=1, rng=random.Random(1))
    part = OfflinePartitioner(g, num_servers=4, delta=4, k=16, seed=2)
    part.run(max_sweeps=50)
    # Once converged, a full extra sweep moves nothing.
    moved = sum(part.run_round(p) for p in range(4))
    assert moved == 0


def test_balance_maintained_throughout():
    """Each exchange enforces |Vp - Vq| <= delta for the participating
    pair.  That alone does not bound the global max-min spread by delta
    (a server can gain from several different peers before any of them
    notices), but it does keep the spread within a small multiple — we
    assert 2*delta, which holds robustly in practice."""
    g = random_graph(120, mean_degree=6.0, rng=random.Random(2))
    part = OfflinePartitioner(g, num_servers=4, delta=4, k=8, seed=3)
    assert part.imbalance <= 4
    for _ in range(20):
        for p in range(4):
            part.run_round(p)
            assert part.imbalance <= 2 * 4


def test_strong_improvement_on_clustered_graph():
    g = clustered_graph(20, 8, intra_weight=10.0, inter_edges_per_cluster=1,
                        rng=random.Random(3))
    part = OfflinePartitioner(g, num_servers=4, delta=8, k=32, seed=4)
    before = remote_fraction(g, part.assignment)
    part.run(max_sweeps=40)
    after = remote_fraction(g, part.assignment)
    assert before > 0.6          # random start: ~75% cross-server
    assert after < 0.25 * before  # clusters co-located


def test_finds_near_optimum_on_ring_of_cliques():
    g = ring_of_cliques(8, 6, bridge_weight=1.0, clique_weight=5.0)
    part = OfflinePartitioner(g, num_servers=4, delta=2, k=24, seed=5)
    part.run(max_sweeps=60)
    # Local optimum may keep a few clique edges cut, but the bulk of the
    # structure must be found (random cut is ~186 of 248 total weight).
    assert cut_cost(g, part.assignment) < 50.0


def test_cooldown_slows_but_does_not_block_convergence():
    g = clustered_graph(6, 5, inter_edges_per_cluster=1, rng=random.Random(4))
    part = OfflinePartitioner(g, num_servers=3, delta=4, k=16,
                              cooldown_rounds=1, seed=6)
    part.run(max_sweeps=80)
    assert remote_fraction(g, part.assignment) < 0.3


def test_respects_initial_assignment():
    g = ring_of_cliques(4, 4)
    initial = {v: v % 2 for v in g.vertices()}
    part = OfflinePartitioner(g, num_servers=2, initial=initial)
    assert part.assignment == initial


def test_initial_assignment_must_cover_graph():
    g = ring_of_cliques(4, 4)
    with pytest.raises(ValueError):
        OfflinePartitioner(g, num_servers=2, initial={0: 0})


def test_needs_two_servers():
    g = ring_of_cliques(4, 4)
    with pytest.raises(ValueError):
        OfflinePartitioner(g, num_servers=1)


def test_migration_counter_tracks_moves():
    g = clustered_graph(6, 5, inter_edges_per_cluster=0, rng=random.Random(5))
    part = OfflinePartitioner(g, num_servers=3, delta=4, k=16, seed=7)
    part.run(max_sweeps=30)
    assert part.total_migrations > 0
    assert part.total_migrations == sum(
        1 for _ in part.cost_history[1:]
    ) or part.total_migrations >= len(part.cost_history) - 1
