"""Unit tests for the §4.2 extension: actor sizes and migration costs."""

import random

import pytest

from repro.core.partitioning.candidate import Candidate
from repro.core.partitioning.exchange import greedy_exchange
from repro.core.partitioning.view import PartitionView
from repro.core.partitioning.weighted import (
    WeightedOfflinePartitioner,
    weighted_candidate_set,
)
from repro.graph.generators import clustered_graph
from repro.graph.quality import remote_fraction


def make_view(server_id, edges, locations, loads):
    return PartitionView(
        server_id=server_id,
        edges=edges,
        locate=locations.get,
        size=loads.get(server_id, 0),
        peer_sizes=loads,
    )


def test_migration_penalty_filters_heavy_actors():
    edges = {"light": {"r": 5.0}, "heavy": {"r": 5.0}}
    locations = {"r": 1}
    view = make_view(0, edges, locations, {0: 2, 1: 1})
    sizes = {"light": 1.0, "heavy": 100.0}
    cands = weighted_candidate_set(view, 1, sizes, size_budget=1000.0,
                                   migration_penalty=0.1)
    names = [c.vertex for c in cands]
    assert "light" in names      # 5 - 0.1 > 0
    assert "heavy" not in names  # 5 - 10 < 0


def test_size_budget_limits_candidate_mass():
    edges = {f"v{i}": {"r": 10.0 - i} for i in range(5)}
    locations = {"r": 1}
    view = make_view(0, edges, locations, {0: 5, 1: 0})
    sizes = {f"v{i}": 3.0 for i in range(5)}
    cands = weighted_candidate_set(view, 1, sizes, size_budget=7.0)
    # 3.0 each: only two fit in a budget of 7.
    assert len(cands) == 2
    assert [c.vertex for c in cands] == ["v0", "v1"]


def test_zero_budget_empty():
    view = make_view(0, {"v": {"r": 1.0}}, {"r": 1}, {0: 1, 1: 0})
    assert weighted_candidate_set(view, 1, {"v": 1.0}, size_budget=0.0) == []


def test_exchange_balance_in_size_units():
    # One big actor (size 10) vs small ones; delta=5 in size units.
    s = [Candidate("big", 9.0)]
    t = [Candidate("small", 8.0)]
    sizes = {"big": 10.0, "small": 1.0}
    out = greedy_exchange(s, t, size_p=20.0, size_q=20.0, delta=5.0,
                          vertex_sizes=sizes)
    # Moving big first: gap |10-30+...| -> 20 > 5, blocked; small q->p:
    # gap |21-19|=2 OK; then big p->q: |11-29|=18 blocked still.
    assert out.accepted == []
    assert out.returned == ["small"]


def test_exchange_swaps_equal_sizes():
    s = [Candidate("a", 9.0)]
    t = [Candidate("b", 8.0)]
    sizes = {"a": 4.0, "b": 4.0}
    out = greedy_exchange(s, t, size_p=20.0, size_q=20.0, delta=8.0,
                          vertex_sizes=sizes)
    assert out.accepted == ["a"]
    assert out.returned == ["b"]


def test_weighted_offline_balances_by_size():
    rng = random.Random(0)
    g = clustered_graph(12, 6, intra_weight=10.0, inter_edges_per_cluster=1,
                        rng=rng)
    sizes = {v: (5.0 if v % 6 == 0 else 1.0) for v in g.vertices()}  # hubs big
    part = WeightedOfflinePartitioner(
        g, sizes, num_servers=4, size_delta=8.0, size_budget=24.0,
        migration_penalty=0.05, seed=1,
    )
    initial_imbalance = part.size_imbalance
    part.run(max_sweeps=40)
    # cost decreased monotonically
    history = part.cost_history
    assert all(b <= a + 1e-9 for a, b in zip(history, history[1:]))
    assert history[-1] < history[0]
    # clusters substantially co-located
    assert remote_fraction(g, part.assignment) < 0.35
    # size balance stayed bounded
    assert part.size_imbalance <= max(2 * 8.0, initial_imbalance)
    assert part.total_migrated_size > 0


def test_weighted_offline_high_penalty_freezes_heavy_graph():
    rng = random.Random(2)
    g = clustered_graph(6, 5, intra_weight=1.0, inter_edges_per_cluster=0,
                        rng=rng)
    sizes = {v: 50.0 for v in g.vertices()}
    part = WeightedOfflinePartitioner(
        g, sizes, num_servers=3, size_delta=100.0, size_budget=500.0,
        migration_penalty=1.0, seed=3,   # penalty 50 per move >> scores
    )
    before = dict(part.assignment)
    part.run(max_sweeps=10)
    assert part.assignment == before  # nothing worth hauling


def test_weighted_offline_validation():
    g = clustered_graph(2, 4)
    with pytest.raises(ValueError):
        WeightedOfflinePartitioner(g, {}, num_servers=1, size_delta=1.0,
                                   size_budget=4.0)
