"""Unit tests for the cross-backend portability pass: the picklability
lattice, the escape scanner, and each XB rule's fire/stay-silent
contract on minimal synthetic modules."""

import ast
import os
import textwrap

from repro.analysis.flow import build_index
from repro.analysis.linter import lint_paths
from repro.analysis.xbackend import analyze_xbackend, run_xb_rules
from repro.analysis.xbackend.escape import (
    AliasFacts,
    mutable_fields,
    send_sites,
    yield_lines,
)
from repro.analysis.xbackend.lattice import (
    PICKLABLE,
    UNKNOWN,
    MethodPickleEnv,
    classify,
)
from repro.analysis.xbackend.rules import (
    XB_ALIASED_MUTABLE,
    XB_AWAIT_TURN_SPLIT,
    XB_UNPERSISTED_RESTORE,
    XB_UNPICKLABLE_PAYLOAD,
    all_xb_rules,
)

REPO = os.path.join(os.path.dirname(__file__), "..", "..")
FIXTURE = os.path.join("tests", "fixtures", "xbackend_violations.py")

#: Stand-ins every snippet shares: the index keys off the names, so
#: in-file definitions behave like the real substrate.
PRELUDE = '''
class Actor:
    pass


class ActorRef:
    def __init__(self, actor_type, key):
        self.actor_type = actor_type
        self.key = key


class Call:
    def __init__(self, target, method, *args, **kwargs):
        self.args = args


class Tell:
    def __init__(self, target, method, *args, **kwargs):
        self.args = args
'''


def _findings(source, path="mod.py"):
    index = build_index([(path, PRELUDE + textwrap.dedent(source))])
    return run_xb_rules(index)


def _rules_fired(findings):
    return {f.rule for f in findings}


# -------------------------------------------------------------- lattice


def _classify_src(expr_src):
    return classify(ast.parse(expr_src, mode="eval").body, None, None)


def test_lattice_constants_and_containers_are_picklable():
    assert _classify_src("42").level == PICKLABLE.level
    assert _classify_src("[1, 'a', (2.0, None)]").level == PICKLABLE.level


def test_lattice_generator_and_lambda_are_unpicklable():
    assert _classify_src("(x for x in range(3))").unpicklable
    assert _classify_src("lambda: 1").unpicklable


def test_lattice_container_join_taints_whole_literal():
    assert _classify_src("[1, lambda: 1]").unpicklable
    assert _classify_src("{'k': (x for x in y)}").unpicklable


def test_lattice_unknown_name_stays_unknown_not_unpicklable():
    verdict = _classify_src("some_param")
    assert verdict.level == UNKNOWN.level
    assert not verdict.unpicklable


def test_lattice_env_tracks_local_bindings_through_joins():
    fn = ast.parse(textwrap.dedent('''
        def f(flag):
            x = 1
            if flag:
                x = open("f")
            y = "ok"
    ''')).body[0]
    env = MethodPickleEnv(fn, None, None).env
    assert env["x"].unpicklable          # any path taints the name
    assert env["y"].level == PICKLABLE.level


# ------------------------------------------------------------ scanners


def test_send_sites_and_yield_lines_exclude_nested_defs():
    fn = ast.parse(textwrap.dedent('''
        def outer(self):
            yield Call(ref, "m", 1)
            def inner():
                yield Call(ref, "n", 2)
    ''')).body[0]
    sites = send_sites(fn)
    assert [s.kind for s in sites] == ["Call", "Call"]
    assert len(yield_lines(fn)) == 1     # inner's yield is not outer's


def test_alias_facts_track_field_aliases_and_local_mutations():
    fn = ast.parse(textwrap.dedent('''
        def m(self):
            snapshot = self.members
            batch = []
            batch.append(1)
            self.kept = batch
    ''')).body[0]
    facts = AliasFacts.collect(fn)
    assert facts.field_aliases.get("snapshot") == {"members"}
    assert "batch" in facts.mutable_locals
    assert "batch" in facts.local_mutations
    assert "batch" in facts.stored_locals


# ------------------------------------------------- XB-ALIASED-MUTABLE


def test_aliased_mutable_fires_on_self_field_payload():
    findings = _findings('''
        class RosterActor(Actor):
            def __init__(self):
                self.members = []

            def grow(self, who):
                self.members.append(who)

            def broadcast(self):
                yield Call(ActorRef("peer", 0), "sync", self.members)
    ''')
    assert _rules_fired(findings) == {XB_ALIASED_MUTABLE}


def test_aliased_mutable_fires_on_local_alias_of_mutable_field():
    findings = _findings('''
        class RosterActor(Actor):
            def __init__(self):
                self.members = []

            def grow(self, who):
                self.members.append(who)

            def broadcast(self):
                snapshot = self.members
                yield Call(ActorRef("peer", 0), "sync", snapshot)
    ''')
    assert _rules_fired(findings) == {XB_ALIASED_MUTABLE}


def test_aliased_mutable_fires_on_local_mutated_after_send():
    findings = _findings('''
        class BatchActor(Actor):
            def flush(self):
                batch = []
                yield Tell(ActorRef("peer", 0), "sync", batch)
                batch.append(1)
    ''')
    assert _rules_fired(findings) == {XB_ALIASED_MUTABLE}


def test_aliased_mutable_silent_on_immutable_snapshot():
    findings = _findings('''
        class RosterActor(Actor):
            def __init__(self):
                self.members = []

            def grow(self, who):
                self.members.append(who)

            def broadcast(self):
                yield Call(ActorRef("peer", 0), "sync", tuple(self.members))
    ''')
    assert XB_ALIASED_MUTABLE not in _rules_fired(findings)


def test_aliased_mutable_silent_on_fresh_untouched_local():
    # A mutable local that is sent once and never mutated afterwards nor
    # stored into self cannot alias anything the sender still sees.
    findings = _findings('''
        class OneShotActor(Actor):
            def emit(self):
                payload = [1, 2, 3]
                yield Tell(ActorRef("peer", 0), "sync", payload)
    ''')
    assert XB_ALIASED_MUTABLE not in _rules_fired(findings)


# ---------------------------------------------- XB-UNPICKLABLE-PAYLOAD


def test_unpicklable_fires_on_generator_payload():
    findings = _findings('''
        class StreamActor(Actor):
            def publish(self):
                yield Tell(ActorRef("peer", 0), "sync",
                           (x for x in range(3)))
    ''')
    assert _rules_fired(findings) == {XB_UNPICKLABLE_PAYLOAD}


def test_unpicklable_fires_on_runtime_handle_field():
    findings = _findings('''
        class LeakActor(Actor):
            def leak(self):
                yield Tell(ActorRef("peer", 0), "sync", self._engine)
    ''')
    assert _rules_fired(findings) == {XB_UNPICKLABLE_PAYLOAD}


def test_unpicklable_fires_through_local_binding():
    findings = _findings('''
        class FileActor(Actor):
            def ship(self):
                handle = open("data.txt")
                yield Call(ActorRef("peer", 0), "sync", handle)
    ''')
    assert _rules_fired(findings) == {XB_UNPICKLABLE_PAYLOAD}


def test_unpicklable_silent_on_unknown_passthrough():
    # Over-approximate but quiet: an opaque parameter is UNKNOWN, and
    # UNKNOWN never fires (only proven-unpicklable does).
    findings = _findings('''
        class RelayActor(Actor):
            def relay(self, payload):
                yield Tell(ActorRef("peer", 0), "sync", payload)
    ''')
    assert XB_UNPICKLABLE_PAYLOAD not in _rules_fired(findings)


# ------------------------------------------------- XB-AWAIT-TURN-SPLIT


def test_turn_split_fires_on_reentrant_write_straddle():
    findings = _findings('''
        class SplitActor(Actor):
            REENTRANT = True

            def __init__(self):
                self.balance = 0

            def transfer(self, n):
                self.balance -= n
                yield Call(ActorRef("peer", 0), "sync", n)
                self.balance += n
    ''')
    assert _rules_fired(findings) == {XB_AWAIT_TURN_SPLIT}


def test_turn_split_silent_when_not_reentrant():
    findings = _findings('''
        class SplitActor(Actor):
            REENTRANT = False

            def __init__(self):
                self.balance = 0

            def transfer(self, n):
                self.balance -= n
                yield Call(ActorRef("peer", 0), "sync", n)
                self.balance += n
    ''')
    assert XB_AWAIT_TURN_SPLIT not in _rules_fired(findings)


def test_turn_split_silent_when_writes_on_one_side():
    findings = _findings('''
        class TallyActor(Actor):
            REENTRANT = True

            def __init__(self):
                self.count = 0

            def bump(self, n):
                self.count += n
                yield Tell(ActorRef("peer", 0), "sync", n)
    ''')
    assert XB_AWAIT_TURN_SPLIT not in _rules_fired(findings)


# ---------------------------------------------- XB-UNPERSISTED-RESTORE


def test_unpersisted_fires_on_field_outside_declared_set():
    findings = _findings('''
        class CheckpointActor(Actor):
            PERSISTED = ("committed",)

            def __init__(self):
                self.committed = 0
                self.staged = 0

            def stage(self, n):
                self.staged += n
    ''')
    assert _rules_fired(findings) == {XB_UNPERSISTED_RESTORE}


def test_unpersisted_silent_on_declared_and_private_fields():
    findings = _findings('''
        class CheckpointActor(Actor):
            PERSISTED = ("committed",)

            def __init__(self):
                self.committed = 0
                self._scratch = 0

            def commit(self, n):
                self.committed += n
                self._scratch += 1
    ''')
    assert XB_UNPERSISTED_RESTORE not in _rules_fired(findings)


def test_unpersisted_silent_without_persisted_declaration():
    findings = _findings('''
        class FreeActor(Actor):
            def __init__(self):
                self.anything = 0

            def bump(self):
                self.anything += 1
    ''')
    assert XB_UNPERSISTED_RESTORE not in _rules_fired(findings)


# ------------------------------------------------ fixture + integration


def test_fixture_fires_exactly_the_four_xb_rules():
    with open(os.path.join(REPO, FIXTURE), "r", encoding="utf-8") as fh:
        source = fh.read()
    _index, findings = analyze_xbackend([(FIXTURE, source)])
    fired = [f.rule for f in findings]
    assert sorted(fired) == sorted(r.name for r in all_xb_rules())
    assert len(fired) == 4               # one finding per rule, no extras


def test_repo_tree_is_xb_clean():
    report = lint_paths(base=REPO, xbackend=True)
    xb = [f for f in report.active if f.rule.startswith("XB-")]
    assert xb == []


def test_waiver_suppresses_xb_finding(tmp_path):
    src = PRELUDE + textwrap.dedent('''
        class StreamActor(Actor):
            def publish(self):
                # repro: waive[XB-UNPICKLABLE-PAYLOAD] -- single-process demo
                yield Tell(ActorRef("peer", 0), "sync",
                           (x for x in range(3)))
    ''')
    mod = tmp_path / "mod.py"
    mod.write_text(src)
    report = lint_paths([str(mod)], base=str(tmp_path), xbackend=True)
    assert report.ok
    waived = [f for f in report.waived if f.rule == XB_UNPICKLABLE_PAYLOAD]
    assert len(waived) == 1
    assert waived[0].justification == "single-process demo"


def test_unwaived_xb_finding_fails_the_report(tmp_path):
    src = PRELUDE + textwrap.dedent('''
        class StreamActor(Actor):
            def publish(self):
                yield Tell(ActorRef("peer", 0), "sync",
                           (x for x in range(3)))
    ''')
    mod = tmp_path / "mod.py"
    mod.write_text(src)
    report = lint_paths([str(mod)], base=str(tmp_path), xbackend=True)
    assert not report.ok
    assert XB_UNPICKLABLE_PAYLOAD in {f.rule for f in report.active}


def test_mutable_fields_sees_initializers_and_mutators():
    index = build_index([("mod.py", PRELUDE + textwrap.dedent('''
        class MixedActor(Actor):
            def __init__(self):
                self.items = []
                self.count = 0

            def add(self, x):
                self.items.append(x)
                self.count += 1
    '''))])
    cls = next(c for c in index.all_classes() if c.name == "MixedActor")
    fields = mutable_fields(cls)
    assert "items" in fields
    assert "count" not in fields         # numbers are not aliasable
