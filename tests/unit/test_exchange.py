"""Unit tests for the greedy two-heap exchange procedure (§4.2)."""

import pytest

from repro.core.partitioning.candidate import Candidate
from repro.core.partitioning.exchange import greedy_exchange


def cand(v, score, edges=None):
    return Candidate(v, score, edges or {})


def test_takes_positive_scores_from_both_sides():
    out = greedy_exchange(
        [cand("s1", 5.0), cand("s2", 3.0)],
        [cand("t1", 4.0)],
        size_p=10, size_q=10, delta=5,
    )
    assert set(out.accepted) == {"s1", "s2"}
    assert out.returned == ["t1"]
    assert out.estimated_gain == 12.0


def test_skips_nonpositive_scores():
    out = greedy_exchange(
        [cand("s1", 0.0), cand("s2", -2.0)],
        [cand("t1", 1.0)],
        size_p=10, size_q=10, delta=5,
    )
    assert out.accepted == []
    assert out.returned == ["t1"]


def test_balance_constraint_blocks_one_sided_transfers():
    # delta=1, equal sizes: after one p->q move the gap is 2 > 1, so a
    # second unmatched p->q move must not happen.
    out = greedy_exchange(
        [cand("s1", 9.0), cand("s2", 8.0), cand("s3", 7.0)],
        [],
        size_p=10, size_q=10, delta=1,
    )
    assert len(out.accepted) == 0  # first move already violates: gap 2 > 1
    out2 = greedy_exchange(
        [cand("s1", 9.0), cand("s2", 8.0)],
        [],
        size_p=11, size_q=10, delta=1,
    )
    # 11/10 -> moving one: 10/11 gap 1 OK; moving two: 9/12 gap 3 blocked.
    assert out2.accepted == ["s1"]


def test_balance_forces_alternation():
    # delta=2, equal sizes: each side can lead by at most one move, so
    # the marks must alternate s, t, s, t.
    out = greedy_exchange(
        [cand("s1", 9.0), cand("s2", 8.0)],
        [cand("t1", 1.0), cand("t2", 0.5)],
        size_p=10, size_q=10, delta=2,
    )
    assert out.accepted == ["s1", "s2"]
    assert out.returned == ["t1", "t2"]


def test_score_update_on_shared_edge_same_side():
    # s1 and s2 communicate heavily with each other; once s1 is marked to
    # move, s2's score toward q rises by 2w.
    out = greedy_exchange(
        [
            cand("s1", 5.0, edges={"s2": 3.0}),
            cand("s2", -1.0, edges={"s1": 3.0}),  # initially negative
        ],
        [],
        size_p=12, size_q=8, delta=4,
    )
    # After s1 moves, s2's score becomes -1 + 2*3 = 5 > 0 -> moves too.
    assert out.accepted == ["s1", "s2"]


def test_score_update_on_shared_edge_opposite_sides():
    # t1 (at q) communicates with s1 (at p).  If s1 moves to q, t1 should
    # NOT move to p anymore (score drops by 2w).
    out = greedy_exchange(
        [cand("s1", 10.0, edges={"t1": 4.0})],
        [cand("t1", 5.0, edges={"s1": 4.0})],
        size_p=11, size_q=9, delta=2,
    )
    assert out.accepted == ["s1"]
    # t1's score fell to 5 - 8 = -3: rejected.
    assert out.returned == []


def test_max_moves_cap():
    out = greedy_exchange(
        [cand(f"s{i}", 10.0 - i) for i in range(5)],
        [cand(f"t{i}", 9.5 - i) for i in range(5)],
        size_p=20, size_q=20, delta=3,
        max_moves=3,
    )
    assert out.moves == 3


def test_empty_inputs():
    out = greedy_exchange([], [], size_p=5, size_q=5, delta=1)
    assert out.moves == 0
    assert out.estimated_gain == 0.0


def test_negative_delta_rejected():
    with pytest.raises(ValueError):
        greedy_exchange([], [], size_p=1, size_q=1, delta=-1)


def test_delta_zero_equal_sizes_freezes_exchange():
    # Balance is checked after every mark (the paper's per-step reading),
    # so delta=0 with equal sizes admits no move at all: the very first
    # mark would create a gap of 2.  Practical deltas are in the tens.
    out = greedy_exchange(
        [cand("s1", 5.0)],
        [cand("t1", 4.0)],
        size_p=10, size_q=10, delta=0,
    )
    assert out.moves == 0
