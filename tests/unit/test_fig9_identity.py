"""The Fig.-9 accounting identity, checked event by event.

The paper's measurement model decomposes one event's wall-clock
processing time as z = r + x + w (ready + compute + blocking wait).  The
whole §5.4 estimation story rests on this identity; here we assert it on
every event of a contended, blocking, oversubscribed pipeline.
"""

import pytest

from repro.seda.server import StagedServer
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


def test_z_equals_r_plus_x_plus_w_for_every_event():
    sim = Simulator()
    server = StagedServer(sim, processors=2, switch_factor=0.1,
                          dispatch_overhead=1e-5)
    traced = []
    stage = server.add_stage("io", threads=6, blocking=True)
    stage.observers.append(lambda st, ev: traced.append(ev))
    rng = RngRegistry(3).stream("t")
    def submit(compute, wait):
        stage.submit(compute, lambda ev: None, wait=wait)

    for _ in range(300):
        compute = rng.uniform(0.0005, 0.003)
        wait = rng.choice([0.0, rng.uniform(0.001, 0.01)])
        sim.schedule(rng.uniform(0.0, 0.5), submit, compute, wait)
    sim.run()
    assert len(traced) == 300
    for event in traced:
        assert event.wallclock == pytest.approx(
            event.ready_time + event.cpu_time + event.wait, abs=1e-12
        )
        # components are individually sane
        assert event.ready_time >= 0
        assert event.cpu_time >= event.compute  # inflation only adds
        assert event.queue_wait >= 0


def test_oversubscription_shows_up_as_ready_time_and_inflation():
    def run(threads):
        sim = Simulator()
        server = StagedServer(sim, processors=2, switch_factor=0.1,
                              dispatch_overhead=0.0)
        events = []
        stage = server.add_stage("s", threads=threads)
        stage.observers.append(lambda st, ev: events.append(ev))
        for _ in range(40):
            stage.submit(0.01, lambda ev: None)
        sim.run()
        mean_r = sum(e.ready_time for e in events) / len(events)
        mean_x = sum(e.cpu_time for e in events) / len(events)
        return mean_r, mean_x

    r_lean, x_lean = run(threads=2)      # matched to cores
    r_fat, x_fat = run(threads=12)       # oversubscribed
    assert x_fat > x_lean                # switch inflation
    assert r_fat > r_lean                # run-queue wait appears
