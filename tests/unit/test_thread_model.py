"""Unit tests for the thread-allocation problem model (§5.2–5.3)."""

import math

import pytest

from repro.core.threads.model import ThreadAllocationProblem
from repro.queueing.jackson import StageLoad


def make_problem(loads, p=8, eta=1e-4):
    return ThreadAllocationProblem(stages=loads, processors=p, eta=eta)


def test_lambda_tot():
    prob = make_problem([
        StageLoad(10.0, 100.0),
        StageLoad(30.0, 100.0),
    ])
    assert prob.lambda_tot == 40.0


def test_cpu_demand_weighted_by_beta():
    prob = make_problem([
        StageLoad(100.0, 100.0, cpu_fraction=1.0),   # demand 1.0
        StageLoad(100.0, 100.0, cpu_fraction=0.5),   # demand 0.5
    ])
    assert prob.cpu_demand() == pytest.approx(1.5)


def test_feasibility():
    assert make_problem([StageLoad(700.0, 100.0)], p=8).is_feasible()
    assert not make_problem([StageLoad(900.0, 100.0)], p=8).is_feasible()


def test_zeta_matches_formula():
    loads = [StageLoad(50.0, 100.0), StageLoad(150.0, 100.0)]
    prob = make_problem(loads, p=4)
    headroom = 4 - (50 / 100 + 150 / 100)
    numer = math.sqrt(50 / 100) + math.sqrt(150 / 100)
    expected = (numer / headroom) ** 2 / 200.0
    assert prob.zeta() == pytest.approx(expected)


def test_zeta_infinite_when_overloaded():
    prob = make_problem([StageLoad(900.0, 100.0)], p=8)
    assert prob.zeta() == math.inf


def test_zeta_zero_without_traffic():
    prob = make_problem([StageLoad(0.0, 100.0)])
    assert prob.zeta() == 0.0


def test_objective_uses_penalty():
    prob = make_problem([StageLoad(50.0, 100.0)], eta=0.01)
    # t=1: latency = 1/(100-50)/1 weighted... single stage: (50/50)/50
    base = (50.0 / (100.0 - 50.0)) / 50.0
    assert prob.objective([1.0]) == pytest.approx(base + 0.01)


def test_cpu_constraint_check():
    prob = make_problem([StageLoad(50.0, 100.0, cpu_fraction=0.5)], p=2)
    assert prob.satisfies_cpu_constraint([4.0])   # 2.0 <= 2
    assert not prob.satisfies_cpu_constraint([4.1])


def test_min_feasible_threads():
    prob = make_problem([StageLoad(300.0, 100.0), StageLoad(50.0, 100.0)])
    assert prob.min_feasible_threads() == [3.0, 0.5]


def test_validation():
    with pytest.raises(ValueError):
        make_problem([], p=8)
    with pytest.raises(ValueError):
        make_problem([StageLoad(1.0, 1.0)], p=0)
    with pytest.raises(ValueError):
        ThreadAllocationProblem([StageLoad(1.0, 1.0)], processors=8, eta=0.0)
