"""Unit tests for latency recorders, time series, and serialization costs."""

import numpy as np
import pytest

from repro.actor.serialization import SerializationModel
from repro.bench.metrics import LatencyRecorder, TimeSeries, percentile


def test_percentile_matches_numpy():
    data = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0]
    for q in (0, 25, 50, 75, 90, 99, 100):
        assert percentile(data, q) == pytest.approx(np.percentile(data, q))


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_recorder_summary():
    rec = LatencyRecorder()
    for v in (0.1, 0.2, 0.3, 0.4):
        rec.record(v)
    s = rec.summary()
    assert s["count"] == 4
    assert s["mean"] == pytest.approx(0.25)
    assert rec.median == pytest.approx(0.25)
    assert rec.max_value == 0.4


def test_recorder_rejects_negative():
    rec = LatencyRecorder()
    with pytest.raises(ValueError):
        rec.record(-0.1)


def test_empty_recorder_summary():
    assert LatencyRecorder().summary()["count"] == 0


def test_reservoir_caps_memory_keeps_exact_mean():
    rec = LatencyRecorder(reservoir=100, seed=1)
    for i in range(10_000):
        rec.record(float(i))
    assert rec.count == 10_000
    assert len(rec._samples) == 100
    assert rec.mean == pytest.approx(4999.5)
    # Reservoir percentiles are estimates; allow a loose band.
    assert rec.median == pytest.approx(5000.0, rel=0.3)


def test_cdf_monotone_and_complete():
    rec = LatencyRecorder()
    for i in range(1000):
        rec.record(i / 1000.0)
    cdf = rec.cdf(points=50)
    values = [v for v, _ in cdf]
    quantiles = [q for _, q in cdf]
    assert values == sorted(values)
    assert quantiles == sorted(quantiles)
    assert quantiles[-1] == 1.0


def test_recorder_merge():
    a, b = LatencyRecorder(), LatencyRecorder()
    a.record(1.0)
    b.record(3.0)
    a.merge(b)
    assert a.count == 2
    assert a.mean == 2.0


def test_timeseries_order_enforced():
    ts = TimeSeries()
    ts.record(1.0, 10.0)
    ts.record(2.0, 20.0)
    with pytest.raises(ValueError):
        ts.record(1.5, 5.0)
    assert ts.last() == 20.0
    assert len(ts) == 2


def test_timeseries_tail_mean():
    ts = TimeSeries()
    for i in range(10):
        ts.record(float(i), 0.0 if i < 5 else 10.0)
    assert ts.tail_mean(0.5) == 10.0
    assert list(ts.items())[0] == (0.0, 0.0)


def test_timeseries_merge_interleaves_by_timestamp():
    a, b = TimeSeries(), TimeSeries()
    for t, v in [(0.0, 1.0), (2.0, 2.0), (4.0, 3.0)]:
        a.record(t, v)
    for t, v in [(1.0, 10.0), (2.0, 20.0), (5.0, 30.0)]:
        b.record(t, v)
    a.merge(b)
    # a's sample precedes b's on the t=2.0 tie (stable, silo order)
    assert list(a.items()) == [
        (0.0, 1.0), (1.0, 10.0), (2.0, 2.0), (2.0, 20.0),
        (4.0, 3.0), (5.0, 30.0),
    ]
    assert list(b.items()) == [(1.0, 10.0), (2.0, 20.0), (5.0, 30.0)]


def test_timeseries_merge_appends_on_disjoint_ranges():
    a, b = TimeSeries(), TimeSeries()
    a.record(0.0, 1.0)
    a.record(1.0, 2.0)
    b.record(1.0, 9.0)                 # equal boundary takes the fast path
    b.record(3.0, 8.0)
    a.merge(b)
    assert list(a.items()) == [
        (0.0, 1.0), (1.0, 2.0), (1.0, 9.0), (3.0, 8.0)]
    a.merge(TimeSeries())              # merging empty is a no-op
    assert len(a) == 4


def test_serialization_costs_grow_with_size():
    model = SerializationModel()
    assert model.serialize_cost(1000) > model.serialize_cost(10)
    assert model.deserialize_cost(1000) > model.deserialize_cost(10)
    assert model.copy_cost(500) < model.serialize_cost(500)
    assert model.remote_overhead(500) > 0


def test_serialization_scaled():
    model = SerializationModel()
    double = model.scaled(2.0)
    assert double.serialize_cost(100) == pytest.approx(2 * model.serialize_cost(100))
    assert double.copy_cost(100) == pytest.approx(2 * model.copy_cost(100))
    with pytest.raises(ValueError):
        model.scaled(0.0)
