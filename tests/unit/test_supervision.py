"""Supervision policy unit tests: budgets, windows, escalation."""

import pytest

from repro.actor.ids import ActorId
from repro.backend.supervision import SupervisionPolicy, Supervisor


AID = ActorId("t", 1)
OTHER = ActorId("t", 2)


def test_policy_defaults():
    policy = SupervisionPolicy()
    assert policy.strategy == "restart"
    assert policy.max_restarts == 3
    assert policy.window == 30.0
    assert policy.on_exhaustion == "escalate"


@pytest.mark.parametrize("kwargs", [
    {"strategy": "reboot"},
    {"on_exhaustion": "restart"},
    {"max_restarts": -1},
    {"window": 0.0},
])
def test_policy_validation(kwargs):
    with pytest.raises(ValueError):
        SupervisionPolicy(**kwargs)


def test_restart_within_budget():
    sup = Supervisor(SupervisionPolicy(max_restarts=3, window=30.0))
    assert [sup.decide(AID, now=float(i)) for i in range(3)] == \
        ["restart", "restart", "restart"]
    assert sup.restarts == 3


def test_budget_exhaustion_escalates():
    sup = Supervisor(SupervisionPolicy(max_restarts=2, window=30.0))
    decisions = [sup.decide(AID, now=float(i)) for i in range(4)]
    # crash #1, #2 restart; crash #3 exceeds a 2-restart budget.
    assert decisions == ["restart", "restart", "escalate", "escalate"]
    assert sup.escalations == 2


def test_budget_exhaustion_stop():
    sup = Supervisor(SupervisionPolicy(max_restarts=1, on_exhaustion="stop"))
    assert sup.decide(AID, now=0.0) == "restart"
    assert sup.decide(AID, now=1.0) == "stop"
    assert sup.stops == 1


def test_window_slides():
    sup = Supervisor(SupervisionPolicy(max_restarts=1, window=10.0))
    assert sup.decide(AID, now=0.0) == "restart"
    # Second crash inside the window exhausts the budget...
    assert sup.decide(AID, now=5.0) == "escalate"
    # ...but once the earlier crashes age out, restarts resume.
    assert sup.decide(AID, now=40.0) == "restart"


def test_budget_is_per_actor():
    sup = Supervisor(SupervisionPolicy(max_restarts=1))
    assert sup.decide(AID, now=0.0) == "restart"
    assert sup.decide(AID, now=1.0) == "escalate"
    assert sup.decide(OTHER, now=1.0) == "restart"


def test_stop_strategy_never_restarts():
    sup = Supervisor(SupervisionPolicy(strategy="stop"))
    assert sup.decide(AID, now=0.0) == "stop"
    assert sup.restarts == 0


def test_escalate_strategy():
    sup = Supervisor(SupervisionPolicy(strategy="escalate"))
    assert sup.decide(AID, now=0.0) == "escalate"


def test_forget_resets_history():
    sup = Supervisor(SupervisionPolicy(max_restarts=1, window=100.0))
    assert sup.decide(AID, now=0.0) == "restart"
    sup.forget(AID)
    assert sup.decide(AID, now=1.0) == "restart"


def test_crashes_in_window():
    sup = Supervisor(SupervisionPolicy(max_restarts=5, window=10.0))
    for t in (0.0, 1.0, 2.0):
        sup.decide(AID, now=t)
    assert sup.crashes_in_window(AID, now=3.0) == 3
    assert sup.crashes_in_window(AID, now=11.5) == 1
    assert sup.crashes_in_window(OTHER, now=3.0) == 0


def test_default_supervisor_policy():
    assert Supervisor().policy == SupervisionPolicy()
