"""Unit tests for routed Jackson networks (traffic equations)."""

import pytest

from repro.queueing.network import JacksonNetwork, solve_traffic_equations


def test_tandem_line_rates_equal_input():
    # gamma into stage 0 only; 0 -> 1 -> 2 -> out.
    routing = [
        [0.0, 1.0, 0.0],
        [0.0, 0.0, 1.0],
        [0.0, 0.0, 0.0],
    ]
    lam = solve_traffic_equations([100.0, 0.0, 0.0], routing)
    assert lam == pytest.approx([100.0, 100.0, 100.0])


def test_branching_splits_traffic():
    # worker output: 70% to server_sender, 30% to client_sender.
    routing = [
        [0.0, 0.7, 0.3],
        [0.0, 0.0, 0.0],
        [0.0, 0.0, 0.0],
    ]
    lam = solve_traffic_equations([1000.0, 0.0, 0.0], routing)
    assert lam == pytest.approx([1000.0, 700.0, 300.0])


def test_feedback_loop_amplifies():
    # stage 0 feeds back to itself with prob 0.5: lambda = gamma/(1-0.5).
    lam = solve_traffic_equations([50.0], [[0.5]])
    assert lam == pytest.approx([100.0])


def test_non_dissipative_rejected():
    with pytest.raises(ValueError):
        solve_traffic_equations([1.0], [[1.0]])  # nothing ever leaves


def test_bad_shapes_and_values_rejected():
    with pytest.raises(ValueError):
        solve_traffic_equations([1.0, 2.0], [[0.0]])
    with pytest.raises(ValueError):
        solve_traffic_equations([1.0], [[-0.1]])
    with pytest.raises(ValueError):
        solve_traffic_equations([1.0, 0.0], [[0.6, 0.6], [0.0, 0.0]])


def test_network_latency_matches_manual_eq1():
    net = JacksonNetwork(
        service_rates_per_thread=[500.0, 400.0],
        gamma=[100.0, 0.0],
        routing=[[0.0, 1.0], [0.0, 0.0]],
        names=["recv", "work"],
    )
    # lambda = [100, 100]; with 1 thread each: T_i = 1/(mu - lam).
    expected = (100 / (500 - 100) + 100 / (400 - 100)) / 200
    assert net.latency([1.0, 1.0]) == pytest.approx(expected)
    assert net.utilizations([1.0, 1.0]) == pytest.approx([0.2, 0.25])


def test_orleans_server_topology():
    """The Fig.-2 server: receiver -> worker -> {server,client} senders.
    The server sender (full RPC serialization) is slower per thread than
    the client sender, so shifting the split toward local traffic lowers
    the Eq.-(1) delay."""
    rates = [9000.0, 6000.0, 5800.0, 8000.0]

    def build(remote_share):
        return JacksonNetwork(
            service_rates_per_thread=rates,
            gamma=[6000.0, 0.0, 0.0, 0.0],
            routing=[
                [0.0, 1.0, 0.0, 0.0],
                [0.0, 0.0, remote_share, 1.0 - remote_share],
                [0.0, 0.0, 0.0, 0.0],
                [0.0, 0.0, 0.0, 0.0],
            ],
            names=["receiver", "worker", "server_sender", "client_sender"],
        )

    remote = build(0.9)
    assert remote.arrival_rates == pytest.approx(
        [6000.0, 6000.0, 5400.0, 600.0])
    local = build(0.1)
    threads = [2.0, 2.0, 2.0, 2.0]
    assert local.latency(threads) < remote.latency(threads)
