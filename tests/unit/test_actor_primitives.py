"""Unit tests for actor identities, messages, calls, and the base class."""

import pytest

from repro.actor.actor import Actor, DEFAULT_COMPUTE
from repro.actor.calls import All, Call, Sleep
from repro.actor.ids import ActorId, ActorRef
from repro.actor.messages import Message, MessageKind, next_call_id


def test_refs_compare_by_identity():
    a = ActorRef("player", 1)
    b = ActorRef("player", 1)
    c = ActorRef("player", 2)
    assert a == b
    assert hash(a) == hash(b)
    assert a != c
    assert a != "player/1"


def test_actor_id_str():
    assert str(ActorId("game", 7)) == "game/7"


def test_call_ids_unique_and_increasing():
    ids = [next_call_id() for _ in range(100)]
    assert len(set(ids)) == 100
    assert ids == sorted(ids)


def test_message_expects_reply():
    call = Message(MessageKind.CALL, ActorId("a", 1))
    oneway = Message(MessageKind.ONEWAY, ActorId("a", 1))
    client = Message(MessageKind.CLIENT_REQUEST, ActorId("a", 1))
    assert call.expects_reply
    assert client.expects_reply
    assert not oneway.expects_reply


def test_make_response_links_call():
    request = Message(
        MessageKind.CALL, ActorId("callee", 1), method="m",
        call_id=42, sender=ActorId("caller", 2), reply_to_server=3,
        created_at=1.5,
    )
    response = request.make_response("result", size=64, server_id=9)
    assert response.kind is MessageKind.RESPONSE
    assert response.call_id == 42
    assert response.reply_to_server == 3
    assert response.result == "result"
    assert response.sender == ActorId("callee", 1)
    assert response.target == ActorId("caller", 2)
    assert response.created_at == 1.5


def test_call_defaults_response_size():
    ref = ActorRef("a", 1)
    call = Call(ref, "m", size=300)
    assert call.response_size == 150
    tiny = Call(ref, "m", size=1)
    assert tiny.response_size == 64  # floor


def test_all_requires_calls():
    with pytest.raises(ValueError):
        All([])


def test_sleep_validation():
    assert Sleep(0.5).duration == 0.5
    with pytest.raises(ValueError):
        Sleep(-1.0)


class Worker(Actor):
    COMPUTE = {"fast": 1e-6}
    WAIT = {"slocking": 0.5}


def test_compute_and_wait_cost_lookup():
    assert Worker.compute_cost("fast") == 1e-6
    assert Worker.compute_cost("other") == DEFAULT_COMPUTE
    assert Worker.wait_cost("slocking") == 0.5
    assert Worker.wait_cost("fast") == 0.0


def test_actor_requires_activation_for_id():
    w = Worker()
    with pytest.raises(RuntimeError):
        _ = w.id


def test_state_capture_excludes_runtime_fields():
    w = Worker()
    w._bind(ActorId("worker", 1), server_id=0)
    w.counter = 5
    state = w.capture_state()
    assert state == {"counter": 5}
    fresh = Worker()
    fresh.restore_state(state)
    assert fresh.counter == 5


def test_self_ref_round_trip():
    w = Worker()
    w._bind(ActorId("worker", 9), server_id=0)
    assert w.self_ref().id == ActorId("worker", 9)
    assert w.key == 9
