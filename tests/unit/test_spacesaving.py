"""Unit tests for the Space-Saving heavy-hitter summary."""

import random

import pytest

from repro.graph.spacesaving import SpaceSaving


def test_exact_when_under_capacity():
    ss = SpaceSaving(10)
    for key, n in (("a", 5), ("b", 3), ("c", 1)):
        for _ in range(n):
            ss.offer(key)
    assert ss.count("a") == 5
    assert ss.count("b") == 3
    assert ss.count("c") == 1
    assert ss.error("a") == 0
    assert len(ss) == 3


def test_overestimates_never_underestimate():
    rng = random.Random(0)
    keys = [f"k{i}" for i in range(50)]
    truth = {k: 0 for k in keys}
    ss = SpaceSaving(10)
    for _ in range(5_000):
        k = rng.choice(keys)
        truth[k] += 1
        ss.offer(k)
    for k in keys:
        if k in ss:
            assert ss.count(k) >= truth[k]
            assert ss.guaranteed_count(k) <= truth[k]


def test_heavy_keys_survive():
    """Any key with true count > N/capacity must be monitored."""
    rng = random.Random(1)
    ss = SpaceSaving(20)
    n = 10_000
    # one heavy key gets 30% of the stream; noise spread over 1000 keys
    for _ in range(n):
        if rng.random() < 0.3:
            ss.offer("heavy")
        else:
            ss.offer(f"noise{rng.randrange(1000)}")
    assert "heavy" in ss
    assert ss.count("heavy") >= 0.3 * n * 0.9


def test_top_k_ordering():
    ss = SpaceSaving(10)
    for key, n in (("big", 100), ("mid", 50), ("small", 10)):
        ss.offer(key, n)
    top = ss.top(2)
    assert [k for k, _ in top] == ["big", "mid"]


def test_weighted_offers():
    ss = SpaceSaving(4)
    ss.offer("a", 10.0)
    ss.offer("a", 2.5)
    assert ss.count("a") == 12.5
    assert ss.total_weight == 12.5


def test_eviction_inherits_min_count():
    ss = SpaceSaving(2)
    ss.offer("a", 10)
    ss.offer("b", 3)
    ss.offer("c")  # evicts b (min count 3)
    assert "b" not in ss
    assert ss.count("c") == 4
    assert ss.error("c") == 3
    assert ss.guaranteed_count("c") == 1


def test_decay_scales_counts():
    ss = SpaceSaving(4)
    ss.offer("a", 10)
    ss.offer("b", 4)
    ss.decay(0.5)
    assert ss.count("a") == 5
    assert ss.count("b") == 2
    assert ss.total_weight == 7


def test_decay_one_is_noop():
    ss = SpaceSaving(4)
    ss.offer("a", 10)
    ss.decay(1.0)
    assert ss.count("a") == 10


def test_decay_validation():
    ss = SpaceSaving(4)
    with pytest.raises(ValueError):
        ss.decay(0.0)
    with pytest.raises(ValueError):
        ss.decay(1.5)


def test_forget_removes_key():
    ss = SpaceSaving(4)
    ss.offer("a")
    ss.offer("b")
    ss.forget("a")
    assert "a" not in ss
    assert len(ss) == 1
    ss.forget("missing")  # no-op


def test_min_still_found_after_decay_and_forget():
    ss = SpaceSaving(3)
    ss.offer("a", 9)
    ss.offer("b", 6)
    ss.offer("c", 3)
    ss.decay(0.5)
    ss.forget("b")
    ss.offer("d", 1)  # fills the freed slot, no eviction
    ss.offer("e", 1)  # evicts the min, which is c at 1.5... actually d at 1
    assert "a" in ss
    assert len(ss) == 3


def test_invalid_inputs():
    with pytest.raises(ValueError):
        SpaceSaving(0)
    ss = SpaceSaving(2)
    with pytest.raises(ValueError):
        ss.offer("a", 0.0)


def test_items_iterates_all_monitored():
    ss = SpaceSaving(5)
    for k in "abc":
        ss.offer(k)
    assert sorted(k for k, _ in ss.items()) == ["a", "b", "c"]


def test_heap_rebuild_under_many_updates():
    ss = SpaceSaving(8)
    for i in range(10_000):
        ss.offer(f"k{i % 8}")
    assert len(ss) == 8
    for i in range(8):
        assert ss.count(f"k{i}") == 1250
