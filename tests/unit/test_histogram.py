"""Unit tests for the streaming log-bucketed HistogramRecorder."""

import random

import pytest

from repro.bench.metrics import HistogramRecorder, LatencyRecorder, percentile


def test_validation():
    with pytest.raises(ValueError):
        HistogramRecorder(max_relative_error=0.0)
    with pytest.raises(ValueError):
        HistogramRecorder(max_relative_error=1.0)
    with pytest.raises(ValueError):
        HistogramRecorder(min_value=0.0)
    hist = HistogramRecorder()
    with pytest.raises(ValueError):
        hist.record(-1.0)
    with pytest.raises(ValueError):
        hist.percentile(50)  # empty
    hist.record(1.0)
    with pytest.raises(ValueError):
        hist.percentile(101)


def test_exact_counters():
    hist = HistogramRecorder()
    values = [0.001, 0.002, 0.5, 3.0, 0.0001]
    for v in values:
        hist.record(v)
    assert hist.count == 5
    assert hist.total == pytest.approx(sum(values))
    assert hist.mean == pytest.approx(sum(values) / 5)
    assert hist.max_value == 3.0
    assert hist.min_seen == 0.0001


def test_quantiles_within_bucket_resolution():
    """Histogram percentiles agree with the exact sort-based percentile
    to within the configured relative error (one bucket width)."""
    rng = random.Random(42)
    err = 0.01
    hist = HistogramRecorder(max_relative_error=err)
    samples = [rng.lognormvariate(-6.0, 1.0) for _ in range(50_000)]
    for v in samples:
        hist.record(v)
    for q in (1, 10, 25, 50, 75, 90, 95, 99, 99.9):
        exact = percentile(samples, q)
        approx = hist.percentile(q)
        # One bucket of slack plus interpolation slop at the extremes.
        assert approx == pytest.approx(exact, rel=2 * err + 1e-3), f"q={q}"


def test_extreme_quantiles_clamped_to_observed_range():
    hist = HistogramRecorder()
    for v in (0.010, 0.020, 0.030):
        hist.record(v)
    assert hist.percentile(0) >= 0.010
    assert hist.percentile(100) <= 0.030


def test_underflow_bucket():
    hist = HistogramRecorder(min_value=1e-3)
    hist.record(0.0)
    hist.record(1e-6)
    hist.record(0.5)
    assert hist.count == 3
    assert hist.median <= 1e-3  # tiny values stay tiny


def test_memory_is_bounded_by_dynamic_range():
    hist = HistogramRecorder(max_relative_error=0.01)
    rng = random.Random(7)
    for _ in range(200_000):
        hist.record(rng.uniform(1e-4, 1e-1))
    # 3 decades at 1% growth: ~log(1000)/log(1.01) = ~695 buckets max.
    assert hist.num_buckets < 800


def test_merge_is_exact_and_matches_single_recorder():
    rng = random.Random(3)
    a, b, combined = (HistogramRecorder() for _ in range(3))
    for _ in range(10_000):
        v = rng.expovariate(100.0)
        (a if rng.random() < 0.5 else b).record(v)
        combined.record(v)
    a.merge(b)
    assert a.count == combined.count
    assert a.total == pytest.approx(combined.total)
    assert a._buckets == combined._buckets
    for q in (50, 95, 99):
        assert a.percentile(q) == combined.percentile(q)


def test_merge_associativity():
    """(a + b) + c and a + (b + c) produce identical bucket counts and
    quantiles."""
    rng = random.Random(11)
    sets = [[rng.lognormvariate(-5, 0.8) for _ in range(5_000)] for _ in range(3)]

    def build(values):
        h = HistogramRecorder()
        for v in values:
            h.record(v)
        return h

    left = build(sets[0])
    ab = build(sets[1])
    left.merge(ab)
    c1 = build(sets[2])
    left.merge(c1)

    right_bc = build(sets[1])
    c2 = build(sets[2])
    right_bc.merge(c2)
    right = build(sets[0])
    right.merge(right_bc)

    assert left._buckets == right._buckets
    assert left.count == right.count
    for q in (50, 90, 99):
        assert left.percentile(q) == right.percentile(q)


def test_merge_rejects_incompatible_bucketing():
    a = HistogramRecorder(max_relative_error=0.01)
    b = HistogramRecorder(max_relative_error=0.02)
    with pytest.raises(ValueError):
        a.merge(b)


def test_summary_shape_matches_latency_recorder():
    hist = HistogramRecorder()
    rec = LatencyRecorder()
    assert hist.summary() == rec.summary()  # both empty
    for v in (0.1, 0.2, 0.3):
        hist.record(v)
        rec.record(v)
    s = hist.summary()
    assert set(s) == {"count", "mean", "median", "p95", "p99"}
    assert s["count"] == 3
    assert s["median"] == pytest.approx(rec.median, rel=0.02)


def test_percentile_since_windows():
    hist = HistogramRecorder()
    for _ in range(100):
        hist.record(0.001)
    snap = hist.snapshot()
    for _ in range(100):
        hist.record(1.0)
    # The window after the snapshot only saw ~1.0s samples.
    assert hist.percentile_since(snap, 50) == pytest.approx(1.0, rel=0.02)
    # The global median straddles both populations.
    assert hist.percentile(99) == pytest.approx(1.0, rel=0.02)
    with pytest.raises(ValueError):
        hist.percentile_since(hist.snapshot(), 50)  # empty window


def test_weighted_reservoir_merge_unbiased():
    """Merging a down-sampled reservoir must not skew percentiles: the
    merged reservoir draws from each side proportionally to its true
    stream length (regression test for the double-sampling bug)."""
    rng = random.Random(5)
    big = LatencyRecorder(reservoir=500, seed=1)
    small = LatencyRecorder(reservoir=500, seed=2)
    # 20k low-latency samples vs 200 high-latency samples: the union's
    # p50 must stay low because the big stream dominates 100:1.
    big_values = [rng.uniform(0.001, 0.002) for _ in range(20_000)]
    for v in big_values:
        big.record(v)
    for _ in range(200):
        small.record(1.0)
    big.merge(small)
    assert big.count == 20_200
    assert big.total == pytest.approx(sum(big_values) + 200.0)
    assert big.median < 0.01  # old replay-merge skewed this toward 1.0
    # The high-latency stream is ~1% of the union: visible at p99.9
    # territory, not the median.
    assert len(big._samples) <= 500


def test_merge_exact_when_nothing_downsampled():
    a = LatencyRecorder()
    b = LatencyRecorder()
    for v in (1.0, 2.0):
        a.record(v)
    for v in (3.0, 4.0):
        b.record(v)
    a.merge(b)
    assert a.count == 4
    assert a.mean == 2.5
    assert sorted(a._samples) == [1.0, 2.0, 3.0, 4.0]


def test_merge_into_empty_and_from_empty():
    a = LatencyRecorder(reservoir=10)
    b = LatencyRecorder(reservoir=10)
    for i in range(100):
        b.record(float(i))
    a.merge(b)
    assert a.count == 100
    assert len(a._samples) == 10
    c = LatencyRecorder()
    a.merge(c)  # merging an empty recorder is a no-op
    assert a.count == 100
