"""Unit tests for the ETW-style direct estimation mode (§5.4)."""

import pytest

from repro.core.threads.estimator import (
    MeasuredStage,
    estimate_stage_loads,
    estimate_stage_loads_direct,
    measure_windows,
)
from repro.seda.stage import StatsWindow


def window(lam, z, x, w):
    return StatsWindow(elapsed=1.0, arrivals=int(lam), completions=int(lam),
                       mean_z=z, mean_x=x, mean_queue_wait=0.0,
                       mean_ready=z - x - w, mean_wait=w)


def test_direct_mode_recovers_exact_parameters():
    windows = {
        "pure": window(500, z=0.0025, x=0.002, w=0.0),
        "io": window(300, z=0.0105, x=0.002, w=0.008),
    }
    measured = measure_windows(windows, blocking_stages=("io",),
                               os_wait_tracing=True)
    loads = estimate_stage_loads_direct(measured)
    io = loads[1]
    assert io.service_rate_per_thread == pytest.approx(1.0 / 0.010)
    assert io.cpu_fraction == pytest.approx(0.2)
    pure = loads[0]
    assert pure.service_rate_per_thread == pytest.approx(1.0 / 0.002)
    assert pure.cpu_fraction == pytest.approx(1.0)


def test_direct_mode_requires_traced_waits():
    measured = [MeasuredStage("io", 100.0, 0.01, 0.002, blocking=True)]
    with pytest.raises(ValueError):
        estimate_stage_loads_direct(measured)


def test_direct_mode_idle_stage():
    loads = estimate_stage_loads_direct(
        [MeasuredStage("idle", 0.0, 0.0, 0.0, blocking=False)]
    )
    assert loads[0].arrival_rate == 0.0


def test_measure_windows_hides_wait_by_default():
    windows = {"io": window(10, z=0.01, x=0.002, w=0.008)}
    default = measure_windows(windows, blocking_stages=("io",))
    assert default[0].mean_wait is None
    traced = measure_windows(windows, blocking_stages=("io",),
                             os_wait_tracing=True)
    assert traced[0].mean_wait == pytest.approx(0.008)


def test_alpha_mode_approximates_direct_mode():
    """With a consistent alpha, the inference-based estimate must agree
    with the direct measurement (the paper's correctness argument)."""
    alpha = 0.3
    windows = {
        "pure": window(500, z=0.002 * (1 + alpha), x=0.002, w=0.0),
        "io": window(300, z=0.003 * (1 + alpha) + 0.009, x=0.003, w=0.009),
    }
    traced = measure_windows(windows, blocking_stages=("io",),
                             os_wait_tracing=True)
    direct = estimate_stage_loads_direct(traced)
    inferred = estimate_stage_loads(
        measure_windows(windows, blocking_stages=("io",))
    )
    for d, a in zip(direct, inferred):
        assert a.service_rate_per_thread == pytest.approx(
            d.service_rate_per_thread, rel=1e-6
        )
        assert a.cpu_fraction == pytest.approx(d.cpu_fraction, rel=1e-6)
