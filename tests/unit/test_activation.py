"""Unit tests for activation work-queue and reentrancy semantics."""

from repro.actor.activation import Activation, WorkItem, WorkKind
from repro.actor.actor import Actor
from repro.actor.ids import ActorId


class ReentrantActor(Actor):
    REENTRANT = True


class SerialActor(Actor):
    REENTRANT = False


def make_activation(cls=ReentrantActor):
    return Activation(ActorId("a", 1), cls())


def start_item():
    return WorkItem(WorkKind.START, compute=1.0, message=None)


def resume_item():
    return WorkItem(WorkKind.RESUME, compute=0.1, continuation=object())


def test_fifo_when_reentrant():
    act = make_activation()
    a, b = start_item(), resume_item()
    act.queue.extend([a, b])
    assert act.next_eligible() is a
    act.segment_running = True  # the silo sets this while a executes
    assert act.next_eligible() is None
    act.segment_running = False
    assert act.next_eligible() is b


def test_next_eligible_none_while_segment_running():
    act = make_activation()
    act.queue.append(start_item())
    act.segment_running = True
    assert act.next_eligible() is None


def test_nonreentrant_blocks_new_starts_while_turn_open():
    act = make_activation(SerialActor)
    act.open_turns = 1
    blocked_start = start_item()
    resume = resume_item()
    act.queue.extend([blocked_start, resume])
    # The resume overtakes the blocked start.
    assert act.next_eligible() is resume
    act.segment_running = False
    assert act.next_eligible() is None  # start still blocked
    act.open_turns = 0
    act.segment_running = False
    assert act.next_eligible() is blocked_start


def test_nonreentrant_allows_start_when_idle():
    act = make_activation(SerialActor)
    item = start_item()
    act.queue.append(item)
    assert act.next_eligible() is item


def test_comm_table_accumulates_and_drains():
    from repro.actor.commtable import CommTable

    table = CommTable()
    src, peer = ActorId("a", 1), ActorId("b", 2)
    table.record(src, peer)
    table.record(src, peer, 2.5)
    table.record(peer, src, 1.0)
    assert table.weight(src, peer) == 3.5
    assert table.weight(peer, src) == 1.0
    assert len(table) == 2
    drained = dict(table.drain())
    assert drained == {(src, peer): 3.5, (peer, src): 1.0}
    assert len(table) == 0
    assert table.weight(src, peer) == 0.0


def test_comm_table_iterates_in_insertion_order():
    from repro.actor.commtable import CommTable

    table = CommTable()
    ids = [ActorId("t", i) for i in range(6)]
    table.record(ids[4], ids[1])
    table.record(ids[0], ids[5])
    table.record(ids[4], ids[1], 2.0)  # in-place, keeps original position
    table.record(ids[2], ids[3])
    assert [pair for pair, _ in table.items()] == [
        (ids[4], ids[1]), (ids[0], ids[5]), (ids[2], ids[3]),
    ]


def test_comm_table_merge_is_exact_and_order_deterministic():
    from repro.actor.commtable import CommTable

    ids = [ActorId("m", i) for i in range(4)]
    a, b = CommTable(), CommTable()
    a.record(ids[0], ids[1], 2.0)
    a.record(ids[2], ids[3], 1.0)
    b.record(ids[2], ids[3], 0.5)      # overlaps an edge of a
    b.record(ids[1], ids[0], 4.0)      # new edge, appended after a's
    a.merge(b)
    assert a.weight(ids[0], ids[1]) == 2.0
    assert a.weight(ids[2], ids[3]) == 1.5
    assert a.weight(ids[1], ids[0]) == 4.0
    assert [pair for pair, _ in a.items()] == [
        (ids[0], ids[1]), (ids[2], ids[3]), (ids[1], ids[0]),
    ]
    # other is left untouched — the barrier re-merges silos every window
    assert len(b) == 2
    assert b.weight(ids[1], ids[0]) == 4.0


def test_quiescence_conditions():
    act = make_activation()
    assert act.quiescent
    act.queue.append(start_item())
    assert not act.quiescent
    act.queue.clear()
    act.segment_running = True
    assert not act.quiescent
    act.segment_running = False
    act.open_turns = 1
    assert not act.quiescent
    act.open_turns = 0
    act.pending_calls = 1
    assert not act.quiescent
    act.pending_calls = 0
    assert act.quiescent
