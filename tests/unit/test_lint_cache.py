"""The per-file lint result cache and the report's dedup/determinism
contract: warm runs reproduce cold runs exactly, stale or corrupt
entries miss safely, and findings come out in (path, line, rule) order
regardless of traversal order or duplicate sources."""

import json
import os
import textwrap

from repro.analysis.cache import LintCache
from repro.analysis.findings import Finding, Severity
from repro.analysis.linter import LintReport, lint_paths

VIOLATION = textwrap.dedent('''
    import time


    class ClockActor:
        def now(self):
            return time.time()
''')

CLEAN = 'X = 1\n\n\ndef f():\n    return X\n'


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source)
    return path


def _lint(tmp_path, cache=True, rules=None):
    return lint_paths([str(tmp_path)], base=str(tmp_path), rules=rules,
                      cache_dir=str(tmp_path / ".cache") if cache else None)


def test_cold_then_warm_runs_produce_identical_reports(tmp_path):
    _write(tmp_path, "a.py", VIOLATION)
    _write(tmp_path, "b.py", CLEAN)
    _write(tmp_path, "c.py", "def broken(:\n")       # parse error

    cold = _lint(tmp_path)
    assert cold.cache_misses == 3 and cold.cache_hits == 0

    warm = _lint(tmp_path)
    assert warm.cache_hits == 3 and warm.cache_misses == 0
    assert warm.to_dict() == cold.to_dict()
    assert [f.render() for f in warm.findings] == \
        [f.render() for f in cold.findings]


def test_touched_but_identical_file_revalidates_by_hash(tmp_path):
    path = _write(tmp_path, "a.py", VIOLATION)
    _lint(tmp_path)
    stat = path.stat()
    os.utime(path, ns=(stat.st_mtime_ns + 7_000_000_000,
                       stat.st_mtime_ns + 7_000_000_000))

    warm = _lint(tmp_path)
    assert warm.cache_hits == 1 and warm.cache_misses == 0
    # The entry's stat fields were refreshed: next run hits on stat.
    again = _lint(tmp_path)
    assert again.cache_hits == 1


def test_edited_file_misses_and_reports_fresh_findings(tmp_path):
    path = _write(tmp_path, "a.py", VIOLATION)
    cold = _lint(tmp_path)
    assert not cold.ok

    path.write_text(CLEAN)
    warm = _lint(tmp_path)
    assert warm.cache_misses == 1
    assert warm.ok


def test_corrupt_cache_entries_are_tolerated(tmp_path):
    _write(tmp_path, "a.py", VIOLATION)
    cold = _lint(tmp_path)
    cache_dir = tmp_path / ".cache"
    entries = list(cache_dir.glob("*.json"))
    assert entries
    for entry in entries:
        entry.write_text("{not json")

    warm = _lint(tmp_path)
    assert warm.cache_misses == 1
    assert warm.to_dict() == cold.to_dict()


def test_rule_selection_changes_the_signature(tmp_path):
    _write(tmp_path, "a.py", VIOLATION)
    _lint(tmp_path)
    narrowed = _lint(tmp_path, rules=["DET-WALLCLOCK"])
    # Same file, different ruleset signature: must not reuse the entry.
    assert narrowed.cache_misses == 1 and narrowed.cache_hits == 0


def test_analysis_version_bump_invalidates_cached_findings(tmp_path, monkeypatch):
    # The bugfix this test pins: without the version stamp in the
    # signature, a rule-logic change would silently reuse stale cached
    # findings.  Bumping the stamp must force a full re-miss.
    import repro.analysis.version as version_mod

    _write(tmp_path, "a.py", VIOLATION)
    _lint(tmp_path)
    warm = _lint(tmp_path)
    assert warm.cache_hits == 1

    monkeypatch.setattr(version_mod, "ANALYSIS_VERSION",
                        version_mod.ANALYSIS_VERSION + "-test")
    bumped = _lint(tmp_path)
    assert bumped.cache_misses == 1 and bumped.cache_hits == 0


def test_signature_covers_flow_and_xb_rule_names(monkeypatch):
    # A new rule in *any* family must change the signature, even though
    # flow/XB findings themselves are never cached: the stamp guards the
    # whole analysis, not just the per-file half.
    from repro.analysis.linter import _ruleset_signature
    from repro.analysis.xbackend import rules as xb_rules

    base = _ruleset_signature(None)
    monkeypatch.setattr(
        xb_rules.AliasedMutableRule, "name", "XB-RENAMED")
    assert _ruleset_signature(None) != base


def test_cache_survives_missing_directory_parent(tmp_path):
    _write(tmp_path, "a.py", CLEAN)
    nested = tmp_path / "deep" / "cache"
    report = lint_paths([str(tmp_path)], base=str(tmp_path),
                        cache_dir=str(nested))
    assert report.cache_misses == 1
    assert nested.is_dir()


def test_entry_roundtrip_preserves_waiver_justifications(tmp_path):
    source = VIOLATION.replace(
        "return time.time()",
        "return time.time()  # repro: waive[DET-WALLCLOCK] -- unit fixture")
    _write(tmp_path, "a.py", source)
    cold = _lint(tmp_path)
    warm = _lint(tmp_path)
    assert warm.cache_hits == 1
    assert [f.justification for f in warm.waived] == \
        [f.justification for f in cold.waived]
    assert cold.waived and cold.waived[0].justification == "unit fixture"


def test_cache_api_misses_on_foreign_signature(tmp_path):
    path = _write(tmp_path, "a.py", CLEAN)
    first = LintCache(str(tmp_path / ".c"), "sig-one")
    first.put("a.py", str(path), CLEAN, [], [])
    assert first.get("a.py", str(path), CLEAN) is not None

    other = LintCache(str(tmp_path / ".c"), "sig-two")
    assert other.get("a.py", str(path), CLEAN) is None
    assert other.misses == 1


# ------------------------------------------- dedup + deterministic order


def _finding(path, line, rule, message="m"):
    return Finding(rule=rule, severity=Severity.ERROR, path=path,
                   line=line, message=message)


def test_finalize_dedupes_per_path_line_rule_and_sorts():
    report = LintReport(findings=[
        _finding("b.py", 2, "R-ONE"),
        _finding("a.py", 9, "R-TWO", "zz"),
        _finding("a.py", 9, "R-TWO", "aa"),   # same key: one survivor
        _finding("a.py", 9, "R-ONE"),
        _finding("a.py", 1, "R-TWO"),
    ])
    report.finalize()
    keys = [(f.path, f.line, f.rule) for f in report.findings]
    assert keys == [("a.py", 1, "R-TWO"), ("a.py", 9, "R-ONE"),
                    ("a.py", 9, "R-TWO"), ("b.py", 2, "R-ONE")]
    # The survivor of a duplicate key is the message-sorted first, not
    # whichever arrived first.
    assert report.findings[2].message == "aa"


def test_lint_paths_order_is_traversal_independent(tmp_path):
    _write(tmp_path, "zz.py", VIOLATION)
    _write(tmp_path, "aa.py", VIOLATION)
    sub = tmp_path / "pkg"
    sub.mkdir()
    _write(sub, "mid.py", VIOLATION)

    forward = lint_paths([str(tmp_path)], base=str(tmp_path))
    # Overlapping roots in reverse order: same files seen again, some
    # twice — the report must dedupe and come out identical.
    shuffled = lint_paths(
        [str(sub), str(tmp_path / "zz.py"), str(tmp_path)],
        base=str(tmp_path))
    assert shuffled.to_dict() == forward.to_dict()
    paths = [f.path for f in forward.findings]
    assert paths == sorted(paths)


def test_flow_pass_does_not_duplicate_parse_errors(tmp_path):
    _write(tmp_path, "bad.py", "def broken(:\n")
    report = lint_paths([str(tmp_path)], base=str(tmp_path), flow=True)
    parse = [f for f in report.active if f.rule == "PARSE-ERROR"]
    assert len(parse) == 1


# ------------------------------------------------- project-level cache


def _lint_project(tmp_path, **flags):
    return lint_paths([str(tmp_path)], base=str(tmp_path),
                      cache_dir=str(tmp_path / ".cache"),
                      flow=True, xbackend=True, par=True, **flags)


def test_project_passes_hit_the_whole_tree_cache_when_clean(tmp_path):
    _write(tmp_path, "a.py", CLEAN)
    _write(tmp_path, "b.py", CLEAN)
    cold = _lint_project(tmp_path)
    assert cold.project_cache_misses == 3 and cold.project_cache_hits == 0

    warm = _lint_project(tmp_path)
    # A clean re-run recomputes none of the three project-wide passes.
    assert warm.project_cache_hits == 3 and warm.project_cache_misses == 0
    assert warm.to_dict() == cold.to_dict()
    assert warm.par_report == cold.par_report
    assert warm.flow_graph.to_dict() == cold.flow_graph.to_dict()
    assert warm.flow_graph.type_edge_weights() == \
        cold.flow_graph.type_edge_weights()


def test_editing_any_file_invalidates_every_project_entry(tmp_path):
    # The tree signature covers every file's content: the project-wide
    # passes are interprocedural, so one edit anywhere must re-run all
    # of them — a stale whole-tree entry can never survive an edit.
    _write(tmp_path, "a.py", CLEAN)
    other = _write(tmp_path, "b.py", CLEAN)
    _lint_project(tmp_path)

    other.write_text(CLEAN + "\nY = 2\n")
    edited = _lint_project(tmp_path)
    assert edited.project_cache_misses == 3
    assert edited.project_cache_hits == 0


def test_project_warm_hit_reapplies_waivers_from_source(tmp_path):
    source = textwrap.dedent('''
        def boot():
            # repro: waive[PAR-ZERO-LOOKAHEAD] -- cache fixture
            return ClusterConfig(num_servers=1, network_latency=0.0)
    ''')
    _write(tmp_path, "a.py", source)
    cold = _lint_project(tmp_path)
    warm = _lint_project(tmp_path)
    assert warm.project_cache_hits == 3
    assert warm.ok
    waived = [f for f in warm.waived if f.rule == "PAR-ZERO-LOOKAHEAD"]
    assert len(waived) == 1
    assert waived[0].justification == "cache fixture"
    assert [f.render() for f in warm.findings] == \
        [f.render() for f in cold.findings]


def test_project_families_fill_in_incrementally(tmp_path):
    _write(tmp_path, "a.py", CLEAN)
    first = lint_paths([str(tmp_path)], base=str(tmp_path),
                       cache_dir=str(tmp_path / ".cache"), flow=True)
    assert first.project_cache_misses == 1

    # Adding passes reuses the flow entry and computes only the rest.
    both = _lint_project(tmp_path)
    assert both.project_cache_hits == 1
    assert both.project_cache_misses == 2
    again = _lint_project(tmp_path)
    assert again.project_cache_hits == 3


def test_corrupt_project_entry_misses_safely(tmp_path):
    _write(tmp_path, "a.py", CLEAN)
    cold = _lint_project(tmp_path)
    (tmp_path / ".cache" / "project.json").write_text("{not json")
    warm = _lint_project(tmp_path)
    assert warm.project_cache_misses == 3
    assert warm.to_dict() == cold.to_dict()
