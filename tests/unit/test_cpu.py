"""Unit tests for the simulated processor pool."""

import pytest

from repro.sim.cpu import CpuPool
from repro.sim.engine import Simulator


def make_pool(processors=2, switch_factor=0.0, dispatch_overhead=0.0):
    sim = Simulator()
    pool = CpuPool(sim, processors, switch_factor=switch_factor,
                   dispatch_overhead=dispatch_overhead)
    return sim, pool


def test_burst_runs_for_its_compute_time():
    sim, pool = make_pool(processors=1)
    done = []
    pool.submit(2.0, lambda b: done.append(sim.now))
    sim.run()
    assert done == [2.0]


def test_fifo_queueing_when_oversubscribed():
    sim, pool = make_pool(processors=1)
    finish = {}
    for name, compute in (("a", 1.0), ("b", 1.0), ("c", 1.0)):
        pool.submit(compute, lambda b, n=name: finish.setdefault(n, sim.now))
    sim.run()
    assert finish == {"a": 1.0, "b": 2.0, "c": 3.0}


def test_ready_time_recorded():
    sim, pool = make_pool(processors=1)
    bursts = []
    pool.submit(1.0, lambda b: bursts.append(b))
    pool.submit(1.0, lambda b: bursts.append(b))
    sim.run()
    assert bursts[0].ready_time == 0.0
    assert bursts[1].ready_time == pytest.approx(1.0)


def test_parallelism_up_to_processor_count():
    sim, pool = make_pool(processors=2)
    finish = []
    for _ in range(2):
        pool.submit(1.0, lambda b: finish.append(sim.now))
    sim.run()
    assert finish == [1.0, 1.0]


def test_inflation_from_registered_threads():
    sim, pool = make_pool(processors=2, switch_factor=0.1)
    pool.register_threads(12)  # 10 beyond the 2 cores -> 2x inflation
    assert pool.inflation() == pytest.approx(2.0)
    done = []
    pool.submit(1.0, lambda b: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(2.0)]


def test_no_inflation_at_or_under_core_count():
    sim, pool = make_pool(processors=4, switch_factor=0.1)
    pool.register_threads(4)
    assert pool.inflation() == 1.0


def test_dispatch_overhead_added():
    sim, pool = make_pool(processors=1, dispatch_overhead=0.5)
    done = []
    pool.submit(1.0, lambda b: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(1.5)]


def test_utilization_accounting():
    sim, pool = make_pool(processors=2)
    pool.submit(1.0, lambda b: None)
    pool.submit(1.0, lambda b: None)
    busy0, t0 = pool.busy_time, sim.now
    sim.run()
    sim._now = 2.0  # run() leaves now at last event (1.0); force a window
    assert pool.utilization(busy0, t0) == pytest.approx(2.0 / (2.0 * 2))


def test_zero_compute_burst_completes():
    sim, pool = make_pool(processors=1)
    done = []
    pool.submit(0.0, lambda b: done.append(sim.now))
    sim.run()
    assert done == [0.0]


def test_negative_compute_rejected():
    sim, pool = make_pool()
    with pytest.raises(ValueError):
        pool.submit(-1.0, lambda b: None)


def test_thread_registration_cannot_go_negative():
    sim, pool = make_pool()
    with pytest.raises(ValueError):
        pool.register_threads(-1)


def test_run_queue_length_and_cores_busy():
    sim, pool = make_pool(processors=1)
    pool.submit(1.0, lambda b: None)
    pool.submit(1.0, lambda b: None)
    pool.submit(1.0, lambda b: None)
    assert pool.cores_busy == 1
    assert pool.run_queue_length == 2
    sim.run()
    assert pool.cores_busy == 0
    assert pool.run_queue_length == 0


def test_callbacks_can_submit_more_bursts():
    sim, pool = make_pool(processors=1)
    finish = []

    def resubmit(burst):
        finish.append(sim.now)
        if len(finish) < 3:
            pool.submit(1.0, resubmit)

    pool.submit(1.0, resubmit)
    sim.run()
    assert finish == [1.0, 2.0, 3.0]
