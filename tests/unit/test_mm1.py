"""Unit tests for M/M/1 and M/M/c formulas."""

import pytest

from repro.queueing.mm1 import (
    mm1_mean_latency,
    mm1_mean_queue_length,
    mm1_mean_wait,
    mm1_percentile_latency,
    mm1_utilization,
    mmc_erlang_c,
    mmc_mean_latency,
)


def test_utilization():
    assert mm1_utilization(5.0, 10.0) == 0.5


def test_mean_queue_length_textbook_value():
    # rho = 0.8 -> L = 0.8 / 0.2 = 4
    assert mm1_mean_queue_length(8.0, 10.0) == pytest.approx(4.0)


def test_mean_latency_is_inverse_gap():
    assert mm1_mean_latency(8.0, 10.0) == pytest.approx(0.5)


def test_littles_law_consistency():
    lam, mu = 6.0, 10.0
    assert mm1_mean_queue_length(lam, mu) == pytest.approx(
        lam * mm1_mean_latency(lam, mu)
    )


def test_wait_plus_service_is_latency():
    lam, mu = 3.0, 10.0
    assert mm1_mean_wait(lam, mu) + 1.0 / mu == pytest.approx(
        mm1_mean_latency(lam, mu)
    )


def test_unstable_queue_rejected():
    with pytest.raises(ValueError):
        mm1_mean_latency(10.0, 10.0)
    with pytest.raises(ValueError):
        mm1_mean_latency(11.0, 10.0)


def test_nonpositive_service_rate_rejected():
    with pytest.raises(ValueError):
        mm1_utilization(1.0, 0.0)


def test_erlang_c_single_server_equals_rho():
    # For c=1, P(queue) = rho.
    assert mmc_erlang_c(4.0, 10.0, 1) == pytest.approx(0.4)


def test_mmc_reduces_to_mm1():
    lam, mu = 4.0, 10.0
    assert mmc_mean_latency(lam, mu, 1) == pytest.approx(mm1_mean_latency(lam, mu))


def test_mmc_more_servers_lower_latency():
    lam, mu = 15.0, 10.0
    t2 = mmc_mean_latency(lam, mu, 2)
    t4 = mmc_mean_latency(lam, mu, 4)
    assert t4 < t2


def test_mmc_unstable_rejected():
    with pytest.raises(ValueError):
        mmc_erlang_c(20.0, 10.0, 2)


def test_percentile_latency_median_below_mean():
    lam, mu = 8.0, 10.0
    median = mm1_percentile_latency(lam, mu, 0.5)
    assert median < mm1_mean_latency(lam, mu)
    p99 = mm1_percentile_latency(lam, mu, 0.99)
    assert p99 > mm1_mean_latency(lam, mu)


def test_percentile_requires_open_interval():
    with pytest.raises(ValueError):
        mm1_percentile_latency(1.0, 2.0, 1.0)
