"""Unit tests: balancing policies and the router/pool machinery."""

import pytest

from repro.actor.actor import Actor
from repro.actor.errors import ActorError
from repro.actor.ids import ActorRef
from repro.actor.runtime import ActorRuntime, ClusterConfig
from repro.pools import (
    ActorPool,
    DpaPolicy,
    LeastOutstandingPolicy,
    POLICIES,
    RoundRobinPolicy,
    make_policy,
)


# ----------------------------------------------------------------------
# Policies in isolation (plain objects, no runtime).
# ----------------------------------------------------------------------
def test_round_robin_cycles_within_limit():
    p = RoundRobinPolicy()
    picks = [p.choose([0] * 4, [0.0] * 4, 4) for _ in range(8)]
    assert picks == [0, 1, 2, 3, 0, 1, 2, 3]
    # Shrinking the limit confines the cycle.
    picks = [p.choose([0] * 4, [0.0] * 4, 2) for _ in range(4)]
    assert sorted(set(picks)) == [0, 1]


def test_least_outstanding_picks_min():
    p = LeastOutstandingPolicy()
    assert p.choose([3, 0, 2], [0.0] * 3, 3) == 1
    assert p.choose([3, 5, 2], [0.0] * 3, 3) == 2


def test_least_outstanding_rotates_ties():
    """An all-idle pool must spread like round-robin, not dogpile the
    lowest index (every router shard runs this policy concurrently)."""
    p = LeastOutstandingPolicy()
    picks = [p.choose([0, 0, 0, 0], [0.0] * 4, 4) for _ in range(8)]
    assert sorted(set(picks)) == [0, 1, 2, 3]


def test_dpa_grows_when_no_idle_replica():
    p = DpaPolicy(min_active=1)
    assert p.active == 1
    # Active replica 0 is busy -> the window widens.
    p.choose([1, 0, 0, 0], [0.0] * 4, 4)
    assert p.active == 2
    assert p.grow_steps == 1


def test_dpa_shrinks_when_idle():
    p = DpaPolicy(min_active=1)
    p.active = 3
    for _ in range(4):
        p.choose([0, 0, 0, 0], [0.0] * 4, 4)
    assert p.active == 1
    assert p.shrink_steps >= 2
    # Never below the floor.
    p.choose([0, 0, 0, 0], [0.0] * 4, 4)
    assert p.active == 1


def test_dpa_scores_outstanding_plus_loads():
    p = DpaPolicy(min_active=4)
    # Replica 1 idle by counts but its silo reports heavy contention.
    idx = p.choose([1, 0, 1, 1], [0.0, 9.0, 0.0, 0.0], 4)
    assert idx != 1


def test_dpa_outstanding_scaled_by_shard_count():
    """With S shards, this shard's in-flight slice is ~1/S of the global
    queue the loads signal reports — the score must compare like units."""
    p = DpaPolicy(min_active=2)
    p.bind(0, 4)
    # 2 own in-flight toward replica 0 ~ 8 global; worse than load 5.
    assert p.choose([2, 0], [0.0, 5.0], 2) == 1
    # A shard-count of 1 flips the comparison.
    q = DpaPolicy(min_active=2)
    q.bind(0, 1)
    assert q.choose([2, 0], [0.0, 5.0], 2) == 0


def test_dpa_offset_spreads_shards():
    """Shard windows start at s/S around the ring, so consolidated
    low-load traffic from different shards lands on different replicas."""
    a, b = DpaPolicy(), DpaPolicy()
    a.bind(0, 2)
    b.bind(1, 2)
    assert a.choose([0] * 8, [0.0] * 8, 8) == 0
    assert b.choose([0] * 8, [0.0] * 8, 8) == 4


def test_dpa_resize_clamps_active():
    p = DpaPolicy(min_active=1)
    p.active = 6
    p.resize(3)
    assert p.active == 3


def test_dpa_validation():
    with pytest.raises(ValueError):
        DpaPolicy(grow_at=0.5, shrink_at=0.5)
    with pytest.raises(ValueError):
        DpaPolicy(min_active=0)


def test_make_policy_registry():
    for name in ("round_robin", "least_outstanding", "dpa"):
        assert name in POLICIES
        assert make_policy(name).name == name
    with pytest.raises(ValueError):
        make_policy("nope")


# ----------------------------------------------------------------------
# Router + pool on a live runtime.
# ----------------------------------------------------------------------
class Doubler(Actor):
    COMPUTE = {"handle": 1e-5}

    def __init__(self):
        super().__init__()
        self.handled = 0

    def handle(self, payload):
        self.handled += 1
        return payload * 2


def make_runtime(servers=3, seed=0):
    return ActorRuntime(ClusterConfig(num_servers=servers, seed=seed))


def route_one(rt, pool, payload, shard=0):
    results = []
    rt.client_request(pool.router_refs[shard % pool.shards], "route", payload,
                      on_complete=lambda lat, res: results.append(res))
    rt.run(until=rt.sim.now + 2.0)
    assert results, "routed request never completed"
    return results[0]


def test_pool_routes_to_workers():
    rt = make_runtime()
    pool = ActorPool(rt, "double", Doubler, replicas=4).start()
    assert route_one(rt, pool, 21) == 42


def test_pool_deploys_replicas_round_robin_over_live_silos():
    rt = make_runtime(servers=3)
    pool = ActorPool(rt, "double", Doubler, replicas=6).start()
    locations = [rt.locate(ActorRef(pool.worker_type, i).id)
                 for i in range(6)]
    assert None not in locations
    per_silo = [locations.count(s) for s in range(3)]
    assert per_silo == [2, 2, 2]


def test_pool_shards_install_on_distinct_silos():
    rt = make_runtime(servers=3)
    pool = ActorPool(rt, "double", Doubler, replicas=3, policy="dpa",
                     shards=3).start()
    homes = {rt.locate(ref.id) for ref in pool.router_refs}
    assert homes == {0, 1, 2}
    # Each shard serves traffic independently.
    assert route_one(rt, pool, 1, shard=0) == 2
    assert route_one(rt, pool, 2, shard=1) == 4
    assert route_one(rt, pool, 3, shard=2) == 6


def test_pool_resize_grows_routing_window_and_deploys():
    rt = make_runtime()
    pool = ActorPool(rt, "double", Doubler, replicas=2).start()
    pool.resize(5)
    rt.run(until=rt.sim.now + 1.0)
    assert pool.replicas == 5
    assert pool.resizes == 1
    router = rt.silos[rt.locate(pool.router_ref.id)] \
        .activations[pool.router_ref.id].instance
    assert router.replicas == 5
    assert len(router.outstanding) == 5
    # The new replicas were pre-activated, not left to lazy placement.
    assert all(rt.locate(ActorRef(pool.worker_type, i).id) is not None
               for i in range(5))


def test_pool_resize_shrink_narrows_window_without_trimming_state():
    rt = make_runtime()
    pool = ActorPool(rt, "double", Doubler, replicas=4).start()
    pool.resize(2)
    rt.run(until=rt.sim.now + 1.0)
    router = rt.silos[rt.locate(pool.router_ref.id)] \
        .activations[pool.router_ref.id].instance
    assert router.replicas == 2
    assert len(router.outstanding) == 4  # in-flight slots survive a shrink
    assert route_one(rt, pool, 5) == 10


def test_unconfigured_router_raises():
    rt = make_runtime()
    rt.register_actor("bare.router",
                      __import__("repro.pools.router",
                                 fromlist=["RouterActor"]).RouterActor)
    results = []
    rt.client_request(rt.ref("bare.router", 0), "route", 1,
                      on_complete=lambda lat, res: results.append(res))
    rt.run(until=2.0)
    assert isinstance(results[0], ActorError)


def test_pool_guards():
    rt = make_runtime()
    with pytest.raises(ValueError):
        ActorPool(rt, "p0", Doubler, replicas=0)
    with pytest.raises(ValueError):
        ActorPool(rt, "p1", Doubler, replicas=2, shards=0)
    with pytest.raises(ValueError):
        # A shared mutable policy instance across shards is a footgun.
        ActorPool(rt, "p2", Doubler, replicas=2, shards=2,
                  policy=RoundRobinPolicy())
    pool = ActorPool(rt, "p3", Doubler, replicas=2).start()
    with pytest.raises(RuntimeError):
        pool.start()


def test_report_loop_feeds_router_loads():
    rt = make_runtime(servers=2)
    pool = ActorPool(rt, "double", Doubler, replicas=2, policy="dpa",
                     report_period=0.2).start()
    rt.run(until=1.0)
    router = rt.silos[rt.locate(pool.router_ref.id)] \
        .activations[pool.router_ref.id].instance
    assert len(router.loads) == 2
    # Loads are contention-based: idle cluster reports ~zero, but the
    # reports have actually arrived (no exception, fresh list).
    assert all(load >= 0.0 for load in router.loads)
