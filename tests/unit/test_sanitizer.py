"""The runtime race/determinism sanitizer.

Covers the acceptance-criteria scenarios: a deliberately injected
same-instant cross-activation write/write race is caught, salted-hash
iteration-order dependence is caught, and instrumentation leaves no
trace once disarmed.
"""

import random

import pytest

from repro.actor import ids
from repro.actor.actor import Actor
from repro.actor.ids import ActorId
from repro.analysis.sanitizer import Sanitizer, current, detect_order_dependence


class Scoreboard(Actor):
    COMPUTE = {"bump": 1e-4}

    def bump(self):
        self.count = getattr(self, "count", 0) + 1
        return self.count


def _bound(key: int = 0) -> Scoreboard:
    actor = Scoreboard()
    actor._bind(ActorId("scoreboard", key), server_id=0)
    return actor


# ----------------------------------------------------------------------
# Conflict detection
# ----------------------------------------------------------------------
def test_same_instant_cross_activation_write_write_race_is_caught():
    san = Sanitizer()
    with san.armed():
        victim = _bound()
        # Two activations write the same field with no sim attached, so
        # both land at logical time 0.0 — the injected race.
        san.push_context("activation:scoreboard/0")
        victim.score = 1
        san.pop_context()
        san.push_context("activation:game/7")
        victim.score = 2
        san.pop_context()
    (conflict,) = san.conflicts()
    assert conflict.owner == ActorId("scoreboard", 0)
    assert conflict.field == "score"
    accessors = {a for a, _ in conflict.accesses}
    assert accessors == {"activation:scoreboard/0", "activation:game/7"}
    assert not san.report()["ok"]
    assert "scoreboard" in conflict.render()


def test_write_read_across_contexts_is_a_conflict():
    san = Sanitizer()
    with san.armed():
        victim = _bound()
        san.push_context("activation:scoreboard/0")
        victim.score = 1
        san.pop_context()
        san.push_context("stage:worker")
        _ = victim.score
        san.pop_context()
    (conflict,) = san.conflicts()
    assert dict(conflict.accesses)["stage:worker"] == "read"


def test_single_context_accesses_are_not_conflicts():
    san = Sanitizer()
    with san.armed():
        actor = _bound()
        san.push_context("activation:scoreboard/0")
        actor.score = 1
        actor.score = actor.score + 1
        san.pop_context()
    assert san.conflicts() == []
    assert san.report()["ok"]


def test_unbound_actor_state_is_ignored():
    san = Sanitizer()
    with san.armed():
        loose = Scoreboard()  # never bound: _id is None
        loose.score = 1
        loose.score = 2
    assert san.accesses == 0


def test_rng_same_instant_draws_are_hazards_not_failures():
    san = Sanitizer()
    with san.armed():
        rng = san.wrap_rng("network.jitter", random.Random(1))
        san.push_context("stage:client_sender")
        rng.random()
        san.pop_context()
        san.push_context("stage:server_sender")
        rng.random()
        san.pop_context()
    report = san.report()
    assert report["ok"] and report["conflicts"] == []
    assert len(report["rng_hazards"]) == 1
    assert report["rng_hazards"][0]["owner"] == "rng:network.jitter"
    assert report["rng_draws"] == {"network.jitter": 2}


def test_inflight_eviction_conflict_cites_the_overload_bench():
    san = Sanitizer()
    san.record_inflight_eviction(ActorId("counter", 0), age=0.25)
    (conflict,) = san.conflicts()
    assert "benchmarks/test_overload_shedding.py" in conflict.note
    assert conflict.field == "admission-slot"
    assert not san.report()["ok"]


# ----------------------------------------------------------------------
# Arming discipline / zero-trace disarm
# ----------------------------------------------------------------------
def test_arm_is_exclusive_and_disarm_clears_the_hooks():
    base_setattr = Actor.__dict__.get("__setattr__")
    san = Sanitizer()
    with san.armed():
        assert current() is san
        with pytest.raises(RuntimeError):
            Sanitizer().arm()
        assert Actor.__dict__.get("__setattr__") is not base_setattr
    assert current() is None
    assert Actor.__dict__.get("__setattr__") is base_setattr


def test_disarmed_actor_writes_are_unrecorded():
    san = Sanitizer()
    with san.armed():
        pass
    actor = _bound()
    actor.score = 1
    assert san.accesses == 0


def test_report_schema():
    report = Sanitizer().report()
    assert set(report) == {"ok", "events_seen", "accesses", "distinct_sites",
                           "rng_draws", "conflicts", "rng_hazards",
                           "payload_events", "window_events"}
    assert report["ok"] is True
    assert report["payload_events"] == []
    assert report["window_events"] == []


def test_payload_events_are_recorded_but_do_not_fail_the_report():
    # The XB cross-check consumes these; whether they are *covered* is
    # its verdict to make, so the sanitizer only records.
    san = Sanitizer()
    san.record_payload_alias("RosterActor", "broadcast", "self.members")
    san.record_unpicklable_payload("StreamActor", "publish", "generator")
    report = san.report()
    assert report["ok"] is True
    kinds = [(e["kind"], e["sender"], e["method"])
             for e in report["payload_events"]]
    assert kinds == [("alias", "RosterActor", "broadcast"),
                     ("unpicklable", "StreamActor", "publish")]


# ----------------------------------------------------------------------
# Salted-hash order-dependence probe
# ----------------------------------------------------------------------
def test_order_probe_flags_set_iteration_of_actor_ids():
    def unordered():
        bucket = {ActorId("player", i) for i in range(32)}
        return tuple(bucket)

    probe = detect_order_dependence(unordered)
    assert probe.order_dependent
    assert probe.divergent_salts
    assert probe.to_dict()["order_dependent"] is True
    # The probe always restores unsalted hashing.
    assert ids._HASH_SALT == 0


def test_order_probe_clean_on_sorted_iteration():
    def ordered():
        bucket = {ActorId("player", i) for i in range(32)}
        return tuple(sorted(bucket))

    probe = detect_order_dependence(ordered)
    assert not probe.order_dependent
    assert probe.baseline == ordered()
    assert len(probe.salts_tried) == 2


def test_salted_hash_is_identity_preserving():
    ids.set_hash_salt(0x9E3779B9)
    try:
        a, b = ActorId("game", 3), ActorId("game", 3)
        assert hash(a) == hash(b) and a == b
        assert len({a, b}) == 1
    finally:
        ids.set_hash_salt(0)
    # Salt 0 is bit-identical to the plain (type, key) tuple hash.
    assert hash(ActorId("game", 3)) == hash(("game", 3))
