"""Unit tests for the Ja-Be-Ja comparator."""

import random
from collections import Counter

from repro.graph.generators import clustered_graph, ring_of_cliques
from repro.graph.jabeja import jabeja_partition
from repro.graph.quality import cut_cost


def test_balance_preserved_exactly():
    g = clustered_graph(8, 4, inter_edges_per_cluster=1, rng=random.Random(0))
    result = jabeja_partition(g, 4, rounds=20, rng=random.Random(1))
    sizes = Counter(result.assignment.values())
    assert max(sizes.values()) - min(sizes.values()) <= 1  # round-robin start


def test_respects_initial_color_multiset():
    g = ring_of_cliques(4, 4)
    initial = {v: (0 if v < 8 else 1) for v in g.vertices()}
    result = jabeja_partition(g, 2, rounds=15, rng=random.Random(2),
                              initial=initial)
    sizes = Counter(result.assignment.values())
    assert sizes[0] == 8 and sizes[1] == 8


def test_cut_improves_over_random_start():
    g = clustered_graph(12, 6, intra_weight=10.0, inter_edges_per_cluster=1,
                        rng=random.Random(3))
    rng = random.Random(4)
    vertices = list(g.vertices())
    rng.shuffle(vertices)
    initial = {v: i % 4 for i, v in enumerate(vertices)}
    before = cut_cost(g, initial)
    result = jabeja_partition(g, 4, rounds=40, rng=random.Random(5),
                              initial=initial)
    after = cut_cost(g, result.assignment)
    assert after < 0.6 * before
    assert result.swaps > 0


def test_swap_count_reported():
    g = ring_of_cliques(4, 4)
    result = jabeja_partition(g, 2, rounds=10, rng=random.Random(6))
    assert result.rounds == 10
    assert result.swaps >= 0


def test_zero_rounds_returns_initial():
    g = ring_of_cliques(4, 4)
    initial = {v: v % 2 for v in g.vertices()}
    result = jabeja_partition(g, 2, rounds=0, initial=initial)
    assert result.assignment == initial
    assert result.swaps == 0
