"""Unit tests for synthetic graph generators."""

import random

import pytest

from repro.graph.generators import (
    clustered_graph,
    grid_graph,
    power_law_graph,
    random_graph,
    ring_of_cliques,
)


def test_clustered_hub_and_spoke_structure():
    g = clustered_graph(4, 8, intra_weight=10.0, inter_edges_per_cluster=0)
    assert g.num_vertices == 32
    # hub-and-spoke: 7 spokes per cluster
    assert g.num_edges == 4 * 7
    hub = 0
    assert g.degree(hub) == 70.0


def test_clustered_clique_mode():
    g = clustered_graph(2, 4, intra_weight=1.0, inter_edges_per_cluster=0,
                        hub_and_spoke=False)
    assert g.num_edges == 2 * 6  # C(4,2) per cluster


def test_clustered_inter_edges_connect_different_clusters():
    rng = random.Random(3)
    g = clustered_graph(5, 4, inter_edges_per_cluster=2, inter_weight=0.5, rng=rng)
    inter = [
        (u, v, w) for u, v, w in g.edges() if u // 4 != v // 4
    ]
    assert len(inter) >= 5  # some may collide/accumulate, but most exist
    assert all(w >= 0.5 for _, _, w in inter)


def test_ring_of_cliques_counts():
    g = ring_of_cliques(4, 5, bridge_weight=1.0, clique_weight=5.0)
    assert g.num_vertices == 20
    assert g.num_edges == 4 * 10 + 4  # C(5,2) per clique + 4 bridges


def test_random_graph_edge_count_and_weights():
    g = random_graph(100, mean_degree=6.0, weight_range=(2.0, 3.0),
                     rng=random.Random(1))
    assert g.num_vertices == 100
    assert g.num_edges == 300
    assert all(2.0 <= w <= 3.0 for _, _, w in g.edges())


def test_power_law_graph_has_hubs():
    g = power_law_graph(500, attach=2, rng=random.Random(2))
    assert g.num_vertices == 500
    degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
    # preferential attachment: the top hub dwarfs the median
    assert degrees[0] > 5 * degrees[len(degrees) // 2]


def test_grid_graph_structure():
    g = grid_graph(3, 4)
    assert g.num_vertices == 12
    # edges: 3*(4-1) horizontal + (3-1)*4 vertical
    assert g.num_edges == 9 + 8
    corner_degree = g.degree(0)
    assert corner_degree == 2.0


def test_generator_validation():
    with pytest.raises(ValueError):
        clustered_graph(0, 4)
    with pytest.raises(ValueError):
        ring_of_cliques(1, 5)
    with pytest.raises(ValueError):
        random_graph(1)
    with pytest.raises(ValueError):
        power_law_graph(2, attach=2)
    with pytest.raises(ValueError):
        grid_graph(0, 3)


def test_generators_deterministic_with_seeded_rng():
    a = random_graph(50, rng=random.Random(5))
    b = random_graph(50, rng=random.Random(5))
    assert sorted(a.edges()) == sorted(b.edges())
