"""Unit tests for placement policies."""

from collections import Counter

from repro.actor.ids import ActorId
from repro.actor.placement import (
    HashPlacement,
    PreferLocalPlacement,
    RandomPlacement,
    RoundRobinPlacement,
)
from repro.sim.rng import RngRegistry


def test_random_placement_spreads_load():
    policy = RandomPlacement(RngRegistry(0))
    counts = Counter(
        policy.choose(ActorId("a", i), calling_server=0, num_servers=4)
        for i in range(4000)
    )
    assert set(counts) == {0, 1, 2, 3}
    assert max(counts.values()) < 1.2 * min(counts.values())


def test_random_placement_deterministic_per_seed():
    a = RandomPlacement(RngRegistry(7))
    b = RandomPlacement(RngRegistry(7))
    ids = [ActorId("a", i) for i in range(50)]
    assert [a.choose(i, 0, 8) for i in ids] == [b.choose(i, 0, 8) for i in ids]


def test_hash_placement_stable_and_independent_of_caller():
    policy = HashPlacement()
    aid = ActorId("game", "room-42")
    first = policy.choose(aid, calling_server=0, num_servers=5)
    assert all(
        policy.choose(aid, calling_server=c, num_servers=5) == first
        for c in range(5)
    )


def test_hash_placement_spreads_keys():
    policy = HashPlacement()
    counts = Counter(
        policy.choose(ActorId("a", i), 0, 4) for i in range(4000)
    )
    assert set(counts) == {0, 1, 2, 3}
    assert max(counts.values()) < 1.3 * min(counts.values())


def test_prefer_local_returns_caller():
    policy = PreferLocalPlacement()
    assert policy.choose(ActorId("a", 1), calling_server=3, num_servers=8) == 3


def test_round_robin_rotates():
    policy = RoundRobinPlacement()
    picks = [policy.choose(ActorId("a", i), 0, 3) for i in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]
