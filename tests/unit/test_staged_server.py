"""Unit tests for the StagedServer chassis."""

import pytest

from repro.seda.server import StagedServer
from repro.sim.engine import Simulator


def make_server(**kw):
    sim = Simulator()
    server = StagedServer(sim, processors=4, switch_factor=0.0,
                          dispatch_overhead=0.0, **kw)
    return sim, server


def test_add_and_fetch_stages():
    sim, server = make_server()
    server.add_stage("a", threads=2)
    server.add_stage("b", threads=3)
    assert server.stage("a").threads == 2
    assert server.thread_allocation() == {"a": 2, "b": 3}
    assert server.total_threads == 5


def test_duplicate_stage_rejected():
    sim, server = make_server()
    server.add_stage("a")
    with pytest.raises(ValueError):
        server.add_stage("a")


def test_apply_allocation_partial():
    sim, server = make_server()
    server.add_stage("a", threads=1)
    server.add_stage("b", threads=1)
    server.apply_allocation({"a": 4})
    assert server.thread_allocation() == {"a": 4, "b": 1}


def test_stages_share_one_cpu_pool():
    sim, server = make_server()
    a = server.add_stage("a", threads=4)
    b = server.add_stage("b", threads=4)
    assert a.cpu is b.cpu is server.cpu
    assert server.cpu.registered_threads == 8


def test_window_sampling_diffs_counters():
    sim, server = make_server()
    stage = server.add_stage("a", threads=1)
    server.begin_window()
    stage.submit(1.0, lambda ev: None)
    sim.run()
    sim._now = 2.0
    windows = server.end_window()
    assert windows["a"].completions == 1
    assert windows["a"].arrivals == 1
    # The window re-opens automatically.
    windows2 = server.end_window()
    assert windows2["a"].completions == 0


def test_cpu_utilization_window():
    sim, server = make_server()
    stage = server.add_stage("a", threads=1)
    server.begin_window()
    stage.submit(2.0, lambda ev: None)
    sim.run()
    # 2 busy core-seconds over 2 seconds on 4 cores.
    assert server.cpu_utilization_window() == pytest.approx(0.25)
