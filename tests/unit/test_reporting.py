"""Unit tests for the bench table/heatmap renderers."""

from repro.bench.reporting import banner, render_heatmap, render_table


def test_banner_contains_title():
    text = banner("Hello")
    assert "Hello" in text
    assert "=" in text


def test_render_table_alignment_and_content():
    text = render_table(
        ["name", "value"],
        [["alpha", 1.5], ["beta", 22.25]],
        title="T",
    )
    lines = text.splitlines()
    assert "T" in text
    assert any("alpha" in line and "1.50" in line for line in lines)
    assert any("beta" in line and "22.25" in line for line in lines)
    # header separator present
    assert any(set(line) <= {"-", "+"} for line in lines)


def test_render_table_floatfmt():
    text = render_table(["x"], [[3.14159]], floatfmt=".3f")
    assert "3.142" in text


def test_render_table_mixed_types():
    text = render_table(["a", "b"], [["s", 7], [1.0, "t"]])
    assert "s" in text and "7" in text and "t" in text


def test_render_table_empty_rows():
    text = render_table(["only", "headers"], [])
    assert "only" in text and "headers" in text


def test_render_heatmap_layout():
    text = render_heatmap(
        [2, 3], ["a", "b"], [[1.0, 2.0], [3.0, 4.5]],
        title="H", row_title="rows", col_title="cols",
    )
    assert "H" in text
    assert "rows" in text and "cols" in text
    lines = text.splitlines()
    assert any(line.strip().startswith("2") for line in lines)
    assert "4.5" in text


def test_render_heatmap_wide_values():
    text = render_heatmap([1], [1], [[123456.789]], floatfmt=".2f")
    assert "123456.79" in text
