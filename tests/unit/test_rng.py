"""Unit tests for deterministic RNG substreams."""

import pytest

from repro.sim.rng import RngRegistry, bounded_pareto, exponential


def test_same_name_same_stream_object():
    reg = RngRegistry(1)
    assert reg.stream("a") is reg.stream("a")


def test_streams_are_deterministic_across_registries():
    a = RngRegistry(42).stream("workload")
    b = RngRegistry(42).stream("workload")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_give_different_sequences():
    reg = RngRegistry(42)
    xs = [reg.stream("x").random() for _ in range(5)]
    ys = [reg.stream("y").random() for _ in range(5)]
    assert xs != ys


def test_different_seeds_give_different_sequences():
    a = RngRegistry(1).stream("s")
    b = RngRegistry(2).stream("s")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_spawn_is_independent_of_parent_draws():
    parent = RngRegistry(7)
    child_before = parent.spawn("c").stream("s").random()
    parent.stream("s").random()  # consume from the parent
    child_after = RngRegistry(7).spawn("c").stream("s").random()
    assert child_before == child_after


def test_exponential_positive_and_mean_reasonable():
    rng = RngRegistry(3).stream("exp")
    samples = [exponential(rng, 10.0) for _ in range(20_000)]
    assert all(s >= 0 for s in samples)
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(0.1, rel=0.05)


def test_exponential_rejects_bad_rate():
    rng = RngRegistry(0).stream("exp")
    with pytest.raises(ValueError):
        exponential(rng, 0.0)


def test_bounded_pareto_within_bounds():
    rng = RngRegistry(5).stream("pareto")
    for _ in range(5_000):
        v = bounded_pareto(rng, alpha=1.3, lo=128.0, hi=8192.0)
        assert 128.0 <= v <= 8192.0


def test_bounded_pareto_heavy_tail():
    rng = RngRegistry(5).stream("pareto")
    samples = [bounded_pareto(rng, 1.3, 1.0, 1000.0) for _ in range(20_000)]
    mean = sum(samples) / len(samples)
    median = sorted(samples)[len(samples) // 2]
    assert mean > 2 * median  # heavy right tail


def test_bounded_pareto_rejects_bad_bounds():
    rng = RngRegistry(0).stream("p")
    with pytest.raises(ValueError):
        bounded_pareto(rng, 1.3, 10.0, 5.0)
