"""Unit tests for the standalone SEDA pipeline emulator."""

import pytest

from repro.queueing.mm1 import mm1_mean_latency
from repro.seda.emulator import SedaEmulator, StageProfile
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


def test_requests_traverse_all_stages():
    sim = Simulator()
    emu = SedaEmulator(
        sim,
        [StageProfile("a", 0.001), StageProfile("b", 0.001)],
        arrival_rate=100.0,
        processors=4,
        deterministic_service=True,
    )
    emu.start()
    sim.run(until=5.0)
    emu.stop()
    assert emu.completed > 300
    assert emu.latency.count == emu.completed
    # Every completion traversed both stages.
    assert emu.server.stage("a").stats.completions >= emu.completed
    assert emu.server.stage("b").stats.completions >= emu.completed


def test_latency_at_least_total_service():
    sim = Simulator()
    emu = SedaEmulator(
        sim,
        [StageProfile("a", 0.002), StageProfile("b", 0.003)],
        arrival_rate=10.0,
        processors=8,
        deterministic_service=True,
    )
    emu.start()
    sim.run(until=10.0)
    assert emu.latency.count > 0
    assert emu.latency.percentile(0) >= 0.005 - 1e-12


def test_lightly_loaded_latency_close_to_mm1():
    """Exponential service, one thread, low rate: the single stage is an
    M/M/1 queue and simulated mean latency should approach theory."""
    sim = Simulator()
    rate, service = 50.0, 0.01  # rho = 0.5
    emu = SedaEmulator(
        sim,
        [StageProfile("only", service, threads=1)],
        arrival_rate=rate,
        processors=8,
        rng=RngRegistry(11),
    )
    emu.start()
    sim.run(until=400.0)
    theory = mm1_mean_latency(rate, 1.0 / service)
    assert emu.latency.mean == pytest.approx(theory, rel=0.15)


def test_blocking_stage_accepts_wait():
    sim = Simulator()
    emu = SedaEmulator(
        sim,
        [StageProfile("io", compute=0.001, wait=0.01, threads=4)],
        arrival_rate=50.0,
        processors=2,
        deterministic_service=True,
    )
    emu.start()
    sim.run(until=5.0)
    assert emu.completed > 100
    assert emu.latency.percentile(0) >= 0.011 - 1e-12


def test_queue_lengths_and_allocation_views():
    sim = Simulator()
    emu = SedaEmulator(
        sim,
        [StageProfile("a", 0.001, threads=2), StageProfile("b", 0.001, threads=3)],
        arrival_rate=10.0,
    )
    assert emu.queue_lengths() == {"a": 0, "b": 0}
    assert emu.thread_allocation() == {"a": 2, "b": 3}


def test_stop_halts_arrivals():
    sim = Simulator()
    emu = SedaEmulator(
        sim, [StageProfile("a", 0.001)], arrival_rate=1000.0,
        deterministic_service=True,
    )
    emu.start()
    sim.run(until=1.0)
    emu.stop()
    done_at_stop = emu.completed
    sim.run(until=2.0)
    # Only in-flight work drains after stop.
    assert emu.completed - done_at_stop < 20


def test_empty_profiles_rejected():
    with pytest.raises(ValueError):
        SedaEmulator(Simulator(), [], arrival_rate=1.0)
