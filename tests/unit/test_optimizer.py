"""Unit tests for Theorem 2's solver and its numeric/integer companions."""

import math

import pytest

from repro.core.threads.model import ThreadAllocationProblem
from repro.core.threads.optimizer import (
    grid_search,
    integerize,
    solve_closed_form,
    solve_fractional,
    solve_integer,
    solve_numeric,
)
from repro.queueing.jackson import StageLoad


def make_problem(loads, p=8, eta=1e-3):
    return ThreadAllocationProblem(stages=loads, processors=p, eta=eta)


def test_closed_form_matches_theorem_formula():
    loads = [StageLoad(100.0, 1000.0), StageLoad(300.0, 500.0)]
    prob = make_problem(loads, eta=1e-3)
    assert prob.eta >= prob.zeta()
    t = solve_closed_form(prob)
    lam_tot = 400.0
    for ti, s in zip(t, loads):
        lam, sr = s.arrival_rate, s.service_rate_per_thread
        expected = lam / sr + math.sqrt(lam / (lam_tot * 1e-3 * sr))
        assert ti == pytest.approx(expected)


def test_closed_form_none_when_eta_below_zeta():
    loads = [StageLoad(700.0, 100.0)]  # very loaded: zeta is large
    prob = make_problem(loads, p=8, eta=1e-9)
    assert prob.eta < prob.zeta()
    assert solve_closed_form(prob) is None


def test_closed_form_none_when_infeasible():
    prob = make_problem([StageLoad(900.0, 100.0)], p=8)
    assert solve_closed_form(prob) is None


def test_closed_form_is_stationary_point():
    """Numerically perturb each coordinate: objective must not improve."""
    loads = [StageLoad(200.0, 800.0), StageLoad(100.0, 400.0),
             StageLoad(50.0, 1200.0)]
    prob = make_problem(loads, eta=5e-4)
    t = solve_closed_form(prob)
    base = prob.objective(t)
    for i in range(len(t)):
        for eps in (-1e-4, 1e-4):
            perturbed = list(t)
            perturbed[i] += eps
            assert prob.objective(perturbed) >= base - 1e-12


def test_numeric_agrees_with_closed_form_when_unconstrained():
    loads = [StageLoad(100.0, 1000.0), StageLoad(300.0, 500.0)]
    prob = make_problem(loads, eta=1e-3)
    closed = solve_closed_form(prob)
    numeric = solve_numeric(prob)
    assert numeric is not None
    for a, b in zip(closed, numeric):
        assert a == pytest.approx(b, rel=1e-3)


def test_numeric_respects_cpu_constraint_when_binding():
    # eta tiny -> unconstrained solution wants many threads -> cap binds.
    loads = [StageLoad(400.0, 100.0), StageLoad(200.0, 100.0)]
    prob = make_problem(loads, p=8, eta=1e-8)
    assert solve_closed_form(prob) is None
    t = solve_numeric(prob)
    assert t is not None
    assert prob.satisfies_cpu_constraint(t, tol=1e-6)
    used = sum(ti * s.cpu_fraction for ti, s in zip(t, prob.stages))
    assert used == pytest.approx(8.0, rel=1e-3)  # the cap binds


def test_solve_fractional_dispatches():
    loads = [StageLoad(100.0, 1000.0)]
    assert solve_fractional(make_problem(loads, eta=1e-3)) is not None
    assert solve_fractional(make_problem([StageLoad(900.0, 100.0)], p=8)) is None


def test_integerize_feasible_and_near_grid_optimum():
    loads = [StageLoad(500.0, 400.0), StageLoad(300.0, 300.0),
             StageLoad(200.0, 600.0)]
    prob = make_problem(loads, p=8, eta=1e-3)
    integral = solve_integer(prob)
    assert integral is not None
    assert all(t >= 1 for t in integral)
    assert prob.satisfies_cpu_constraint(integral)
    best, best_obj = grid_search(prob, max_threads=6)
    assert prob.objective(integral) <= best_obj * 1.05


def test_integerize_bumps_unstable_floors():
    # fractional 1.2 with lambda/s = 1.1: floor(1.2)=1 is unstable ->
    # must pick 2.
    loads = [StageLoad(110.0, 100.0)]
    prob = make_problem(loads, p=8, eta=1e-3)
    integral = integerize(prob, [1.2])
    assert integral == [2]


def test_grid_search_raises_without_feasible_point():
    loads = [StageLoad(500.0, 100.0)]  # needs >5 threads of CPU 1.0 each
    prob = make_problem(loads, p=2, eta=1e-3)
    with pytest.raises(ValueError):
        grid_search(prob, max_threads=8)


def test_idle_stage_gets_zero_fractional_then_minimum_integer():
    loads = [StageLoad(0.0, 1000.0), StageLoad(100.0, 1000.0)]
    prob = make_problem(loads, eta=1e-3)
    frac = solve_closed_form(prob)
    assert frac[0] == 0.0
    integral = integerize(prob, frac)
    assert integral[0] == 1  # floor of one thread per stage


def test_blocking_stage_gets_more_threads_than_cpu_equivalent():
    """§5.2's point: same arrival rate and compute, but one stage waits on
    sync I/O (lower s, lower beta) -> it needs more threads."""
    pure = StageLoad(100.0, 1000.0, cpu_fraction=1.0)      # x = 1ms
    blocking = StageLoad(100.0, 200.0, cpu_fraction=0.2)   # x=1ms, w=4ms
    prob = make_problem([pure, blocking], eta=1e-3)
    t = solve_fractional(prob)
    assert t[1] > t[0]
