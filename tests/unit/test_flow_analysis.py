"""Unit tests for the interprocedural flow pass: the project index,
ActorRef provenance, the interaction graph fixpoint, and each FLOW
rule's fire/stay-silent contract on minimal synthetic modules."""

import textwrap

from repro.analysis.flow import (
    all_flow_rules,
    analyze_files,
    build_graph,
    build_index,
)
from repro.analysis.flow.rules import (
    FLOW_BLOCKING_TRANSITIVE,
    FLOW_CALL_CYCLE,
    FLOW_MIGRATION_UNSAFE,
    FLOW_RETRY_NONIDEMPOTENT,
    FLOW_UNKNOWN_METHOD,
)

#: Stand-ins every snippet shares: the index keys off the names, so
#: in-file definitions behave like the real substrate.
PRELUDE = '''
class Actor:
    pass


class ActorRef:
    def __init__(self, actor_type, key):
        self.actor_type = actor_type
        self.key = key
'''


def _files(source, path="mod.py"):
    return [(path, PRELUDE + textwrap.dedent(source))]


def _analyze(source, path="mod.py"):
    return analyze_files(_files(source, path))


def _rules_fired(findings):
    return {f.rule for f in findings}


# ---------------------------------------------------------------- index


def test_registrations_resolve_class_constants_and_direct_names():
    index = build_index(_files('''
        class PingActor(Actor):
            TYPE = "ping"
            def ping(self, n):
                return n

        class EchoActor(Actor):
            def echo(self):
                return 1

        def wire(runtime):
            runtime.register_actor(PingActor.TYPE, PingActor)
            runtime.register_actor("echo", EchoActor)
    '''))
    assert [c.name for c in index.classes_for_type("ping")] == ["PingActor"]
    assert [c.name for c in index.classes_for_type("echo")] == ["EchoActor"]


def test_registration_through_local_conditional_binding():
    # The heartbeat workload registers `cls = A if flag else B`; both
    # candidates must be associated with the type.
    index = build_index(_files('''
        class FastActor(Actor):
            def tick(self):
                return 1

        class SlowActor(Actor):
            def tick(self):
                return 2

        def wire(runtime, slow):
            cls = SlowActor if slow else FastActor
            runtime.register_actor("ticker", cls)
    '''))
    names = {c.name for c in index.classes_for_type("ticker")}
    assert names == {"FastActor", "SlowActor"}


def test_resolve_method_walks_base_classes():
    index = build_index(_files('''
        class BaseActor(Actor):
            def shared(self, a, b):
                return a + b

        class ChildActor(BaseActor):
            def own(self):
                return 0
    '''))
    (cls,) = [c for c in index.actor_classes() if c.name == "ChildActor"]
    method, certain = index.resolve_method(cls, "shared")
    assert certain and method is not None and method.min_pos == 2
    missing, certain = index.resolve_method(cls, "nonesuch")
    assert missing is None and certain


def test_blocking_closure_is_transitive():
    index = build_index(_files('''
        import time

        def inner():
            time.sleep(0.1)

        def outer():
            inner()

        def clean():
            return 1
    '''))
    closure = index.blocking_closure()
    assert closure["mod.inner"][-1] == "time.sleep"
    assert closure["mod.outer"][-1] == "time.sleep"
    assert "mod.clean" not in closure


# ----------------------------------------------- provenance + the graph


def test_ref_provenance_through_params_fields_and_loops():
    # A ref enters via client_request arg, lands in a field through
    # .append, and is used from a loop in another method: the edge only
    # exists if the interprocedural fixpoint threads all three hops.
    _, graph, findings = _analyze('''
        class GameActor(Actor):
            def __init__(self):
                self.players = []

            def admit(self, ref):
                self.players.append(ref)

            def start(self):
                for p in self.players:
                    yield Call(p, "join", 1)

        class PlayerActor(Actor):
            def join(self, n):
                return n

        def wire(runtime):
            runtime.register_actor("game", GameActor)
            runtime.register_actor("player", PlayerActor)

        def drive(runtime):
            runtime.client_request(ActorRef("game", 0), "admit",
                                   ActorRef("player", 1), idempotent=False)
    ''')
    edges = {(e.caller_type, e.caller_method, e.target_type,
              e.target_method, e.kind) for e in graph.actor_edges()}
    assert ("game", "start", "player", "join", "call") in edges
    assert ("game", "player") in graph.type_edge_weights()
    assert not _rules_fired(findings)


def test_comprehension_targets_do_not_leak_into_outer_scope():
    # The comprehension target reuses the name `r`; its binding must
    # not pollute the outer `r` (a game ref), or the join() site would
    # look like it also targets 'room' and fire FLOW-UNKNOWN-METHOD.
    _, graph, findings = _analyze('''
        class GameActor(Actor):
            def join(self, n):
                return n

        class RoomActor(Actor):
            def topic(self):
                return "t"

        def wire(runtime):
            runtime.register_actor("game", GameActor)
            runtime.register_actor("room", RoomActor)

        def drive(runtime):
            r = ActorRef("game", 0)
            rooms = [ActorRef("room", r2) for r2 in range(3)]
            names = {r2: "x" for r2 in rooms}
            yield Call(r, "join", 1)
    ''')
    (site,) = [s for s in graph.sites if s.method == "join"]
    assert site.target_types == frozenset({"game"})
    assert FLOW_UNKNOWN_METHOD not in _rules_fired(findings)


def test_graph_export_matches_comm_graph_edge_format():
    _, graph, _ = _analyze('''
        class AActor(Actor):
            def go(self):
                yield Call(ActorRef("b", 0), "recv", 1)

        class BActor(Actor):
            def recv(self, n):
                return n

        def wire(runtime):
            runtime.register_actor("a", AActor)
            runtime.register_actor("b", BActor)
    ''')
    doc = graph.to_dict()
    assert doc["format"] == "comm_graph/edges"
    assert set(doc["vertices"]) >= {"a", "b"}
    assert [e[:2] for e in doc["edges"]] == [["a", "b"]]
    (edge,) = doc["directed_edges"]
    assert edge["caller"] == "a" and edge["target"] == "b"
    assert edge["kind"] == "call" and edge["target_method"] == "recv"


# ----------------------------------------------------------- the rules


def test_unknown_method_fires_on_typo_and_bad_arity():
    _, _, findings = _analyze('''
        class TargetActor(Actor):
            def hit(self, n):
                return n

        def wire(runtime):
            runtime.register_actor("target", TargetActor)

        class SourceActor(Actor):
            def a(self):
                yield Call(ActorRef("target", 0), "hitt", 1)

            def b(self):
                yield Call(ActorRef("target", 0), "hit", 1, 2, 3)
    ''')
    unknown = [f for f in findings if f.rule == FLOW_UNKNOWN_METHOD]
    assert len(unknown) == 2
    assert "no such method" in unknown[0].message
    assert "positional arg(s)" in unknown[1].message


def test_unknown_method_stays_silent_on_unresolvable_targets():
    _, _, findings = _analyze('''
        class SourceActor(Actor):
            def a(self, mystery_ref):
                yield Call(mystery_ref, "whatever", 1)

            def b(self):
                yield Call(ActorRef("unregistered", 0), "whatever", 1)
    ''')
    assert FLOW_UNKNOWN_METHOD not in _rules_fired(findings)


CYCLE = '''
    class AActor(Actor):
        {a_flags}
        def ping(self, n):
            ack = yield {kind}(ActorRef("b", 0), "pong", n)
            return ack

    class BActor(Actor):
        {b_flags}
        def pong(self, n):
            ack = yield {kind}(ActorRef("a", 0), "ping", n)
            return ack

    def wire(runtime):
        runtime.register_actor("a", AActor)
        runtime.register_actor("b", BActor)
'''


def _cycle_findings(kind="Call", a_flags="pass", b_flags="pass"):
    _, _, findings = _analyze(
        CYCLE.format(kind=kind, a_flags=a_flags, b_flags=b_flags))
    return [f for f in findings if f.rule == FLOW_CALL_CYCLE]


def test_call_cycle_fires_only_with_a_non_reentrant_participant():
    assert not _cycle_findings()                       # reentrant default
    fired = _cycle_findings(b_flags="REENTRANT = False")
    assert len(fired) == 1
    assert "BActor" in fired[0].message
    assert "a -> b -> a" in fired[0].message or \
        "b -> a -> b" in fired[0].message


def test_tell_cycle_never_fires():
    # Tell does not hold the caller's turn open, so a Tell loop is not
    # a deadlock even through a non-reentrant actor.
    assert not _cycle_findings(kind="Tell",
                               a_flags="REENTRANT = False",
                               b_flags="REENTRANT = False")


RETRY = '''
    {arm}

    class LedgerActor(Actor):
        def __init__(self):
            self.entries = []

        {marker}
        def record(self, entry):
            self.entries.append(entry)

    def wire(runtime):
        runtime.register_actor("ledger", LedgerActor)

    def drive(runtime):
        runtime.client_request(ActorRef("ledger", 0), "record", "e"{kw})
'''


def _retry_findings(arm="POLICY = RetryPolicy()", marker="", kw=""):
    _, _, findings = _analyze(
        RETRY.format(arm=arm, marker=marker, kw=kw))
    return [f for f in findings if f.rule == FLOW_RETRY_NONIDEMPOTENT]


def test_retry_rule_fires_on_unmarked_mutating_request():
    fired = _retry_findings()
    assert len(fired) == 1
    assert "record" in fired[0].message
    assert "idempotent" in fired[0].message


def test_retry_rule_is_gated_on_a_retry_policy_existing():
    assert not _retry_findings(arm="POLICY = None")


def test_retry_rule_respects_idempotent_marker_and_kwarg():
    assert not _retry_findings(marker="@idempotent")
    assert not _retry_findings(kw=", idempotent=False")


def test_blocking_transitive_reports_the_helper_chain():
    _, _, findings = _analyze('''
        import time

        def flush():
            persist()

        def persist():
            time.sleep(0.01)

        class DiskActor(Actor):
            def save(self, row):
                flush()
                return True

        def wire(runtime):
            runtime.register_actor("disk", DiskActor)
    ''')
    (f,) = [f for f in findings if f.rule == FLOW_BLOCKING_TRANSITIVE]
    assert "time.sleep" in f.message
    assert "flush -> persist" in f.message


def test_migration_unsafe_fires_on_lambda_and_bound_method():
    _, _, findings = _analyze('''
        class StateActor(Actor):
            def __init__(self):
                self.cb = lambda x: x
                self.hook = self.step
                self.data = {"fine": 1}

            def step(self):
                return 1

        def wire(runtime):
            runtime.register_actor("state", StateActor)
    ''')
    unsafe = [f for f in findings if f.rule == FLOW_MIGRATION_UNSAFE]
    assert len(unsafe) == 2
    assert "lambda" in unsafe[0].message
    assert "bound method" in unsafe[1].message


def test_flow_registry_is_disjoint_from_the_per_file_registry():
    from repro.analysis import all_rules

    per_file = {r.name for r in all_rules()}
    flow = {r.name for r in all_flow_rules()}
    assert len(flow) == 5
    assert not per_file & flow


def test_fixpoint_terminates_and_reports_rounds():
    index = build_index(_files('''
        class LoopActor(Actor):
            def __init__(self):
                self.peers = []

            def link(self, ref):
                self.peers.append(ref)

            def fan(self):
                for p in self.peers:
                    yield Call(p, "link", ActorRef("loop", 1))

        def wire(runtime):
            runtime.register_actor("loop", LoopActor)
    '''))
    graph = build_graph(index)
    assert 1 <= graph.rounds <= 10
