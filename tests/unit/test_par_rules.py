"""Unit tests for the parallel-sharding readiness pass: lookahead
inference and each PAR rule's fire/stay-silent contract on minimal
synthetic modules."""

import math
import os
import textwrap

from repro.analysis.flow import build_graph, build_index
from repro.analysis.linter import lint_paths
from repro.analysis.par import analyze_par, lookahead_report
from repro.analysis.par.lookahead import (
    DEFAULT_MIN_LATENCY,
    LOOKAHEAD_SIGMAS,
    compute_edge_lookaheads,
    discover_models,
    min_model_latency,
)
from repro.analysis.par.rules import (
    PAR_CROSS_SILO_CONFLICT,
    PAR_GLOBAL_MUTABLE,
    PAR_NONMERGEABLE_METRIC,
    PAR_UNPORTABLE_SILO_STATE,
    PAR_ZERO_LOOKAHEAD,
    all_par_rules,
    run_par_rules,
)

REPO = os.path.join(os.path.dirname(__file__), "..", "..")
FIXTURE = os.path.join("tests", "fixtures", "par_violations.py")

#: Stand-ins every snippet shares: the index keys off the names, so
#: in-file definitions behave like the real substrate.
PRELUDE = '''
class Actor:
    pass


class ActorRef:
    def __init__(self, actor_type, key):
        self.actor_type = actor_type
        self.key = key


class Call:
    def __init__(self, target, method, *args, **kwargs):
        self.args = args


class Tell:
    def __init__(self, target, method, *args, **kwargs):
        self.args = args
'''


def _analyze(source, path="mod.py"):
    index = build_index([(path, PRELUDE + textwrap.dedent(source))])
    return index, build_graph(index)


def _findings(source, path="mod.py"):
    index, graph = _analyze(source, path)
    return run_par_rules(index, graph)


def _rules_fired(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------- lookahead


def test_min_model_latency_floor():
    assert min_model_latency(0.0, 0.1) == 0.0
    assert min_model_latency(-1.0, 0.1) == 0.0
    assert min_model_latency(0.002, 0.0) == 0.002
    jittered = min_model_latency(0.002, 0.25)
    assert jittered == 0.002 * math.exp(-LOOKAHEAD_SIGMAS * 0.25)
    assert 0.0 < jittered < 0.002


def test_discover_models_resolves_literals_and_named_constants():
    index, _ = _analyze('''
        BASE = 0.002

        def boot():
            return ClusterConfig(num_servers=2, network_latency=BASE,
                                 network_jitter=0.05)

        def boot_opaque(cfg):
            return ClusterConfig(network_latency=cfg.latency)
    ''')
    models = discover_models(index)
    assert len(models) == 2
    resolved = [m for m in models if m.min_latency is not None]
    assert len(resolved) == 1
    assert resolved[0].base == 0.002
    assert resolved[0].min_latency == min_model_latency(0.002, 0.05)


def test_edge_lookahead_scope_preference():
    models = [m for m in discover_models(_analyze('''
        def boot_a():
            return ClusterConfig(network_latency=0.01, network_jitter=0.0)
    ''', path="a.py")[0])]
    models += [m for m in discover_models(_analyze('''
        def boot_b():
            return ClusterConfig(network_latency=0.5, network_jitter=0.0)
    ''', path="b.py")[0])]
    pairs = [("u", "v"), ("x", "y")]
    out = compute_edge_lookaheads(
        pairs, {("u", "v"): {"a.py"}, ("x", "y"): {"nowhere.py"}}, models)
    # the (u, v) edge sits in a.py, so the module-scope model wins;
    # (x, y) has no local model and falls back to the tree-wide min
    assert out[("u", "v")] == (0.01, "module")
    assert out[("x", "y")] == (0.01, "global")
    # with no models at all, everything is the analysis default
    out = compute_edge_lookaheads(pairs, {}, [])
    assert out[("u", "v")] == (DEFAULT_MIN_LATENCY, "default")


def test_lookahead_report_is_deterministic():
    files = [(FIXTURE, open(os.path.join(REPO, FIXTURE)).read())]
    index1, graph1, _ = analyze_par(files)
    index2, graph2, _ = analyze_par(files)
    assert lookahead_report(index1, graph1) == \
        lookahead_report(index2, graph2)


# ---------------------------------------------------- PAR-ZERO-LOOKAHEAD


def test_zero_lookahead_fires_on_zero_base_latency():
    findings = _findings('''
        def boot():
            return ClusterConfig(num_servers=2, network_latency=0.0)
    ''')
    assert _rules_fired(findings) == {PAR_ZERO_LOOKAHEAD}


def test_zero_lookahead_fires_on_zero_time_scale():
    findings = _findings('''
        def boot():
            return ClusterConfig(network_latency=0.002, time_scale=0.0)
    ''')
    assert _rules_fired(findings) == {PAR_ZERO_LOOKAHEAD}


def test_zero_lookahead_silent_on_positive_and_opaque_configs():
    findings = _findings('''
        def boot(cfg):
            ClusterConfig(network_latency=0.002)
            return ClusterConfig(network_latency=cfg.latency)
    ''')
    assert PAR_ZERO_LOOKAHEAD not in _rules_fired(findings)


# ---------------------------------------------------- PAR-GLOBAL-MUTABLE


def test_global_mutable_fires_when_actor_touches_mutated_global():
    findings = _findings('''
        PENDING = []

        class QueueActor(Actor):
            def push(self, item):
                PENDING.append(item)
    ''')
    assert _rules_fired(findings) == {PAR_GLOBAL_MUTABLE}


def test_global_mutable_fires_when_helper_mutates_and_actor_reads():
    findings = _findings('''
        TABLE = {}

        def tune(key, value):
            TABLE[key] = value

        class ReaderActor(Actor):
            def lookup(self, key):
                return TABLE[key]
    ''')
    assert _rules_fired(findings) == {PAR_GLOBAL_MUTABLE}


def test_global_mutable_silent_on_read_only_and_actorless_globals():
    findings = _findings('''
        HINTS = [3, 5, 7]
        SCRATCH = []

        def helper(x):
            SCRATCH.append(x)      # mutated, but no actor touches it

        class ReaderActor(Actor):
            def pick(self):
                return HINTS[0]    # actor touches it, but never mutated
    ''')
    assert PAR_GLOBAL_MUTABLE not in _rules_fired(findings)


# ----------------------------------------------- PAR-CROSS-SILO-CONFLICT


def test_cross_silo_conflict_fires_on_alias_to_other_type():
    findings = _findings('''
        class FanoutActor(Actor):
            def __init__(self):
                self.members = []

            def grow(self, who):
                self.members.append(who)

            def broadcast(self):
                yield Call(ActorRef("peer", 0), "sync", self.members)
    ''')
    assert PAR_CROSS_SILO_CONFLICT in _rules_fired(findings)


def test_cross_silo_conflict_silent_on_same_type_alias():
    # The partitioner never splits one actor type across silos, so the
    # alias stays inside one address space.
    findings = _findings('''
        class SpillActor(Actor):
            def __init__(self):
                self.overflow = []

            def absorb(self, item):
                self.overflow.append(item)

            def rebalance(self):
                yield Tell(ActorRef("spill", 1), "absorb", self.overflow)


        def wire(runtime):
            runtime.register_actor("spill", SpillActor)
    ''')
    assert PAR_CROSS_SILO_CONFLICT not in _rules_fired(findings)


def test_cross_silo_conflict_silent_on_immutable_snapshot():
    findings = _findings('''
        class FanoutActor(Actor):
            def __init__(self):
                self.members = []

            def grow(self, who):
                self.members.append(who)

            def broadcast(self):
                yield Call(ActorRef("peer", 0), "sync",
                           tuple(self.members))
    ''')
    assert PAR_CROSS_SILO_CONFLICT not in _rules_fired(findings)


# ---------------------------------------------- PAR-NONMERGEABLE-METRIC


def test_nonmergeable_metric_fires_on_observe_without_merge():
    findings = _findings('''
        class Histogram:
            def observe(self, value):
                pass

        def collect():
            return Histogram()
    ''')
    assert _rules_fired(findings) == {PAR_NONMERGEABLE_METRIC}


def test_nonmergeable_metric_silent_with_merge_or_unused():
    findings = _findings('''
        class Mergeable:
            def record(self, value):
                pass

            def merge(self, other):
                pass

        class NeverBuilt:
            def observe(self, value):
                pass

        def collect():
            return Mergeable()
    ''')
    assert PAR_NONMERGEABLE_METRIC not in _rules_fired(findings)


def test_nonmergeable_metric_exempts_actors_and_analysis_tooling():
    # Actor state lives on exactly one silo (no barrier fold), and the
    # analysis package's own recorders never run inside a silo.
    findings = _findings('''
        class ProbeActor(Actor):
            def observe(self, value):
                pass

        def collect(runtime):
            return ProbeActor()
    ''')
    assert PAR_NONMERGEABLE_METRIC not in _rules_fired(findings)
    findings = _findings('''
        class Probe:
            def observe(self, value):
                pass

        def collect():
            return Probe()
    ''', path="analysis/probe.py")
    assert PAR_NONMERGEABLE_METRIC not in _rules_fired(findings)


# ------------------------------------------- PAR-UNPORTABLE-SILO-STATE


def test_unportable_state_fires_on_closure_and_handle_fields():
    findings = _findings('''
        class ReplayActor(Actor):
            def arm(self):
                self.transform = lambda turn: turn + 1

        class LogActor(Actor):
            def start(self):
                self.sink = open("out.log", "w")
    ''')
    fired = [f for f in findings if f.rule == PAR_UNPORTABLE_SILO_STATE]
    assert len(fired) == 2


def test_unportable_state_silent_on_ephemeral_and_picklable_fields():
    findings = _findings('''
        class CleanActor(Actor):
            def __init__(self):
                self.history = []
                self._decoder = lambda turn: turn

            def store(self, payload):
                self.latest = payload
    ''')
    assert PAR_UNPORTABLE_SILO_STATE not in _rules_fired(findings)


# ------------------------------------------------ fixture + integration


def test_fixture_fires_exactly_the_five_par_rules():
    with open(os.path.join(REPO, FIXTURE), "r", encoding="utf-8") as fh:
        source = fh.read()
    _index, _graph, findings = analyze_par([(FIXTURE, source)])
    fired = [f.rule for f in findings]
    assert sorted(fired) == sorted(r.name for r in all_par_rules())
    assert len(fired) == 5               # one finding per rule, no extras


def test_repo_tree_is_par_clean():
    report = lint_paths(base=REPO, par=True)
    par = [f for f in report.active if f.rule.startswith("PAR-")]
    assert par == []
    assert report.par_report is not None
    assert report.par_report["window"] > 0


def test_waiver_suppresses_par_finding(tmp_path):
    src = PRELUDE + textwrap.dedent('''
        def boot():
            # repro: waive[PAR-ZERO-LOOKAHEAD] -- single-silo demo rig
            return ClusterConfig(num_servers=1, network_latency=0.0)
    ''')
    mod = tmp_path / "mod.py"
    mod.write_text(src)
    report = lint_paths([str(mod)], base=str(tmp_path), par=True)
    assert report.ok
    waived = [f for f in report.waived if f.rule == PAR_ZERO_LOOKAHEAD]
    assert len(waived) == 1
    assert waived[0].justification == "single-silo demo rig"


def test_unwaived_par_finding_fails_the_report(tmp_path):
    src = PRELUDE + textwrap.dedent('''
        def boot():
            return ClusterConfig(num_servers=1, network_latency=0.0)
    ''')
    mod = tmp_path / "mod.py"
    mod.write_text(src)
    report = lint_paths([str(mod)], base=str(tmp_path), par=True)
    assert not report.ok
    assert PAR_ZERO_LOOKAHEAD in {f.rule for f in report.active}
