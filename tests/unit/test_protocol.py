"""Unit tests for the pairwise coordination protocol (Alg. 1)."""

from repro.core.partitioning.candidate import Candidate
from repro.core.partitioning.protocol import (
    ExchangeRequest,
    build_request,
    handle_request,
    rescore_candidates,
)
from repro.core.partitioning.view import PartitionView


def make_view(server_id, edges, locations, sizes):
    return PartitionView(
        server_id=server_id,
        edges=edges,
        locate=locations.get,
        size=sizes.get(server_id, 0),
        peer_sizes=sizes,
    )


def test_build_request_carries_candidates_and_size():
    view = make_view(0, {"v": {"r": 5.0}}, {"r": 1}, {0: 7, 1: 3})
    request = build_request(view, target=1, k=4)
    assert request.initiator == 0
    assert request.target == 1
    assert request.initiator_size == 7
    assert [c.vertex for c in request.candidates] == ["v"]


def test_cooldown_rejection():
    view_q = make_view(1, {}, {}, {0: 5, 1: 5})
    request = ExchangeRequest(0, 1, [Candidate("v", 1.0, {"r": 1.0})], 5)
    response = handle_request(view_q, request, k=4, delta=2, exchanged_recently=True)
    assert not response.accepted
    assert response.rejection_reason == "cooldown"


def test_misrouted_request_rejected():
    view_q = make_view(2, {}, {}, {0: 5, 2: 5})
    request = ExchangeRequest(0, 1, [], 5)
    response = handle_request(view_q, request, k=4, delta=2, exchanged_recently=False)
    assert not response.accepted
    assert response.rejection_reason == "misrouted"


def test_rescoring_uses_receiver_knowledge():
    """p believed u lives on q; q knows u actually moved to server 2 —
    the candidate's score must drop to zero on q's side."""
    candidate = Candidate("v", 5.0, edges={"u": 5.0},
                          endpoint_locations={"u": 1})
    request = ExchangeRequest(0, 1, [candidate], 5)
    view_q = make_view(1, {}, {"u": 2}, {0: 5, 1: 5, 2: 1})
    rescored = rescore_candidates(view_q, request)
    assert rescored[0].score == 0.0


def test_rescoring_falls_back_to_shipped_locations():
    candidate = Candidate("v", 5.0, edges={"u": 5.0},
                          endpoint_locations={"u": 1})
    request = ExchangeRequest(0, 1, [candidate], 5)
    view_q = make_view(1, {}, {}, {0: 5, 1: 5})  # q knows nothing about u
    rescored = rescore_candidates(view_q, request)
    assert rescored[0].score == 5.0


def test_full_exchange_accepts_and_returns():
    # q hosts "t" which talks to server 0; p offers "v" which talks to q.
    view_q = make_view(
        1,
        {"t": {"w": 6.0}},
        {"w": 0},
        {0: 6, 1: 6},
    )
    candidate = Candidate("v", 4.0, edges={"u": 4.0}, endpoint_locations={"u": 1})
    request = ExchangeRequest(0, 1, [candidate], 6)
    response = handle_request(view_q, request, k=4, delta=2, exchanged_recently=False)
    assert response.accepted
    assert response.accepted_vertices == ["v"]
    assert response.returned_vertices == ["t"]


def test_receiver_may_reject_all_candidates():
    """Candidates whose edges turn out to be local-to-p stay put."""
    view_q = make_view(1, {}, {"u": 0}, {0: 5, 1: 5})
    candidate = Candidate("v", 9.0, edges={"u": 9.0}, endpoint_locations={"u": 1})
    request = ExchangeRequest(0, 1, [candidate], 5)
    response = handle_request(view_q, request, k=4, delta=4, exchanged_recently=False)
    assert response.accepted
    assert response.accepted_vertices == []  # rescored to -9
