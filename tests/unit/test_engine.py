"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_equal_times_fire_fifo():
    sim = Simulator()
    fired = []
    for name in "abcde":
        sim.schedule(1.0, fired.append, name)
    sim.run()
    assert fired == list("abcde")


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0  # clock advanced to the horizon
    sim.run(until=10.0)
    assert fired == ["early", "late"]


def test_callbacks_can_schedule_more_events():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 1)
    sim.run()
    assert fired == [1, 2, 3, 4, 5]
    assert sim.now == 4.0


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_scheduling_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(1.0, lambda: None)


def test_call_soon_runs_at_current_time_after_queued():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "first")

    def at_one():
        fired.append("second")
        sim.call_soon(fired.append, "third")

    sim.schedule(1.0, at_one)
    sim.run()
    assert fired == ["first", "second", "third"]


def test_events_processed_counts_fired_only():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    cancelled = sim.schedule(2.0, lambda: None)
    cancelled.cancel()
    sim.run()
    assert sim.events_processed == 1


def test_pending_excludes_cancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    ev = sim.schedule(2.0, lambda: None)
    ev.cancel()
    assert sim.pending() == 1


def test_max_events_cap():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_reentrant_run_rejected():
    sim = Simulator()

    def nested():
        sim.run()

    sim.schedule(1.0, nested)
    with pytest.raises(SimulationError):
        sim.run()


# ----------------------------------------------------------------------
# Hot-path invariants: FIFO tie-breaking, the call_soon fast path, and
# heap self-compaction under cancellation-heavy load.
# ----------------------------------------------------------------------
def test_fifo_preserved_across_mixed_schedule_at_call_soon():
    """Events at one timestamp fire in exact submission order regardless
    of which scheduling API queued them."""
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "via-schedule-0")
    sim.at(1.0, fired.append, "via-at-1")

    def at_one():
        fired.append("first-at-1")
        sim.call_soon(fired.append, "soon-2")
        sim.at(1.0, fired.append, "at-now-3")
        sim.call_soon(fired.append, "soon-4")
        sim.schedule(0.0, fired.append, "zero-delay-5")

    sim.schedule(0.5, lambda: sim.at(1.0, at_one))
    sim.run()
    assert fired == [
        "via-schedule-0", "via-at-1", "first-at-1",
        "soon-2", "at-now-3", "soon-4", "zero-delay-5",
    ]


def test_call_soon_interleaves_with_heap_events_by_seq():
    """A heap event at t=now queued *before* a call_soon fires before it;
    one queued after fires after it."""
    sim = Simulator()
    fired = []

    def driver():
        sim.call_soon(fired.append, "soon")
        sim.at(sim.now, fired.append, "at-after-soon")

    sim.at(2.0, fired.append, "heap-before")  # smaller seq, same time
    sim.at(2.0, driver)
    sim.run()
    assert fired == ["heap-before", "soon", "at-after-soon"]


def test_cancel_call_soon_event():
    sim = Simulator()
    fired = []

    def driver():
        ev = sim.call_soon(fired.append, "cancelled")
        sim.call_soon(fired.append, "kept")
        ev.cancel()

    sim.schedule(1.0, driver)
    sim.run()
    assert fired == ["kept"]


def test_pending_is_o1_and_counts_live_only():
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
    assert sim.pending() == 100
    for ev in events[::2]:
        ev.cancel()
    assert sim.pending() == 50


def test_timeout_timer_storm_self_compacts():
    """The actor server's pattern: every request schedules a far-future
    timeout timer and almost always cancels it.  Dead entries must not
    accumulate in the queue."""
    sim = Simulator()
    fired = [0]

    def tick():
        fired[0] += 1
        timer = sim.schedule(1e6, lambda: None)
        timer.cancel()
        if fired[0] < 20_000:
            sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    sim.run()
    assert fired[0] == 20_000
    # Garbage (queued-but-cancelled entries) stays bounded by the live
    # count, not by the 20k cancellations.
    garbage = sim.queue_size() - sim.pending()
    assert garbage <= max(64, sim.pending() + 1)


def test_cancellation_during_compaction_window():
    """Cancelling while many dead entries await compaction must neither
    fire cancelled events nor drop live ones."""
    sim = Simulator()
    fired = []
    live = [sim.schedule(50.0 + i, fired.append, i) for i in range(10)]
    dead = [sim.schedule(100.0 + i, fired.append, 1000 + i) for i in range(500)]
    # Cancel in an order that straddles the compaction threshold.
    for ev in dead[:300]:
        ev.cancel()
    extra = sim.schedule(60.0, fired.append, "late")
    for ev in dead[300:]:
        ev.cancel()
    extra.cancel()
    live[3].cancel()
    sim.run()
    assert fired == [0, 1, 2, 4, 5, 6, 7, 8, 9]
    assert sim.pending() == 0


def test_run_until_preserves_unfired_events_after_putback():
    """run(until=...) must leave the next event intact (the engine peeks
    the slab before knowing the horizon stops it)."""
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=1.0)
    assert fired == []
    assert sim.pending() == 1
    sim.run(until=10.0)
    assert fired == ["late"]


def test_defer_fires_like_schedule():
    sim = Simulator()
    fired = []
    sim.defer(1.0, fired.append, "a")
    sim.defer(0.0, fired.append, "b")
    with pytest.raises(SimulationError):
        sim.defer(-1.0, fired.append, "never")
    sim.run()
    assert fired == ["b", "a"]
    assert sim.events_processed == 2
