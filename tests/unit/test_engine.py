"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_equal_times_fire_fifo():
    sim = Simulator()
    fired = []
    for name in "abcde":
        sim.schedule(1.0, fired.append, name)
    sim.run()
    assert fired == list("abcde")


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0  # clock advanced to the horizon
    sim.run(until=10.0)
    assert fired == ["early", "late"]


def test_callbacks_can_schedule_more_events():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 1)
    sim.run()
    assert fired == [1, 2, 3, 4, 5]
    assert sim.now == 4.0


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_scheduling_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(1.0, lambda: None)


def test_call_soon_runs_at_current_time_after_queued():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "first")

    def at_one():
        fired.append("second")
        sim.call_soon(fired.append, "third")

    sim.schedule(1.0, at_one)
    sim.run()
    assert fired == ["first", "second", "third"]


def test_events_processed_counts_fired_only():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    cancelled = sim.schedule(2.0, lambda: None)
    cancelled.cancel()
    sim.run()
    assert sim.events_processed == 1


def test_pending_excludes_cancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    ev = sim.schedule(2.0, lambda: None)
    ev.cancel()
    assert sim.pending() == 1


def test_max_events_cap():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_reentrant_run_rejected():
    sim = Simulator()

    def nested():
        sim.run()

    sim.schedule(1.0, nested)
    with pytest.raises(SimulationError):
        sim.run()
