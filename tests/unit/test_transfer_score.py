"""Unit tests for transfer scores (§4.2)."""

import pytest

from repro.core.partitioning.transfer_score import transfer_score


def locate_from(mapping):
    return mapping.get


def test_positive_when_target_dominates():
    neighbors = {"g": 10.0, "x": 2.0}
    locations = {"g": 1, "x": 0}
    # moving v from 0 to 1: gains the edge to g, loses the edge to x
    assert transfer_score(neighbors, locate_from(locations), 0, 1) == 8.0


def test_negative_when_local_edges_dominate():
    neighbors = {"a": 5.0, "b": 5.0, "remote": 3.0}
    locations = {"a": 0, "b": 0, "remote": 1}
    assert transfer_score(neighbors, locate_from(locations), 0, 1) == -7.0


def test_third_party_edges_ignored():
    neighbors = {"elsewhere": 100.0}
    locations = {"elsewhere": 7}
    assert transfer_score(neighbors, locate_from(locations), 0, 1) == 0.0


def test_unknown_locations_ignored():
    neighbors = {"mystery": 50.0, "here": 1.0}
    locations = {"here": 0}
    assert transfer_score(neighbors, locate_from(locations), 0, 1) == -1.0


def test_empty_neighbors_zero():
    assert transfer_score({}, locate_from({}), 0, 1) == 0.0


def test_same_source_target_rejected():
    with pytest.raises(ValueError):
        transfer_score({}, locate_from({}), 2, 2)


def test_score_matches_cut_delta():
    """Moving v changes the cut by exactly -R (when the view is exact)."""
    from repro.graph.comm_graph import CommGraph
    from repro.graph.quality import cut_cost

    g = CommGraph()
    g.add_edge("v", "a", 3.0)   # a on server 1
    g.add_edge("v", "b", 2.0)   # b on server 0 (v's server)
    g.add_edge("v", "c", 4.0)   # c on server 2 (third party)
    g.add_edge("a", "b", 9.0)   # unaffected by v's move
    assignment = {"v": 0, "a": 1, "b": 0, "c": 2}
    before = cut_cost(g, assignment)
    score = transfer_score(g.neighbors("v"), assignment.get, 0, 1)
    assignment["v"] = 1
    after = cut_cost(g, assignment)
    assert before - after == pytest.approx(score)
