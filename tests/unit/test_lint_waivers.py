"""Waiver semantics: parsing, coverage, and required justification."""

from repro.analysis import lint_source, parse_waivers

WALLCLOCK = "import time\nnow = time.time()"


def test_trailing_waiver_covers_its_own_line():
    report = lint_source(
        "import time\n"
        "now = time.time()  # repro: waive[DET-WALLCLOCK] -- boot banner\n"
    )
    assert report.ok
    (finding,) = report.waived
    assert finding.rule == "DET-WALLCLOCK"
    assert finding.justification == "boot banner"


def test_standalone_waiver_covers_next_line():
    report = lint_source(
        "import time\n"
        "# repro: waive[DET-WALLCLOCK] -- boot banner\n"
        "now = time.time()\n"
    )
    assert report.ok and len(report.waived) == 1


def test_waiver_does_not_cover_other_lines():
    report = lint_source(
        "import time\n"
        "# repro: waive[DET-WALLCLOCK] -- boot banner\n"
        "pad = 0\n"
        "now = time.time()\n"
    )
    assert not report.ok
    assert report.active[0].rule == "DET-WALLCLOCK"


def test_waiver_is_rule_specific():
    report = lint_source(
        "import time\n"
        "now = time.time()  # repro: waive[DET-GLOBAL-RNG] -- wrong rule\n"
    )
    assert not report.ok


def test_wildcard_and_multi_rule_waivers():
    report = lint_source(
        "import time\n"
        "now = time.time()  # repro: waive[*] -- demo file\n"
    )
    assert report.ok
    report = lint_source(
        "import time, random\n"
        "x = random.random() + time.time()"
        "  # repro: waive[DET-WALLCLOCK,DET-GLOBAL-RNG] -- demo file\n"
    )
    assert report.ok and len(report.waived) == 2


def test_unjustified_waiver_suppresses_nothing_and_is_itself_flagged():
    report = lint_source(
        "import time\n"
        "now = time.time()  # repro: waive[DET-WALLCLOCK]\n"
    )
    fired = {f.rule for f in report.active}
    assert fired == {"DET-WALLCLOCK", "WAIVER-JUSTIFY"}
    assert not report.waived


def test_justified_waiver_cannot_silence_the_justify_rule():
    # WAIVER-JUSTIFY is never waivable, else the audit trail could hide
    # itself: a justified wildcard waiver covering the unjustified
    # waiver's line must not suppress it.
    report = lint_source(
        "# repro: waive[*] -- attempt to hide the audit\n"
        "x = 1  # repro: waive[DET-WALLCLOCK]\n"
    )
    assert any(f.rule == "WAIVER-JUSTIFY" for f in report.active)


def test_parse_waivers_extracts_fields():
    (waiver,) = parse_waivers(
        "x = 1  # repro: waive[DET-SET-ITER] -- order-free aggregation\n"
    )
    assert waiver.rules == frozenset({"DET-SET-ITER"})
    assert waiver.covers == 1
    assert waiver.justification == "order-free aggregation"


def test_waiver_text_inside_string_literal_is_ignored():
    report = lint_source(
        "import time\n"
        's = "# repro: waive[DET-WALLCLOCK] -- not a comment"\n'
        "now = time.time()\n"
    )
    assert not report.ok
