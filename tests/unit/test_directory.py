"""Unit tests for the placement directory and location caches."""

import pytest

from repro.actor.directory import Directory, LocationCache
from repro.actor.ids import ActorId


def aid(k):
    return ActorId("a", k)


def test_register_lookup_unregister():
    d = Directory(3)
    d.register(aid(1), 2)
    assert d.lookup(aid(1)) == 2
    assert aid(1) in d
    assert d.unregister(aid(1)) == 2
    assert d.lookup(aid(1)) is None
    assert aid(1) not in d


def test_double_register_rejected():
    d = Directory(2)
    d.register(aid(1), 0)
    with pytest.raises(ValueError):
        d.register(aid(1), 1)


def test_census_tracks_counts():
    d = Directory(3)
    assert d.census() == {0: 0, 1: 0, 2: 0}
    d.register(aid(1), 0)
    d.register(aid(2), 0)
    d.register(aid(3), 2)
    assert d.census() == {0: 2, 1: 0, 2: 1}
    assert d.count(0) == 2
    d.unregister(aid(1))
    assert d.census()[0] == 1
    assert len(d) == 2


def test_unregister_missing_raises():
    d = Directory(2)
    with pytest.raises(KeyError):
        d.unregister(aid(99))


def test_location_cache_hint_and_get():
    c = LocationCache(capacity=10)
    c.hint(aid(1), 3)
    assert c.get(aid(1)) == 3
    assert c.get(aid(2)) is None


def test_location_cache_fifo_eviction():
    c = LocationCache(capacity=2)
    c.hint(aid(1), 0)
    c.hint(aid(2), 0)
    c.hint(aid(3), 0)  # evicts aid(1)
    assert c.get(aid(1)) is None
    assert c.get(aid(2)) == 0
    assert c.get(aid(3)) == 0
    assert len(c) == 2


def test_location_cache_refresh_moves_to_back():
    c = LocationCache(capacity=2)
    c.hint(aid(1), 0)
    c.hint(aid(2), 0)
    c.hint(aid(1), 5)   # refresh: now aid(2) is oldest
    c.hint(aid(3), 0)
    assert c.get(aid(1)) == 5
    assert c.get(aid(2)) is None


def test_location_cache_forget():
    c = LocationCache(capacity=4)
    c.hint(aid(1), 0)
    c.forget(aid(1))
    assert c.get(aid(1)) is None
    c.forget(aid(1))  # idempotent


def test_location_cache_capacity_validation():
    with pytest.raises(ValueError):
        LocationCache(capacity=0)
