"""Unit tests for candidate-set selection and peer ranking (§4.2)."""

from repro.core.partitioning.candidate import candidate_set, rank_peers
from repro.core.partitioning.view import PartitionView


def make_view(server_id, edges, locations, sizes):
    return PartitionView(
        server_id=server_id,
        edges=edges,
        locate=locations.get,
        size=sizes.get(server_id, 0),
        peer_sizes=sizes,
    )


def test_only_positive_scores_included():
    edges = {
        "good": {"r1": 5.0},            # score +5 toward server 1
        "bad": {"local": 5.0},          # score -5 (local edge)
        "neutral": {"elsewhere": 5.0},  # score 0 (third party)
    }
    locations = {"r1": 1, "local": 0, "elsewhere": 2}
    view = make_view(0, edges, locations, {0: 3, 1: 0, 2: 1})
    cands = candidate_set(view, 1, k=10)
    assert [c.vertex for c in cands] == ["good"]
    assert cands[0].score == 5.0


def test_top_k_by_score():
    edges = {f"v{i}": {"remote": float(i)} for i in range(1, 6)}
    locations = {"remote": 1}
    view = make_view(0, edges, locations, {0: 5, 1: 1})
    cands = candidate_set(view, 1, k=2)
    assert [c.vertex for c in cands] == ["v5", "v4"]


def test_candidates_ship_edges_and_locations():
    edges = {"v": {"r": 3.0, "l": 1.0}}
    locations = {"r": 1, "l": 0}
    view = make_view(0, edges, locations, {0: 1, 1: 1})
    cands = candidate_set(view, 1, k=5)
    assert cands[0].edges == {"r": 3.0, "l": 1.0}
    # l is a local vertex of the view, so its location resolves to 0.
    assert cands[0].endpoint_locations == {"r": 1, "l": 0}


def test_local_vertices_resolve_to_own_server():
    edges = {"v": {"u": 2.0}, "u": {"v": 2.0}}
    view = make_view(0, edges, {}, {0: 2, 1: 0})
    # u is local, so moving v to server 1 would LOSE the edge.
    assert candidate_set(view, 1, k=5) == []


def test_k_zero_or_negative_empty():
    view = make_view(0, {"v": {"r": 1.0}}, {"r": 1}, {0: 1, 1: 0})
    assert candidate_set(view, 1, k=0) == []


def test_rank_peers_orders_by_total_score():
    edges = {
        "a": {"s1": 10.0},
        "b": {"s2": 3.0},
        "c": {"s2": 4.0},
    }
    locations = {"s1": 1, "s2": 2}
    view = make_view(0, edges, locations, {0: 3, 1: 1, 2: 2})
    proposals = rank_peers(view, k=5)
    assert [p.peer for p in proposals] == [1, 2]
    assert proposals[0].total_score == 10.0
    assert proposals[1].total_score == 7.0


def test_rank_peers_skips_empty_candidate_sets():
    view = make_view(0, {"v": {"local": 1.0}}, {"local": 0}, {0: 2, 1: 5, 2: 5})
    assert rank_peers(view, k=5) == []
