"""Unit tests for repro.obs: tracer, event log, exporters, analysis."""

import json

import pytest

from repro.obs import (
    CLIENT_PID,
    ActivationEvent,
    EventLog,
    MigrationEvent,
    Span,
    ThreadAllocationEvent,
    TraceContext,
    Tracer,
    breakdown_shares,
    chrome_trace_document,
    critical_path,
    cross_check,
    spans_by_trace,
    stage_totals,
    write_jsonl,
)
from repro.seda.stage import StageEvent
from repro.sim.engine import Simulator


def make_stage_event(enqueue, dispatch, grant, compute_done, complete,
                     wait=0.0):
    event = StageEvent(compute_done - grant, wait, lambda ev: None, ())
    event.enqueue_time = enqueue
    event.dispatch_time = dispatch
    event.grant_time = grant
    event.compute_done_time = compute_done
    event.complete_time = complete
    return event


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
def test_begin_end_request_records_root_span():
    sim = Simulator()
    tracer = Tracer(sim)
    ctx = tracer.begin_request("counter/7.increment")
    assert ctx is not None and ctx.parent_id is None
    sim.defer(0.25, lambda: None)
    sim.run()
    tracer.end_request(ctx)
    assert tracer.requests_finished == 1
    (span,) = tracer.spans
    assert span.cat == "request"
    assert span.name == "counter/7.increment"
    assert span.duration == pytest.approx(0.25)
    assert span.trace_id == ctx.trace_id and span.span_id == ctx.span_id


def test_end_request_is_idempotent():
    tracer = Tracer(Simulator())
    ctx = tracer.begin_request("r")
    tracer.end_request(ctx)
    tracer.end_request(ctx)  # late timeout racing the response
    assert tracer.requests_finished == 1
    assert len(tracer.spans) == 1


def test_systematic_sampling_is_exact_and_deterministic():
    def sampled(rate, n=1000):
        tracer = Tracer(Simulator(), sample_rate=rate)
        return [tracer.begin_request("r") is not None for _ in range(n)]

    quarter = sampled(0.25)
    assert sum(quarter) == 250  # exactly every 4th, no RNG involved
    assert quarter == sampled(0.25)  # deterministic across instances
    assert sum(sampled(0.0)) == 0
    assert sum(sampled(1.0)) == 1000


def test_sample_rate_validation():
    with pytest.raises(ValueError):
        Tracer(Simulator(), sample_rate=1.5)
    with pytest.raises(ValueError):
        Tracer(Simulator(), sample_rate=-0.1)


def test_child_context_lineage():
    tracer = Tracer(Simulator())
    root = tracer.begin_request("r")
    child = tracer.child(root)
    grandchild = tracer.child(child)
    assert child.trace_id == root.trace_id == grandchild.trace_id
    assert child.parent_id == root.span_id
    assert grandchild.parent_id == child.span_id
    assert len({root.span_id, child.span_id, grandchild.span_id}) == 3


def test_call_issue_resolve_span():
    sim = Simulator()
    tracer = Tracer(sim)
    root = tracer.begin_request("r")
    ctx = tracer.child(root)
    tracer.call_issued(17, ctx, "actor/1.get", server=2)
    sim.defer(0.5, lambda: None)
    sim.run()
    tracer.call_resolved(17)
    tracer.call_resolved(99)  # untraced id: silently ignored
    (span,) = [s for s in tracer.spans if s.cat == "call"]
    assert span.duration == pytest.approx(0.5)
    assert span.server == 2
    assert span.parent_id == root.span_id


def test_stage_event_spans_elide_zero_components():
    sim = Simulator()
    tracer = Tracer(sim)
    ctx = TraceContext(1, 10, None)
    # queue wait, ready and blocking wait all present:
    tracer.stage_event(0, "worker", ctx,
                       make_stage_event(0.0, 1.0, 1.5, 2.5, 4.0))
    cats = [s.cat for s in tracer.spans]
    assert cats == ["stage.queue", "stage.ready", "stage.compute", "stage.wait"]
    assert all(s.parent_id == 10 for s in tracer.spans)
    # instant dispatch/grant/complete: only the compute span remains.
    tracer.spans.clear()
    tracer.stage_event(0, "worker", ctx,
                       make_stage_event(1.0, 1.0, 1.0, 3.0, 3.0))
    assert [s.cat for s in tracer.spans] == ["stage.compute"]


def test_max_spans_cap_counts_drops():
    sim = Simulator()
    tracer = Tracer(sim, max_spans=2)
    ctx = TraceContext(1, 1, None)
    for _ in range(3):
        tracer.network_hop(ctx, 0, 1, 64, 0.001)
    assert len(tracer.spans) == 2
    assert tracer.dropped_spans == 1


# ----------------------------------------------------------------------
# EventLog
# ----------------------------------------------------------------------
def test_event_log_collects_and_filters_by_kind():
    log = EventLog()
    log.emit(ActivationEvent(1.0, server=0, actor="a/1"))
    log.emit(MigrationEvent(2.0, actor="a/1", source=0, destination=3))
    assert len(log) == 2
    (migration,) = log.of_kind(MigrationEvent)
    assert migration.destination == 3
    doc = migration.to_dict()
    assert doc["type"] == "event" and doc["kind"] == "migration"
    assert doc["source"] == 0


def test_event_log_subscribers_and_cap():
    log = EventLog(max_events=1)
    seen = []
    log.subscribe(seen.append)
    log.emit(ActivationEvent(1.0, server=0, actor="a"))
    log.emit(ActivationEvent(2.0, server=0, actor="b"))
    assert len(seen) == 2      # subscribers see everything
    assert len(log) == 1       # buffer honors the cap
    assert log.dropped == 1
    log.unsubscribe(seen.append)
    log.emit(ActivationEvent(3.0, server=0, actor="c"))
    assert len(seen) == 2


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def test_chrome_trace_document_structure():
    spans = [
        Span(1, 1, None, "req", "request", 0.0, 2.0, None, "requests"),
        Span(1, 2, 1, "worker.compute", "stage.compute", 0.5, 1.5, 0,
             "worker", {"k": "v"}),
    ]
    events = [ThreadAllocationEvent(1.0, server="silo0",
                                    allocation={"worker": 4}, alpha=0.1,
                                    feasible=True, controller="model")]
    doc = chrome_trace_document(spans, events, time_scale=2.0)
    payload = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert len(payload) == 2 and len(instants) == 1
    request = next(e for e in payload if e["name"] == "req")
    # 2 simulated seconds / time_scale 2 -> 1 displayed second = 1e6 us.
    assert request["dur"] == pytest.approx(1e6)
    assert request["pid"] == CLIENT_PID
    compute = next(e for e in payload if e["name"] == "worker.compute")
    assert compute["pid"] == 0 and compute["args"]["k"] == "v"
    # the "silo0" string server resolves to pid 0
    assert instants[0]["pid"] == 0
    names = {(m["name"], m["args"]["name"]) for m in meta}
    assert ("process_name", "clients") in names
    assert ("process_name", "silo0") in names
    assert ("thread_name", "worker") in names
    json.dumps(doc)  # must be serializable as-is


def test_chrome_trace_rejects_bad_time_scale():
    with pytest.raises(ValueError):
        chrome_trace_document([], time_scale=0.0)


def test_write_jsonl_round_trips(tmp_path):
    spans = [Span(1, 1, None, "req", "request", 0.0, 1.0)]
    events = [ActivationEvent(0.5, server=2, actor="a/1")]
    path = tmp_path / "trace.jsonl"
    assert write_jsonl(str(path), spans, events) == 2
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines[0]["type"] == "span" and lines[0]["cat"] == "request"
    assert lines[1]["type"] == "event" and lines[1]["kind"] == "activation"


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------
def test_critical_path_follows_latest_finishing_child():
    spans = [
        Span(1, 1, None, "req", "request", 0.0, 10.0),
        Span(1, 2, 1, "fast", "call", 1.0, 3.0),
        Span(1, 3, 1, "slow", "call", 1.0, 9.0),
        Span(1, 4, 3, "worker.compute", "stage.compute", 8.0, 9.0, 0, "worker"),
    ]
    path = critical_path(spans)
    assert [s.name for s in path] == ["req", "slow", "worker.compute"]
    assert critical_path([]) == []
    assert len(spans_by_trace(spans)) == 1


def test_stage_totals_window_and_cross_check():
    spans = [
        Span(1, 2, 1, "worker.compute", "stage.compute", 0.0, 1.0, 0, "worker"),
        Span(1, 3, 1, "worker.queue", "stage.queue", 0.0, 0.5, 0, "worker"),
        # completes outside the (0, 2] window -> excluded
        Span(2, 4, 1, "worker.compute", "stage.compute", 2.0, 3.0, 0, "worker"),
    ]
    totals = stage_totals(spans, t0=0.0, t1=2.0)
    assert totals["worker"]["compute"] == pytest.approx(1.0)
    assert totals["worker"]["queue"] == pytest.approx(0.5)

    error, components = cross_check(
        totals, {"worker": {"queue": 0.5, "ready": 0.0, "compute": 1.0,
                            "wait": 0.0}})
    assert error == pytest.approx(0.0)
    error, _ = cross_check(
        totals, {"worker": {"queue": 0.5, "ready": 0.0, "compute": 2.0,
                            "wait": 0.0}})
    assert error == pytest.approx(0.5)


def test_breakdown_shares_decomposes_e2e():
    spans = [
        Span(1, 1, None, "req", "request", 0.0, 10.0),
        Span(1, 2, 1, "worker.compute", "stage.compute", 1.0, 5.0, 0, "worker"),
        Span(1, 3, 1, "worker.queue", "stage.queue", 0.0, 1.0, 0, "worker"),
        Span(1, 4, 1, "net 0->1", "net", 5.0, 6.0, 1, "network"),
    ]
    shares = breakdown_shares(spans)
    assert shares["worker processing"] == pytest.approx(40.0)
    assert shares["worker queue"] == pytest.approx(10.0)
    assert shares["network"] == pytest.approx(10.0)
    assert shares["other"] == pytest.approx(40.0)
    assert breakdown_shares([]) == {}
