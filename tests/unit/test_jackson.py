"""Unit tests for the Jackson-network latency proxy (Eq. 1)."""

import pytest

from repro.queueing.jackson import StageLoad, jackson_latency, jackson_latency_with_penalty


def test_single_stage_matches_mm1():
    stage = StageLoad(arrival_rate=8.0, service_rate_per_thread=10.0)
    # mu = 1 thread * 10 = 10; T = 1/(10-8) = 0.5
    assert jackson_latency([stage], [1.0]) == pytest.approx(0.5)


def test_weighted_average_over_stages():
    stages = [
        StageLoad(arrival_rate=10.0, service_rate_per_thread=20.0),
        StageLoad(arrival_rate=30.0, service_rate_per_thread=20.0),
    ]
    threads = [1.0, 2.0]
    expected = (10.0 / (20.0 - 10.0) + 30.0 / (40.0 - 30.0)) / 40.0
    assert jackson_latency(stages, threads) == pytest.approx(expected)


def test_infeasible_allocation_returns_inf():
    stage = StageLoad(arrival_rate=10.0, service_rate_per_thread=5.0)
    assert jackson_latency([stage], [2.0]) == float("inf")  # mu == lambda
    assert jackson_latency([stage], [1.0]) == float("inf")


def test_zero_traffic_zero_latency():
    stage = StageLoad(arrival_rate=0.0, service_rate_per_thread=5.0)
    assert jackson_latency([stage], [1.0]) == 0.0


def test_penalty_added():
    stage = StageLoad(arrival_rate=8.0, service_rate_per_thread=10.0)
    base = jackson_latency([stage], [2.0])
    assert jackson_latency_with_penalty([stage], [2.0], eta=0.1) == pytest.approx(
        base + 0.2
    )


def test_penalty_not_added_to_infeasible():
    stage = StageLoad(arrival_rate=10.0, service_rate_per_thread=5.0)
    assert jackson_latency_with_penalty([stage], [1.0], eta=0.1) == float("inf")


def test_more_threads_monotonically_lower_base_latency():
    stage = StageLoad(arrival_rate=8.0, service_rate_per_thread=10.0)
    lat = [jackson_latency([stage], [t]) for t in (1.0, 2.0, 4.0, 8.0)]
    assert lat == sorted(lat, reverse=True)


def test_stage_load_validation():
    with pytest.raises(ValueError):
        StageLoad(arrival_rate=-1.0, service_rate_per_thread=1.0)
    with pytest.raises(ValueError):
        StageLoad(arrival_rate=1.0, service_rate_per_thread=0.0)
    with pytest.raises(ValueError):
        StageLoad(arrival_rate=1.0, service_rate_per_thread=1.0, cpu_fraction=0.0)


def test_length_mismatch_rejected():
    stage = StageLoad(arrival_rate=1.0, service_rate_per_thread=10.0)
    with pytest.raises(ValueError):
        jackson_latency([stage], [1.0, 2.0])
