"""Unit tests for runtime parameter estimation (§5.4)."""

import pytest

from repro.core.threads.estimator import (
    MeasuredStage,
    estimate_alpha,
    estimate_stage_loads,
    measure_windows,
)
from repro.seda.stage import StatsWindow


def ms(name, lam, z, x, blocking=False):
    return MeasuredStage(name=name, arrival_rate=lam, mean_z=z, mean_x=x,
                         blocking=blocking)


def test_alpha_from_pure_cpu_stages():
    # S0 stages: z = x + r, so alpha = r/x.
    measured = [
        ms("a", 100.0, z=0.0012, x=0.001),          # r/x = 0.2
        ms("b", 100.0, z=0.0024, x=0.002),          # r/x = 0.2
        ms("w", 100.0, z=0.010, x=0.001, blocking=True),  # excluded
    ]
    assert estimate_alpha(measured) == pytest.approx(0.2)


def test_alpha_zero_when_no_s0_stage_usable():
    measured = [ms("w", 10.0, z=0.01, x=0.001, blocking=True)]
    assert estimate_alpha(measured) == 0.0
    assert estimate_alpha([ms("idle", 0.0, z=0.0, x=0.0)]) == 0.0


def test_exact_recovery_of_s_and_beta():
    """Synthetic case with consistent alpha: the estimator must recover
    the true s_i and beta_i from (lambda, z, x) alone."""
    alpha = 0.25
    x_cpu, wait = 0.002, 0.006
    z_pure = x_cpu * (1 + alpha)                 # S0 stage
    z_block = x_cpu + wait + alpha * x_cpu       # blocking stage
    measured = [
        ms("pure", 500.0, z=z_pure, x=x_cpu),
        ms("block", 300.0, z=z_block, x=x_cpu, blocking=True),
    ]
    loads = estimate_stage_loads(measured)
    pure, block = loads
    assert pure.service_rate_per_thread == pytest.approx(1.0 / x_cpu)
    assert pure.cpu_fraction == pytest.approx(1.0)
    assert block.service_rate_per_thread == pytest.approx(1.0 / (x_cpu + wait))
    assert block.cpu_fraction == pytest.approx(x_cpu / (x_cpu + wait))


def test_arrival_rates_passed_through():
    loads = estimate_stage_loads([ms("a", 123.0, z=0.001, x=0.001)])
    assert loads[0].arrival_rate == 123.0


def test_idle_stage_gets_zero_load():
    loads = estimate_stage_loads([ms("idle", 0.0, z=0.0, x=0.0)])
    assert loads[0].arrival_rate == 0.0


def test_alpha_overestimate_clamped():
    """If the sampled z of a blocking stage is LESS than x(1+alpha) the
    busy-time estimate would go below x; it must clamp at x."""
    measured = [
        ms("hot", 100.0, z=0.004, x=0.001),              # alpha = 3
        ms("cool", 100.0, z=0.0011, x=0.001, blocking=True),
    ]
    loads = estimate_stage_loads(measured)
    cool = loads[1]
    assert cool.service_rate_per_thread <= 1.0 / 0.001 + 1e-9
    assert 0 < cool.cpu_fraction <= 1.0


def test_measure_windows_conversion():
    windows = {
        "recv": StatsWindow(elapsed=10.0, arrivals=1000, completions=990,
                            mean_z=0.002, mean_x=0.001, mean_queue_wait=0.0,
                            mean_ready=0.001),
        "worker": StatsWindow(elapsed=10.0, arrivals=500, completions=500,
                              mean_z=0.01, mean_x=0.002, mean_queue_wait=0.0,
                              mean_ready=0.002),
    }
    measured = measure_windows(windows, blocking_stages=("worker",))
    by_name = {m.name: m for m in measured}
    assert by_name["recv"].arrival_rate == 100.0
    assert not by_name["recv"].blocking
    assert by_name["worker"].blocking


def test_negative_measurements_rejected():
    with pytest.raises(ValueError):
        ms("bad", 1.0, z=-0.001, x=0.001)
