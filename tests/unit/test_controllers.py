"""Unit tests for the two runtime thread controllers (§5.1, §5.3)."""

import pytest

from repro.core.threads.controller import ModelBasedController, QueueLengthController
from repro.seda.emulator import SedaEmulator, StageProfile
from repro.seda.server import StagedServer
from repro.sim.engine import Simulator


def test_queue_controller_grows_backlogged_stage():
    sim = Simulator()
    server = StagedServer(sim, processors=8, switch_factor=0.0,
                          dispatch_overhead=0.0)
    stage = server.add_stage("s", threads=1)
    ctrl = QueueLengthController(sim, server, period=1.0, high_threshold=10,
                                 low_threshold=2)
    ctrl.start()
    # Flood the stage so the queue is long at the first tick.
    for _ in range(200):
        stage.submit(0.05, lambda ev: None)
    sim.run(until=1.05)
    assert stage.threads == 2


def test_queue_controller_shrinks_idle_stage_to_floor():
    sim = Simulator()
    server = StagedServer(sim, processors=8, switch_factor=0.0,
                          dispatch_overhead=0.0)
    stage = server.add_stage("s", threads=4)
    ctrl = QueueLengthController(sim, server, period=1.0, high_threshold=100,
                                 low_threshold=10)
    ctrl.start()
    sim.run(until=5.5)
    assert stage.threads == 1  # decremented once per tick, floored at 1


def test_queue_controller_respects_max_threads():
    sim = Simulator()
    server = StagedServer(sim, processors=8, switch_factor=0.0,
                          dispatch_overhead=0.0)
    stage = server.add_stage("s", threads=1)
    ctrl = QueueLengthController(sim, server, period=1.0, high_threshold=1,
                                 low_threshold=0, max_threads=3)
    ctrl.start()

    def keep_flooding():
        for _ in range(50):
            stage.submit(1.0, lambda ev: None)
        sim.schedule(1.0, keep_flooding)

    keep_flooding()
    sim.run(until=10.0)
    assert stage.threads == 3


def test_queue_controller_threshold_validation():
    sim = Simulator()
    server = StagedServer(sim, processors=2)
    server.add_stage("s")
    with pytest.raises(ValueError):
        QueueLengthController(sim, server, high_threshold=5, low_threshold=5)


def test_queue_controller_records_history():
    sim = Simulator()
    server = StagedServer(sim, processors=2, switch_factor=0.0)
    server.add_stage("s", threads=1)
    ctrl = QueueLengthController(sim, server, period=1.0)
    ctrl.start()
    sim.run(until=3.5)
    assert len(ctrl.queue_history["s"]) == 3
    assert len(ctrl.thread_history["s"]) == 3


def test_model_controller_reallocates_loaded_emulator():
    sim = Simulator()
    emu = SedaEmulator(
        sim,
        [
            StageProfile("light", compute=0.0002, threads=8),
            StageProfile("heavy", compute=0.002, threads=1),
        ],
        arrival_rate=400.0,
        processors=8,
        switch_factor=0.0,
    )
    ctrl = ModelBasedController(sim, emu.server, eta=1e-3, period=2.0,
                                min_events=10)
    emu.start()
    ctrl.start()
    sim.run(until=10.0)
    alloc = emu.server.thread_allocation()
    # heavy needs lambda/s = 400*0.002 = 0.8 -> ~1-2 threads; light needs
    # far less.  The over-allocated light stage must shrink.
    assert alloc["light"] <= 2
    assert 1 <= alloc["heavy"] <= 3
    assert ctrl.allocations  # it actually acted
    assert ctrl.allocations[-1].feasible


def test_model_controller_skips_quiet_windows():
    sim = Simulator()
    server = StagedServer(sim, processors=4)
    server.add_stage("s", threads=3)
    ctrl = ModelBasedController(sim, server, period=1.0, min_events=50)
    ctrl.start()
    sim.run(until=5.5)
    assert server.stage("s").threads == 3  # untouched: no traffic
    assert not ctrl.allocations


def test_model_controller_overload_fallback_is_proportional():
    sim = Simulator()
    emu = SedaEmulator(
        sim,
        [
            StageProfile("a", compute=0.01, threads=2),
            StageProfile("b", compute=0.03, threads=2),
        ],
        arrival_rate=400.0,   # demand = 400*(0.04) = 16 cpu-s/s >> 4 cores
        processors=4,
        switch_factor=0.0,
    )
    ctrl = ModelBasedController(sim, emu.server, period=2.0, min_events=10)
    emu.start()
    ctrl.start()
    sim.run(until=4.5)
    assert ctrl.allocations
    event = ctrl.allocations[-1]
    assert not event.feasible
    # b demands 3x the CPU of a -> gets the larger share.
    assert event.allocation["b"] >= event.allocation["a"]


def test_model_controller_respects_clamps():
    sim = Simulator()
    emu = SedaEmulator(
        sim,
        [StageProfile("only", compute=0.001, threads=8)],
        arrival_rate=100.0,
        processors=8,
        switch_factor=0.0,
    )
    ctrl = ModelBasedController(sim, emu.server, eta=1e-3, period=2.0,
                                min_events=10, min_threads=2, max_threads=4)
    emu.start()
    ctrl.start()
    sim.run(until=6.0)
    assert 2 <= emu.server.stage("only").threads <= 4


def test_controller_period_validation():
    sim = Simulator()
    server = StagedServer(sim, processors=2)
    with pytest.raises(ValueError):
        ModelBasedController(sim, server, period=0.0)
