"""Unit tests for the network model."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.sim.rng import RngRegistry


def test_delivery_after_latency():
    sim = Simulator()
    net = Network(sim, RngRegistry(0), base_latency=0.001, jitter=0.0)
    arrived = []
    net.deliver(100, lambda: arrived.append(sim.now))
    sim.run()
    assert arrived == [pytest.approx(0.001)]


def test_jitter_varies_latency_but_stays_positive():
    sim = Simulator()
    net = Network(sim, RngRegistry(0), base_latency=0.001, jitter=0.3)
    draws = [net.latency() for _ in range(1_000)]
    assert all(d > 0 for d in draws)
    assert len(set(draws)) > 100  # actually varying


def test_jitter_deterministic_per_seed():
    a = Network(Simulator(), RngRegistry(9), jitter=0.2)
    b = Network(Simulator(), RngRegistry(9), jitter=0.2)
    assert [a.latency() for _ in range(10)] == [b.latency() for _ in range(10)]


def test_counters_track_messages_and_bytes():
    sim = Simulator()
    net = Network(sim, RngRegistry(0), jitter=0.0)
    net.deliver(100, lambda: None)
    net.deliver(250, lambda: None)
    assert net.messages_sent == 2
    assert net.bytes_sent == 350


def test_callback_args_passed_through():
    sim = Simulator()
    net = Network(sim, RngRegistry(0), jitter=0.0)
    got = []
    net.deliver(10, lambda a, b: got.append((a, b)), "x", 42)
    sim.run()
    assert got == [("x", 42)]
