"""The ActorId intern-space guard.

CommTable packs a communication edge as ``(src.seq << 32) | dst.seq`` —
one machine word per edge.  A seq at 2^32 would silently alias distinct
edges (corrupting comm graphs and the migration decisions built on
them), so interning must refuse to hand one out.  Exhausting the real
intern space takes 2^32 allocations, so the test swaps in a dict whose
``len`` reports the boundary instead.
"""

import pytest

from repro.actor.ids import ActorId


class _HugeDict(dict):
    """Reports an intern population at the 32-bit boundary."""

    def __init__(self, size):
        super().__init__()
        self._size = size

    def __len__(self):
        return self._size


def test_seq_at_boundary_is_still_granted():
    real = ActorId._intern
    try:
        ActorId._intern = _HugeDict((1 << 32) - 1)
        aid = ActorId("guard-test", "last-one")
        assert aid.seq == (1 << 32) - 1
    finally:
        ActorId._intern = real


def test_seq_past_boundary_raises_instead_of_aliasing():
    real = ActorId._intern
    try:
        ActorId._intern = _HugeDict(1 << 32)
        with pytest.raises(OverflowError, match="intern space exhausted"):
            ActorId("guard-test", "one-too-many")
    finally:
        ActorId._intern = real


def test_interning_still_canonical():
    a = ActorId("guard-test", "same")
    b = ActorId("guard-test", "same")
    assert a is b
    assert a.seq == b.seq
