"""Each lint rule: fires on the bad idiom, stays silent on the good one."""

import pytest

from repro.analysis import all_rules, get_rule, lint_source


def rules_fired(source: str, path: str = "src/repro/fake.py") -> set:
    return {f.rule for f in lint_source(source, path).active}


# ----------------------------------------------------------------------
# (bad, good) source pairs per rule; linted under a src/repro path so
# every path-scoped rule is in its restricted mode.
# ----------------------------------------------------------------------
CASES = {
    "DET-WALLCLOCK": (
        "import time\nnow = time.time()\n",
        "def f(sim):\n    return sim.now\n",
    ),
    "DET-GLOBAL-RNG": (
        "import random\nx = random.random()\n",
        "def f(rngs):\n    return rngs.stream('workload.arrivals').random()\n",
    ),
    "DET-SET-ITER": (
        "for x in {3, 1, 2}:\n    print(x)\n",
        "for x in sorted({3, 1, 2}):\n    print(x)\n",
    ),
    "DET-ID-ORDER": (
        "out = sorted(items, key=id)\n",
        "out = sorted(items, key=lambda a: a.actor_id)\n",
    ),
    "DET-FLOAT-SUM": (
        "total = sum({0.125, 0.25})\n",
        "total = sum(sorted({0.125, 0.25}))\n",
    ),
    "ACT-FOREIGN-STATE": (
        "class A(Actor):\n"
        "    def poke(self, other):\n"
        "        other.count = 1\n",
        "class A(Actor):\n"
        "    def poke(self):\n"
        "        self.count = 1\n",
    ),
    "ACT-BLOCKING-IO": (
        "import time\n"
        "class A(Actor):\n"
        "    def nap(self):\n"
        "        time.sleep(1)\n",
        "class A(Actor):\n"
        "    WAIT = {'nap': 1.0}\n"
        "    def nap(self):\n"
        "        return None\n",
    ),
    "ACT-DIRECT-SEND": (
        "class A(Actor):\n"
        "    def go(self, ref: ActorRef):\n"
        "        return ref.ping()\n",
        "class A(Actor):\n"
        "    def go(self, ref: ActorRef):\n"
        "        yield Call(ref, 'ping')\n",
    ),
    "API-DEPRECATED": (
        "cfg = ClusterConfig(call_timeout=0.5)\n",
        "cfg = ClusterConfig(num_servers=4)\n"
        "res = ResilienceConfig(call_timeout=0.5)\n",
    ),
    "API-EXPORT-ALL": (
        "__all__ = ['present', 'missing']\npresent = 1\n",
        "__all__ = ['present']\npresent = 1\n",
    ),
    "WAIVER-JUSTIFY": (
        "# repro: waive[DET-WALLCLOCK]\nx = 1\n",
        "import time\n"
        "now = time.time()  # repro: waive[DET-WALLCLOCK] -- startup banner\n",
    ),
}


@pytest.mark.parametrize("rule", sorted(CASES))
def test_rule_fires_on_bad_source(rule):
    bad, _ = CASES[rule]
    assert rule in rules_fired(bad)


@pytest.mark.parametrize("rule", sorted(CASES))
def test_rule_silent_on_good_source(rule):
    _, good = CASES[rule]
    assert rule not in rules_fired(good)


def test_every_registered_rule_has_a_case():
    assert {r.name for r in all_rules()} == set(CASES)


def test_registry_lookup_and_metadata():
    for rule_cls in all_rules():
        assert get_rule(rule_cls.name) is rule_cls
        assert rule_cls.description and rule_cls.rationale


# ----------------------------------------------------------------------
# Edge cases the heuristics are built around
# ----------------------------------------------------------------------
def test_wallclock_allows_measurement_clocks_under_bench_only():
    src = "import time\nt0 = time.perf_counter()\n"
    assert "DET-WALLCLOCK" in rules_fired(src, "src/repro/sim/engine.py")
    assert "DET-WALLCLOCK" not in rules_fired(src, "src/repro/bench/perf.py")
    assert "DET-WALLCLOCK" not in rules_fired(src, "benchmarks/test_x.py")
    # time.time() is banned even under bench paths.
    src = "import time\nt0 = time.time()\n"
    assert "DET-WALLCLOCK" in rules_fired(src, "src/repro/bench/perf.py")


def test_wallclock_resolves_import_aliases():
    src = "from time import perf_counter as pc\nt0 = pc()\n"
    assert "DET-WALLCLOCK" in rules_fired(src)


def test_seeded_random_instance_is_allowed():
    assert "DET-GLOBAL-RNG" not in rules_fired(
        "import random\nrng = random.Random(42)\n")
    assert "DET-GLOBAL-RNG" in rules_fired(
        "import random\nrng = random.Random()\n")


def test_set_iter_tracks_names_and_self_attributes():
    src = (
        "pending = {1, 2}\n"
        "for x in pending:\n"
        "    print(x)\n"
    )
    assert "DET-SET-ITER" in rules_fired(src)
    src = (
        "class T:\n"
        "    def __init__(self):\n"
        "        self.live = set()\n"
        "    def drain(self):\n"
        "        return [x for x in self.live]\n"
    )
    assert "DET-SET-ITER" in rules_fired(src)


def test_set_iter_exempts_order_free_consumers():
    for consumer in ("sorted", "min", "max", "len", "any"):
        assert "DET-SET-ITER" not in rules_fired(
            f"out = {consumer}({{3, 1, 2}})\n"), consumer


def test_blocking_io_unrestricted_outside_stage_modules():
    src = "f = open('x')\n"
    assert "ACT-BLOCKING-IO" not in rules_fired(src, "src/repro/cli.py")
    assert "ACT-BLOCKING-IO" in rules_fired(src, "src/repro/seda/stage.py")


def test_export_rule_skips_pep562_modules():
    src = (
        "__all__ = ['lazy_thing']\n"
        "def __getattr__(name):\n"
        "    raise AttributeError(name)\n"
    )
    assert "API-EXPORT-ALL" not in rules_fired(src)


def test_parse_error_is_an_active_finding():
    report = lint_source("def broken(:\n", "src/repro/x.py")
    assert not report.ok
    assert report.parse_errors[0].rule == "PARSE-ERROR"
