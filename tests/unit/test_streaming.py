"""Unit tests for the streaming partitioner (Stanton & Kliot [31])."""

import random
from collections import Counter

import pytest

from repro.graph.generators import clustered_graph, random_graph
from repro.graph.quality import cut_cost, max_imbalance
from repro.graph.streaming import STREAMING_HEURISTICS, streaming_partition


def halo_graph(seed=0):
    return clustered_graph(40, 8, intra_weight=10.0, inter_edges_per_cluster=1,
                           rng=random.Random(seed))


def test_every_heuristic_covers_all_vertices():
    g = halo_graph()
    for heuristic in STREAMING_HEURISTICS:
        assignment = streaming_partition(g, 4, heuristic=heuristic,
                                         rng=random.Random(1))
        assert set(assignment) == set(g.vertices())
        assert set(assignment.values()) <= set(range(4))


def test_capacity_respected():
    g = halo_graph()
    n = g.num_vertices
    for heuristic in ("balanced", "greedy", "fennel"):
        assignment = streaming_partition(g, 4, heuristic=heuristic, slack=0.1,
                                         rng=random.Random(2))
        sizes = Counter(assignment.values())
        assert max(sizes.values()) <= (n / 4) * 1.1 + 1


def test_balanced_heuristic_is_perfectly_balanced():
    g = random_graph(101, rng=random.Random(3))
    assignment = streaming_partition(g, 4, heuristic="balanced",
                                     rng=random.Random(4))
    assert max_imbalance(assignment, 4) <= 1


def test_greedy_beats_balanced_and_hash_on_clustered_graph():
    # Clique-shaped clusters: with random arrival order a member usually
    # finds *some* clustermate already placed (hub-and-spoke clusters
    # defeat streaming heuristics when the hub arrives late).
    g = clustered_graph(40, 6, intra_weight=10.0, inter_edges_per_cluster=1,
                        hub_and_spoke=False, rng=random.Random(0))
    cuts = {}
    for heuristic in ("balanced", "hash", "greedy", "fennel"):
        assignment = streaming_partition(g, 4, heuristic=heuristic,
                                         rng=random.Random(5))
        cuts[heuristic] = cut_cost(g, assignment)
    assert cuts["greedy"] < 0.75 * cuts["balanced"]
    assert cuts["greedy"] < 0.75 * cuts["hash"]
    assert cuts["fennel"] < cuts["balanced"]


def test_hash_is_deterministic_and_order_independent():
    g = halo_graph()
    a = streaming_partition(g, 4, heuristic="hash", rng=random.Random(1))
    order = sorted(g.vertices(), reverse=True)
    b = streaming_partition(g, 4, heuristic="hash", order=order)
    assert a == b


def test_explicit_order_honored_by_greedy():
    # BFS-like order (cluster by cluster) should give greedy near-perfect
    # locality: each cluster's members see their mates already placed.
    g = clustered_graph(16, 8, intra_weight=10.0, inter_edges_per_cluster=0)
    order = sorted(g.vertices())  # clusters are contiguous id ranges
    assignment = streaming_partition(g, 4, heuristic="greedy", order=order)
    assert cut_cost(g, assignment) <= 0.2 * g.total_weight()


def test_empty_graph():
    from repro.graph.comm_graph import CommGraph

    assert streaming_partition(CommGraph(), 4) == {}


def test_validation():
    g = halo_graph()
    with pytest.raises(ValueError):
        streaming_partition(g, 0)
    with pytest.raises(ValueError):
        streaming_partition(g, 4, heuristic="nope")
