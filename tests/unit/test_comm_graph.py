"""Unit tests for CommGraph."""

import pytest

from repro.graph.comm_graph import CommGraph


def test_add_edge_creates_vertices_and_symmetry():
    g = CommGraph()
    g.add_edge("a", "b", 2.0)
    assert "a" in g and "b" in g
    assert g.weight("a", "b") == 2.0
    assert g.weight("b", "a") == 2.0
    assert g.num_edges == 1


def test_repeated_add_accumulates_weight():
    g = CommGraph()
    g.add_edge(1, 2, 1.0)
    g.add_edge(1, 2, 3.0)
    assert g.weight(1, 2) == 4.0
    assert g.num_edges == 1


def test_self_loop_rejected():
    g = CommGraph()
    with pytest.raises(ValueError):
        g.add_edge("a", "a")


def test_nonpositive_weight_rejected():
    g = CommGraph()
    with pytest.raises(ValueError):
        g.add_edge("a", "b", 0.0)


def test_degree_is_weighted():
    g = CommGraph()
    g.add_edge("hub", "x", 2.0)
    g.add_edge("hub", "y", 3.0)
    assert g.degree("hub") == 5.0
    assert g.degree("x") == 2.0


def test_edges_yields_each_once():
    g = CommGraph()
    g.add_edge(1, 2, 1.0)
    g.add_edge(2, 3, 2.0)
    edges = sorted((min(u, v), max(u, v), w) for u, v, w in g.edges())
    assert edges == [(1, 2, 1.0), (2, 3, 2.0)]
    assert g.total_weight() == 3.0


def test_remove_vertex_cleans_incident_edges():
    g = CommGraph()
    g.add_edge(1, 2)
    g.add_edge(2, 3)
    g.remove_vertex(2)
    assert 2 not in g
    assert g.weight(1, 2) == 0.0
    assert g.num_edges == 0
    assert g.degree(1) == 0.0


def test_isolated_vertex():
    g = CommGraph()
    g.add_vertex("lonely")
    assert "lonely" in g
    assert g.degree("lonely") == 0.0
    assert g.num_vertices == 1


def test_subgraph_restricts_edges():
    g = CommGraph()
    g.add_edge(1, 2, 1.0)
    g.add_edge(2, 3, 1.0)
    g.add_edge(3, 4, 1.0)
    sub = g.subgraph([1, 2, 3])
    assert sub.num_vertices == 3
    assert sub.weight(1, 2) == 1.0
    assert sub.weight(3, 4) == 0.0


def test_copy_is_independent():
    g = CommGraph()
    g.add_edge(1, 2, 1.0)
    clone = g.copy()
    clone.add_edge(1, 2, 5.0)
    assert g.weight(1, 2) == 1.0
    assert clone.weight(1, 2) == 6.0


def test_unknown_weight_is_zero():
    g = CommGraph()
    g.add_vertex(1)
    assert g.weight(1, 99) == 0.0
    assert g.weight(98, 99) == 0.0
