"""Property tests: candidate selection matches a brute-force reference."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioning.candidate import candidate_set, rank_peers
from repro.core.partitioning.transfer_score import transfer_score
from repro.core.partitioning.view import PartitionView


@st.composite
def views(draw):
    servers = draw(st.integers(2, 4))
    n_local = draw(st.integers(0, 10))
    n_remote = draw(st.integers(1, 10))
    remote_locs = {
        f"r{i}": draw(st.integers(0, servers - 1)) for i in range(n_remote)
    }
    edges = {}
    for i in range(n_local):
        nbrs = {}
        for j in range(n_local):
            if i != j and draw(st.booleans()):
                nbrs[f"v{j}"] = draw(st.floats(0.1, 9.0, allow_nan=False))
        for r in remote_locs:
            if draw(st.booleans()):
                nbrs[r] = draw(st.floats(0.1, 9.0, allow_nan=False))
        edges[f"v{i}"] = nbrs
    sizes = {p: draw(st.integers(0, 20)) for p in range(servers)}
    view = PartitionView(
        server_id=0,
        edges=edges,
        locate=remote_locs.get,
        size=sizes[0],
        peer_sizes=sizes,
    )
    return view, servers


@given(views(), st.integers(1, 6))
@settings(max_examples=200, deadline=None)
def test_candidate_set_is_exact_top_k_positive(view_and_servers, k):
    view, servers = view_and_servers
    for target in range(1, servers):
        cands = candidate_set(view, target, k)
        # brute-force reference
        scored = []
        for v in view.local_vertices():
            s = transfer_score(view.neighbors(v), view.locate, 0, target)
            if s > 0:
                scored.append((s, str(v)))
        expected = heapq.nlargest(k, scored)
        got = [(c.score, str(c.vertex)) for c in cands]
        # Tie scores make the specific vertex choice implementation-
        # defined: require the same score multiset and that every pick
        # is a genuinely scored vertex (i.e. *a* valid exact top-k).
        assert sorted((s for s, _ in got), reverse=True) == \
            sorted((s for s, _ in expected), reverse=True)
        assert set(got) <= set(scored)
        # scores strictly positive and sorted descending
        assert all(c.score > 0 for c in cands)
        assert [c.score for c in cands] == sorted(
            (c.score for c in cands), reverse=True)


@given(views(), st.integers(1, 6))
@settings(max_examples=150, deadline=None)
def test_rank_peers_ordering_and_completeness(view_and_servers, k):
    view, servers = view_and_servers
    proposals = rank_peers(view, k)
    totals = [p.total_score for p in proposals]
    assert totals == sorted(totals, reverse=True)
    assert all(t > 0 for t in totals)
    listed = {p.peer for p in proposals}
    for target in range(1, servers):
        has_candidates = bool(candidate_set(view, target, k))
        assert (target in listed) == has_candidates
