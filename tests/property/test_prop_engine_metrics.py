"""Property tests: event-engine ordering and percentile correctness."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.metrics import LatencyRecorder, percentile
from repro.sim.engine import Simulator


@given(st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1,
                max_size=100))
@settings(max_examples=200, deadline=None)
def test_events_always_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.lists(st.floats(0.0, 50.0, allow_nan=False), min_size=2,
                max_size=50),
       st.data())
@settings(max_examples=100, deadline=None)
def test_cancellation_removes_exactly_the_cancelled(delays, data):
    sim = Simulator()
    events = []
    fired = []
    for i, d in enumerate(delays):
        events.append(sim.schedule(d, fired.append, i))
    to_cancel = data.draw(st.sets(st.integers(0, len(delays) - 1)))
    for i in to_cancel:
        events[i].cancel()
    sim.run()
    assert sorted(fired) == sorted(set(range(len(delays))) - to_cancel)


@given(st.lists(st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
                min_size=1, max_size=300),
       st.floats(0.0, 100.0))
@settings(max_examples=200, deadline=None)
def test_percentile_matches_numpy(samples, q):
    assert percentile(samples, q) == np.float64(np.percentile(samples, q)).item() or \
        abs(percentile(samples, q) - float(np.percentile(samples, q))) <= 1e-6 * max(
            1.0, abs(float(np.percentile(samples, q))))


@given(st.lists(st.floats(0.0, 1e3, allow_nan=False), min_size=1,
                max_size=500))
@settings(max_examples=100, deadline=None)
def test_recorder_mean_and_count_exact_with_reservoir(samples):
    rec = LatencyRecorder(reservoir=32)
    for s in samples:
        rec.record(s)
    assert rec.count == len(samples)
    assert abs(rec.mean - sum(samples) / len(samples)) <= 1e-6 * max(
        1.0, sum(samples))
    assert len(rec._samples) <= 32
