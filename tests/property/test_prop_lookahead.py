"""Property tests: lookahead inference is monotone.

The PAR lookahead report promises a *conservative* window bound, so the
inference must be monotone in the evidence: removing an interaction
edge, or raising any network model's latency floor, can never make a
reported lookahead smaller (min-composition over a fixed scope).  A
refactor that broke this could silently loosen the window bound the
sharded engine relies on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.par.lookahead import (
    NetworkModel,
    compute_edge_lookaheads,
    min_model_latency,
)

_PATHS = ["a.py", "b.py", "c.py", "d.py"]
_TYPES = ["game", "player", "room", "user", "router"]


def _model(path, line, base, jitter, resolved):
    floor = min_model_latency(base, jitter) if resolved else None
    return NetworkModel(path=path, line=line, kind="ClusterConfig",
                        base=base if resolved else None,
                        jitter=jitter if resolved else None,
                        min_latency=floor)


@st.composite
def scenarios(draw):
    models = [
        _model(draw(st.sampled_from(_PATHS)), line,
               draw(st.floats(1e-6, 1.0, allow_nan=False)),
               draw(st.floats(0.0, 0.5, allow_nan=False)),
               draw(st.booleans()))
        for line in range(draw(st.integers(0, 6)))
    ]
    pair_pool = sorted({tuple(sorted(p)) for p in zip(
        draw(st.lists(st.sampled_from(_TYPES), min_size=0, max_size=6)),
        draw(st.lists(st.sampled_from(_TYPES), min_size=6, max_size=6)))
        if p[0] != p[1]})
    pair_paths = {
        pair: draw(st.sets(st.sampled_from(_PATHS), max_size=3))
        for pair in pair_pool
    }
    return models, pair_pool, pair_paths


@given(scenarios(), st.integers(0, 5),
       st.floats(0.0, 2.0, allow_nan=False), st.data())
@settings(max_examples=120, deadline=None)
def test_raising_a_floor_never_decreases_any_lookahead(
        scenario, which, delta, data):
    models, pairs, pair_paths = scenario
    before = compute_edge_lookaheads(pairs, pair_paths, models)
    if not models:
        return
    idx = which % len(models)
    victim = models[idx]
    raised = NetworkModel(
        path=victim.path, line=victim.line, kind=victim.kind,
        base=victim.base, jitter=victim.jitter,
        min_latency=(None if victim.min_latency is None
                     else victim.min_latency + delta))
    after = compute_edge_lookaheads(
        pairs, pair_paths, models[:idx] + [raised] + models[idx + 1:])
    for pair in pairs:
        assert after[pair][0] >= before[pair][0]


@given(scenarios(), st.data())
@settings(max_examples=120, deadline=None)
def test_removing_edges_never_decreases_surviving_lookaheads(
        scenario, data):
    models, pairs, pair_paths = scenario
    before = compute_edge_lookaheads(pairs, pair_paths, models)
    survivors = data.draw(st.lists(st.sampled_from(pairs), unique=True)
                          if pairs else st.just([]))
    after = compute_edge_lookaheads(survivors, pair_paths, models)
    for pair in survivors:
        assert after[pair][0] >= before[pair][0]
    # ... and the window bound (min over reported edges) is monotone too
    if survivors and before:
        assert min(la for la, _ in after.values()) >= \
            min(la for la, _ in before.values())


@given(st.floats(0.0, 1.0, allow_nan=False),
       st.floats(0.0, 1.0, allow_nan=False),
       st.floats(0.0, 0.5, allow_nan=False),
       st.floats(0.0, 0.5, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_floor_monotone_in_base_antitone_in_jitter(b1, b2, j1, j2):
    lo_b, hi_b = sorted((b1, b2))
    lo_j, hi_j = sorted((j1, j2))
    # never above the base, never negative
    assert 0.0 <= min_model_latency(hi_b, hi_j) <= hi_b
    # more base latency -> at least as large a floor
    assert min_model_latency(hi_b, lo_j) >= min_model_latency(lo_b, lo_j)
    # more jitter -> a wider conservative tail -> at most as large
    assert min_model_latency(lo_b, hi_j) <= min_model_latency(lo_b, lo_j)
