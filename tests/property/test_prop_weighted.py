"""Property tests for the size-aware exchange (§4.2 extension)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioning.candidate import Candidate
from repro.core.partitioning.exchange import greedy_exchange


@st.composite
def weighted_instances(draw):
    n_s = draw(st.integers(0, 6))
    n_t = draw(st.integers(0, 6))
    s = [Candidate(f"s{i}", draw(st.floats(-5, 10, allow_nan=False)))
         for i in range(n_s)]
    t = [Candidate(f"t{i}", draw(st.floats(-5, 10, allow_nan=False)))
         for i in range(n_t)]
    sizes = {
        c.vertex: draw(st.floats(0.5, 8.0, allow_nan=False))
        for c in s + t
    }
    size_p = draw(st.floats(0.0, 80.0, allow_nan=False))
    size_q = draw(st.floats(0.0, 80.0, allow_nan=False))
    delta = draw(st.floats(0.0, 20.0, allow_nan=False))
    return s, t, sizes, size_p, size_q, delta


@given(weighted_instances())
@settings(max_examples=200, deadline=None)
def test_weighted_balance_never_worsened_beyond_delta(instance):
    s, t, sizes, size_p, size_q, delta = instance
    out = greedy_exchange(s, t, size_p, size_q, delta, vertex_sizes=sizes)
    moved_q = sum(sizes[v] for v in out.accepted)
    moved_p = sum(sizes[v] for v in out.returned)
    final_gap = abs((size_p - moved_q + moved_p) - (size_q + moved_q - moved_p))
    if abs(size_p - size_q) <= delta:
        assert final_gap <= delta + 1e-9
    else:
        # started violated: the procedure may only shrink or hold the gap
        assert final_gap <= abs(size_p - size_q) + 1e-9


@given(weighted_instances())
@settings(max_examples=200, deadline=None)
def test_weighted_matches_unit_sizes_when_uniform(instance):
    s, t, _, size_p, size_q, delta = instance
    uniform = {c.vertex: 1.0 for c in s + t}
    a = greedy_exchange(s, t, int(size_p), int(size_q), delta)
    b = greedy_exchange(s, t, int(size_p), int(size_q), delta,
                        vertex_sizes=uniform)
    assert a.accepted == b.accepted
    assert a.returned == b.returned
