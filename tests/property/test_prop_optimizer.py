"""Property tests: Theorem 2's closed form is actually optimal."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.threads.model import ThreadAllocationProblem
from repro.core.threads.optimizer import integerize, solve_closed_form, solve_fractional
from repro.queueing.jackson import StageLoad


@st.composite
def problems(draw):
    k = draw(st.integers(1, 5))
    stages = []
    for i in range(k):
        lam = draw(st.floats(1.0, 500.0, allow_nan=False))
        s = draw(st.floats(50.0, 2000.0, allow_nan=False))
        beta = draw(st.floats(0.2, 1.0, allow_nan=False))
        stages.append(StageLoad(lam, s, beta, name=f"s{i}"))
    p = draw(st.integers(2, 16))
    eta = draw(st.floats(1e-5, 1e-2, allow_nan=False))
    return ThreadAllocationProblem(stages=stages, processors=p, eta=eta)


@given(problems(), st.randoms(use_true_random=False))
@settings(max_examples=150, deadline=None)
def test_closed_form_beats_random_feasible_points(problem, rng):
    closed = solve_closed_form(problem)
    assume(closed is not None)
    best = problem.objective(closed)
    lower = problem.min_feasible_threads()
    for _ in range(20):
        candidate = [lo + rng.uniform(0.001, 5.0) for lo in lower]
        if not problem.satisfies_cpu_constraint(candidate):
            continue
        assert problem.objective(candidate) >= best - 1e-9


@given(problems())
@settings(max_examples=150, deadline=None)
def test_closed_form_within_cpu_budget(problem):
    closed = solve_closed_form(problem)
    assume(closed is not None)
    # Theorem 2's premise eta >= zeta guarantees the budget holds.
    assert problem.satisfies_cpu_constraint(closed, tol=1e-6)


@given(problems())
@settings(max_examples=150, deadline=None)
def test_fractional_solution_always_stable(problem):
    t = solve_fractional(problem)
    assume(t is not None)
    for ti, stage in zip(t, problem.stages):
        if stage.arrival_rate > 0:
            assert ti * stage.service_rate_per_thread > stage.arrival_rate - 1e-9


@given(problems())
@settings(max_examples=150, deadline=None)
def test_integerization_feasible_and_stable(problem):
    t = solve_fractional(problem)
    assume(t is not None)
    integral = integerize(problem, t)
    assert all(isinstance(x, int) and x >= 1 for x in integral)
    obj = problem.objective(integral)
    assert math.isfinite(obj) or not problem.satisfies_cpu_constraint(integral)
