"""Property tests: Space-Saving guarantees (Metwally et al. 2005)."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.spacesaving import SpaceSaving

streams = st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                   max_size=400)
capacities = st.integers(min_value=1, max_value=12)


@given(streams, capacities)
@settings(max_examples=200, deadline=None)
def test_counts_bracket_truth(stream, capacity):
    """For every monitored key: count - error <= true count <= count."""
    ss = SpaceSaving(capacity)
    truth = Counter()
    for key in stream:
        ss.offer(key)
        truth[key] += 1
    for key, estimate in ss.items():
        assert estimate >= truth[key]
        assert ss.guaranteed_count(key) <= truth[key]


@given(streams, capacities)
@settings(max_examples=200, deadline=None)
def test_heavy_hitters_always_monitored(stream, capacity):
    """Any key with true count > N/capacity must be in the summary."""
    ss = SpaceSaving(capacity)
    truth = Counter()
    for key in stream:
        ss.offer(key)
        truth[key] += 1
    threshold = len(stream) / capacity
    for key, count in truth.items():
        if count > threshold:
            assert key in ss


@given(streams, capacities)
@settings(max_examples=100, deadline=None)
def test_size_never_exceeds_capacity(stream, capacity):
    ss = SpaceSaving(capacity)
    for key in stream:
        ss.offer(key)
        assert len(ss) <= capacity


@given(streams, capacities)
@settings(max_examples=100, deadline=None)
def test_total_weight_preserved(stream, capacity):
    ss = SpaceSaving(capacity)
    for key in stream:
        ss.offer(key)
    assert ss.total_weight == len(stream)
    # sum of monitored counts >= stream length can exceed truth due to
    # overestimation, but never undershoots the monitored keys' truth.
    assert sum(c for _, c in ss.items()) >= 0


@given(streams, capacities,
       st.floats(min_value=0.1, max_value=1.0))
@settings(max_examples=100, deadline=None)
def test_decay_preserves_ordering(stream, capacity, factor):
    ss = SpaceSaving(capacity)
    for key in stream:
        ss.offer(key)
    before = [k for k, _ in ss.top(len(ss))]
    ss.decay(factor)
    after = [k for k, _ in ss.top(len(ss))]
    assert before == after  # uniform decay cannot reorder
