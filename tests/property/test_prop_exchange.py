"""Property tests: the greedy exchange procedure's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioning.candidate import Candidate
from repro.core.partitioning.exchange import greedy_exchange


@st.composite
def exchange_instances(draw):
    n_s = draw(st.integers(0, 8))
    n_t = draw(st.integers(0, 8))
    s_names = [f"s{i}" for i in range(n_s)]
    t_names = [f"t{i}" for i in range(n_t)]
    everyone = s_names + t_names

    def cands(names):
        out = []
        for name in names:
            score = draw(st.floats(-10, 10, allow_nan=False))
            edges = {}
            for other in everyone:
                if other != name and draw(st.booleans()):
                    edges[other] = draw(st.floats(0.1, 5.0, allow_nan=False))
            out.append(Candidate(name, score, edges))
        return out

    size_p = draw(st.integers(0, 40))
    size_q = draw(st.integers(0, 40))
    delta = draw(st.integers(0, 10))
    return cands(s_names), cands(t_names), size_p, size_q, delta


@given(exchange_instances())
@settings(max_examples=300, deadline=None)
def test_invariants(instance):
    s, t, size_p, size_q, delta = instance
    out = greedy_exchange(s, t, size_p, size_q, delta)

    s_names = {c.vertex for c in s}
    t_names = {c.vertex for c in t}

    # 1. No duplicates, and every move comes from the right side.
    assert len(set(out.accepted)) == len(out.accepted)
    assert len(set(out.returned)) == len(out.returned)
    assert set(out.accepted) <= s_names
    assert set(out.returned) <= t_names

    # 2. The final pairwise balance respects delta whenever the starting
    #    sizes did (the procedure never worsens an already-balanced pair
    #    beyond delta).
    a, b = len(out.accepted), len(out.returned)
    if abs(size_p - size_q) <= delta:
        assert abs((size_p - a + b) - (size_q + a - b)) <= delta

    # 3. Estimated gain is the sum of positive scores at mark time.
    assert out.estimated_gain >= 0.0
    if out.moves == 0:
        assert out.estimated_gain == 0.0


@given(exchange_instances(), st.integers(0, 5))
@settings(max_examples=150, deadline=None)
def test_max_moves_respected(instance, cap):
    s, t, size_p, size_q, delta = instance
    out = greedy_exchange(s, t, size_p, size_q, delta, max_moves=cap)
    assert out.moves <= cap


@given(exchange_instances())
@settings(max_examples=150, deadline=None)
def test_deterministic(instance):
    s, t, size_p, size_q, delta = instance
    first = greedy_exchange(s, t, size_p, size_q, delta)
    second = greedy_exchange(s, t, size_p, size_q, delta)
    assert first.accepted == second.accepted
    assert first.returned == second.returned
