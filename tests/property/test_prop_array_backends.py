"""Property tests: array backends are byte-for-byte equivalent to the
dict references.

The array-backed ``ArraySpaceSaving`` / ``ArrayCommGraph`` exist purely
for memory at paper scale; their contract is *bit-identical observable
behavior* — same keys, same float counts and errors, same iteration
order — under any interleaving of weighted offers, decays, forgets,
merges, edge updates, and vertex removals.  Equality of iteration order
matters as much as equality of values: seeded digests depend on it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.arrayback import ArrayCommGraph, ArraySpaceSaving
from repro.graph.comm_graph import CommGraph
from repro.graph.spacesaving import SpaceSaving

# ----------------------------------------------------------------------
# Space-Saving equivalence
# ----------------------------------------------------------------------

keys = st.integers(min_value=0, max_value=24)
weights = st.floats(min_value=0.125, max_value=16.0, allow_nan=False,
                    allow_infinity=False)

ss_ops = st.lists(
    st.one_of(
        st.tuples(st.just("offer"), keys, weights),
        st.tuples(st.just("decay"), st.floats(min_value=0.25, max_value=1.0),
                  st.just(0)),
        st.tuples(st.just("forget"), keys, st.just(0)),
    ),
    min_size=1,
    max_size=300,
)


def _apply_ss(summary, ops):
    for op, a, b in ops:
        if op == "offer":
            summary.offer(a, b)
        elif op == "decay":
            summary.decay(a)
        else:
            summary.forget(a)


def _assert_ss_equal(ref: SpaceSaving, arr: ArraySpaceSaving):
    # Same keys, same counts, same errors, SAME ITERATION ORDER.
    assert list(ref.items()) == list(arr.items())
    assert len(ref) == len(arr)
    assert ref.total_weight == arr.total_weight
    for key in list(dict(ref.items())):
        assert ref.count(key) == arr.count(key)
        assert ref.error(key) == arr.error(key)
        assert ref.guaranteed_count(key) == arr.guaranteed_count(key)
    assert ref.top(3) == arr.top(3)
    assert ref.top(len(ref) + 1) == arr.top(len(arr) + 1)


@given(ss_ops, st.integers(min_value=1, max_value=8))
@settings(max_examples=200, deadline=None)
def test_array_spacesaving_matches_dict_reference(ops, capacity):
    ref, arr = SpaceSaving(capacity), ArraySpaceSaving(capacity)
    _apply_ss(ref, ops)
    _apply_ss(arr, ops)
    _assert_ss_equal(ref, arr)


@given(ss_ops, ss_ops, st.integers(min_value=1, max_value=8))
@settings(max_examples=100, deadline=None)
def test_array_spacesaving_merge_matches_reference(ops_a, ops_b, capacity):
    ref_a, arr_a = SpaceSaving(capacity), ArraySpaceSaving(capacity)
    ref_b, arr_b = SpaceSaving(capacity), ArraySpaceSaving(capacity)
    _apply_ss(ref_a, ops_a)
    _apply_ss(arr_a, ops_a)
    _apply_ss(ref_b, ops_b)
    _apply_ss(arr_b, ops_b)
    ref_a.merge(ref_b)
    arr_a.merge(arr_b)
    _assert_ss_equal(ref_a, arr_a)
    # Cross-backend merge must agree too (summaries travel between
    # silo-level folds regardless of the backend either side picked).
    ref_c, arr_c = SpaceSaving(capacity), ArraySpaceSaving(capacity)
    _apply_ss(ref_c, ops_a)
    _apply_ss(arr_c, ops_a)
    ref_c.merge(arr_b)
    arr_c.merge(ref_b)
    _assert_ss_equal(ref_c, arr_c)


# ----------------------------------------------------------------------
# CommGraph equivalence
# ----------------------------------------------------------------------

verts = st.integers(min_value=0, max_value=14)

graph_ops = st.lists(
    st.one_of(
        st.tuples(st.just("edge"), verts, verts, weights),
        st.tuples(st.just("vertex"), verts, st.just(0), st.just(0.0)),
        st.tuples(st.just("remove"), verts, st.just(0), st.just(0.0)),
    ),
    min_size=1,
    max_size=200,
)


def _apply_graph(graph, ops):
    for op, u, v, w in ops:
        if op == "edge":
            if u != v:
                graph.add_edge(u, v, w)
        elif op == "vertex":
            graph.add_vertex(u)
        else:
            graph.remove_vertex(u)


def _assert_graph_equal(ref: CommGraph, arr: ArrayCommGraph):
    assert list(ref.vertices()) == list(arr.vertices())
    assert len(ref) == len(arr)
    assert ref.num_vertices == arr.num_vertices
    assert ref.num_edges == arr.num_edges
    # Edge iteration order and neighbor iteration order both pinned.
    assert list(ref.edges()) == list(arr.edges())
    assert ref.total_weight() == arr.total_weight()
    for v in ref.vertices():
        assert list(ref.neighbors(v).items()) == list(arr.neighbors(v).items())
        assert ref.degree(v) == arr.degree(v)
        for u in ref.neighbors(v):
            assert ref.weight(v, u) == arr.weight(v, u)


@given(graph_ops)
@settings(max_examples=200, deadline=None)
def test_array_commgraph_matches_dict_reference(ops):
    ref, arr = CommGraph(), ArrayCommGraph()
    _apply_graph(ref, ops)
    _apply_graph(arr, ops)
    _assert_graph_equal(ref, arr)


@given(graph_ops, st.lists(verts, max_size=10))
@settings(max_examples=100, deadline=None)
def test_array_commgraph_subgraph_and_copy_match(ops, keep):
    ref, arr = CommGraph(), ArrayCommGraph()
    _apply_graph(ref, ops)
    _apply_graph(arr, ops)
    _assert_graph_equal(ref.subgraph(keep), arr.subgraph(keep))
    _assert_graph_equal(ref.copy(), arr.copy())


@given(graph_ops, graph_ops)
@settings(max_examples=100, deadline=None)
def test_array_commgraph_merge_matches_reference(ops_a, ops_b):
    ref_a, arr_a = CommGraph(), ArrayCommGraph()
    ref_b, arr_b = CommGraph(), ArrayCommGraph()
    _apply_graph(ref_a, ops_a)
    _apply_graph(arr_a, ops_a)
    _apply_graph(ref_b, ops_b)
    _apply_graph(arr_b, ops_b)
    ref_a.merge(ref_b)
    arr_a.merge(arr_b)
    _assert_graph_equal(ref_a, arr_a)
