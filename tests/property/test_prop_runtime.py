"""System-level property tests: request conservation under random churn.

Whatever sequence of client traffic, migrations, deactivations, and silo
failures the cluster experiences, every issued client request must be
accounted for: completed, rejected at admission, timed out, or still in
flight when the run stops.  (This property found the migration-parking
deadlock during development.)
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.actor.actor import Actor
from repro.actor.calls import All, Call
from repro.actor.runtime import ActorRuntime, ClusterConfig
from repro.faults.resilience import AdmissionConfig, ResilienceConfig


class Leaf(Actor):
    COMPUTE = {"work": 2e-4}

    def work(self):
        return 1


class Mid(Actor):
    def spread(self, leaves):
        acks = yield All([Call(ref, "work") for ref in leaves])
        return sum(acks)


@st.composite
def scenarios(draw):
    seed = draw(st.integers(0, 10_000))
    servers = draw(st.integers(2, 4))
    n_mid = draw(st.integers(1, 4))
    n_leaf = draw(st.integers(2, 8))
    n_requests = draw(st.integers(5, 40))
    actions = draw(st.lists(
        st.tuples(
            st.floats(0.05, 2.0),                   # when
            st.sampled_from(["migrate", "deactivate"]),
            st.integers(0, 50),                      # which actor (mod)
            st.integers(0, 3),                       # destination (mod)
        ),
        max_size=6,
    ))
    return seed, servers, n_mid, n_leaf, n_requests, actions


@given(scenarios())
@settings(max_examples=40, deadline=None)
def test_every_request_accounted_for(scenario):
    seed, servers, n_mid, n_leaf, n_requests, actions = scenario
    rt = ActorRuntime(
        ClusterConfig(num_servers=servers, seed=seed),
        resilience=ResilienceConfig(
            admission=AdmissionConfig(receiver_queue=50)))
    rt.register_actor("leaf", Leaf)
    rt.register_actor("mid", Mid)
    leaves = [rt.ref("leaf", i) for i in range(n_leaf)]
    mids = [rt.ref("mid", i) for i in range(n_mid)]

    outcomes = []
    rng = rt.rng.stream("prop.traffic")
    for i in range(n_requests):
        when = rng.uniform(0.0, 2.0)
        target = mids[i % n_mid]
        rt.sim.schedule(
            when, rt.client_request, target, "spread", leaves,
        )
        # track completion via a separate direct request with a hook
        rt.sim.schedule(
            when, rt.client_request, leaves[i % n_leaf], "work",
        )

    # churn actions: migrations and deactivations at random times
    def act(kind, idx, dest):
        all_ids = [m.id for m in mids] + [l.id for l in leaves]
        actor_id = all_ids[idx % len(all_ids)]
        location = rt.locate(actor_id)
        if location is None:
            return
        if kind == "migrate":
            rt.silos[location].migrate(actor_id, dest % servers)
        else:
            rt.silos[location].deactivate(actor_id)

    for when, kind, idx, dest in actions:
        rt.sim.schedule(when, act, kind, idx, dest)

    rt.run(until=30.0)

    issued = 2 * n_requests
    in_flight = len(rt._client_hooks)  # hooks not used; zero expected
    completed = rt.requests_completed
    rejected = rt.rejected_requests
    assert completed + rejected == issued
    # the system fully drained: no stuck turns anywhere
    for silo in rt.silos:
        for activation in silo.activations.values():
            assert activation.quiescent or activation.deactivating is False
        assert not silo._pending
    assert rt.sim.pending() == 0
