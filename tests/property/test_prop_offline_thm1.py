"""Property tests: Theorem 1 on random static graphs.

The theorem: on a static weighted graph, Alg. 1 converges to a locally
optimal partition in finitely many executions, and the communication cost
decreases monotonically with every migration.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioning.offline import OfflinePartitioner
from repro.graph.comm_graph import CommGraph


@st.composite
def graphs(draw):
    n = draw(st.integers(8, 40))
    m = draw(st.integers(0, 80))
    g = CommGraph()
    for v in range(n):
        g.add_vertex(v)
    for _ in range(m):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            g.add_edge(u, v, draw(st.floats(0.5, 10.0, allow_nan=False)))
    return g


@given(graphs(), st.integers(2, 5), st.integers(2, 6), st.integers(0, 1000))
@settings(max_examples=60, deadline=None)
def test_monotone_cost_and_convergence(graph, servers, delta, seed):
    part = OfflinePartitioner(graph, num_servers=servers, delta=delta,
                              k=8, seed=seed)
    part.run(max_sweeps=40)
    history = part.cost_history
    # Monotone non-increasing cost after every executed migration batch.
    assert all(later <= earlier + 1e-9
               for earlier, later in zip(history, history[1:]))
    # Converged: one more full sweep is quiet.
    assert sum(part.run_round(p) for p in range(servers)) == 0
    # Every vertex still assigned exactly once.
    assert set(part.assignment) == set(graph.vertices())


@given(graphs(), st.integers(2, 4), st.integers(2, 5), st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_exchanging_pairs_respect_delta(graph, servers, delta, seed):
    """After any single round, the pair that exchanged satisfies the
    balance constraint (checked globally right after, since only that
    pair changed)."""
    part = OfflinePartitioner(graph, num_servers=servers, delta=delta,
                              k=8, seed=seed)
    sizes_before = dict(
        (p, sum(1 for s in part.assignment.values() if s == p))
        for p in range(servers)
    )
    gaps_ok_before = {
        (p, q): abs(sizes_before[p] - sizes_before[q]) <= delta
        for p in range(servers)
        for q in range(servers)
    }
    for initiator in range(servers):
        before = dict(part.assignment)
        part.run_round(initiator)
        changed = {
            v for v in before if before[v] != part.assignment[v]
        }
        if not changed:
            continue
        touched_servers = {before[v] for v in changed} | {
            part.assignment[v] for v in changed
        }
        assert len(touched_servers) == 2  # pairwise only
        p, q = sorted(touched_servers)
        np_ = sum(1 for s in part.assignment.values() if s == p)
        nq_ = sum(1 for s in part.assignment.values() if s == q)
        if gaps_ok_before[(p, q)]:
            assert abs(np_ - nq_) <= delta
