"""Property tests: retry under a lossy link, per the resilience contract.

For any seed, drop probability, and retry budget: every request
*resolves* — it either delivers or exhausts its budget into a terminal
timeout, never hangs — and the whole run is deterministic per seed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.actor.actor import Actor
from repro.actor.runtime import ClusterConfig
from repro.cluster import build_cluster
from repro.faults import FaultPlan, ResilienceConfig, RetryPolicy


class Echo(Actor):
    COMPUTE = {"ping": 1e-4}

    def ping(self):
        return "pong"


def _run(seed: int, drop: float, attempts: int, requests: int):
    cluster = build_cluster(
        ClusterConfig(num_servers=2, seed=seed),
        resilience=ResilienceConfig(
            call_timeout=0.05,
            retry=RetryPolicy(max_attempts=attempts, base_delay=0.02)),
        faults=FaultPlan().degrade(0.0, 1_000.0, drop=drop),
    )
    rt = cluster.runtime
    rt.register_actor("echo", Echo)
    outcomes = []
    for i in range(requests):
        ref = rt.ref("echo", i)
        rt.sim.schedule(0.01 + 0.05 * i, lambda ref=ref: rt.client_request(
            ref, "ping",
            on_complete=lambda lat, res: outcomes.append(
                "ok" if res == "pong" else "timeout")))
    cluster.start()
    rt.run(until=10.0)
    return outcomes, rt


@st.composite
def scenarios(draw):
    return (
        draw(st.integers(min_value=0, max_value=2**16)),
        draw(st.sampled_from([0.0, 0.3, 0.6, 0.9, 1.0])),
        draw(st.integers(min_value=1, max_value=4)),
        draw(st.integers(min_value=1, max_value=6)),
    )


@given(scenarios())
@settings(max_examples=25, deadline=None)
def test_every_request_delivers_or_exhausts(scenario):
    seed, drop, attempts, requests = scenario
    outcomes, rt = _run(seed, drop, attempts, requests)
    # Resolution: every request came back, one way or the other.
    assert len(outcomes) == requests
    assert rt.requests_completed + rt.requests_timed_out == requests
    assert rt.inflight_requests == 0
    # The budget bounds the retry storm.
    assert rt.request_retries <= requests * (attempts - 1)
    if drop == 0.0:
        assert outcomes == ["ok"] * requests
        assert rt.request_retries == 0
    if drop == 1.0:
        assert outcomes == ["timeout"] * requests


@given(scenarios())
@settings(max_examples=10, deadline=None)
def test_retry_runs_are_deterministic(scenario):
    seed, drop, attempts, requests = scenario
    outcomes_a, rt_a = _run(seed, drop, attempts, requests)
    outcomes_b, rt_b = _run(seed, drop, attempts, requests)
    assert outcomes_a == outcomes_b
    assert rt_a.request_retries == rt_b.request_retries
    assert rt_a.requests_timed_out == rt_b.requests_timed_out
    assert rt_a.sim.events_processed == rt_b.sim.events_processed
    assert sorted(rt_a.client_latency._samples) == \
        sorted(rt_b.client_latency._samples)
