"""Integration tests: the three paper workloads drive the cluster correctly."""

import pytest

from repro.actor.runtime import ActorRuntime, ClusterConfig
from repro.workloads.counter import CounterConfig, CounterWorkload
from repro.workloads.halo import HaloConfig, HaloWorkload
from repro.workloads.heartbeat import HeartbeatConfig, HeartbeatWorkload


def test_counter_requests_complete_and_increment():
    rt = ActorRuntime(ClusterConfig(num_servers=1, seed=0))
    w = CounterWorkload(rt, CounterConfig(num_actors=50, request_rate=500.0))
    w.start()
    rt.run(until=2.0)
    w.stop()
    rt.run(until=3.0)
    assert rt.requests_completed > 500
    assert rt.requests_completed <= w.requests_issued
    # counters are pure client traffic: no actor-to-actor messages
    assert rt.msgs_local == 0 and rt.msgs_remote == 0


def test_heartbeat_mixes_beats_and_reads():
    rt = ActorRuntime(ClusterConfig(num_servers=1, seed=1))
    w = HeartbeatWorkload(
        rt, HeartbeatConfig(num_monitors=40, request_rate=400.0,
                            status_fraction=0.25)
    )
    w.start()
    rt.run(until=3.0)
    assert rt.requests_completed > 800


def test_heartbeat_blocking_variant_registers_wait():
    rt = ActorRuntime(ClusterConfig(num_servers=1, seed=1))
    w = HeartbeatWorkload(
        rt, HeartbeatConfig(num_monitors=10, request_rate=100.0, io_wait=0.002)
    )
    cls = rt.actor_types["heartbeat"]
    assert cls.WAIT["beat"] == 0.002
    w.start()
    rt.run(until=1.0)
    assert rt.requests_completed > 20


def halo_runtime(servers=4, seed=2, **cfg):
    rt = ActorRuntime(ClusterConfig(num_servers=servers, seed=seed))
    defaults = dict(target_players=160, pool_target=16, request_rate=40.0,
                    game_duration=(10.0, 15.0), matchmaking_period=0.5)
    defaults.update(cfg)
    w = HaloWorkload(rt, HaloConfig(**defaults))
    return rt, w


def test_halo_bootstrap_population_and_games():
    rt, w = halo_runtime()
    w.start()
    rt.run(until=1.0)
    assert w.population == pytest.approx(160, abs=10)
    assert w.games_started >= (160 - 16) // 8
    assert len(w.idle_pool) <= 16 + 8


def test_halo_fanout_message_arithmetic():
    """One status request to an in-game player must generate 18
    actor-to-actor messages (1+1 to the game, 8+8 broadcast) — §3."""
    rt, w = halo_runtime(servers=4)
    w.start()
    rt.run(until=2.0)  # bootstrap settles, join traffic drains
    w.stop()
    rt.run(until=4.0)
    base = rt.msgs_local + rt.msgs_remote
    # pick a player who is currently in a game
    playing = next(iter(w.playing))
    rt.client_request(rt.ref(w.PLAYER, playing), "request_status", 0)
    rt.run(until=6.0)
    assert (rt.msgs_local + rt.msgs_remote) - base == 18


def test_halo_idle_player_answers_directly():
    rt, w = halo_runtime()
    w.start()
    rt.run(until=2.0)
    w.stop()
    rt.run(until=4.0)
    assert w.idle_pool, "bootstrap keeps a nonempty idle pool"
    idle = w.idle_pool[0]
    results = []
    rt.client_request(rt.ref(w.PLAYER, idle), "request_status", 0,
                      on_complete=lambda lat, res: results.append(res))
    rt.run(until=6.0)
    assert results == [{"state": "idle"}]


def test_halo_games_end_and_players_rotate():
    rt, w = halo_runtime(game_duration=(2.0, 3.0))
    w.start()
    rt.run(until=20.0)
    assert w.players_departed > 0
    # departed players' actors were idle-collected
    census_total = sum(rt.census().values())
    live_actors = w.population + len(w.active_games)
    assert census_total == pytest.approx(live_actors, rel=0.25)


def test_halo_population_steady_state():
    rt, w = halo_runtime(game_duration=(2.0, 3.0))
    w.start()
    rt.run(until=30.0)
    assert w.population == pytest.approx(160, rel=0.35)


def test_halo_arrival_rate_formula():
    rt, w = halo_runtime()
    # 160 players / (4 games * 12.5 s avg) = 3.2 arrivals/s
    assert w.arrival_rate() == pytest.approx(160 / (4 * 12.5))
