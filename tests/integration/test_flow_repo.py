"""The flow pass over the real tree: the repo flow-lints clean, the
flow fixture fires exactly the FLOW family, and the static interaction
graph covers every edge a seeded runtime slice actually observes
(static ⊇ dynamic) — the property that makes the graph trustworthy as
a partitioner planning input."""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import DEFAULT_ROOTS, lint_paths
from repro.analysis.flow import (
    all_flow_rules,
    analyze_files,
    crosscheck_halo,
)
from repro.analysis.linter import _collect_files, waiver_audit

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
FLOW_FIXTURE = os.path.join("tests", "fixtures", "flow_violations.py")
FLOW_RULES = {r.name for r in all_flow_rules()}


def _tree_sources():
    out = []
    for abspath, rel in _collect_files(DEFAULT_ROOTS, REPO):
        with open(abspath, "r", encoding="utf-8") as fh:
            out.append((rel, fh.read()))
    return out


def test_repo_tree_flow_lints_clean():
    report = lint_paths(DEFAULT_ROOTS, base=REPO, flow=True)
    assert report.files_checked > 50
    assert report.ok, "\n".join(f.render() for f in report.active)
    for finding in report.waived:
        assert finding.justification, finding.render()


def test_flow_fixture_fires_exactly_the_flow_family():
    report = lint_paths([FLOW_FIXTURE], base=REPO, flow=True)
    fired = [f.rule for f in report.active]
    assert set(fired) == FLOW_RULES
    assert len(fired) == len(FLOW_RULES)    # one specimen per rule


def test_static_graph_derives_the_workload_interactions():
    _, graph, _ = analyze_files(_tree_sources())
    edges = {(e.caller_type, e.caller_method, e.target_type,
              e.target_method) for e in graph.actor_edges()}
    # The Halo workload's broadcast fan-out, both directions.
    assert ("game", "broadcast_status", "player", "update") in edges
    assert ("player", "request_status", "game", "broadcast_status") in edges
    # The quickstart chat room is in the graph too (examples/ tree).
    assert ("room", "broadcast", "user", "receive") in edges
    # game <-> player is a Call cycle, but every participant is
    # reentrant, so the FLOW-CALL-CYCLE rule must stay silent on it.
    assert ["game", "player"] in [sorted(c) for c in graph.call_cycles()]


def test_static_graph_covers_a_seeded_dynamic_slice():
    _, graph, _ = analyze_files(_tree_sources())
    report = crosscheck_halo(graph, requests=300, seed=5)
    assert report["ok"], report["missing_from_static"]
    assert report["slice"]["requests_completed"] >= 300
    assert report["dynamic_edges"]          # the slice did observe edges
    dynamic = {(u, v) for u, v, _ in report["dynamic_edges"]}
    static = {(u, v) for u, v, _ in report["static_edges"]}
    assert dynamic <= static


def test_waiver_audit_is_fully_justified():
    doc = waiver_audit(DEFAULT_ROOTS, base=REPO)
    assert doc["count"] > 0
    assert doc["unjustified"] == 0
    for entry in doc["waivers"]:
        assert entry["rules"], entry
        assert entry["justification"], entry


def test_waiver_audit_reports_xb_and_par_waivers(tmp_path):
    # The audit must surface waivers of every family, not just the
    # per-file rules — a sharding or portability waiver is exactly the
    # kind reviewers need to see.
    (tmp_path / "mod.py").write_text(
        "class StreamActor:\n"
        "    def publish(self):\n"
        "        # repro: waive[XB-UNPICKLABLE-PAYLOAD] -- audit fixture\n"
        "        yield (x for x in range(3))\n"
        "\n"
        "\n"
        "def boot():\n"
        "    # repro: waive[PAR-ZERO-LOOKAHEAD] -- audit fixture\n"
        "    return ClusterConfig(network_latency=0.0)\n"
    )
    doc = waiver_audit([str(tmp_path)], base=str(tmp_path))
    assert doc["count"] == 2
    assert doc["unjustified"] == 0
    rules = {rule for entry in doc["waivers"] for rule in entry["rules"]}
    assert rules == {"XB-UNPICKLABLE-PAYLOAD", "PAR-ZERO-LOOKAHEAD"}
    for entry in doc["waivers"]:
        assert entry["justification"] == "audit fixture"


# ------------------------------------------------------------- the CLI


def _run_cli(*argv):
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True, text=True, cwd=REPO, env=env,
    )


@pytest.mark.slow
def test_cli_flow_graph_export(tmp_path):
    graph_path = tmp_path / "flow-graph.json"
    proc = _run_cli("--flow", "--flow-graph", str(graph_path), "--json", "-")
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(proc.stdout)
    assert doc["ok"] is True
    assert doc["flow_graph"]["format"] == "comm_graph/edges"
    exported = json.loads(graph_path.read_text())
    assert exported == doc["flow_graph"]
    assert set(exported["vertices"]) >= {"game", "player", "room", "user"}
    pairs = {tuple(e[:2]) for e in exported["edges"]}
    assert ("game", "player") in pairs


@pytest.mark.slow
def test_cli_graph_check_writes_the_diff_artifact(tmp_path):
    diff_path = tmp_path / "graph-diff.json"
    proc = _run_cli("--flow", "--graph-check", str(diff_path),
                    "--requests", "300", "--seed", "5")
    assert proc.returncode == 0, proc.stderr
    diff = json.loads(diff_path.read_text())
    assert diff["ok"] is True
    assert diff["missing_from_static"] == []
    assert "graph cross-check" in proc.stdout


def test_cli_waiver_audit(tmp_path):
    audit_path = tmp_path / "waivers.json"
    proc = _run_cli("--waivers", "--json", str(audit_path))
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(audit_path.read_text())
    assert doc["schema"] == 1
    audit = doc["waiver_audit"]
    assert audit["unjustified"] == 0
    assert audit["count"] == len(audit["waivers"]) > 0
    assert "waiver" in proc.stdout


def test_cli_list_rules_includes_the_flow_family():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for name in FLOW_RULES:
        assert name in proc.stdout
    assert "[flow]" in proc.stdout
    assert "[par]" in proc.stdout


def test_cli_list_rules_json_inventory_follows_the_convention():
    # Same convention as every other --json '-' mode: pure JSON on
    # stdout, the human table on stderr.
    proc = _run_cli("--list-rules", "--json", "-")
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(proc.stdout)
    assert doc["schema"] == 1
    rows = doc["rules"]
    families = {r["family"] for r in rows}
    assert families == {"file", "flow", "xbackend", "par"}
    for row in rows:
        assert row["name"] and row["description"]
        assert row["severity"] in ("error", "warning")
    par = [r["name"] for r in rows if r["family"] == "par"]
    assert sorted(par) == [
        "PAR-CROSS-SILO-CONFLICT", "PAR-GLOBAL-MUTABLE",
        "PAR-NONMERGEABLE-METRIC", "PAR-UNPORTABLE-SILO-STATE",
        "PAR-ZERO-LOOKAHEAD"]
    assert "registered lint rules" in proc.stderr
