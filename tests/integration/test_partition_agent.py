"""Integration tests: the online partitioning agent on a live cluster."""

import pytest

from repro.actor.actor import Actor
from repro.actor.calls import Call
from repro.actor.runtime import ActorRuntime, ClusterConfig
from repro.core.actop import ActOp, ActOpConfig
from repro.core.partitioning.coordinator import PartitionAgent, PartitioningConfig


class Chatter(Actor):
    """Calls a fixed partner on every poke — a two-actor clique."""

    def poke(self, partner):
        ack = yield Call(partner, "ack")
        return ack


class Partner(Actor):
    def ack(self):
        return 1


def make_cluster(servers=3, seed=0):
    rt = ActorRuntime(ClusterConfig(num_servers=servers, seed=seed))
    rt.register_actor("chatter", Chatter)
    rt.register_actor("partner", Partner)
    return rt


def fast_config(**overrides):
    defaults = dict(
        round_period=1.0,
        stats_period=0.5,
        cooldown=0.5,
        delta=8,
        candidate_fraction=1.0,
        candidate_max=32,
        decay=0.9,
        warmup=1.0,
    )
    defaults.update(overrides)
    return PartitioningConfig(**defaults)


def drive_pairs(rt, pairs, period, until):
    """Poke each (chatter, partner) pair every ``period`` seconds."""

    def tick(t):
        if t >= until:
            return
        for chatter, partner in pairs:
            rt.client_request(chatter, "poke", partner)
        rt.sim.schedule(period, tick, t + period)

    rt.sim.schedule(0.0, tick, 0.0)


def test_fold_counters_builds_edge_summary():
    rt = make_cluster(servers=2)
    chatter, partner = rt.ref("chatter", 1), rt.ref("partner", 1)
    rt.activate(chatter.id, 0)
    rt.activate(partner.id, 1)
    agent = PartitionAgent(rt, rt.silos[0], fast_config())
    rt.client_request(chatter, "poke", partner)
    rt.run(until=1.0)
    agent.fold_counters()
    # chatter sent a call and received a response: weight 2 toward
    # partner (decay applies to *previously folded* weight, not fresh
    # counters).
    assert agent.edges.count((chatter.id, partner.id)) == pytest.approx(2.0)
    agent.fold_counters()
    assert agent.edges.count((chatter.id, partner.id)) == pytest.approx(2.0 * 0.9)


def test_view_excludes_departed_actors():
    rt = make_cluster(servers=2)
    chatter, partner = rt.ref("chatter", 1), rt.ref("partner", 1)
    rt.activate(chatter.id, 0)
    rt.activate(partner.id, 1)
    agent = PartitionAgent(rt, rt.silos[0], fast_config())
    rt.client_request(chatter, "poke", partner)
    rt.run(until=1.0)
    agent.fold_counters()
    rt.silos[0].migrate(chatter.id, destination=1)
    rt.run(until=1.5)
    agent.fold_counters()  # purges stale edges
    view = agent.build_view()
    assert chatter.id not in view.edges


def test_agents_colocate_communicating_pairs():
    rt = make_cluster(servers=3, seed=2)
    pairs = []
    for i in range(12):
        chatter, partner = rt.ref("chatter", i), rt.ref("partner", i)
        # scatter deliberately: chatter and partner on different servers
        rt.activate(chatter.id, i % 3)
        rt.activate(partner.id, (i + 1) % 3)
        pairs.append((chatter, partner))
    actop = ActOp(rt, ActOpConfig(partitioning=fast_config()))
    drive_pairs(rt, pairs, period=0.1, until=30.0)
    actop.start()
    rt.run(until=30.0)
    colocated = sum(
        1 for c, p in pairs if rt.locate(c.id) == rt.locate(p.id)
    )
    assert colocated >= 10  # nearly all pairs co-located
    assert rt.migrations_total > 0


def test_balance_respected_during_colocations():
    rt = make_cluster(servers=3, seed=3)
    pairs = []
    for i in range(15):
        chatter, partner = rt.ref("chatter", i), rt.ref("partner", i)
        rt.activate(chatter.id, i % 3)
        rt.activate(partner.id, (i + 1) % 3)
        pairs.append((chatter, partner))
    actop = ActOp(rt, ActOpConfig(partitioning=fast_config(delta=4)))
    drive_pairs(rt, pairs, period=0.1, until=25.0)
    actop.start()
    rt.run(until=25.0)
    census = rt.census()
    assert max(census.values()) - min(census.values()) <= 8  # 2*delta slack


def test_cooldown_rejects_rapid_exchanges():
    rt = make_cluster(servers=2)
    config = fast_config(cooldown=1000.0)  # effectively permanent
    agent0 = PartitionAgent(rt, rt.silos[0], config)
    agent1 = PartitionAgent(rt, rt.silos[1], config)
    agent0.peers = agent1.peers = {0: agent0, 1: agent1}
    agent1.last_exchange_time = 0.0  # pretend it just exchanged
    rt.sim.schedule(1.0, lambda: None)
    rt.run()
    from repro.core.partitioning.protocol import ExchangeRequest

    response = agent1.serve_request(ExchangeRequest(0, 1, [], 0))
    assert not response.accepted
    assert response.rejection_reason == "cooldown"


def test_exchange_counters_track_activity():
    rt = make_cluster(servers=2, seed=4)
    pairs = []
    for i in range(6):
        chatter, partner = rt.ref("chatter", i), rt.ref("partner", i)
        rt.activate(chatter.id, 0)
        rt.activate(partner.id, 1)
        pairs.append((chatter, partner))
    actop = ActOp(rt, ActOpConfig(partitioning=fast_config()))
    drive_pairs(rt, pairs, period=0.1, until=10.0)
    actop.start()
    rt.run(until=10.0)
    initiated = sum(a.exchanges_initiated for a in actop.agents)
    accepted = sum(a.exchanges_accepted for a in actop.agents)
    assert initiated > 0
    assert accepted > 0
