"""Integration test: §3's prefer-local skew argument.

"Another notable disadvantage of the local placement policy is that it
might lead to a skewed and unbalanced actor distribution across servers"
— we reproduce the scenario: a spawner actor that creates a tree of
children.  Under prefer-local everything piles onto one silo; under
random placement the children spread out.
"""

from repro.actor.actor import Actor
from repro.actor.calls import All, Call
from repro.actor.placement import PreferLocalPlacement
from repro.actor.runtime import ActorRuntime, ClusterConfig


class Spawner(Actor):
    def spawn_children(self, child_refs):
        acks = yield All([Call(c, "boot") for c in child_refs])
        return sum(acks)


class Child(Actor):
    def boot(self):
        return 1


def run(policy, servers=4):
    rt = ActorRuntime(ClusterConfig(num_servers=servers, seed=9))
    rt.register_actor("spawner", Spawner)
    rt.register_actor("child", Child)
    if policy is not None:
        rt.set_placement(policy)
    root = rt.ref("spawner", "root")
    rt.activate(root.id, 0)
    children = [rt.ref("child", i) for i in range(40)]
    done = []
    rt.client_request(root, "spawn_children", children,
                      on_complete=lambda lat, res: done.append(res))
    rt.run(until=5.0)
    assert done == [40]
    census = rt.census()
    return census


def test_prefer_local_piles_everything_on_the_caller():
    census = run(PreferLocalPlacement())
    assert census[0] == 41  # root + all 40 children
    assert all(census[p] == 0 for p in (1, 2, 3))


def test_random_placement_spreads_children():
    census = run(None)  # default random
    assert max(census.values()) < 25
    assert sum(1 for c in census.values() if c > 0) >= 3
