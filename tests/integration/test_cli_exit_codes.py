"""The CLI exit-code contract, parameterized across subcommands:
0 = success, 1 = the run completed but found problems (lint findings,
unrecovered chaos run, empty trace window), 2 = argparse rejected the
invocation.  Scripts and CI gate on exactly these codes."""

import os
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

CASES = [
    # ---- success -> 0
    ("perf-ok",
     ["perf", "--smoke", "--only", "histogram", "--repeat", "1"], 0),
    ("trace-ok",
     ["trace", "--workload", "halo", "--players", "60", "--servers", "2",
      "--warmup", "1", "--duration", "2"], 0),
    ("faults-ok",          # the CI chaos plan, deterministic under seed 1
     ["faults", "--players", "300", "--servers", "4", "--warmup", "10",
      "--duration", "10", "--settle", "5", "--kill", "1@2",
      "--recover", "1@8", "--retries", "3", "--timeout", "0.5"], 0),
    ("lint-ok", ["lint", "src/repro/analysis/findings.py"], 0),
    ("lint-xbackend-ok",   # repo tree carries zero unwaived XB findings
     ["lint", "--xbackend", "src/repro/analysis/findings.py"], 0),
    ("lint-par-ok",        # ... and zero unwaived PAR findings
     ["lint", "--par", "src/repro/analysis/findings.py"], 0),
    # ---- completed-with-findings -> 1
    ("trace-empty-window",  # no traced request completes in 10ms
     ["trace", "--workload", "halo", "--players", "60", "--servers", "2",
      "--warmup", "0", "--duration", "0.01"], 1),
    ("faults-no-recovery",  # window too short to re-converge (seeded)
     ["faults", "--players", "100", "--servers", "2", "--warmup", "3",
      "--duration", "3", "--settle", "1", "--kill", "1@1",
      "--recover", "1@2", "--retries", "3", "--timeout", "0.5"], 1),
    ("lint-findings",
     ["lint", os.path.join("tests", "fixtures", "lint_violations.py")], 1),
    ("lint-flow-findings",
     ["lint", "--flow",
      os.path.join("tests", "fixtures", "flow_violations.py")], 1),
    ("lint-xbackend-findings",
     ["lint", "--xbackend",
      os.path.join("tests", "fixtures", "xbackend_violations.py")], 1),
    ("lint-par-findings",
     ["lint", "--par",
      os.path.join("tests", "fixtures", "par_violations.py")], 1),
    # ---- argparse rejection -> 2
    ("perf-bad-choice", ["perf", "--only", "nonesuch"], 2),
    ("perf-bad-transport", ["perf", "--transport", "nonesuch"], 2),
    ("trace-bad-choice", ["trace", "--workload", "nonesuch"], 2),
    ("faults-bad-spec", ["faults", "--kill", "notaspec"], 2),
    ("lint-bad-flag", ["lint", "--bogus"], 2),
]


@pytest.mark.parametrize("argv,expected",
                         [c[1:] for c in CASES],
                         ids=[c[0] for c in CASES])
def test_cli_exit_code(argv, expected, tmp_path):
    if argv[0] == "trace":
        argv = argv + ["--chrome", str(tmp_path / "chrome.json")]
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, cwd=REPO, env=env,
    )
    assert proc.returncode == expected, (proc.stdout, proc.stderr)
    if expected == 2:
        assert "usage:" in proc.stderr
