"""Integration tests: placement policies, local/remote paths, migration."""

import pytest

from repro.actor.actor import Actor
from repro.actor.calls import Call
from repro.actor.placement import HashPlacement, PreferLocalPlacement
from repro.actor.runtime import ActorRuntime, ClusterConfig


class Pinger(Actor):
    def ping(self, target):
        reply = yield Call(target, "pong")
        return reply


class Ponger(Actor):
    def pong(self):
        return "pong"


def make_runtime(servers=2, seed=0):
    rt = ActorRuntime(ClusterConfig(num_servers=servers, seed=seed))
    rt.register_actor("pinger", Pinger)
    rt.register_actor("ponger", Ponger)
    return rt


def place(rt, ref, server):
    """Deterministically activate ref on a chosen server."""
    rt.activate(ref.id, server)


def test_local_call_does_not_touch_network_counters():
    rt = make_runtime()
    ping, pong = rt.ref("pinger", 1), rt.ref("ponger", 1)
    place(rt, ping, 0)
    place(rt, pong, 0)
    rt.client_request(ping, "ping", pong)
    rt.run(until=1.0)
    assert rt.msgs_local == 2   # call + response
    assert rt.msgs_remote == 0


def test_remote_call_counts_and_pays_serialization():
    rt = make_runtime()
    ping, pong = rt.ref("pinger", 1), rt.ref("ponger", 1)
    place(rt, ping, 0)
    place(rt, pong, 1)
    rt.client_request(ping, "ping", pong)
    rt.run(until=1.0)
    assert rt.msgs_remote == 2
    assert rt.msgs_local == 0
    assert rt.silos[0].server_sender.stats.completions >= 1
    assert rt.silos[1].receiver.stats.completions >= 1


def test_prefer_local_places_at_caller():
    rt = make_runtime(servers=4)
    rt.set_placement(PreferLocalPlacement())
    ping, pong = rt.ref("pinger", 1), rt.ref("ponger", 1)
    place(rt, ping, 2)
    rt.client_request(ping, "ping", pong)
    rt.run(until=1.0)
    assert rt.locate(pong.id) == 2


def test_hash_placement_deterministic():
    rt1 = make_runtime(servers=5, seed=1)
    rt1.set_placement(HashPlacement())
    rt2 = make_runtime(servers=5, seed=99)
    rt2.set_placement(HashPlacement())
    for rt in (rt1, rt2):
        rt.client_request(rt.ref("ponger", "stable-key"), "pong")
        rt.run(until=1.0)
    assert rt1.locate(rt1.ref("ponger", "stable-key").id) == rt2.locate(
        rt2.ref("ponger", "stable-key").id
    )


def test_migration_moves_actor_and_hints_caches():
    rt = make_runtime()
    pong = rt.ref("ponger", 1)
    place(rt, pong, 0)
    assert rt.silos[0].migrate(pong.id, destination=1)
    rt.run(until=0.5)
    # Quiescent actor deactivates immediately; directory entry removed.
    assert rt.locate(pong.id) is None
    assert rt.silos[0].location_cache.get(pong.id) == 1
    assert rt.silos[1].location_cache.get(pong.id) == 1
    assert rt.migrations_total == 1


def test_next_message_lands_on_hinted_server():
    rt = make_runtime()
    ping, pong = rt.ref("pinger", 1), rt.ref("ponger", 1)
    place(rt, ping, 1)
    place(rt, pong, 0)
    rt.silos[0].migrate(pong.id, destination=1)
    rt.run(until=0.5)
    # Next call comes from silo 1, which has the hint.
    rt.client_request(ping, "ping", pong)
    rt.run(until=1.5)
    assert rt.locate(pong.id) == 1


def test_third_party_caller_places_at_itself_without_hint():
    """§4.3: if the next message comes from a server with no cached
    location, the actor is placed on the server that originated the call."""
    rt = make_runtime(servers=3)
    ping, pong = rt.ref("pinger", 1), rt.ref("ponger", 1)
    place(rt, ping, 2)     # a third server: has no hint
    place(rt, pong, 0)
    rt.silos[0].migrate(pong.id, destination=1)
    rt.run(until=0.5)
    rt.client_request(ping, "ping", pong)
    rt.run(until=1.5)
    assert rt.locate(pong.id) == 2  # placed at the caller's server


def test_migrate_busy_actor_waits_for_quiescence():
    rt = make_runtime()

    class Slow(Actor):
        COMPUTE = {"work": 0.2}

        def work(self):
            return "done"

    rt.register_actor("slow", Slow)
    slow = rt.ref("slow", 1)
    place(rt, slow, 0)
    rt.client_request(slow, "work")
    rt.run(until=0.01)  # request in flight
    assert rt.silos[0].migrate(slow.id, destination=1)
    assert slow.id in rt.silos[0].activations  # still draining
    rt.run(until=2.0)
    assert slow.id not in rt.silos[0].activations
    results = []
    rt.client_request(slow, "work",
                      on_complete=lambda lat, res: results.append(res))
    rt.run(until=4.0)
    assert results == ["done"]


def test_messages_arriving_during_deactivation_are_redelivered():
    rt = make_runtime()

    class Busy(Actor):
        COMPUTE = {"work": 0.1}

        def __init__(self):
            super().__init__()
            self.calls = 0

        def work(self):
            self.calls += 1
            return self.calls

    rt.register_actor("busy", Busy)
    busy = rt.ref("busy", 1)
    place(rt, busy, 0)
    results = []
    rt.client_request(busy, "work",
                      on_complete=lambda lat, res: results.append(res))
    rt.run(until=0.01)
    rt.silos[0].migrate(busy.id, destination=1)
    # A second request arrives while the actor is deactivating.
    rt.client_request(busy, "work",
                      on_complete=lambda lat, res: results.append(res))
    rt.run(until=5.0)
    assert sorted(results) == [1, 2]  # both served; state carried over


def test_migrate_returns_false_for_unknown_or_self():
    rt = make_runtime()
    pong = rt.ref("ponger", 1)
    assert not rt.silos[0].migrate(pong.id, destination=1)  # not hosted
    place(rt, pong, 0)
    assert not rt.silos[0].migrate(pong.id, destination=0)  # self move


def test_forwarding_after_external_replacement():
    """Message sent to the old host after the actor re-placed elsewhere
    must be forwarded, not dropped."""
    rt = make_runtime(servers=3)
    pong = rt.ref("ponger", 1)
    place(rt, pong, 0)
    rt.silos[0].migrate(pong.id, destination=1)
    rt.run(until=0.2)
    results = []
    rt.client_request(pong, "pong",
                      on_complete=lambda lat, res: results.append(res))
    rt.run(until=2.0)
    assert results == ["pong"]
