"""Integration tests for the CLI (invoked in-process)."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert "repro" in capsys.readouterr().out


def test_partition_command(capsys):
    code = main([
        "partition", "--graph", "clustered", "--vertices", "180",
        "--servers", "4", "--algorithms", "alg1", "streaming",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "random placement" in out
    assert "alg1" in out
    assert "streaming" in out


def test_partition_powerlaw_and_random_graphs(capsys):
    for graph in ("powerlaw", "random"):
        code = main([
            "partition", "--graph", graph, "--vertices", "150",
            "--servers", "3", "--algorithms", "multilevel",
        ])
        assert code == 0
    out = capsys.readouterr().out
    assert "multilevel" in out


def test_heartbeat_command(capsys):
    code = main(["heartbeat", "--rate", "4000", "--monitors", "100"])
    assert code == 0
    out = capsys.readouterr().out
    assert "ActOp model-based" in out
    assert "median ms" in out


def test_halo_command_small(capsys):
    code = main([
        "halo", "--players", "200", "--servers", "4", "--load", "0.5",
        "--duration", "20", "--no-baseline",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "ActOp" in out
    assert "migrations" in out


def test_perf_command_smoke(capsys, tmp_path):
    import json

    out_path = tmp_path / "perf.json"
    code = main([
        "perf", "--smoke", "--repeat", "1", "--only", "event_loop",
        "--json", str(out_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "event_loop" in out
    doc = json.loads(out_path.read_text())
    assert doc["schema"] == 1
    assert doc["benchmarks"]["event_loop"]["rate_per_sec"] > 0
