"""Integration tests for the CLI (invoked in-process)."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert "repro" in capsys.readouterr().out


def test_partition_command(capsys):
    code = main([
        "partition", "--graph", "clustered", "--vertices", "180",
        "--servers", "4", "--algorithms", "alg1", "streaming",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "random placement" in out
    assert "alg1" in out
    assert "streaming" in out


def test_partition_powerlaw_and_random_graphs(capsys):
    for graph in ("powerlaw", "random"):
        code = main([
            "partition", "--graph", graph, "--vertices", "150",
            "--servers", "3", "--algorithms", "multilevel",
        ])
        assert code == 0
    out = capsys.readouterr().out
    assert "multilevel" in out


def test_heartbeat_command(capsys):
    code = main(["heartbeat", "--rate", "4000", "--monitors", "100"])
    assert code == 0
    out = capsys.readouterr().out
    assert "ActOp model-based" in out
    assert "median ms" in out


def test_halo_command_small(capsys):
    code = main([
        "halo", "--players", "200", "--servers", "4", "--load", "0.5",
        "--duration", "20", "--no-baseline",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "ActOp" in out
    assert "migrations" in out


def test_perf_command_smoke(capsys, tmp_path):
    import json

    out_path = tmp_path / "perf.json"
    code = main([
        "perf", "--smoke", "--repeat", "1", "--only", "event_loop",
        "--json", str(out_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "event_loop" in out
    doc = json.loads(out_path.read_text())
    assert doc["schema"] == 2
    assert doc["benchmarks"]["event_loop"]["rate_per_sec"] > 0
    assert doc["benchmarks"]["event_loop"]["peak_rss_bytes"] > 0


def test_trace_command_smoke(capsys, tmp_path):
    import json

    chrome_path = tmp_path / "chrome.json"
    jsonl_path = tmp_path / "trace.jsonl"
    summary_path = tmp_path / "summary.json"
    code = main([
        "trace", "--workload", "halo", "--players", "120", "--servers", "3",
        "--warmup", "3", "--duration", "5",
        "--chrome", str(chrome_path), "--jsonl", str(jsonl_path),
        "--json", str(summary_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "cross-check" in out

    summary = json.loads(summary_path.read_text())
    assert summary["schema"] == 1
    assert summary["workload"] == "halo"
    assert summary["requests_finished"] > 0
    assert summary["spans"] > 0
    assert summary["cross_check_max_rel_err"] < 0.01
    assert summary["breakdown_pct"]
    assert summary["jsonl_lines"] > 0

    # The Chrome document must be well-formed trace-event JSON.
    doc = json.loads(chrome_path.read_text())
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert "X" in phases and "M" in phases
    complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert all(e["dur"] >= 0 and "pid" in e and "tid" in e for e in complete)
    assert len(jsonl_path.read_text().splitlines()) == summary["jsonl_lines"]


def test_trace_command_pure_json_stdout(capsys, tmp_path):
    import json

    code = main([
        "trace", "--workload", "counter", "--rate", "12000",
        "--warmup", "2", "--duration", "3",
        "--chrome", str(tmp_path / "chrome.json"), "--json", "-",
    ])
    assert code == 0
    captured = capsys.readouterr()
    summary = json.loads(captured.out)  # stdout is pure JSON, parse as-is
    assert summary["schema"] == 1 and summary["workload"] == "counter"
    assert "cross-check" in captured.err  # the table moved to stderr


def test_trace_command_fails_without_traffic(capsys, tmp_path):
    code = main([
        "trace", "--workload", "halo", "--players", "120", "--servers", "3",
        "--warmup", "0", "--duration", "0.001",
        "--chrome", str(tmp_path / "chrome.json"),
    ])
    assert code == 1  # no request finished: non-zero exit, per convention


def test_faults_command_recovers_and_writes_json(capsys, tmp_path):
    import json

    out_path = tmp_path / "chaos.json"
    code = main([
        "faults", "--players", "300", "--servers", "4",
        "--warmup", "10", "--duration", "10", "--settle", "5",
        "--kill", "1@2", "--recover", "1@8",
        "--json", str(out_path),
    ])
    assert code == 0
    summary = json.loads(out_path.read_text())
    assert summary["schema"] == 1 and summary["recovered"] is True
    assert summary["faults_started"] == 2
    assert set(summary["windows"]) == {"pre", "fault", "post"}
    assert summary["windows"]["fault"]["failovers"] > 0
    for window in summary["windows"].values():
        assert window["requests"] > 0
    out = capsys.readouterr().out
    assert "post-recovery" in out and "recovered" in out


def test_faults_command_pure_json_stdout(capsys, tmp_path):
    import json

    code = main([
        "faults", "--players", "200", "--servers", "3",
        "--warmup", "8", "--duration", "8", "--settle", "4",
        "--kill", "1@2", "--recover", "1@5", "--json", "-",
    ])
    captured = capsys.readouterr()
    summary = json.loads(captured.out)  # stdout is pure JSON, parse as-is
    assert summary["schema"] == 1
    assert "remote fraction" in captured.err  # the table moved to stderr
    assert code == (0 if summary["recovered"] else 1)


def test_faults_command_exit_one_without_recovery(capsys):
    # Kill one of two silos and never restart it: the surviving silo
    # hosts everything, the remote fraction collapses, no recovery.
    code = main([
        "faults", "--players", "200", "--servers", "2",
        "--warmup", "8", "--duration", "8", "--settle", "4",
        "--kill", "1@2",
    ])
    assert code == 1
    assert "did not re-converge" in capsys.readouterr().err
