"""Integration tests: silo edge cases and defensive paths."""

import pytest

from repro.actor.actor import Actor
from repro.actor.calls import Call
from repro.actor.ids import ActorId
from repro.actor.messages import Message, MessageKind
from repro.actor.runtime import ActorRuntime, ClusterConfig


class Echo(Actor):
    def echo(self, v):
        return v


class Slowpoke(Actor):
    COMPUTE = {"crawl": 2.0}

    def crawl(self):
        return "done"


def make_runtime(**kw):
    rt = ActorRuntime(ClusterConfig(num_servers=2, seed=0, **kw))
    rt.register_actor("echo", Echo)
    rt.register_actor("slow", Slowpoke)
    return rt


def test_stale_response_is_dropped_silently():
    """A response whose continuation is gone (e.g. already timed out)
    must not crash the silo."""
    rt = make_runtime()
    silo = rt.silos[0]
    stale = Message(kind=MessageKind.RESPONSE, target=None, call_id=999_999,
                    result="late")
    silo.deliver(stale)
    rt.run(until=1.0)  # deserialize + route: no effect, no exception


def test_double_timeout_and_response_race():
    """Response arrives after the timeout already resolved the call: the
    late response must be ignored, not double-resume the generator."""
    # No cluster-wide timeout (the client keeps waiting); the inner call
    # carries its own 0.5 s timeout.
    rt = make_runtime()

    class Caller(Actor):
        def go(self, target):
            try:
                reply = yield Call(target, "crawl", timeout=0.5)
            except Exception:
                return "timed out"
            return reply

    rt.register_actor("caller", Caller)
    results = []
    rt.client_request(rt.ref("caller", 1), "go", rt.ref("slow", 1),
                      on_complete=lambda lat, res: results.append(res))
    rt.run(until=10.0)  # crawl finishes at ~2s, long after the timeout
    assert results == ["timed out"]
    # the late real response was dropped without a second resume
    assert all(not s._pending for s in rt.silos)


def test_yielding_garbage_raises_type_error():
    rt = make_runtime()

    class Confused(Actor):
        def bad(self):
            yield 42

    rt.register_actor("confused", Confused)
    rt.client_request(rt.ref("confused", 1), "bad")
    with pytest.raises(TypeError):
        rt.run(until=1.0)


def test_deliver_to_dead_silo_is_noop():
    rt = make_runtime()
    rt.fail_silo(1)
    msg = Message(kind=MessageKind.CLIENT_REQUEST, target=ActorId("echo", 1),
                  method="echo", args=("x",))
    rt.silos[1].deliver(msg)
    rt.run(until=1.0)
    assert rt.silos[1].receiver.stats.arrivals == 0


def test_fail_is_idempotent_and_restart_clean():
    rt = make_runtime()
    rt.activate(rt.ref("echo", 1).id, 1)
    rt.fail_silo(1)
    rt.fail_silo(1)  # second crash: no double-unregister
    assert len(rt.directory) == 0
    rt.restart_silo(1)
    assert not rt.silos[1].dead


def test_unknown_actor_method_raises():
    rt = make_runtime()
    rt.client_request(rt.ref("echo", 1), "no_such_method")
    with pytest.raises(AttributeError):
        rt.run(until=1.0)


def test_response_size_flows_from_call():
    """The response serialization cost must reflect Call(response_size=...)."""
    rt = make_runtime()

    class Chunky(Actor):
        def fetch(self, target):
            reply = yield Call(target, "echo", "x" * 10,
                               size=100, response_size=8000)
            return len(reply)

    rt.register_actor("chunky", Chunky)
    chunky, echo = rt.ref("chunky", 1), rt.ref("echo", 1)
    rt.activate(chunky.id, 0)
    rt.activate(echo.id, 1)
    results = []
    rt.client_request(chunky, "fetch", echo,
                      on_complete=lambda lat, res: results.append(res))
    rt.run(until=2.0)
    assert results == [10]
    # the big response crossed silo 1's server sender: its measured mean
    # cpu must exceed the small request's serialize cost
    sender_stats = rt.silos[1].server_sender.stats
    assert sender_stats.completions == 1
    # Measured CPU time includes the oversubscription inflation (the
    # default 32 threads on 8 cores), exactly as a cycle counter would.
    big_cost = (rt.serialization.serialize_cost(8000)
                * rt.silos[1].server.cpu.inflation())
    assert sender_stats.sum_x == pytest.approx(big_cost, rel=0.05)
