"""The asyncio backend end to end: supervision, faults, the turn
vocabulary, and the build_cluster error surface."""

import pytest

from repro import (
    ActorCrashed,
    ActorError,
    BackendError,
    ClusterConfig,
    FaultPlan,
    ResilienceConfig,
    RetryPolicy,
    SupervisionPolicy,
    build_cluster,
)
from repro.actor.actor import Actor
from repro.actor.calls import All, Call, Sleep, Tell
from repro.actor.ids import ActorRef
from repro.core import ActOpConfig
from repro.autoscale import AutoscaleConfig
from repro.sim import Simulator


class CounterActor(Actor):
    def __init__(self):
        super().__init__()
        self.count = 0

    def bump(self):
        self.count += 1
        return self.count

    def boom(self):
        raise RuntimeError("kaboom")


class ComboActor(Actor):
    """Exercises the full yield vocabulary on the real runtime."""

    def __init__(self):
        super().__init__()
        self.told = 0

    def note(self, n):
        self.told += n

    def combo(self):
        yield Sleep(0.01)
        yield Tell(ActorRef("combo", "peer"), "note", 5)
        first = yield Call(ActorRef("counter", 0), "bump")
        both = yield All([Call(ActorRef("counter", 0), "bump"),
                          Call(ActorRef("counter", 0), "bump")])
        return (first, both)


def _cluster(**kwargs):
    return build_cluster(ClusterConfig(num_servers=2, seed=3),
                         backend="asyncio", **kwargs)


def _call(backend, ref, method, *args):
    results = []
    backend.call(ref, method, *args,
                 on_complete=lambda _lat, res: results.append(res))
    backend.flush()
    return results[0]


# ----------------------------------------------------------------------
# Supervision
# ----------------------------------------------------------------------
def test_restart_after_crash():
    with _cluster() as cluster:
        be = cluster.runtime
        be.register_actor("counter", CounterActor)
        cluster.start()
        ref = be.ref("counter", 0)
        be.spawn(ref, server=0)
        assert _call(be, ref, "bump") == 1
        assert _call(be, ref, "bump") == 2

        crash = _call(be, ref, "boom")
        assert isinstance(crash, ActorCrashed)
        assert crash.actor_id == ref.id
        assert isinstance(crash.cause, RuntimeError)
        assert be.supervisor.restarts == 1

        # Restarted in place, from scratch: nothing had been persisted,
        # so the volatile count is gone — the Orleans contract, same as
        # losing a silo.
        assert be.locate(ref.id) == 0
        assert _call(be, ref, "bump") == 1


def test_restart_restores_persisted_state():
    with _cluster() as cluster:
        be = cluster.runtime
        be.register_actor("counter", CounterActor)
        cluster.start()
        ref = be.ref("counter", 0)
        be.spawn(ref, server=0)
        _call(be, ref, "bump")
        _call(be, ref, "bump")
        assert be.deactivate(ref.id)  # persists {count: 2}
        assert _call(be, ref, "bump") == 3  # reactivate restores
        crash = _call(be, ref, "boom")
        assert isinstance(crash, ActorCrashed)
        # The restart rolled back to the last *persisted* state.
        assert _call(be, ref, "bump") == 3


def test_stop_strategy_rejects_after_crash():
    with _cluster(supervision=SupervisionPolicy(strategy="stop")) as cluster:
        be = cluster.runtime
        be.register_actor("counter", CounterActor)
        cluster.start()
        ref = be.ref("counter", 0)
        be.spawn(ref, server=0)
        assert isinstance(_call(be, ref, "boom"), ActorCrashed)
        refused = _call(be, ref, "bump")
        assert isinstance(refused, ActorError)
        assert "stopped" in str(refused)
        assert be.supervisor.stops == 1


def test_escalation_on_budget_exhaustion_fails_silo():
    policy = SupervisionPolicy(max_restarts=1, window=60.0,
                               on_exhaustion="escalate")
    with _cluster(supervision=policy, call_timeout=0.5) as cluster:
        be = cluster.runtime
        be.register_actor("counter", CounterActor)
        cluster.start()
        ref = be.ref("counter", 0)
        be.spawn(ref, server=0)
        assert isinstance(_call(be, ref, "boom"), ActorCrashed)
        assert not be.silos[0].dead

        # Second crash blows the 1-restart budget: the silo goes down
        # with it, and the in-flight request can only time out.
        second = _call(be, ref, "boom")
        assert be.silos[0].dead
        assert be.supervisor.escalations == 1
        assert isinstance(second, ActorError)

        # The healing path: the next request re-places the actor on the
        # surviving silo, fresh.
        assert _call(be, ref, "bump") == 1
        assert be.locate(ref.id) == 1


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
def test_crash_plan_runs_on_asyncio():
    plan = FaultPlan().crash(at=0.05, server=1)
    with _cluster(faults=plan, call_timeout=0.5) as cluster:
        be = cluster.runtime
        be.register_actor("counter", CounterActor)
        cluster.start()
        ref = be.ref("counter", 0)
        be.spawn(ref, server=1)
        assert _call(be, ref, "bump") == 1
        cluster.run(until=0.1)  # wall-clock: the crash timer fires
        assert be.silos[1].dead
        assert cluster.injector.faults_started == 1
        # Re-placed on the survivor; volatile state died with the silo.
        assert _call(be, ref, "bump") == 1
        assert be.locate(ref.id) == 0


def test_network_fault_actions_are_rejected_at_build_time():
    plan = FaultPlan().degrade(at=1.0, until=2.0, drop=0.5)
    with pytest.raises(BackendError, match="LinkDegradation"):
        build_cluster(ClusterConfig(num_servers=2), backend="asyncio",
                      faults=plan)


# ----------------------------------------------------------------------
# Turn vocabulary
# ----------------------------------------------------------------------
def test_sleep_tell_call_all():
    with _cluster() as cluster:
        be = cluster.runtime
        be.register_actor("counter", CounterActor)
        be.register_actor("combo", ComboActor)
        cluster.start()
        combo = be.ref("combo", "main")
        peer = be.ref("combo", "peer")
        be.spawn(combo, server=0)
        be.spawn(peer, server=1)
        be.spawn(be.ref("counter", 0), server=1)
        first, both = _call(be, combo, "combo")
        assert first == 1
        assert sorted(both) == [2, 3]
        cluster.run()  # drain the Tell
        told = be.silos[1].activations[peer.id].instance.told
        assert told == 5


# ----------------------------------------------------------------------
# build_cluster surface
# ----------------------------------------------------------------------
def test_unknown_backend_rejected():
    with pytest.raises(BackendError, match="unknown backend"):
        build_cluster(ClusterConfig(), backend="threads")


@pytest.mark.parametrize("kwargs", [
    {"actop": ActOpConfig()},
    {"autoscale": AutoscaleConfig()},
    {"sim": Simulator()},
])
def test_sim_only_layers_rejected_on_asyncio(kwargs):
    with pytest.raises(BackendError, match="simulator-only"):
        build_cluster(ClusterConfig(), backend="asyncio", **kwargs)


def test_unsupported_resilience_rejected_on_asyncio():
    resilience = ResilienceConfig(call_timeout=0.5,
                                  retry=RetryPolicy(max_attempts=3))
    with pytest.raises(BackendError, match="retry"):
        build_cluster(ClusterConfig(), backend="asyncio",
                      resilience=resilience)


def test_resilience_call_timeout_carries_to_asyncio():
    cluster = build_cluster(ClusterConfig(num_servers=2), backend="asyncio",
                            resilience=ResilienceConfig(call_timeout=1.5))
    with cluster:
        assert cluster.runtime.call_timeout == 1.5
        assert cluster.backend_name == "asyncio"


@pytest.mark.parametrize("kwargs", [
    {"supervision": SupervisionPolicy()},
    {"transport": "tcp"},
    {"call_timeout": 1.0},
])
def test_asyncio_only_knobs_rejected_on_sim(kwargs):
    with pytest.raises(BackendError, match="asyncio"):
        build_cluster(ClusterConfig(), backend="sim", **kwargs)


def test_unknown_transport_rejected():
    with pytest.raises(BackendError, match="transport"):
        build_cluster(ClusterConfig(), backend="asyncio", transport="quic")
