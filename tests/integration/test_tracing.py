"""Integration tests for repro.obs on live cluster runs.

The contract under test is the one that makes tracing trustworthy:

* **Neutrality** — attaching an ``Observability`` must not perturb the
  simulation.  A seeded run must be bit-identical (event trace digest,
  event count, every latency sample) with tracing off, on, and sampled.
* **Causality** — a single client request produces one connected span
  tree whose pieces land on the right silos, across RPC boundaries.
* **Accuracy** — per-stage time totals derived from spans must agree
  with the independently-maintained :class:`StageStats` recorders.
* **Cheapness** — with sampling off, the added work is a handful of
  predicate checks per event; wall-clock overhead stays small.
"""

import hashlib
import time

import pytest

from repro.bench.harness import HaloExperiment
from repro.obs import (
    Observability,
    cross_check,
    critical_path,
    recorder_totals,
    spans_by_trace,
    stage_totals,
)
from repro.obs.events import (
    ExchangeEvent,
    MigrationEvent,
    PartitionRoundEvent,
    ThreadAllocationEvent,
)


def _run_mini_cluster(sample_rate=None, horizon: float = 4.0):
    """Seeded mini Halo cluster; optionally traced.  Returns the
    event-trace fingerprint plus the Observability (or None)."""
    exp = HaloExperiment(players=80, num_servers=3, seed=5)
    obs = None
    if sample_rate is not None:
        obs = Observability(exp.runtime, sample_rate=sample_rate)
    exp.workload.start()
    sim = exp.runtime.sim
    digest = hashlib.sha256()
    while sim.now < horizon and sim.step():
        digest.update(repr(sim.now).encode())
    latencies = sorted(exp.runtime.client_latency._samples)
    return digest.hexdigest(), sim.events_processed, latencies, obs


def test_tracing_is_neutral_to_the_simulation():
    baseline = _run_mini_cluster(sample_rate=None)
    traced = _run_mini_cluster(sample_rate=1.0)
    sampled = _run_mini_cluster(sample_rate=0.25)

    # Bit-identical schedules and results regardless of tracing.
    for run in (traced, sampled):
        assert run[0] == baseline[0]
        assert run[1] == baseline[1]
        assert run[2] == baseline[2]

    obs = traced[3]
    assert obs.tracer.traces_started == obs.tracer.requests_seen > 0
    assert len(obs.spans) > 100

    part = sampled[3]
    assert part.tracer.requests_seen == obs.tracer.requests_seen
    # Systematic 1-in-4 sampling, deterministic — not approximately 25%.
    assert part.tracer.traces_started == obs.tracer.traces_started // 4


def test_request_spans_form_a_cross_silo_tree():
    *_, obs = _run_mini_cluster(sample_rate=1.0, horizon=6.0)
    finished = [s for s in obs.spans if s.cat == "request"]
    assert len(finished) > 20
    traces = spans_by_trace(obs.spans)

    crossed = 0
    for span in finished:
        tree = traces[span.trace_id]
        by_id = {s.span_id: s for s in tree}
        roots = [s for s in tree if s.parent_id is None]
        assert roots == [span]  # exactly one root per trace: the request
        # Call/stage/net spans must link back into the recorded tree.
        # (Tell fan-out is the one sanctioned exception: a Tell carries a
        # child context but records no span of its own, so its stage
        # work hangs off an unrecorded parent id.)
        linked = sum(1 for s in tree
                     if s.parent_id is not None and s.parent_id in by_id)
        assert linked > 0 or len(tree) == 1
        servers = {s.server for s in tree if s.server is not None}
        if len(servers) > 1:
            crossed += 1
            assert any(s.cat == "call" for s in tree)
            assert any(s.cat == "net" for s in tree)
        path = critical_path(tree)
        assert path and path[0] is span
        for hop, nxt in zip(path, path[1:]):
            assert nxt.parent_id == hop.span_id
    # Halo sessions scatter players across silos: remote work must exist.
    assert crossed > 0


@pytest.mark.parametrize("actop", [False, True])
def test_trace_derived_stage_totals_match_recorders(actop):
    # The actop=True variant is the hard case: actors migrate mid-window
    # and the thread controllers re-arm the servers' shared window slots
    # every tick — the private snapshots must coexist with them.
    exp = HaloExperiment(players=120, num_servers=3, seed=9,
                         partitioning=actop, thread_allocation=actop)
    obs = Observability(exp.runtime, sample_rate=1.0)
    rt = exp.runtime
    exp.workload.start()
    if actop:
        exp.actop.start()
    rt.run(until=3.0)
    t0 = obs.begin_recorder_window()
    rt.run(until=8.0)
    windows = obs.end_recorder_window()

    error, components = cross_check(
        stage_totals(obs.spans, t0, rt.sim.now),
        recorder_totals(windows),
    )
    assert components, "cross-check must actually compare components"
    assert error < 0.01, f"trace vs recorder divergence {error:.4g}"


def test_actop_run_emits_runtime_events():
    exp = HaloExperiment(players=150, num_servers=3, seed=4,
                         partitioning=True, thread_allocation=True)
    obs = Observability(exp.runtime, sample_rate=0.0)
    exp.workload.start()
    exp.actop.start()
    exp.runtime.run(until=20.0)

    events = obs.events
    assert events.of_kind(PartitionRoundEvent), "partitioning rounds ran"
    assert events.of_kind(ThreadAllocationEvent), "thread controller acted"
    exchanges = events.of_kind(ExchangeEvent)
    migrations = events.of_kind(MigrationEvent)
    assert exchanges
    # Accepted exchanges move actors in both directions; each move lands
    # as a migration event (some may still be in flight at the horizon).
    moved = sum(e.sent + e.received for e in exchanges if e.accepted)
    assert len(migrations) <= moved
    if moved:
        assert migrations
    # sample_rate=0 means events flow but no request spans do.
    assert obs.tracer.traces_started == 0
    assert not [s for s in obs.spans if s.cat == "request"]


def test_disabled_tracing_overhead_is_small():
    def timed(sample_rate):
        best = float("inf")
        for _ in range(3):
            exp = HaloExperiment(players=120, num_servers=3, seed=11)
            if sample_rate is not None:
                Observability(exp.runtime, sample_rate=sample_rate)
            exp.workload.start()
            start = time.perf_counter()
            exp.runtime.run(until=6.0)
            best = min(best, time.perf_counter() - start)
        return best

    baseline = timed(None)
    disabled = timed(0.0)
    # Budget is ~5%; assert with headroom for CI timer noise.  A real
    # regression (per-event allocation, span recording on the disabled
    # path) shows up as 2x+, far beyond this bound.
    assert disabled < baseline * 1.30, (
        f"disabled tracing costs {disabled / baseline - 1:.1%} "
        f"({disabled:.3f}s vs {baseline:.3f}s)"
    )


def test_double_attach_is_rejected():
    exp = HaloExperiment(players=40, num_servers=2, seed=1)
    obs = Observability(exp.runtime)
    with pytest.raises(RuntimeError):
        Observability(exp.runtime)
    obs.detach()
    second = Observability(exp.runtime)  # fine after detach
    assert exp.runtime.obs is second
