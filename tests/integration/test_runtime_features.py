"""Integration tests: admission control, time scaling, samplers, ActOp facade."""

import pytest

from repro.actor.actor import Actor
from repro.actor.runtime import ActorRuntime, ClusterConfig
from repro.faults.resilience import AdmissionConfig, ResilienceConfig
from repro.bench.sampler import ClusterSampler
from repro.core.actop import ActOp, ActOpConfig, ThreadControllerConfig
from repro.core.partitioning.coordinator import PartitioningConfig
from repro.workloads.heartbeat import HeartbeatConfig, HeartbeatWorkload


class Sluggish(Actor):
    COMPUTE = {"work": 0.01}

    def work(self):
        return 1


def test_receiver_queue_bound_rejects_overload():
    rt = ActorRuntime(
        ClusterConfig(num_servers=1, seed=0),
        resilience=ResilienceConfig(admission=AdmissionConfig(receiver_queue=5)))
    rt.register_actor("slug", Sluggish)
    # 200 near-simultaneous requests into a server that can do ~800/s.
    for i in range(200):
        rt.client_request(rt.ref("slug", i % 3), "work")
    rt.run(until=5.0)
    assert rt.rejected_requests > 0
    assert rt.requests_completed + rt.rejected_requests == 200
    assert rt.requests_completed > 0


def test_no_rejection_without_bound():
    rt = ActorRuntime(ClusterConfig(num_servers=1, seed=0))
    rt.register_actor("slug", Sluggish)
    for i in range(200):
        rt.client_request(rt.ref("slug", i % 3), "work")
    rt.run(until=60.0)
    assert rt.rejected_requests == 0
    assert rt.requests_completed == 200


def test_time_scale_preserves_utilization_and_shape():
    """The scaling trick: costs x s, rates / s -> same utilization, and
    latencies scale by exactly s (up to stochastic noise)."""

    def run(scale):
        rt = ActorRuntime(ClusterConfig(num_servers=1, seed=5,
                                        time_scale=scale))
        w = HeartbeatWorkload(rt, HeartbeatConfig(
            num_monitors=200, request_rate=2000.0 / scale))
        w.start()
        busy0, t0 = rt.cpu_busy_snapshot(), rt.sim.now
        rt.run(until=20.0 * scale)
        util = rt.mean_cpu_utilization(busy0, t0)
        return util, rt.client_latency.median / scale

    util1, med1 = run(1.0)
    util4, med4 = run(4.0)
    assert util4 == pytest.approx(util1, rel=0.1)
    assert med4 == pytest.approx(med1, rel=0.15)


def test_cluster_sampler_records_all_series():
    rt = ActorRuntime(ClusterConfig(num_servers=2, seed=1))
    rt.register_actor("slug", Sluggish)
    sampler = ClusterSampler(rt, period=1.0)
    sampler.start()
    for i in range(50):
        rt.client_request(rt.ref("slug", i), "work")
    rt.run(until=5.5)
    sampler.stop()
    assert len(sampler.remote_share) == 5
    assert len(sampler.cpu_utilization) == 5
    assert len(sampler.imbalance) == 5
    assert max(sampler.cpu_utilization.values) > 0


def test_sampler_period_validation():
    rt = ActorRuntime(ClusterConfig(num_servers=1))
    with pytest.raises(ValueError):
        ClusterSampler(rt, period=0.0)


def test_actop_requires_at_least_one_optimization():
    rt = ActorRuntime(ClusterConfig(num_servers=2))
    with pytest.raises(ValueError):
        ActOp(rt)


def test_actop_builds_agents_and_controllers():
    rt = ActorRuntime(ClusterConfig(num_servers=3))
    actop = ActOp(rt, ActOpConfig(
        partitioning=PartitioningConfig(),
        thread_allocation=ThreadControllerConfig()))
    assert len(actop.agents) == 3
    assert len(actop.controllers) == 3
    # peer maps are complete and shared
    assert set(actop.agents[0].peers) == {0, 1, 2}
    actop.start()
    rt.run(until=1.0)
    actop.stop()


def test_actop_partitioning_only():
    rt = ActorRuntime(ClusterConfig(num_servers=2))
    actop = ActOp(rt, ActOpConfig(partitioning=PartitioningConfig()))
    assert actop.agents and not actop.controllers


def test_invalid_cluster_configs():
    with pytest.raises(ValueError):
        ActorRuntime(ClusterConfig(num_servers=0))
    with pytest.raises(ValueError):
        ActorRuntime(ClusterConfig(time_scale=0.0))
