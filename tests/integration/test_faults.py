"""Integration tests for :mod:`repro.faults` — the injector end to end.

The load-bearing test here is the neutrality one: an **empty fault plan
must be bit-identical** to a run that never constructed the injector
(same event trace, same latency samples).  Everything else checks that
each fault action does what it says against a live cluster.
"""

import hashlib

import pytest

from repro.actor.actor import Actor
from repro.actor.calls import Call
from repro.actor.errors import CallTimeout
from repro.actor.runtime import ActorRuntime, ClusterConfig
from repro.bench.harness import HaloExperiment
from repro.cluster import build_cluster
from repro.faults import FaultInjector, FaultPlan, ResilienceConfig, RetryPolicy
from repro.obs import Observability


class Echo(Actor):
    COMPUTE = {"ping": 1e-4}

    def ping(self):
        return "pong"


class Heavy(Actor):
    COMPUTE = {"work": 0.01}

    def work(self):
        return 1


class Fwd(Actor):
    COMPUTE = {"fwd": 1e-4}

    def fwd(self, target):
        reply = yield Call(target, "ping")
        return reply


# ----------------------------------------------------------------------
# Neutrality: empty plan == no injector, bit for bit.
# ----------------------------------------------------------------------
def _digest_mini_cluster(plan, horizon: float = 4.0):
    exp = HaloExperiment(players=80, num_servers=3, seed=5, faults=plan)
    exp.workload.start()
    exp.cluster.start()
    if plan is None:
        # Exercise the injector's own empty-plan path too: arming an
        # empty plan against the baseline run must change nothing.
        FaultInjector(exp.runtime, FaultPlan()).start()
    sim = exp.runtime.sim
    digest = hashlib.sha256()
    while sim.now < horizon and sim.step():
        digest.update(repr(sim.now).encode())
    return (digest.hexdigest(), sim.events_processed,
            sorted(exp.runtime.client_latency._samples))


def test_empty_fault_plan_is_bit_identical():
    base = _digest_mini_cluster(None)
    armed = _digest_mini_cluster(FaultPlan())
    assert base[1] > 1_000  # the run actually exercised the cluster
    assert base == armed


def test_empty_plan_installs_nothing():
    rt = ActorRuntime(ClusterConfig(num_servers=2, seed=0))
    injector = FaultInjector(rt, FaultPlan()).start()
    assert rt.network.faults is None
    assert injector.link_faults is None
    with pytest.raises(RuntimeError):
        injector.start()


# ----------------------------------------------------------------------
# Crash / restart.
# ----------------------------------------------------------------------
def test_crash_and_restart_with_failover():
    plan = FaultPlan().crash(2.0, 1).restart(6.0, 1)
    cluster = build_cluster(
        ClusterConfig(num_servers=3, seed=4),
        resilience=ResilienceConfig(call_timeout=0.5,
                                    retry=RetryPolicy(max_attempts=3)),
        faults=plan,
    )
    rt = cluster.runtime
    obs = Observability(rt)
    rt.register_actor("echo", Echo)
    refs = [rt.ref("echo", i) for i in range(30)]
    results = []

    def tick():
        for ref in refs:
            rt.client_request(ref, "ping",
                              on_complete=lambda lat, res: results.append(res))
        rt.sim.schedule(0.5, tick)

    rt.sim.schedule(0.0, tick)
    cluster.start()

    rt.run(until=4.0)  # mid-outage
    assert rt.silos[1].dead
    assert rt.census()[1] == 0  # the victim hosts nothing while dead
    assert cluster.injector.faults_started == 1

    rt.run(until=10.0)
    assert not rt.silos[1].dead
    assert cluster.injector.faults_started == 2
    # Every issued request resolved: completed or timed out, none hang.
    issued = 30 * len([t for t in range(20) if t * 0.5 < 10.0])
    assert rt.requests_completed + rt.requests_timed_out == issued
    assert rt.inflight_requests <= 30
    # The displaced actors re-activated on survivors and answered.
    assert sum(1 for r in results if r == "pong") > 0.9 * len(results)
    fault_events = [e for e in obs.events if type(e).KIND == "fault"]
    assert [e.fault for e in fault_events] == ["SiloCrash", "SiloRestart"]
    assert all(e.phase == "start" for e in fault_events)


# ----------------------------------------------------------------------
# Slow silo.
# ----------------------------------------------------------------------
def test_slow_silo_inflates_service_time():
    plan = FaultPlan().slow_silo(1.0, 2.0, server=0, factor=20.0)
    cluster = build_cluster(ClusterConfig(num_servers=1, seed=1), faults=plan)
    rt = cluster.runtime
    rt.register_actor("heavy", Heavy)
    ref = rt.ref("heavy", 0)
    lat = {}

    def probe(name, at):
        rt.sim.schedule(at, lambda: rt.client_request(
            ref, "work",
            on_complete=lambda latency, res: lat.__setitem__(name, latency)))

    probe("before", 0.5)
    probe("during", 1.2)
    probe("after", 2.5)
    cluster.start()
    rt.run(until=5.0)
    assert rt.silos[0].server.cpu.throttle == 1.0  # window ended
    assert lat["during"] > 10 * lat["before"]
    assert lat["after"] < 2 * lat["before"]
    assert cluster.injector.faults_ended == 1


# ----------------------------------------------------------------------
# Link faults: drop, delay, duplicate, partition.
# ----------------------------------------------------------------------
def test_total_drop_times_out_then_recovers():
    plan = FaultPlan().degrade(1.0, 2.0, drop=1.0)
    cluster = build_cluster(
        ClusterConfig(num_servers=2, seed=2),
        resilience=ResilienceConfig(call_timeout=0.2),
        faults=plan,
    )
    rt = cluster.runtime
    rt.register_actor("echo", Echo)
    ref = rt.ref("echo", 0)
    results = []
    for at in (0.2, 1.2, 2.5):
        rt.sim.schedule(at, lambda: rt.client_request(
            ref, "ping", on_complete=lambda lat, res: results.append(res)))
    cluster.start()
    rt.run(until=5.0)
    assert results[0] == "pong"
    assert isinstance(results[1], CallTimeout)  # dropped inside the window
    assert results[2] == "pong"                 # healed
    assert cluster.injector.link_faults.messages_dropped > 0


def test_delay_and_duplicate_are_harmless_to_completion():
    plan = FaultPlan().degrade(0.0, 10.0, delay=0.05, duplicate=1.0)
    cluster = build_cluster(ClusterConfig(num_servers=2, seed=3), faults=plan)
    rt = cluster.runtime
    rt.register_actor("echo", Echo)
    lats = []
    for i in range(20):
        ref = rt.ref("echo", i)
        # 0.05 offset: the window begins at t=0 with a same-timestamp
        # event; requests must land strictly inside it.
        rt.sim.schedule(0.05 + 0.1 * i, lambda ref=ref: rt.client_request(
            ref, "ping", on_complete=lambda lat, res: lats.append(lat)))
    cluster.start()
    rt.run(until=10.0)
    model = cluster.injector.link_faults
    assert model.messages_duplicated > 0
    assert model.messages_delayed > 0
    # Duplicated deliveries never double-complete a request.
    assert rt.requests_completed == 20
    assert rt.late_responses > 0
    assert all(lat >= 0.1 for lat in lats)  # >= request+response delay


def test_partition_cuts_inter_silo_calls_only():
    plan = FaultPlan().partition(1.0, 2.0, {0}, {1})
    cluster = build_cluster(
        ClusterConfig(num_servers=2, seed=6),
        resilience=ResilienceConfig(call_timeout=0.3),
        faults=plan,
    )
    rt = cluster.runtime
    rt.register_actor("echo", Echo)
    rt.register_actor("fwd", Fwd)
    fwd, echo = rt.ref("fwd", 0), rt.ref("echo", 0)
    rt.activate(fwd.id, 0)
    rt.activate(echo.id, 1)
    results = []
    for at in (0.2, 1.2, 2.5):
        rt.sim.schedule(at, lambda: rt.client_request(
            fwd, "fwd", echo,
            on_complete=lambda lat, res: results.append(res)))
    cluster.start()
    rt.run(until=6.0)
    assert results[0] == "pong"
    # Inside the window the cross-silo call dies; the actor-level call
    # timeout surfaces (the client leg, src=None, is never partitioned).
    assert isinstance(results[1], CallTimeout)
    assert results[2] == "pong"
    assert cluster.injector.link_faults.messages_dropped > 0
    assert cluster.injector.link_faults.idle  # healed and uninstalled-idle


# ----------------------------------------------------------------------
# Directory staleness.
# ----------------------------------------------------------------------
def test_directory_staleness_heals_on_next_call():
    plan = FaultPlan().stale_directory(1.0, count=5)
    cluster = build_cluster(ClusterConfig(num_servers=3, seed=7), faults=plan)
    rt = cluster.runtime
    rt.register_actor("echo", Echo)
    refs = [rt.ref("echo", i) for i in range(12)]
    results = []

    def tick():
        for ref in refs:
            rt.client_request(ref, "ping",
                              on_complete=lambda lat, res: results.append(res))
        rt.sim.schedule(0.4, tick)

    rt.sim.schedule(0.0, tick)
    cluster.start()
    rt.run(until=6.0)
    assert cluster.injector.actors_staled > 0
    # Stale entries self-heal: every request (including those that chased
    # a poisoned hint) completed with the right answer.
    assert results and all(r == "pong" for r in results)
    for ref in refs:
        assert rt.locate(ref.id) is not None
