"""Cross-backend parity: one program, two engines, identical logic.

The simulator is the reference implementation; the asyncio backend must
agree with it on everything *logical* — results, final actor state,
message-count splits — while timings (simulated vs wall-clock) are
allowed to differ.  Both engines seed the same RNG streams and draw in
the same order during deterministic setup, so the local/remote message
split is exactly reproducible, not just statistically similar.
"""

import pytest

from repro import ClusterConfig, FaultPlan, ResilienceConfig, build_cluster
from repro.backend.bench import PingerActor, PongerActor
from repro.workloads.stageflow import (
    StageSpec,
    StageflowConfig,
    StageflowWorkload,
    StageWorkerActor,
)

PINGS = 25
SEED = 7


def _run_ping(backend_name: str, transport: str = "inproc") -> dict:
    kwargs = {} if backend_name == "sim" else {"transport": transport}
    cluster = build_cluster(ClusterConfig(num_servers=2, seed=SEED),
                            backend=backend_name, **kwargs)
    with cluster:
        be = cluster.backend
        be.register_actor("pinger", PingerActor)
        be.register_actor("ponger", PongerActor)
        cluster.start()
        be.spawn(be.ref("pinger", 0), server=0)
        be.spawn(be.ref("ponger", 0), server=1)
        results = []
        for i in range(PINGS):
            be.call(be.ref("pinger", 0), "ping", i, size=64,
                    response_size=64,
                    on_complete=lambda _lat, res: results.append(res))
            cluster.run()
        rt = cluster.runtime
        pinger_loc = rt.locate(be.ref("pinger", 0).id)
        ponger_loc = rt.locate(be.ref("ponger", 0).id)
        pinger = rt.silos[pinger_loc].activations[be.ref("pinger", 0).id]
        ponger = rt.silos[ponger_loc].activations[be.ref("ponger", 0).id]
        return {
            "results": results,
            "pings": pinger.instance.pings,
            "bounces": ponger.instance.bounces,
            "pinger_state": pinger.instance.capture_state(),
            "ponger_state": ponger.instance.capture_state(),
            "msgs_local": rt.msgs_local,
            "msgs_remote": rt.msgs_remote,
        }


def _stageflow_config() -> StageflowConfig:
    # Small pools, deterministic policy, no load-report loop: every RNG
    # draw during setup and drive happens in program order on both
    # engines.
    return StageflowConfig(
        stages=(StageSpec("route", compute=50e-6, replicas=2),
                StageSpec("enrich", compute=100e-6, heavy_compute=200e-6,
                          replicas=3),
                StageSpec("transform", compute=80e-6, replicas=2)),
        policy="round_robin",
        pipelines=2,
        router_shards=2,
        report_period=None,
        heavy_fraction=0.3,
    )


def _run_stageflow(backend_name: str, requests: int = 40,
                   transport: str = "inproc") -> dict:
    kwargs = {} if backend_name == "sim" else {"transport": transport}
    cluster = build_cluster(ClusterConfig(num_servers=4, seed=SEED),
                            backend=backend_name, **kwargs)
    with cluster:
        cluster.start()
        rt = cluster.runtime
        workload = StageflowWorkload(rt, _stageflow_config())
        workload.start(arrivals=False)
        workload.drive(requests)
        cluster.run()
        per_stage: dict[str, int] = {}
        per_stage_heavy: dict[str, int] = {}
        processed = 0
        for silo in rt.silos:
            for actor_id, activation in silo.activations.items():
                instance = activation.instance
                if isinstance(instance, StageWorkerActor):
                    stage = actor_id.actor_type.removesuffix(".worker")
                    per_stage[stage] = (per_stage.get(stage, 0)
                                        + instance.handled)
                    per_stage_heavy[stage] = (per_stage_heavy.get(stage, 0)
                                              + instance.handled_heavy)
                elif actor_id.actor_type == StageflowWorkload.PIPELINE:
                    processed += instance.processed
        return {
            "issued": workload.issued,
            "completed": workload.completed,
            "failed": workload.failed,
            "per_stage": per_stage,
            "per_stage_heavy": per_stage_heavy,
            "processed": processed,
            "msgs_local": rt.msgs_local,
            "msgs_remote": rt.msgs_remote,
        }


# ----------------------------------------------------------------------
def test_ping_parity_inproc():
    sim = _run_ping("sim")
    aio = _run_ping("asyncio", transport="inproc")
    assert sim == aio
    assert sim["results"] == list(range(PINGS))
    assert sim["bounces"] == PINGS
    # The pinger and ponger sit on different silos: every call and every
    # response crosses, nothing stays local.
    assert sim["msgs_remote"] == 2 * PINGS
    assert sim["msgs_local"] == 0


def test_ping_parity_tcp():
    sim = _run_ping("sim")
    aio = _run_ping("asyncio", transport="tcp")
    assert sim == aio


def test_ping_parity_inproc_copy():
    """The deep-copy inproc transport pickles every cross-silo message
    exactly as TCP would, so a program whose logical results survive it
    unchanged is portable: nothing it sends depends on reference
    sharing, and nothing it sends fails pickle."""
    reference = _run_ping("asyncio", transport="inproc")
    copied = _run_ping("asyncio", transport="inproc-copy")
    assert reference == copied


def test_stageflow_parity_inproc_copy():
    reference = _run_stageflow("asyncio", transport="inproc")
    copied = _run_stageflow("asyncio", transport="inproc-copy")
    assert reference == copied


def test_inproc_copy_drops_nothing_on_the_parity_programs():
    # Every message the parity programs send must survive the pickle
    # round-trip — a nonzero failure count would mean the copy transport
    # silently changed the program.
    cluster = build_cluster(ClusterConfig(num_servers=2, seed=SEED),
                            backend="asyncio", transport="inproc-copy")
    with cluster:
        be = cluster.backend
        be.register_actor("pinger", PingerActor)
        be.register_actor("ponger", PongerActor)
        cluster.start()
        be.spawn(be.ref("pinger", 0), server=0)
        be.spawn(be.ref("ponger", 0), server=1)
        for i in range(PINGS):
            be.call(be.ref("pinger", 0), "ping", i, size=64,
                    response_size=64)
            cluster.run()
        assert cluster.runtime.pickle_copy_failures == 0


def test_stageflow_parity():
    sim = _run_stageflow("sim")
    aio = _run_stageflow("asyncio")
    assert sim == aio
    assert sim["issued"] == 40
    assert sim["completed"] == 40
    assert sim["failed"] == 0
    # Every request visits every stage exactly once, on its kind's path.
    for stage in ("route", "enrich", "transform"):
        assert sim["per_stage"][stage] + sim["per_stage_heavy"][stage] == 40
    assert sim["processed"] == 40


def test_stageflow_kind_split_is_seeded():
    # The heavy/light split comes from the seeded kind stream, so it is
    # a fixed number, not a distribution.
    sim = _run_stageflow("sim")
    heavy = sum(sim["per_stage_heavy"].values())
    assert heavy % len(sim["per_stage_heavy"]) == 0
    assert 0 < heavy // 3 < 40


@pytest.mark.parametrize("backend_name", ["sim", "asyncio"])
def test_stageflow_with_crash_plan_runs_on_both_backends(backend_name):
    """The acceptance program: one Stageflow workload, one crash/restart
    FaultPlan, one build_cluster call — the backend argument is the only
    difference.  (Timings differ by engine, so this asserts survival and
    recovery, not bit-parity.)

    With SEED=7 silo 2 hosts one stateless stage worker and no pipeline
    actors, so the crash costs an activation the directory can re-place,
    not volatile pipeline wiring."""
    plan = FaultPlan().crash(at=0.05, server=2).restart(at=0.2, server=2)
    cluster = build_cluster(
        ClusterConfig(num_servers=4, seed=SEED),
        backend=backend_name,
        faults=plan,
        resilience=ResilienceConfig(call_timeout=0.5),
    )
    with cluster:
        cluster.start()
        rt = cluster.runtime
        workload = StageflowWorkload(rt, _stageflow_config())
        workload.start(arrivals=False)
        cluster.run(until=0.3)  # crash fires at 0.05, restart at 0.2
        assert not rt.silos[2].dead
        workload.drive(40)
        cluster.run()
        assert workload.issued == 40
        # The lost worker re-places on a live silo, so the pipeline keeps
        # completing every request after the crash.
        assert workload.completed == 40
        assert workload.failed == 0


@pytest.mark.parametrize("backend_name", ["sim", "asyncio"])
def test_send_parity_counts(backend_name):
    # Oneway sends resolve through the same gateway/placement draws on
    # both engines.
    cluster = build_cluster(ClusterConfig(num_servers=2, seed=SEED),
                            backend=backend_name)
    with cluster:
        be = cluster.backend
        be.register_actor("ponger", PongerActor)
        cluster.start()
        be.spawn(be.ref("ponger", 0), server=1)
        for i in range(10):
            be.send(be.ref("ponger", 0), "pong", i, size=64)
        cluster.run()
        rt = cluster.runtime
        ponger = rt.silos[1].activations[be.ref("ponger", 0).id].instance
        assert ponger.bounces == 10
