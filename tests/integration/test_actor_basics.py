"""Integration tests: basic actor semantics on a live cluster."""

import pytest

from repro.actor.actor import Actor
from repro.actor.calls import All, Call, Sleep
from repro.actor.runtime import ActorRuntime, ClusterConfig


class Echo(Actor):
    COMPUTE = {"echo": 1e-5}

    def echo(self, value):
        return value


class Accumulator(Actor):
    def __init__(self):
        super().__init__()
        self.total = 0

    def add(self, amount):
        self.total += amount
        return self.total


class FanOut(Actor):
    def fan(self, targets, value):
        results = yield All([Call(t, "echo", value) for t in targets])
        return results


class Chainer(Actor):
    def relay(self, target, value):
        doubled = yield Call(target, "echo", value * 2)
        return doubled + 1


class Napper(Actor):
    def nap(self, duration):
        yield Sleep(duration)
        return "rested"


def make_runtime(servers=2, seed=0, **kw):
    rt = ActorRuntime(ClusterConfig(num_servers=servers, seed=seed, **kw))
    rt.register_actor("echo", Echo)
    rt.register_actor("acc", Accumulator)
    rt.register_actor("fan", FanOut)
    rt.register_actor("chain", Chainer)
    rt.register_actor("nap", Napper)
    return rt


def test_client_request_round_trip():
    rt = make_runtime()
    results = []
    rt.client_request(rt.ref("echo", 1), "echo", "hello",
                      on_complete=lambda lat, res: results.append((lat, res)))
    rt.run(until=1.0)
    assert len(results) == 1
    latency, result = results[0]
    assert result == "hello"
    assert latency > 0
    assert rt.requests_completed == 1
    assert rt.client_latency.count == 1


def test_virtual_activation_on_first_call():
    rt = make_runtime()
    ref = rt.ref("acc", "counter")
    assert rt.locate(ref.id) is None
    rt.client_request(ref, "add", 5)
    rt.run(until=1.0)
    assert rt.locate(ref.id) is not None


def test_state_accumulates_across_requests():
    rt = make_runtime()
    ref = rt.ref("acc", 1)
    results = []
    for i in range(3):
        rt.client_request(ref, "add", 10,
                          on_complete=lambda lat, res: results.append(res))
    rt.run(until=2.0)
    assert results == [10, 20, 30]


def test_actor_to_actor_call_and_return():
    rt = make_runtime()
    results = []
    echo_ref = rt.ref("echo", "target")
    rt.client_request(rt.ref("chain", 1), "relay", echo_ref, 21,
                      on_complete=lambda lat, res: results.append(res))
    rt.run(until=2.0)
    assert results == [43]  # 21*2 echoed, +1


def test_fan_out_join_preserves_order():
    rt = make_runtime(servers=4)
    targets = [rt.ref("echo", i) for i in range(6)]
    results = []
    rt.client_request(rt.ref("fan", 1), "fan", targets, "x",
                      on_complete=lambda lat, res: results.append(res))
    rt.run(until=2.0)
    assert results == [["x"] * 6]
    # 6 calls + 6 responses between actors
    assert rt.msgs_local + rt.msgs_remote == 12


def test_sleep_suspends_without_holding_thread():
    rt = make_runtime(servers=1)
    results = []
    rt.client_request(rt.ref("nap", 1), "nap", 0.5,
                      on_complete=lambda lat, res: results.append((lat, res)))
    rt.run(until=2.0)
    assert results[0][1] == "rested"
    assert results[0][0] >= 0.5


def test_state_survives_deactivation():
    rt = make_runtime()
    ref = rt.ref("acc", "persistent")
    rt.client_request(ref, "add", 7)
    rt.run(until=1.0)
    assert rt.deactivate(ref.id)
    rt.run(until=1.5)
    assert rt.locate(ref.id) is None
    results = []
    rt.client_request(ref, "add", 1,
                      on_complete=lambda lat, res: results.append(res))
    rt.run(until=3.0)
    assert results == [8]  # 7 restored from storage, +1


def test_many_concurrent_clients_all_complete():
    rt = make_runtime(servers=3)
    done = []
    for i in range(200):
        rt.client_request(rt.ref("echo", i % 20), "echo", i,
                          on_complete=lambda lat, res: done.append(res))
    rt.run(until=5.0)
    assert len(done) == 200


def test_unknown_actor_type_rejected():
    rt = make_runtime()
    with pytest.raises(KeyError):
        rt.ref("nonexistent", 1)


def test_duplicate_type_registration_rejected():
    rt = make_runtime()
    with pytest.raises(ValueError):
        rt.register_actor("echo", Echo)


def test_non_actor_registration_rejected():
    rt = make_runtime()
    with pytest.raises(TypeError):
        rt.register_actor("bogus", object)
