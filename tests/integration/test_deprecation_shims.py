"""PR-3 deprecation shims: warn exactly once, behave identically.

The flat ``ClusterConfig`` kwargs and ``ActOp(rt, partitioning=...)``
keyword form are kept alive by shims; these tests pin the contract the
shims promise — a single :class:`DeprecationWarning` per use, and a run
that is indistinguishable from the layered ``build_cluster`` configs.
"""

import warnings

from repro.actor.actor import Actor
from repro.actor.runtime import ActorRuntime, ClusterConfig
from repro.cluster import build_cluster
from repro.core.actop import ActOp, ActOpConfig
from repro.core.partitioning.coordinator import PartitioningConfig
from repro.faults import AdmissionConfig, ResilienceConfig
from repro.seda.stage import Stage
from repro.sim.cpu import CpuPool
from repro.sim.engine import Simulator


class Echo(Actor):
    COMPUTE = {"ping": 1e-4}

    def ping(self):
        return "pong"


class Heavy(Actor):
    COMPUTE = {"work": 0.05}

    def work(self):
        return 1


def _deprecations(caught):
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


# ----------------------------------------------------------------------
# Exactly-once warning behavior
# ----------------------------------------------------------------------
def test_flat_cluster_config_kwargs_warn_exactly_once():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        build_cluster(ClusterConfig(num_servers=1, seed=3,
                                    call_timeout=0.01,
                                    max_receiver_queue=64))
    (warning,) = _deprecations(caught)
    assert "ResilienceConfig" in str(warning.message)


def test_actop_flat_kwargs_warn_exactly_once():
    rt = ActorRuntime(ClusterConfig(num_servers=2, seed=3))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        ActOp(rt, partitioning=PartitioningConfig())
    (warning,) = _deprecations(caught)
    assert "ActOpConfig" in str(warning.message)
    # Both deprecated kwargs together still warn only once.
    rt = ActorRuntime(ClusterConfig(num_servers=2, seed=3))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        ActOp(rt, partitioning=PartitioningConfig())
    assert len(_deprecations(caught)) == 1


def test_stage_tracer_setter_warns_exactly_once():
    sim = Simulator()
    stage = Stage(sim, CpuPool(sim, processors=1), "probe")
    events = []
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        stage.tracer = lambda st, ev: events.append(ev)
    assert len(_deprecations(caught)) == 1
    assert stage.tracer in stage.observers


# ----------------------------------------------------------------------
# Behavior parity with the layered build_cluster configs
# ----------------------------------------------------------------------
def _drive(cluster):
    rt = cluster.runtime
    rt.register_actor("echo", Echo)
    rt.register_actor("heavy", Heavy)
    results = []

    def record(latency, result):
        results.append(repr(result))

    for i in range(10):
        rt.client_request(rt.ref("echo", i % 3), "ping", on_complete=record)
    # 50 ms of work against a 10 ms timeout: the call_timeout knob is
    # load-bearing, so parity here proves the shim folded it correctly.
    rt.client_request(rt.ref("heavy", 0), "work", on_complete=record)
    cluster.start()
    cluster.run(until=2.0)
    return {
        "results": sorted(results),
        "events": rt.sim.events_processed,
        "completed": rt.requests_completed,
        "latency_count": rt.client_latency.count,
    }


def test_shimmed_cluster_config_run_is_identical_to_build_cluster():
    with warnings.catch_warnings(record=True):
        warnings.simplefilter("always")
        shimmed = _drive(build_cluster(
            ClusterConfig(num_servers=1, seed=3, call_timeout=0.01,
                          max_receiver_queue=64)))
    layered = _drive(build_cluster(
        ClusterConfig(num_servers=1, seed=3),
        resilience=ResilienceConfig(
            call_timeout=0.01,
            admission=AdmissionConfig(receiver_queue=64))))
    assert shimmed == layered
    assert any("CallTimeout" in r for r in layered["results"])


def _run_with_actop(make_actop):
    rt = ActorRuntime(ClusterConfig(num_servers=2, seed=9))
    actop = make_actop(rt)
    rt.register_actor("echo", Echo)
    results = []
    for i in range(12):
        rt.client_request(rt.ref("echo", i), "ping",
                          on_complete=lambda lat, res: results.append(res))
    actop.start()
    rt.run(until=5.0)
    return {
        "results": results,
        "events": rt.sim.events_processed,
        "agents": len(actop.agents),
        "controllers": len(actop.controllers),
        "migrations": actop.total_migrations,
    }


def test_shimmed_actop_kwargs_run_is_identical_to_config_form():
    with warnings.catch_warnings(record=True):
        warnings.simplefilter("always")
        shimmed = _run_with_actop(
            lambda rt: ActOp(rt, partitioning=PartitioningConfig()))
    layered = _run_with_actop(
        lambda rt: ActOp(rt, ActOpConfig(partitioning=PartitioningConfig())))
    assert shimmed == layered
    assert shimmed["results"] == ["pong"] * 12


# ----------------------------------------------------------------------
# PR-8 shims: the pre-backend build_cluster signature
# ----------------------------------------------------------------------
def test_positional_layer_arguments_warn_exactly_once():
    resilience = ResilienceConfig(call_timeout=0.01)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        shimmed = build_cluster(ClusterConfig(num_servers=1, seed=3),
                                resilience)
    (warning,) = _deprecations(caught)
    assert "positional" in str(warning.message)
    assert shimmed.runtime.resilience.call_timeout == 0.01


def test_positional_layer_arguments_behave_identically():
    resilience = ResilienceConfig(call_timeout=0.01,
                                  admission=AdmissionConfig(receiver_queue=64))
    with warnings.catch_warnings(record=True):
        warnings.simplefilter("always")
        shimmed = _drive(build_cluster(
            ClusterConfig(num_servers=1, seed=3), resilience))
    layered = _drive(build_cluster(
        ClusterConfig(num_servers=1, seed=3), resilience=resilience))
    assert shimmed == layered


def test_cluster_keyword_alias_warns_exactly_once():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        shimmed = build_cluster(cluster=ClusterConfig(num_servers=3, seed=5))
    (warning,) = _deprecations(caught)
    assert "config" in str(warning.message)
    assert shimmed.runtime.num_servers == 3


def test_positional_and_keyword_layer_conflict_is_an_error():
    import pytest

    resilience = ResilienceConfig(call_timeout=0.01)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        with pytest.raises(TypeError, match="multiple values"):
            build_cluster(ClusterConfig(num_servers=1), resilience,
                          resilience=resilience)
