"""Integration tests: the model-based controller on a live silo."""

import pytest

from repro.actor.runtime import ActorRuntime, ClusterConfig
from repro.core.actop import ActOp, ActOpConfig, ThreadControllerConfig
from repro.core.threads.estimator import estimate_alpha, measure_windows
from repro.workloads.heartbeat import HeartbeatConfig, HeartbeatWorkload


def run_heartbeat(optimize, rate=2500.0, seed=3, until=30.0, io_wait=0.0):
    rt = ActorRuntime(ClusterConfig(num_servers=1, seed=seed))
    w = HeartbeatWorkload(
        rt, HeartbeatConfig(num_monitors=400, request_rate=rate, io_wait=io_wait)
    )
    actop = None
    if optimize:
        actop = ActOp(rt, ActOpConfig(
            thread_allocation=ThreadControllerConfig(eta=1e-4, period=3.0)))
        actop.start()
    w.start()
    rt.run(until=until)
    return rt, actop


def test_controller_shrinks_default_allocation():
    rt, actop = run_heartbeat(optimize=True)
    alloc = rt.silos[0].server.thread_allocation()
    # The default is 8 threads per stage (32 total on 8 cores); the
    # optimizer should land well under the core count at this load.
    assert sum(alloc.values()) <= 8
    assert all(t >= 1 for t in alloc.values())


def test_controller_reduces_cpu_vs_default():
    base_rt, _ = run_heartbeat(optimize=False)
    opt_rt, _ = run_heartbeat(optimize=True)
    # Same workload, same completions — less CPU burned.
    assert opt_rt.requests_completed == pytest.approx(
        base_rt.requests_completed, rel=0.01
    )
    assert opt_rt.silos[0].server.cpu.busy_time < 0.8 * base_rt.silos[0].server.cpu.busy_time


def test_controller_improves_latency_under_high_load():
    base_rt, _ = run_heartbeat(optimize=False, rate=3200.0, until=40.0)
    opt_rt, _ = run_heartbeat(optimize=True, rate=3200.0, until=40.0)
    assert opt_rt.client_latency.p99 < base_rt.client_latency.p99


def test_alpha_estimate_close_to_ground_truth():
    """The §5.4 estimator must recover the true ready-time ratio from
    observable quantities only (validated against simulator internals)."""
    rt, _ = run_heartbeat(optimize=False, rate=3000.0, until=10.0)
    server = rt.silos[0].server
    server.begin_window()
    rt.run(until=20.0)
    windows = server.end_window()
    measured = measure_windows(windows, blocking_stages=("worker",))
    alpha = estimate_alpha(measured)
    # ground truth from the hidden per-event ready times
    truth = {
        name: (w.mean_ready / w.mean_x if w.mean_x else 0.0)
        for name, w in windows.items()
        if w.completions > 100
    }
    for name, true_alpha in truth.items():
        if name == "worker":
            continue
        assert alpha == pytest.approx(true_alpha, abs=0.15)


def test_blocking_workload_gets_extra_worker_threads():
    """With synchronous I/O in beats, the worker stage's beta drops and
    the optimizer must hand it more threads than the pure-CPU case."""
    rt_pure, actop_pure = run_heartbeat(optimize=True, rate=1500.0)
    rt_io, actop_io = run_heartbeat(optimize=True, rate=1500.0, io_wait=0.002)
    workers_pure = rt_pure.silos[0].server.stage("worker").threads
    workers_io = rt_io.silos[0].server.stage("worker").threads
    assert workers_io > workers_pure
