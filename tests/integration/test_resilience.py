"""Integration tests for the client-side resilience layer.

Covers the late-response double-completion regression (a response
arriving after its timeout must be discarded, not re-completed), retry
under transient faults, retry-budget and deadline exhaustion, admission
control under both shed policies, and the deprecation shims for the old
``ClusterConfig`` / ``ActOp`` keyword APIs.
"""

import pytest

from repro.actor.actor import Actor
from repro.actor.errors import CallTimeout, RequestShed
from repro.actor.runtime import ActorRuntime, ClusterConfig
from repro.cluster import build_cluster
from repro.core.actop import ActOp, ActOpConfig
from repro.core.partitioning.coordinator import PartitioningConfig
from repro.faults import (
    AdmissionConfig,
    FaultPlan,
    ResilienceConfig,
    RetryPolicy,
)
from repro.obs import Observability


class Echo(Actor):
    COMPUTE = {"ping": 1e-4}

    def ping(self):
        return "pong"


class Heavy(Actor):
    COMPUTE = {"work": 0.05}

    def work(self):
        return 1


def _request(rt, ref, method, results, **kwargs):
    rt.client_request(ref, method,
                      on_complete=lambda lat, res: results.append(res),
                      **kwargs)


# ----------------------------------------------------------------------
# The late-response regression (the bug this PR fixes).
# ----------------------------------------------------------------------
def test_late_response_is_discarded_not_double_completed():
    """A response that loses the race against its timeout is dropped.

    Before the ``_inflight`` bookkeeping, the late response re-completed
    the request: the latency recorder got a bogus sample, the completion
    hook fired a second time, and the tracer closed the root span twice.
    """
    rt = ActorRuntime(ClusterConfig(num_servers=1, seed=0),
                      resilience=ResilienceConfig(call_timeout=0.01))
    obs = Observability(rt)
    rt.register_actor("heavy", Heavy)  # 50 ms of work vs a 10 ms timeout
    results = []
    _request(rt, rt.ref("heavy", 0), "work", results)
    rt.run(until=1.0)

    assert rt.requests_timed_out == 1
    assert rt.requests_completed == 0
    assert rt.late_responses == 1          # the response did arrive...
    assert rt.client_latency.count == 0    # ...but was not recorded
    assert results == [results[0]] and isinstance(results[0], CallTimeout)
    assert obs.tracer.requests_seen == 1
    assert obs.tracer.requests_finished == 1  # exactly one end_request
    assert rt.inflight_requests == 0


# ----------------------------------------------------------------------
# Retry.
# ----------------------------------------------------------------------
def test_retry_recovers_from_transient_outage():
    cluster = build_cluster(
        ClusterConfig(num_servers=2, seed=1),
        resilience=ResilienceConfig(
            call_timeout=0.1,
            retry=RetryPolicy(max_attempts=5, base_delay=0.1)),
        faults=FaultPlan().degrade(0.0, 0.3, drop=1.0),
    )
    rt = cluster.runtime
    obs = Observability(rt)
    rt.register_actor("echo", Echo)
    results = []
    rt.sim.schedule(0.01, _request, rt, rt.ref("echo", 0), "ping", results)
    cluster.start()
    rt.run(until=5.0)
    assert results == ["pong"]
    assert rt.request_retries >= 1
    assert rt.requests_completed == 1
    assert rt.requests_timed_out == 0
    assert [e for e in obs.events if type(e).KIND == "retry"]


def test_retry_budget_exhausts_into_terminal_timeout():
    cluster = build_cluster(
        ClusterConfig(num_servers=2, seed=2),
        resilience=ResilienceConfig(
            call_timeout=0.05,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01)),
        faults=FaultPlan().degrade(0.0, 100.0, drop=1.0),
    )
    rt = cluster.runtime
    obs = Observability(rt)
    rt.register_actor("echo", Echo)
    results = []
    rt.sim.schedule(0.01, _request, rt, rt.ref("echo", 0), "ping", results)
    cluster.start()
    rt.run(until=10.0)
    assert len(results) == 1 and isinstance(results[0], CallTimeout)
    assert rt.request_retries == 2        # attempts 2 and 3
    assert rt.requests_timed_out == 1     # one terminal timeout
    assert rt.requests_completed == 0
    assert rt.inflight_requests == 0
    assert len([e for e in obs.events if type(e).KIND == "retry"]) == 2


def test_non_idempotent_requests_are_not_retried():
    cluster = build_cluster(
        ClusterConfig(num_servers=2, seed=3),
        resilience=ResilienceConfig(
            call_timeout=0.05,
            retry=RetryPolicy(max_attempts=4, base_delay=0.01)),
        faults=FaultPlan().degrade(0.0, 100.0, drop=1.0),
    )
    rt = cluster.runtime
    rt.register_actor("echo", Echo)
    results = []
    rt.sim.schedule(0.01, lambda: rt.client_request(
        rt.ref("echo", 0), "ping", idempotent=False,
        on_complete=lambda lat, res: results.append(res)))
    cluster.start()
    rt.run(until=5.0)
    assert len(results) == 1 and isinstance(results[0], CallTimeout)
    assert rt.request_retries == 0
    assert rt.requests_timed_out == 1


def test_request_deadline_caps_the_retry_storm():
    cluster = build_cluster(
        ClusterConfig(num_servers=2, seed=4),
        resilience=ResilienceConfig(
            call_timeout=0.06, request_deadline=0.2,
            retry=RetryPolicy(max_attempts=50, base_delay=0.01)),
        faults=FaultPlan().degrade(0.0, 100.0, drop=1.0),
    )
    rt = cluster.runtime
    rt.register_actor("echo", Echo)
    done_at = []
    rt.sim.schedule(0.01, lambda: rt.client_request(
        rt.ref("echo", 0), "ping",
        on_complete=lambda lat, res: done_at.append(rt.sim.now)))
    cluster.start()
    rt.run(until=10.0)
    assert rt.requests_timed_out == 1
    assert rt.request_retries < 49        # the deadline stopped the storm
    assert done_at and done_at[0] <= 0.35  # deadline + one timeout + slack
    assert rt.inflight_requests == 0


# ----------------------------------------------------------------------
# Admission control.
# ----------------------------------------------------------------------
def _admission_runtime(policy: str):
    rt = ActorRuntime(
        ClusterConfig(num_servers=1, seed=5),
        resilience=ResilienceConfig(
            admission=AdmissionConfig(capacity=1, policy=policy)))
    rt.register_actor("heavy", Heavy)
    return rt


def test_admission_reject_sheds_the_newcomer():
    rt = _admission_runtime("reject")
    obs = Observability(rt)
    first, second = [], []

    def burst():
        _request(rt, rt.ref("heavy", 0), "work", first)
        _request(rt, rt.ref("heavy", 1), "work", second)

    rt.sim.schedule(0.0, burst)
    rt.run(until=2.0)
    assert first == [1]                    # the admitted request completed
    assert len(second) == 1 and isinstance(second[0], RequestShed)
    assert second[0].policy == "reject"
    assert rt.requests_shed == 1
    assert rt.requests_completed == 1
    shed_events = [e for e in obs.events if type(e).KIND == "shed"]
    assert len(shed_events) == 1 and shed_events[0].policy == "reject"


def test_admission_drop_oldest_spares_inflight_work():
    """With every admitted request dispatched, the *newcomer* is shed.

    The old behaviour — evict the dispatched veteran — is the drop-oldest
    livelock documented in benchmarks/test_overload_shedding.py: under a
    sustained ramp every admitted request was abandoned before it could
    finish.  Now in-flight work is never thrown away.
    """
    rt = _admission_runtime("drop_oldest")
    first, second = [], []

    def burst():
        _request(rt, rt.ref("heavy", 0), "work", first)
        _request(rt, rt.ref("heavy", 1), "work", second)

    rt.sim.schedule(0.0, burst)
    rt.run(until=2.0)
    assert first == [1]                    # the dispatched veteran finished
    assert len(second) == 1 and isinstance(second[0], RequestShed)
    assert second[0].policy == "drop_oldest"
    assert rt.requests_shed == 1
    assert rt.requests_completed == 1
    assert rt.inflight_requests == 0


def test_admission_drop_oldest_evicts_backoff_victim():
    """The eviction target is the oldest *non-in-flight* entry: a request
    parked in retry backoff holds an admission slot but no server work,
    so it is the one sacrificed for a new arrival."""
    rt = ActorRuntime(
        ClusterConfig(num_servers=1, seed=5),
        resilience=ResilienceConfig(
            call_timeout=0.01,             # Heavy takes 0.05: always times out
            retry=RetryPolicy(max_attempts=5, base_delay=0.2, jitter=0.0),
            admission=AdmissionConfig(capacity=1, policy="drop_oldest")))
    rt.register_actor("heavy", Heavy)
    rt.register_actor("echo", Echo)
    first, second = [], []
    _request(rt, rt.ref("heavy", 0), "work", first)
    # t=0.01: first times out, enters a 0.2 s backoff still holding the
    # slot.  t=0.05: a newcomer arrives and takes it.
    rt.sim.schedule(0.05, _request, rt, rt.ref("echo", 1), "ping", second)
    rt.run(until=0.06)
    assert len(first) == 1 and isinstance(first[0], RequestShed)
    assert first[0].policy == "drop_oldest"
    assert rt.requests_shed == 1
    rt.run(until=2.0)
    assert second == ["pong"]              # the newcomer got the slot
    assert rt.requests_completed == 1


def test_admission_frees_slots_on_completion():
    rt = _admission_runtime("reject")
    results = []
    for at in (0.0, 0.5, 1.0):  # sequential: each fits the 1-slot window
        rt.sim.schedule(at, _request, rt, rt.ref("heavy", 0), "work", results)
    rt.run(until=3.0)
    assert results == [1, 1, 1]
    assert rt.requests_shed == 0


# ----------------------------------------------------------------------
# Deprecation shims.
# ----------------------------------------------------------------------
def test_deprecated_cluster_config_knobs_fold_into_resilience():
    with pytest.warns(DeprecationWarning):
        rt = ActorRuntime(ClusterConfig(num_servers=1, seed=0,
                                        call_timeout=0.5,
                                        max_receiver_queue=7))
    assert rt.resilience is not None
    assert rt.resilience.call_timeout == 0.5
    assert rt.call_timeout == 0.5 * rt.time_scale
    assert rt.max_receiver_queue == 7


def test_explicit_resilience_wins_over_deprecated_knobs():
    with pytest.warns(DeprecationWarning):
        rt = ActorRuntime(
            ClusterConfig(num_servers=1, seed=0, call_timeout=0.5),
            resilience=ResilienceConfig(call_timeout=2.0))
    assert rt.resilience.call_timeout == 2.0


def test_deprecated_actop_kwargs_still_work():
    rt = ActorRuntime(ClusterConfig(num_servers=2, seed=0))
    with pytest.warns(DeprecationWarning):
        actop = ActOp(rt, partitioning=PartitioningConfig())
    assert actop.agents
    with pytest.raises(ValueError), pytest.warns(DeprecationWarning):
        ActOp(rt, ActOpConfig(partitioning=PartitioningConfig()),
              partitioning=PartitioningConfig())
