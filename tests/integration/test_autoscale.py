"""Integration tests: elastic autoscaling end to end.

The controller's contract, exercised on live clusters:

* a flash crowd grows the fleet and the lull after drains it back;
* registered pools resize with the fleet (one integrated plan);
* ``FaultPlan.add_silo`` / ``drain_silo`` share the runtime's elastic
  vocabulary, and a drain racing a flash crowd loses no requests;
* scaling emits paired begin/commit ``ScalePlanEvent``s plus
  ``SiloScaleEvent`` / ``PoolResizeEvent``, and attaching the event log
  is digest-neutral;
* seeded runs produce bit-identical scaling traces, and
  ``autoscale=None`` is bit-identical to a cluster that never imported
  the subsystem.
"""

import hashlib

from repro.actor.actor import Actor
from repro.actor.runtime import ActorRuntime, ClusterConfig
from repro.autoscale import AutoscaleConfig
from repro.cluster import build_cluster
from repro.faults import FaultPlan
from repro.obs import Observability
from repro.obs.events import PoolResizeEvent, ScalePlanEvent, SiloScaleEvent
from repro.workloads.stageflow import StageflowConfig, StageflowWorkload

FLASH = StageflowConfig(curve="flash", base_rate=120.0, flash_at=5.0,
                        flash_duration=4.0, flash_multiplier=4.0,
                        router_shards=2, pipelines=2)
BAND = dict(period=0.5, low=0.35, high=0.70, min_silos=1,
            initial_silos=1, cooldown=1.0, warmup=1.0)


def flash_cluster(seed=5, observability=False):
    cluster = build_cluster(
        ClusterConfig(num_servers=4, processors=2, seed=seed),
        autoscale=AutoscaleConfig(**BAND))
    obs = Observability(cluster.runtime) if observability else None
    workload = StageflowWorkload(cluster.runtime, FLASH,
                                 autoscale=cluster.autoscale)
    cluster.start()
    workload.start()
    return cluster, workload, obs


# ----------------------------------------------------------------------
def test_flash_crowd_grows_then_drains_back():
    cluster, workload, _ = flash_cluster()
    rt = cluster.runtime
    rt.run(until=18.0)
    ctrl = cluster.autoscale
    assert ctrl.grows >= 1, "flash never triggered a grow"
    assert ctrl.shrinks >= 1, "lull never triggered a drain"
    assert ctrl.plans_committed == ctrl.plans_begun
    assert ctrl.active == 1, "fleet did not return to the floor"
    assert rt.silos_added >= 1 and rt.silos_drained >= 1
    assert workload.completed > 1_000
    assert workload.failed == 0
    # Elasticity is the point: strictly below always-on provisioning.
    ctrl.stop()
    assert ctrl.silo_seconds < 4 * rt.sim.now


def test_pools_resize_with_the_fleet():
    cluster, workload, _ = flash_cluster()
    rt = cluster.runtime
    rt.run(until=8.0)  # inside the surge, after the grow plan
    assert cluster.autoscale.grows >= 1
    grown = cluster.autoscale.active
    assert grown > 1
    surge_replicas = {}
    for pool in workload.pools:
        assert pool.resizes >= 1
        assert pool.replicas > 1
        surge_replicas[pool.name] = pool.replicas
    rt.run(until=18.0)  # drained back
    assert cluster.autoscale.active == 1
    for pool in workload.pools:
        # The routing window followed the fleet back down.
        assert pool.replicas < surge_replicas[pool.name]


# ----------------------------------------------------------------------
class Echo(Actor):
    COMPUTE = {"ping": 1e-5}

    def ping(self):
        return "pong"


def test_fault_plan_add_and_drain_share_the_vocabulary():
    plan = FaultPlan().drain_silo(2.0, 2).add_silo(8.0)
    cluster = build_cluster(ClusterConfig(num_servers=3, seed=4),
                            faults=plan)
    rt = cluster.runtime
    obs = Observability(rt)
    rt.register_actor("echo", Echo)
    results = []

    def tick():
        for i in range(12):
            rt.client_request(rt.ref("echo", i), "ping",
                              on_complete=lambda lat, res: results.append(res))
        rt.sim.schedule(0.5, tick)

    rt.sim.schedule(0.0, tick)
    cluster.start()

    rt.run(until=6.0)  # drain finished, silo parked
    assert rt.silos_drained == 1
    assert rt.silos[2].dead
    assert rt.census()[2] == 0

    rt.run(until=12.0)  # add_silo picked the lowest-numbered parked silo
    assert rt.silos_added == 1
    assert not rt.silos[2].dead
    assert all(r == "pong" for r in results)

    actions = [e.action for e in obs.events.of_kind(SiloScaleEvent)]
    assert actions == ["drain_begin", "drain_done", "add"]


def test_drain_racing_flash_crowd_loses_nothing():
    """Chaos: a silo drains away exactly as the flash crowd lands."""
    cluster = build_cluster(
        ClusterConfig(num_servers=3, processors=2, seed=9),
        faults=FaultPlan().drain_silo(5.0, 1))
    workload = StageflowWorkload(cluster.runtime, FLASH)
    cluster.start()
    workload.start()
    rt = cluster.runtime
    rt.run(until=14.0)
    assert rt.silos_drained == 1
    assert rt.silos[1].dead
    assert workload.completed > 1_000
    assert workload.failed == 0
    # The drained silo's pool replicas re-homed to the survivors.
    assert rt.census()[1] == 0


# ----------------------------------------------------------------------
def test_scale_plan_events_pair_up():
    cluster, workload, obs = flash_cluster(observability=True)
    cluster.runtime.run(until=18.0)

    plans = obs.events.of_kind(ScalePlanEvent)
    assert plans, "no ScalePlanEvents emitted"
    begun = {e.plan_id for e in plans if e.phase == "begin"}
    committed = {e.plan_id for e in plans if e.phase == "commit"}
    assert begun == committed
    kinds = {e.kind for e in plans}
    assert kinds == {"grow", "shrink"}
    for e in plans:
        assert e.active_before >= 1 and e.active_after >= 1

    assert obs.events.of_kind(PoolResizeEvent)
    silo_actions = [e.action for e in obs.events.of_kind(SiloScaleEvent)]
    assert "add" in silo_actions and "drain_done" in silo_actions


def _digest(build, horizon=12.0):
    out = build()
    sim = out.sim if hasattr(out, "sim") else out
    digest = hashlib.sha256()
    while sim.now < horizon and sim.step():
        digest.update(repr(sim.now).encode())
    return digest.hexdigest()


def test_event_logging_is_digest_neutral():
    digests = []
    for observability in (False, True):
        cluster, _, _ = flash_cluster(observability=observability)
        digests.append(_digest(lambda: cluster.runtime))
    assert digests[0] == digests[1]


def test_scaling_trace_is_seeded_deterministic():
    traces = []
    for _ in range(2):
        cluster, _, _ = flash_cluster()
        digest = _digest(lambda: cluster.runtime, horizon=18.0)
        ctrl = cluster.autoscale
        traces.append((digest, ctrl.decisions, ctrl.windows,
                       ctrl.plans_committed))
    assert traces[0] == traces[1]


def test_autoscale_none_is_bit_identical_to_bare_runtime():
    def bare():
        rt = ActorRuntime(ClusterConfig(num_servers=3, seed=7))
        rt.register_actor("echo", Echo)
        _drive(rt)
        return rt

    def composed():
        cluster = build_cluster(ClusterConfig(num_servers=3, seed=7),
                                autoscale=None)
        cluster.start()
        rt = cluster.runtime
        rt.register_actor("echo", Echo)
        _drive(rt)
        return rt

    def _drive(rt):
        def tick():
            for i in range(8):
                rt.client_request(rt.ref("echo", i), "ping")
            rt.sim.schedule(0.3, tick)
        rt.sim.schedule(0.0, tick)

    assert _digest(bare) == _digest(composed)
