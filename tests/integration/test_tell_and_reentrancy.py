"""Integration tests: fire-and-forget messages and reentrancy modes."""

import pytest

from repro.actor.actor import Actor
from repro.actor.calls import Call, Tell
from repro.actor.runtime import ActorRuntime, ClusterConfig


class Notifier(Actor):
    def notify_all(self, targets):
        for t in targets:
            yield Tell(t, "note", "ping")
        return len(targets)


class Listener(Actor):
    def __init__(self):
        super().__init__()
        self.notes = []

    def note(self, text):
        self.notes.append(text)
        return None

    def count(self):
        return len(self.notes)


class MutualA(Actor):
    REENTRANT = True

    def start(self, other):
        reply = yield Call(other, "bounce", self.self_ref())
        return reply


class MutualB(Actor):
    REENTRANT = True

    def bounce(self, caller):
        # Call back into the (suspended) caller: requires reentrancy.
        reply = yield Call(caller, "leaf")
        return reply + 1


class SerialA(MutualA):
    REENTRANT = False


class LeafMixin:
    def leaf(self):
        return 10


class MutualAWithLeaf(MutualA, LeafMixin):
    pass


class SerialAWithLeaf(SerialA, LeafMixin):
    pass


def make_runtime(**kw):
    rt = ActorRuntime(ClusterConfig(num_servers=2, seed=0, **kw))
    rt.register_actor("notifier", Notifier)
    rt.register_actor("listener", Listener)
    rt.register_actor("a", MutualAWithLeaf)
    rt.register_actor("sa", SerialAWithLeaf)
    rt.register_actor("b", MutualB)
    return rt


def test_tell_delivers_without_response():
    rt = make_runtime()
    listeners = [rt.ref("listener", i) for i in range(3)]
    done = []
    rt.client_request(rt.ref("notifier", 1), "notify_all", listeners,
                      on_complete=lambda lat, res: done.append(res))
    rt.run(until=2.0)
    assert done == [3]
    counts = []
    for listener in listeners:
        rt.client_request(listener, "count",
                          on_complete=lambda lat, res: counts.append(res))
    rt.run(until=4.0)
    assert counts == [1, 1, 1]


def test_tell_messages_counted_once_no_response():
    rt = make_runtime()
    listeners = [rt.ref("listener", i) for i in range(4)]
    rt.client_request(rt.ref("notifier", 1), "notify_all", listeners)
    rt.run(until=2.0)
    # 4 oneway messages, no responses
    assert rt.msgs_local + rt.msgs_remote == 4


def test_reentrant_call_cycle_completes():
    rt = make_runtime()
    a, b = rt.ref("a", 1), rt.ref("b", 1)
    done = []
    rt.client_request(a, "start", b,
                      on_complete=lambda lat, res: done.append(res))
    rt.run(until=3.0)
    assert done == [11]  # leaf 10 + 1 in bounce


def test_nonreentrant_call_cycle_deadlocks():
    """With REENTRANT=False, a -> b -> a is a deadlock: a's turn is open
    awaiting b, and b's callback into a queues forever.  The simulation
    must drain without completing the request (and without crashing)."""
    rt = make_runtime()
    a, b = rt.ref("sa", 1), rt.ref("b", 1)
    done = []
    rt.client_request(a, "start", b,
                      on_complete=lambda lat, res: done.append(res))
    rt.run(until=5.0)
    assert done == []
    # The leaf invocation is stuck in the actor's private queue.
    silo = rt.silos[rt.locate(a.id)]
    activation = silo.activations[a.id]
    assert activation.open_turns == 1
    assert len(activation.queue) == 1
