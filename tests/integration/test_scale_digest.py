"""Cross-PR digest pins for seeded Halo traces.

``test_determinism`` proves a seeded run reproduces *within* one tree;
these tests pin the digests to hard-coded values captured before the
paper-scale memory work (interned ActorIds, silo-level comm tables,
list-backed activation queues, state-discard deactivation) so the
traces are provably bit-identical *across* the refactor — and stay that
way.  If an intentional semantic change ever moves one of these values,
re-capture it in the same commit and say why in the message.

The digest is the sha256 over ``repr(sim.now)`` at every processed
event: any reordering, insertion, or removal of events changes it.
"""

import hashlib

from repro.bench.harness import HaloExperiment

# Captured at PR 6 from the pre-change tree (and verified unchanged
# after it): players/servers/seed/horizon as in each test below.
MINI_DIGEST = "d4149165647d66d97d3b04ca45d70e0ff5fd89fe8fe82fbf3488e5b4d33dcc20"
MINI_EVENTS = 2974
PART_DIGEST = "e903b85b681992fe1fcf237b2970686efef25dec69afb7736e61be0b68506de9"
PART_EVENTS = 22213
TENK_DIGEST = "c06142004a1217b126360d4b98860649fd6bf51ed1bd1eaad59fda06f2d75dd1"
TENK_EVENTS = 57634


def _trace(players, servers, seed, horizon, partitioning=False):
    exp = HaloExperiment(players=players, num_servers=servers, seed=seed,
                         partitioning=partitioning)
    exp.workload.start()
    if partitioning:
        exp.cluster.start()
    sim = exp.runtime.sim
    digest = hashlib.sha256()
    while sim.now < horizon and sim.step():
        digest.update(repr(sim.now).encode())
    return digest.hexdigest(), sim.events_processed


def test_mini_cluster_digest_pinned():
    digest, events = _trace(players=80, servers=3, seed=5, horizon=4.0)
    assert (digest, events) == (MINI_DIGEST, MINI_EVENTS)


def test_partitioning_on_digest_pinned():
    """The partitioning path (Space-Saving folds, exchanges, migrations)
    is digest-pinned too: the comm-table fold and the offer() heap-churn
    fix both had to preserve victim selection bit for bit."""
    digest, events = _trace(players=300, servers=4, seed=3, horizon=8.0,
                            partitioning=True)
    assert (digest, events) == (PART_DIGEST, PART_EVENTS)


def test_10k_actor_digest_pinned():
    """The acceptance-criterion pin: a 10k-actor seeded slice on the
    paper's 10-silo layout, bit-identical to the pre-PR trace."""
    digest, events = _trace(players=10_000, servers=10, seed=1, horizon=2.0)
    assert (digest, events) == (TENK_DIGEST, TENK_EVENTS)
