"""The static ⊇ dynamic contract for the XB portability rules.

This file is its own fixture: the actor program below carries one
deliberate payload-aliasing hazard and one unpicklable payload.  The
tests drive it on the asyncio backend's deep-copy inproc transport with
the sanitizer's payload probe armed, then statically analyze *this
file* and demand every dynamic event is covered by a static XB finding
at the same (sender class, method) — the same over-approximation
contract the PR-5 interaction-graph check enforces for comm edges.
"""

import os

from repro import ClusterConfig, build_cluster
from repro.actor.actor import Actor
from repro.actor.calls import Tell
from repro.actor.ids import ActorRef
from repro.analysis.sanitizer import PayloadEvent, Sanitizer
from repro.analysis.xbackend import (
    analyze_xbackend,
    crosscheck_events,
    crosscheck_parity,
    static_coverage,
)

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
SELF = os.path.abspath(__file__)
SEED = 7


class SinkActor(Actor):
    def __init__(self):
        super().__init__()
        self.taken = 0

    def take(self, payload):
        self.taken += 1
        return self.taken


class AliasingActor(Actor):
    """Sends its own mutable list — the deliberate XB-ALIASED-MUTABLE."""

    def __init__(self):
        super().__init__()
        self.members = []

    def grow(self, who):
        self.members.append(who)

    def share(self):
        yield Tell(ActorRef("sink", 0), "take", self.members)


class LeakyActor(Actor):
    """Sends a generator — the deliberate XB-UNPICKLABLE-PAYLOAD."""

    def ship(self):
        yield Tell(ActorRef("sink", 0), "take", (x for x in range(3)))


def _drive_program() -> tuple[list, int]:
    """Run the hazard program on inproc-copy with the probe armed."""
    san = Sanitizer()
    with san.armed():
        cluster = build_cluster(ClusterConfig(num_servers=2, seed=SEED),
                                backend="asyncio", transport="inproc-copy")
        with cluster:
            be = cluster.backend
            be.register_actor("sink", SinkActor)
            be.register_actor("alias", AliasingActor)
            be.register_actor("leaky", LeakyActor)
            cluster.start()
            be.spawn(be.ref("sink", 0), server=1)
            be.spawn(be.ref("alias", 0), server=0)
            be.spawn(be.ref("leaky", 0), server=0)
            be.call(be.ref("alias", 0), "grow", "p1")
            be.call(be.ref("alias", 0), "share")
            be.call(be.ref("leaky", 0), "ship")
            cluster.run()
            failures = cluster.runtime.pickle_copy_failures
    return list(san.payload_events), failures


def _self_coverage():
    with open(SELF, "r", encoding="utf-8") as fh:
        source = fh.read()
    index, findings = analyze_xbackend([(SELF, source)])
    return static_coverage(index, findings), findings


def test_probe_records_both_hazard_kinds():
    events, failures = _drive_program()
    kinds = {(e.kind, e.sender, e.method) for e in events}
    assert ("alias", "AliasingActor", "share") in kinds
    assert ("unpicklable", "LeakyActor", "ship") in kinds
    # The generator payload cannot cross the deep-copy boundary — the
    # transport drops it exactly as TCP would.
    assert failures >= 1


def test_static_findings_cover_every_dynamic_event():
    coverage, findings = _self_coverage()
    assert ("AliasingActor", "share", "XB-ALIASED-MUTABLE") in coverage
    assert ("LeakyActor", "ship", "XB-UNPICKLABLE-PAYLOAD") in coverage

    events, _failures = _drive_program()
    report = crosscheck_events(coverage, events)
    assert report["ok"], report["uncovered"]
    assert len(report["dynamic_events"]) == len(events)


def test_crosscheck_flags_uncovered_events():
    coverage, _findings = _self_coverage()
    phantom = PayloadEvent(kind="alias", sender="NoSuchActor",
                           method="nowhere", detail="fabricated")
    report = crosscheck_events(coverage, [phantom])
    assert not report["ok"]
    assert report["uncovered"][0]["expected_rule"] == "XB-ALIASED-MUTABLE"
    assert report["uncovered"][0]["sender"] == "NoSuchActor"


def test_repo_parity_suite_has_no_uncovered_events():
    """The CI gate: the real parity programs, driven on the deep-copy
    transport with the probe armed, produce no dynamic hazard the
    static pass over src/repro does not already know about — and (the
    tree being clean) no hazards at all."""
    report = crosscheck_parity(base=REPO)
    assert report["ok"], report["uncovered"]
    assert report["uncovered"] == []
    assert report["pickle_copy_failures"] == 0
    assert report["files_analyzed"] > 0
