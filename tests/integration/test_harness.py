"""Integration tests for the calibrated experiment harness."""

import pytest

from repro.bench.harness import (
    CounterExperiment,
    HeartbeatExperiment,
    HaloExperiment,
    halo_partitioning_config,
    halo_thread_config,
    improvement,
)


def test_improvement_metric():
    assert improvement(100.0, 50.0) == pytest.approx(50.0)
    assert improvement(100.0, 100.0) == 0.0
    assert improvement(0.0, 10.0) == 0.0  # guarded
    assert improvement(50.0, 75.0) == pytest.approx(-50.0)  # regression


def test_configs_are_fresh_instances():
    a, b = halo_partitioning_config(), halo_partitioning_config()
    assert a is not b
    a.delta = 999
    assert halo_partitioning_config().delta != 999
    assert halo_thread_config(10.0).eta == pytest.approx(1e-3)


def test_counter_experiment_result_fields():
    exp = CounterExperiment(request_rate=2_000.0, actors=100, time_scale=1.0)
    result = exp.run(warmup=2.0, duration=4.0, cdf_points=10)
    assert result.requests > 0
    assert result.median > 0
    assert result.p99 >= result.p95 >= result.median
    assert 0 < result.cpu_utilization < 1
    assert result.remote_fraction == 0.0  # single server, no actor calls
    assert result.cdf and result.cdf[-1][1] == 1.0
    summary = result.summary_ms()
    assert summary["median_ms"] == pytest.approx(result.median * 1000)


def test_counter_experiment_thread_override():
    exp = CounterExperiment(request_rate=500.0, actors=50, time_scale=1.0,
                            threads={"worker": 2, "client_sender": 3})
    assert exp.runtime.silos[0].server.thread_allocation()["worker"] == 2
    assert exp.runtime.silos[0].server.thread_allocation()["client_sender"] == 3


def test_heartbeat_experiment_normalizes_by_time_scale():
    r1 = HeartbeatExperiment(request_rate=2_000.0, monitors=100,
                             time_scale=1.0).run(warmup=3.0, duration=6.0)
    r4 = HeartbeatExperiment(request_rate=2_000.0, monitors=100,
                             time_scale=4.0).run(warmup=12.0, duration=24.0)
    # Normalized medians agree across time scales (same operating point).
    assert r4.median == pytest.approx(r1.median, rel=0.1)


def test_halo_experiment_small_end_to_end():
    exp = HaloExperiment(load_fraction=0.3, players=300, partitioning=True,
                         num_servers=4, time_scale=10.0)
    result = exp.run(warmup=30.0, duration=30.0, sample_period=10.0)
    assert result.requests > 50
    assert result.migrations > 0
    assert result.remote_fraction < 0.5  # partitioning took effect
    assert result.sampler is not None
    assert len(result.sampler.remote_share) > 0
    assert result.call_median > 0
