"""Integration tests: timeouts, error propagation, silo failure.

§2's Orleans contract: "the system automatically handles hardware or
software failures by re-instantiating the failed actor upon the next
call to it."  These tests crash silos, lose volatile state, time calls
out, and propagate application errors across actor boundaries.
"""

import pytest

from repro.actor.actor import Actor
from repro.actor.calls import All, Call
from repro.actor.errors import ActorError, CallTimeout
from repro.actor.runtime import ActorRuntime, ClusterConfig
from repro.faults.resilience import ResilienceConfig


class Vault(Actor):
    """Persists its balance only on deactivation (Orleans-style)."""

    def __init__(self):
        super().__init__()
        self.balance = 0

    def deposit(self, amount):
        self.balance += amount
        return self.balance


class Grump(Actor):
    COMPUTE = {"slow_ok": 0.5}

    def fail_me(self):
        raise ActorError("no service today")

    def ok(self):
        return "fine"

    def slow_ok(self):
        return "slow fine"


class Relay(Actor):
    def relay(self, target, method):
        reply = yield Call(target, method)
        return reply

    def relay_guarded(self, target, method):
        try:
            # Tighter per-call timeout than the cluster default, so the
            # inner await resolves before the client-level timer.
            reply = yield Call(target, method, timeout=0.6)
        except ActorError as error:
            return f"caught: {error}"
        return reply

    def fan(self, targets):
        replies = yield All([Call(t, "ok") for t in targets])
        return replies


def make_runtime(servers=3, call_timeout=None, seed=0):
    resilience = (ResilienceConfig(call_timeout=call_timeout)
                  if call_timeout is not None else None)
    rt = ActorRuntime(ClusterConfig(num_servers=servers, seed=seed),
                      resilience=resilience)
    rt.register_actor("vault", Vault)
    rt.register_actor("grump", Grump)
    rt.register_actor("relay", Relay)
    return rt


# ----------------------------------------------------------------------
# Application-error propagation
# ----------------------------------------------------------------------
def test_actor_error_reaches_client():
    rt = make_runtime()
    results = []
    rt.client_request(rt.ref("grump", 1), "fail_me",
                      on_complete=lambda lat, res: results.append(res))
    rt.run(until=2.0)
    assert len(results) == 1
    assert isinstance(results[0], ActorError)


def test_actor_error_rethrown_at_callers_yield():
    rt = make_runtime()
    results = []
    rt.client_request(rt.ref("relay", 1), "relay_guarded",
                      rt.ref("grump", 1), "fail_me",
                      on_complete=lambda lat, res: results.append(res))
    rt.run(until=2.0)
    assert results == ["caught: no service today"]


def test_uncaught_actor_error_fails_the_whole_chain():
    rt = make_runtime()
    results = []
    rt.client_request(rt.ref("relay", 1), "relay",
                      rt.ref("grump", 1), "fail_me",
                      on_complete=lambda lat, res: results.append(res))
    rt.run(until=2.0)
    assert isinstance(results[0], ActorError)


# ----------------------------------------------------------------------
# Timeouts
# ----------------------------------------------------------------------
def test_in_flight_call_lost_to_crash_times_out():
    """The silo dies while the call is executing there: the response is
    lost and the caller's await resolves via CallTimeout."""
    rt = make_runtime(call_timeout=1.0)
    relay, grump = rt.ref("relay", 1), rt.ref("grump", 1)
    rt.activate(relay.id, 0)
    rt.activate(grump.id, 1)
    results = []
    rt.client_request(relay, "relay_guarded", grump, "slow_ok",
                      on_complete=lambda lat, res: results.append(res))
    # slow_ok computes for 0.5 s; crash the host mid-execution.
    rt.sim.schedule(0.2, rt.fail_silo, 1)
    rt.run(until=5.0)
    assert len(results) == 1
    assert results[0].startswith("caught:")
    assert "timed out" in results[0]


def test_client_request_to_failed_silo_times_out():
    rt = make_runtime(call_timeout=1.0)
    grump = rt.ref("grump", 1)
    rt.activate(grump.id, 2)
    rt.fail_silo(2)
    results = []
    rt.client_request(grump, "ok",
                      on_complete=lambda lat, res: results.append(res))
    # The grump's directory entry died with silo 2, so the gateway will
    # re-place it on a live silo and the request actually succeeds...
    rt.run(until=5.0)
    assert results == ["fine"]


def test_timeout_does_not_fire_on_timely_response():
    rt = make_runtime(call_timeout=5.0)
    results = []
    rt.client_request(rt.ref("grump", 1), "ok",
                      on_complete=lambda lat, res: results.append(res))
    rt.run(until=10.0)
    assert results == ["fine"]
    assert rt.requests_timed_out == 0


def test_fan_out_with_one_crashed_member_raises_timeout():
    rt = make_runtime(call_timeout=1.0, servers=4)

    class SlowRelay(Relay):
        def fan_slow(self, targets):
            replies = yield All([
                Call(t, "slow_ok", timeout=0.6) for t in targets
            ])
            return replies

    rt.actor_types["relay"] = SlowRelay
    relay = rt.ref("relay", 1)
    targets = [rt.ref("grump", i) for i in range(3)]
    rt.activate(relay.id, 0)
    for i, t in enumerate(targets):
        rt.activate(t.id, i + 1)
    results = []
    rt.client_request(relay, "fan_slow", targets,
                      on_complete=lambda lat, res: results.append(res))
    # Crash one member's host mid-execution of its slow_ok.
    rt.sim.schedule(0.2, rt.fail_silo, 2)
    rt.run(until=5.0)
    assert len(results) == 1
    assert isinstance(results[0], CallTimeout)


# ----------------------------------------------------------------------
# Silo failure and state loss
# ----------------------------------------------------------------------
def test_failed_actor_reinstantiated_on_next_call():
    rt = make_runtime()
    vault = rt.ref("vault", 1)
    rt.activate(vault.id, 1)
    rt.client_request(vault, "deposit", 100)
    rt.run(until=1.0)
    rt.fail_silo(1)
    assert rt.locate(vault.id) is None
    results = []
    rt.client_request(vault, "deposit", 5,
                      on_complete=lambda lat, res: results.append(res))
    rt.run(until=3.0)
    # Volatile state lost: balance restarted from zero (never persisted).
    assert results == [5]
    new_home = rt.locate(vault.id)
    assert new_home is not None and new_home != 1


def test_persisted_state_survives_failure():
    rt = make_runtime()
    vault = rt.ref("vault", 1)
    rt.activate(vault.id, 1)
    rt.client_request(vault, "deposit", 100)
    rt.run(until=1.0)
    rt.deactivate(vault.id)      # persists balance=100
    rt.run(until=1.5)
    rt.client_request(vault, "deposit", 10)   # re-activates somewhere
    rt.run(until=2.5)
    home = rt.locate(vault.id)
    rt.fail_silo(home)           # loses the +10, keeps the persisted 100
    results = []
    rt.client_request(vault, "deposit", 1,
                      on_complete=lambda lat, res: results.append(res))
    rt.run(until=5.0)
    assert results == [101]


def test_placement_avoids_dead_silos():
    rt = make_runtime(servers=3)
    rt.fail_silo(1)
    for i in range(30):
        rt.client_request(rt.ref("grump", i), "ok")
    rt.run(until=5.0)
    census = rt.census()
    assert census[1] == 0
    assert census[0] + census[2] == 30


def test_restarted_silo_hosts_again():
    rt = make_runtime(servers=2)
    rt.fail_silo(1)
    rt.restart_silo(1)
    rt.activate(rt.ref("grump", 42).id, 1)
    results = []
    rt.client_request(rt.ref("grump", 42), "ok",
                      on_complete=lambda lat, res: results.append(res))
    rt.run(until=2.0)
    assert results == ["fine"]


def test_all_silos_dead_raises():
    rt = make_runtime(servers=2)
    rt.fail_silo(0)
    rt.fail_silo(1)
    with pytest.raises(RuntimeError):
        rt.pick_live_server()
