"""The lint pass over the real tree, the CLI contract, and the
sanitizer's zero-overhead guarantee.

Three acceptance criteria live here: ``repro lint`` exits 0 on the repo
(every finding fixed or waived with justification) and non-zero on the
violations fixture; and a seeded Halo run with the sanitizer *off* is
bit-identical to the pre-PR baseline digest, proving the engine/stage/
silo hooks cost nothing when disarmed.
"""

import hashlib
import json
import os
import subprocess
import sys

from repro.analysis import DEFAULT_ROOTS, all_rules, lint_file, lint_paths
from repro.bench.harness import HaloExperiment

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
FIXTURE = os.path.join("tests", "fixtures", "lint_violations.py")

# Pinned before this PR added the sanitizer hooks: HaloExperiment
# (players=80, num_servers=3, seed=5) stepped to t=4.0, hashing
# repr(sim.now) per event.
GOLDEN_DIGEST = "d4149165647d66d97d3b04ca45d70e0ff5fd89fe8fe82fbf3488e5b4d33dcc20"
GOLDEN_EVENTS = 2974


def test_repo_tree_lints_clean():
    report = lint_paths(DEFAULT_ROOTS, base=REPO)
    assert report.files_checked > 50
    assert report.ok, "\n".join(f.render() for f in report.active)
    # The audit trail: every waiver in the tree carries a justification.
    assert report.waived
    for finding in report.waived:
        assert finding.justification, finding.render()


def test_fixture_fires_every_registered_rule():
    report = lint_file(os.path.join(REPO, FIXTURE))
    assert not report.ok
    assert {f.rule for f in report.active} == {r.name for r in all_rules()}


def _run_cli(*argv):
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True, text=True, cwd=REPO, env=env,
    )


def test_cli_exits_zero_on_tree_and_emits_pure_json():
    proc = _run_cli("--json", "-")
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(proc.stdout)  # stdout must be pure JSON
    assert doc["ok"] is True
    assert doc["lint"]["counts"]["active"] == 0
    assert doc["lint"]["counts"]["waived"] > 0
    assert "repro lint" in proc.stderr  # the table went to stderr


def test_cli_exits_nonzero_on_the_violations_fixture():
    proc = _run_cli(FIXTURE, "--json", "-")
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert doc["ok"] is False
    fired = {f["rule"] for f in doc["lint"]["active"]}
    assert fired == {r.name for r in all_rules()}


def test_every_declared_export_exists_at_import_time():
    # The API-EXPORT-ALL rule checks static binding; this covers the
    # dynamic side (PEP 562 lazy modules, re-exports): every __all__
    # name in every submodule must resolve on the imported module.
    import importlib
    import pkgutil

    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name}"
    for info in pkgutil.walk_packages(repro.__path__, "repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would run the CLI
        module = importlib.import_module(info.name)
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"{info.name}.{name}"


def test_py_typed_marker_ships_with_the_package():
    import repro

    marker = os.path.join(os.path.dirname(repro.__file__), "py.typed")
    assert os.path.exists(marker)


def test_halo_digest_unchanged_with_sanitizer_off():
    exp = HaloExperiment(players=80, num_servers=3, seed=5)
    exp.workload.start()
    exp.cluster.start()
    sim = exp.runtime.sim
    digest = hashlib.sha256()
    events = 0
    while sim.now < 4.0 and sim.step():
        digest.update(repr(sim.now).encode())
        events += 1
    assert digest.hexdigest() == GOLDEN_DIGEST
    assert events == GOLDEN_EVENTS
