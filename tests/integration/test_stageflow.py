"""Integration tests: the Stageflow inference-pipeline workload.

End-to-end on a live runtime: requests flow route → enrich → transform
through sharded pool routers and complete with sane latencies, every
balancing policy carries the pipeline, the arrival curves shape demand
as configured, and seeded runs are bit-identical.
"""

import hashlib

from repro.actor.ids import ActorRef
from repro.actor.runtime import ActorRuntime, ClusterConfig
from repro.workloads.stageflow import (
    DEFAULT_STAGES,
    StageflowConfig,
    StageflowWorkload,
    StageSpec,
)

QUICK = StageflowConfig(base_rate=150.0, pipelines=2, router_shards=2)


def run_workload(config=QUICK, servers=3, seed=11, until=6.0):
    rt = ActorRuntime(ClusterConfig(num_servers=servers, processors=2,
                                    seed=seed))
    workload = StageflowWorkload(rt, config).start()
    rt.run(until=until)
    return rt, workload


# ----------------------------------------------------------------------
def test_pipeline_completes_requests_with_sane_latency():
    rt, workload = run_workload()
    assert workload.issued > 500
    assert workload.completed > 500
    assert workload.failed == 0
    # Latency floor: the sum of stage computes; ceiling: sanity only.
    floor = sum(s.compute for s in DEFAULT_STAGES)
    assert workload.latency.percentile(50.0) > floor
    assert workload.latency.percentile(99.0) < 1.0
    summary = workload.summary()
    assert summary["completed"] == workload.completed
    assert summary["latency_p99_ms"] > 0


def test_every_stage_pool_carries_traffic():
    rt, workload = run_workload()
    for pool in workload.pools:
        routed = 0
        for ref in pool.router_refs:
            silo = rt.silos[rt.locate(ref.id)]
            routed += silo.activations[ref.id].instance.routed
        assert routed >= workload.completed, (
            f"stage {pool.name!r} routed {routed} < {workload.completed}")


def test_heavy_requests_pay_the_heavy_path():
    config = StageflowConfig(base_rate=120.0, heavy_fraction=0.3,
                             pipelines=2, router_shards=2)
    rt, workload = run_workload(config)
    assert workload.heavy_latency.count > 50
    # The enrich heavy path is 6.7x the light one; the medians must
    # separate even under queueing noise.
    assert (workload.heavy_latency.percentile(50.0)
            > workload.latency.percentile(50.0))
    # Heavy workers actually ran (not just the light 'handle' method).
    heavy_handled = 0
    for i in range(workload.pools[1].replicas):
        ref = ActorRef(workload.pools[1].worker_type, i)
        location = rt.locate(ref.id)
        if location is not None:
            instance = rt.silos[location].activations[ref.id].instance
            heavy_handled += instance.handled_heavy
    assert heavy_handled > 50


def test_all_policies_complete_the_pipeline():
    for policy in ("round_robin", "least_outstanding", "dpa"):
        config = StageflowConfig(base_rate=100.0, policy=policy,
                                 pipelines=2, router_shards=2)
        _, workload = run_workload(config, until=4.0)
        assert workload.completed > 200, policy
        assert workload.failed == 0, policy


# ----------------------------------------------------------------------
def test_arrival_curves_shape_the_rate():
    flash = StageflowConfig(curve="flash", base_rate=100.0, flash_at=5.0,
                            flash_duration=2.0, flash_multiplier=3.0)
    w = StageflowWorkload(
        ActorRuntime(ClusterConfig(num_servers=2, seed=0)), flash)
    assert w.rate(1.0) == 100.0
    assert w.rate(5.0) == 300.0
    assert w.rate(6.9) == 300.0
    assert w.rate(7.0) == 100.0

    diurnal = StageflowConfig(curve="diurnal", base_rate=100.0,
                              diurnal_period=40.0, diurnal_amplitude=0.5)
    w = StageflowWorkload(
        ActorRuntime(ClusterConfig(num_servers=2, seed=0)), diurnal)
    assert abs(w.rate(10.0) - 150.0) < 1e-6   # sin peak at period/4
    assert abs(w.rate(30.0) - 50.0) < 1e-6    # trough at 3/4 period
    assert abs(w.rate(0.0) - 100.0) < 1e-6


def test_flash_crowd_actually_surges_arrivals():
    flash = StageflowConfig(curve="flash", base_rate=100.0, flash_at=3.0,
                            flash_duration=3.0, flash_multiplier=4.0,
                            pipelines=2, router_shards=2)
    rt = ActorRuntime(ClusterConfig(num_servers=3, processors=2, seed=2))
    workload = StageflowWorkload(rt, flash).start()
    rt.run(until=3.0)
    before = workload.issued
    rt.run(until=6.0)
    surge = workload.issued - before
    # Same wall-length windows; the surge carries ~4x the arrivals.
    assert surge > 2.5 * before


def test_stage_spec_validation():
    for bad in (dict(compute=0.0), dict(compute=1e-3, heavy_compute=0.0),
                dict(compute=1e-3, replicas=0)):
        try:
            StageSpec("bad", **bad)
        except ValueError:
            continue
        raise AssertionError(f"StageSpec accepted {bad}")


# ----------------------------------------------------------------------
def _digest(seed):
    rt = ActorRuntime(ClusterConfig(num_servers=3, processors=2,
                                    seed=seed))
    workload = StageflowWorkload(rt, QUICK).start()
    digest = hashlib.sha256()
    sim = rt.sim
    while sim.now < 5.0 and sim.step():
        digest.update(repr(sim.now).encode())
    return digest.hexdigest(), workload.summary()


def test_workload_is_seeded_deterministic():
    assert _digest(21) == _digest(21)
    digest_a, _ = _digest(21)
    digest_b, _ = _digest(22)
    assert digest_a != digest_b
