"""Determinism regression tests for the optimized simulation core.

The benchmark tables are only comparable across machines (and across
engine refactors) if a seeded run is bit-for-bit reproducible: same
event firing order, same timestamps, same summary statistics.  These
tests drive a seeded mini-cluster twice through fresh engines and demand
identical traces — any hot-path change that perturbs (time, seq)
ordering fails here before it can silently skew a figure.
"""

import hashlib

from repro.bench.harness import HaloExperiment
from repro.bench.metrics import percentile


def _trace_mini_cluster(horizon: float = 4.0) -> tuple[str, int, list[float]]:
    """Run a tiny seeded Halo cluster event-by-event; fingerprint the
    full event-processing trace."""
    exp = HaloExperiment(players=80, num_servers=3, seed=5)
    exp.workload.start()
    sim = exp.runtime.sim
    digest = hashlib.sha256()
    while sim.now < horizon and sim.step():
        digest.update(repr(sim.now).encode())
    latencies = sorted(exp.runtime.client_latency._samples)
    return digest.hexdigest(), sim.events_processed, latencies


def test_seeded_mini_cluster_trace_is_reproducible():
    trace_a, events_a, lat_a = _trace_mini_cluster()
    trace_b, events_b, lat_b = _trace_mini_cluster()
    assert events_a > 1_000  # the run actually exercised the cluster
    assert trace_a == trace_b
    assert events_a == events_b
    assert lat_a == lat_b  # identical latency samples, not just digests


def test_benchmark_summary_numbers_reproducible():
    def run_once():
        exp = HaloExperiment(players=100, num_servers=3, seed=2)
        res = exp.run(warmup=3.0, duration=5.0)
        return res, exp.runtime

    res_a, rt_a = run_once()
    res_b, rt_b = run_once()
    assert res_a.requests == res_b.requests
    assert res_a.median == res_b.median
    assert res_a.p95 == res_b.p95
    assert res_a.p99 == res_b.p99
    assert res_a.remote_fraction == res_b.remote_fraction
    assert rt_a.sim.events_processed == rt_b.sim.events_processed


def test_streaming_histogram_matches_exact_recorder_within_resolution():
    """The O(1) histogram the samplers use must agree with the exact
    sort-based recorder to within its bucket resolution."""
    exp = HaloExperiment(players=100, num_servers=3, seed=2)
    exp.run(warmup=3.0, duration=5.0)
    rt = exp.runtime
    exact = rt.client_latency
    hist = rt.client_latency_hist
    assert hist.count == exact.count
    assert hist.total == exact.total
    err = hist.max_relative_error
    for q in (50, 95, 99):
        target = percentile(exact._samples, q)
        assert abs(hist.percentile(q) - target) <= (2 * err + 1e-3) * target
