"""Integration tests: Orleans-style idle-activation collection."""

import pytest

from repro.actor.actor import Actor
from repro.actor.runtime import ActorRuntime, ClusterConfig


class Blip(Actor):
    def __init__(self):
        super().__init__()
        self.hits = 0

    def hit(self):
        self.hits += 1
        return self.hits


def make_runtime(age, period=1.0):
    rt = ActorRuntime(ClusterConfig(
        num_servers=2, seed=0,
        idle_collection_age=age, idle_collection_period=period,
    ))
    rt.register_actor("blip", Blip)
    return rt


def test_idle_actor_collected_after_age():
    rt = make_runtime(age=2.0)
    ref = rt.ref("blip", 1)
    rt.client_request(ref, "hit")
    rt.run(until=1.0)
    assert rt.locate(ref.id) is not None
    rt.run(until=5.0)  # idle beyond age -> collected at a GC tick
    assert rt.locate(ref.id) is None


def test_active_actor_survives_collection():
    rt = make_runtime(age=2.0)
    ref = rt.ref("blip", 1)

    def keep_hitting(n):
        if n == 0:
            return
        rt.client_request(ref, "hit")
        rt.sim.schedule(1.0, keep_hitting, n - 1)

    keep_hitting(8)
    rt.run(until=8.5)
    assert rt.locate(ref.id) is not None


def test_collected_actor_state_survives_reactivation():
    rt = make_runtime(age=1.0)
    ref = rt.ref("blip", 7)
    rt.client_request(ref, "hit")
    rt.run(until=4.0)
    assert rt.locate(ref.id) is None  # collected
    results = []
    rt.client_request(ref, "hit",
                      on_complete=lambda lat, res: results.append(res))
    rt.run(until=8.0)
    assert results == [2]  # state restored from storage


def test_collection_disabled_by_default():
    rt = ActorRuntime(ClusterConfig(num_servers=1, seed=0))
    rt.register_actor("blip", Blip)
    ref = rt.ref("blip", 1)
    rt.client_request(ref, "hit")
    rt.sim.schedule(100.0, lambda: None)
    rt.run()
    assert rt.locate(ref.id) is not None


def test_collect_idle_returns_count():
    rt = make_runtime(age=1000.0, period=1000.0)  # GC effectively off
    for i in range(5):
        rt.client_request(rt.ref("blip", i), "hit")
    rt.run(until=2.0)
    silo_counts = [silo.collect_idle(max_age=0.5) for silo in rt.silos]
    assert sum(silo_counts) == 5
    rt.run(until=3.0)
    assert len(rt.directory) == 0
