"""Paper-scale workload switches: direct bootstrap, lazy idle pool,
state-discard deactivation, and ActorId interning."""

import hashlib

import pytest

from repro.actor.ids import ActorId
from repro.actor.runtime import ActorRuntime, ClusterConfig
from repro.workloads.halo import HaloConfig, HaloWorkload


def _run(config_kwargs, players=400, horizon=3.0, seed=7, servers=4):
    rt = ActorRuntime(ClusterConfig(num_servers=servers, seed=seed))
    cfg = HaloConfig(target_players=players, pool_target=40,
                     request_rate=200.0, **config_kwargs)
    wl = HaloWorkload(rt, cfg)
    wl.start()
    sim = rt.sim
    digest = hashlib.sha256()
    while sim.now < horizon and sim.step():
        digest.update(repr(sim.now).encode())
    return rt, wl, digest.hexdigest()


def test_direct_bootstrap_reaches_steady_state_without_messages():
    rt, wl, _ = _run({"direct_bootstrap": True}, horizon=0.0)
    # Bootstrap happened entirely without events: games installed, rosters
    # wired, players placed — and nothing on the queue but the schedulers.
    assert wl.games_started > 30
    assert wl.population == 400
    assert rt.sim.events_processed == 0
    total = sum(len(s.activations) for s in rt.silos)
    assert total == wl.games_started * 8 + wl.games_started
    # Rosters are wired exactly as a start_game message would have left them.
    for gid, members in list(wl.active_games.items())[:5]:
        game_loc = rt.locate(rt.ref("game", gid).id)
        game = rt.silos[game_loc].activations[rt.ref("game", gid).id].instance
        assert [r.key for r in game.members] == members
        for pid in members:
            loc = rt.locate(rt.ref("player", pid).id)
            player = rt.silos[loc].activations[rt.ref("player", pid).id].instance
            assert player.game.id == rt.ref("game", gid).id


def test_direct_bootstrap_run_is_deterministic():
    _, wl_a, digest_a = _run({"direct_bootstrap": True})
    _, wl_b, digest_b = _run({"direct_bootstrap": True})
    assert digest_a == digest_b
    assert wl_a.games_started == wl_b.games_started
    assert wl_a.requests_issued == wl_b.requests_issued


def test_direct_bootstrap_serves_requests():
    rt, wl, _ = _run({"direct_bootstrap": True})
    assert wl.requests_issued > 0
    assert rt.requests_completed > 0


def test_lazy_idle_pool_short_circuits_idle_probes():
    rt, wl, _ = _run({"direct_bootstrap": True, "lazy_idle_pool": True},
                     horizon=5.0)
    # Never-matched pool players never activate: idle status probes are
    # answered by the workload, so a player activation implies the
    # player is in (or has been through) a game.
    assert wl.idle_short_circuits > 0
    for silo in rt.silos:
        for actor_id in silo.activations:
            if actor_id.actor_type == "player":
                pid = actor_id.key
                assert pid in wl.playing or wl.games_played[pid] > 0
    # The RNG draw sequence is shared with the eager mode, so the lazy
    # switch must not change which players get probed — only whether an
    # idle probe turns into cluster traffic.
    rt_eager, wl_eager, _ = _run({"direct_bootstrap": True}, horizon=5.0)
    assert (wl.requests_issued + wl.idle_short_circuits
            >= wl_eager.requests_issued)


def test_discard_departed_keeps_storage_empty():
    rt, wl, _ = _run({"direct_bootstrap": True, "game_duration": (0.5, 1.0),
                      "games_per_player": (1, 1)}, horizon=6.0)
    assert wl.players_departed > 0
    # Departed players' and closed games' state was dropped, not persisted.
    for pid in range(len(wl._live_index)):
        if wl._live_index[pid] < 0:
            assert rt.ref("player", pid).id not in rt.storage
    assert all(aid.actor_type != "game" or aid.key in wl.active_games
               for aid in rt.storage)
    assert len(rt.discarded) > 0


def test_discarded_actor_revives_fresh_and_placeable():
    rt = ActorRuntime(ClusterConfig(num_servers=3, seed=2))
    from repro.workloads.halo import GameActor, PlayerActor

    rt.register_actor("player", PlayerActor)
    rt.register_actor("game", GameActor)
    ref = rt.ref("player", 99)
    rt.activate(ref.id, 1)
    rt.deactivate(ref.id, discard_state=True)
    assert ref.id not in rt.storage
    assert ref.id in rt.discarded
    # A late message revives it as a fresh instance (virtual-actor
    # contract) instead of crashing on missing state.
    done = []
    rt.client_request(ref, "request_status", 1,
                      on_complete=lambda lat, res: done.append(res))
    rt.run(until=2.0)
    assert done == [{"state": "idle"}]


def test_actor_ids_are_interned_and_tuple_compatible():
    a = ActorId("player", 123456)
    b = ActorId("player", 123456)
    assert a is b
    assert a == ("player", 123456)
    assert hash(a) == hash(("player", 123456))
    t, k = a  # unpacks like the NamedTuple it replaced
    assert (t, k) == (a[0], a[1]) == ("player", 123456)
    assert ActorId("a", 1) < ActorId("b", 0) < ("c", 99)
    with pytest.raises(IndexError):
        a[2]


def test_interned_ids_share_one_object_across_refs():
    rt = ActorRuntime(ClusterConfig(num_servers=2, seed=0))
    from repro.workloads.halo import PlayerActor

    rt.register_actor("player", PlayerActor)
    assert rt.ref("player", 7).id is rt.ref("player", 7).id
