"""The static ⊇ dynamic contract for the PAR window discipline.

This file is its own fixture: ``_zero_latency_runtime`` below builds a
cluster whose ``ClusterConfig(network_latency=0.0)`` is the deliberate
``PAR-ZERO-LOOKAHEAD``.  The tests drive it on the serial engine with
the window-barrier shadow armed, then statically analyze *this file*
and demand the recorded same-window deliveries are covered by the
static finding — the same over-approximation contract the graph check
and the XB check enforce for comm edges and payload hazards.  The
repo-wide gate runs the seeded Halo and Stageflow slices and (the tree
having positive latency floors everywhere) demands zero window events
outright; a pinned digest proves the shadow costs nothing.
"""

import hashlib
import os

import pytest

from repro.actor.actor import Actor
from repro.actor.calls import Call
from repro.actor.runtime import ActorRuntime, ClusterConfig
from repro.analysis.par import (
    WindowShadow,
    analyze_par,
    crosscheck_window_events,
    crosscheck_windows,
    format_par_crosscheck,
)
from repro.analysis.par.lookahead import DEFAULT_MIN_LATENCY
from repro.analysis.sanitizer import Sanitizer, WindowEvent
from repro.bench.harness import HaloExperiment

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
SELF = os.path.abspath(__file__)

# The same pin as test_lint_repo_clean: HaloExperiment(players=80,
# num_servers=3, seed=5) stepped to t=4.0, hashing repr(sim.now).
GOLDEN_DIGEST = "d4149165647d66d97d3b04ca45d70e0ff5fd89fe8fe82fbf3488e5b4d33dcc20"
GOLDEN_EVENTS = 2974


class EchoActor(Actor):
    def echo(self, value):
        return value


class RelayActor(Actor):
    def relay(self, target, value):
        doubled = yield Call(target, "echo", value * 2)
        return doubled


def _zero_latency_runtime(seed=3):
    rt = ActorRuntime(ClusterConfig(num_servers=2, seed=seed,
                                    network_latency=0.0))
    rt.register_actor("echo", EchoActor)
    rt.register_actor("relay", RelayActor)
    return rt


def _drive_zero_latency():
    """Drive cross-server relays at zero wire latency with the shadow
    armed: every cross-silo delivery lands in the window it was sent
    in, which is exactly what the sharded engine could not accept."""
    san = Sanitizer()
    rt = _zero_latency_runtime()
    # Zero base latency means the *true* floor is zero and no window is
    # sound; the shadow still needs a positive width to partition time,
    # so use the analysis default — any positive width shows the
    # same-window arrivals.
    shadow = WindowShadow(DEFAULT_MIN_LATENCY, san).attach(rt.network)
    for key in range(8):
        rt.client_request(rt.ref("relay", key), "relay",
                          rt.ref("echo", key + 8), key)
    rt.run(until=2.0)
    return rt, shadow, list(san.window_events)


# ------------------------------------------------------------- shadow


def test_shadow_records_only_same_window_cross_silo_arrivals():
    san = Sanitizer()
    shadow = WindowShadow(1.0, san)
    shadow.observe(0, 1, t_send=0.25, latency=0.5)     # same window: event
    shadow.observe(0, 1, t_send=0.25, latency=1.5)     # next window: fine
    shadow.observe(1, 1, t_send=0.25, latency=0.0)     # same silo: exempt
    shadow.observe(None, 1, t_send=0.25, latency=0.0)  # client: exempt
    assert len(san.window_events) == 1
    event = san.window_events[0]
    assert (event.src, event.dst, event.window_index) == (0, 1, 0)
    doc = shadow.to_dict()
    assert doc["deliveries"] == 4
    assert doc["cross_silo"] == 2
    assert doc["window_events"] == 1
    assert doc["min_latency_seen"] == 0.5


def test_shadow_rejects_nonpositive_window():
    with pytest.raises(ValueError):
        WindowShadow(0.0, Sanitizer())


# ------------------------------------------- static ⊇ dynamic contract


def test_zero_latency_run_is_covered_by_the_static_finding():
    rt, shadow, events = _drive_zero_latency()
    assert rt.requests_completed == 8
    assert shadow.cross_silo > 0
    assert events, "zero latency must produce same-window arrivals"
    assert all(e.latency == 0.0 for e in events)

    with open(SELF, "r", encoding="utf-8") as fh:
        source = fh.read()
    _index, _graph, findings = analyze_par([(SELF, source)])
    zero = [f for f in findings if f.rule == "PAR-ZERO-LOOKAHEAD"]
    assert zero, "the self-fixture config must be statically visible"

    report = crosscheck_window_events(findings, events)
    assert report["ok"], report["uncovered"]
    assert report["dynamic_events"]


def test_crosscheck_flags_phantom_events_without_a_finding():
    phantom = WindowEvent(src=0, dst=1, t_send=0.5, latency=1e-9,
                          window=1e-3, window_index=0)
    report = crosscheck_window_events([], [phantom])
    assert not report["ok"]
    assert report["uncovered"][0]["expected_rule"] == "PAR-ZERO-LOOKAHEAD"
    assert "UNCOVERED" in format_par_crosscheck(report)


@pytest.mark.slow
def test_repo_tree_crosscheck_is_clean():
    """The CI gate: seeded Halo and Stageflow slices with the shadow
    armed produce no same-window cross-silo delivery at the inferred
    conservative floor — and the tree has no zero-latency config to
    explain one away."""
    report = crosscheck_windows(base=REPO, requests=500)
    assert report["ok"], format_par_crosscheck(report)
    assert report["dynamic_events"] == []
    assert report["zero_lookahead_findings"] == 0
    assert {m["slice"] for m in report["slices"]} == {"halo", "stageflow"}
    for meta in report["slices"]:
        assert meta["cross_silo"] > 0      # the slices did cross silos
        assert meta["window"] > 0
    assert "static ⊇ dynamic: OK" in format_par_crosscheck(report)


# ------------------------------------------------------ digest safety


def test_halo_digest_unchanged_with_shadow_attached():
    """The shadow is pure recording: the pinned pre-PR digest holds
    even with the shadow armed on the live network."""
    exp = HaloExperiment(players=80, num_servers=3, seed=5)
    shadow = WindowShadow(DEFAULT_MIN_LATENCY, Sanitizer()).attach(
        exp.runtime.network)
    exp.workload.start()
    exp.cluster.start()
    sim = exp.runtime.sim
    digest = hashlib.sha256()
    events = 0
    while sim.now < 4.0 and sim.step():
        digest.update(repr(sim.now).encode())
        events += 1
    assert digest.hexdigest() == GOLDEN_DIGEST
    assert events == GOLDEN_EVENTS
    assert shadow.deliveries > 0           # it really was watching
