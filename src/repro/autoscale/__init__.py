"""Elastic autoscaling: grow/shrink the silo fleet under load.

See :mod:`repro.autoscale.controller` for the control loop and
:mod:`repro.autoscale.config` for the knobs.
"""

from .config import AutoscaleConfig
from .controller import AutoscaleController

__all__ = ["AutoscaleConfig", "AutoscaleController"]
