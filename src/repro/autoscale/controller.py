"""The elastic autoscaling controller.

Watches per-silo CPU utilization over each control window and keeps the
cluster-mean inside the configured band by executing *integrated*
reconfiguration plans: a grow plan un-parks silos, resizes registered
actor pools to the new capacity, and kicks an ActOp partitioning round
so communicating actors re-cluster onto the changed membership; a shrink
plan drains the least-loaded silo (placement stops targeting it at once,
its activations migrate off via the §4.3 opportunistic path, and it
leaves service when quiescent), then resizes pools and rebalances.  One
plan — membership, migration, pool sizing, rebalancing — rather than
independent loops fighting each other (the integrated formulation of
arXiv:1602.03770, on top of ActOp's runtime mechanisms).

Determinism: the controller draws **no randomness** — decisions are pure
functions of measured utilization, so a seeded workload produces
bit-identical scaling traces.  A cluster built with ``autoscale=None``
never constructs the controller and is bit-identical to earlier builds.
"""

from __future__ import annotations

import math
from typing import Optional

from ..obs.events import ScalePlanEvent
from .config import AutoscaleConfig

__all__ = ["AutoscaleController"]


class AutoscaleController:
    """Grow/shrink controller over an :class:`ActorRuntime`'s silo fleet."""

    def __init__(self, runtime, config: Optional[AutoscaleConfig] = None,
                 actop=None):
        self.runtime = runtime
        self.config = config or AutoscaleConfig()
        self.actop = actop
        self.max_silos = (self.config.max_silos
                          if self.config.max_silos is not None
                          else runtime.num_servers)
        if self.max_silos > runtime.num_servers:
            raise ValueError(
                f"max_silos={self.max_silos} exceeds the fleet "
                f"({runtime.num_servers} silos)")
        # pool -> replicas-per-active-silo ratio (None until start()).
        self._pools: list = []
        self._running = False
        self._draining: Optional[int] = None
        self._plan_ids = 0
        self._last_plan_at: Optional[float] = None
        self._busy: list[float] = []
        self._t_last = 0.0
        # Provisioned capacity accounting: silo-seconds of powered
        # (non-dead) silos, the study's cost metric.
        self.silo_seconds = 0.0
        self._ss_t = 0.0
        self._ss_powered = 0
        # Introspection
        self.plans_begun = 0
        self.plans_committed = 0
        self.grows = 0
        self.shrinks = 0
        self.decisions: list[tuple[float, float, int, str]] = []
        self.windows: list[tuple[float, float, int]] = []

    # ------------------------------------------------------------------
    def register_pool(self, pool, replicas_per_silo: Optional[float] = None):
        """Scale ``pool`` with the fleet: ``replicas_per_silo`` replicas
        per active silo (``None`` derives the ratio from the pool's size
        at :meth:`start`, preserving the configured shape)."""
        self._pools.append([pool, replicas_per_silo])
        return pool

    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        return self.runtime.active_servers

    def _powered(self) -> int:
        return sum(1 for s in self.runtime.silos if not s.dead)

    def _account(self) -> None:
        now = self.runtime.sim.now
        self.silo_seconds += self._ss_powered * (now - self._ss_t)
        self._ss_t = now
        self._ss_powered = self._powered()

    # ------------------------------------------------------------------
    def start(self) -> "AutoscaleController":
        if self._running:
            raise RuntimeError("AutoscaleController.start() called twice")
        self._running = True
        runtime = self.runtime
        cfg = self.config
        initial = (cfg.initial_silos if cfg.initial_silos is not None
                   else runtime.num_servers)
        initial = max(cfg.min_silos, min(initial, self.max_silos))
        # Park the surplus (highest ids): silos are empty at t=0, so
        # parking is a pure membership change, not a crash.
        for server in range(initial, runtime.num_servers):
            runtime.fail_silo(server)
        for entry in self._pools:
            if entry[1] is None:
                entry[1] = entry[0].replicas / initial
        self._busy = runtime.cpu_busy_snapshot()
        self._t_last = runtime.sim.now
        self._ss_t = runtime.sim.now
        self._ss_powered = self._powered()
        runtime.sim.schedule(cfg.warmup + cfg.period, self._tick)
        return self

    def stop(self) -> None:
        self._running = False
        self._account()

    # ------------------------------------------------------------------
    def _measure(self) -> tuple[float, list[tuple[float, int]]]:
        """Mean utilization across live, non-draining silos over the
        window since the last tick, plus per-silo (util, id) pairs."""
        runtime = self.runtime
        per_silo = []
        total = 0.0
        for silo, before in zip(runtime.silos, self._busy):
            if silo.dead or silo.draining:
                continue
            util = silo.server.cpu.utilization(before, self._t_last)
            per_silo.append((util, silo.server_id))
            total += util
        self._busy = runtime.cpu_busy_snapshot()
        self._t_last = runtime.sim.now
        mean = total / len(per_silo) if per_silo else 0.0
        return mean, per_silo

    def _tick(self) -> None:
        if not self._running:
            return
        cfg = self.config
        runtime = self.runtime
        self._account()
        util, per_silo = self._measure()
        active = self.active
        self.windows.append((runtime.sim.now, util, active))
        in_cooldown = (self._last_plan_at is not None
                       and runtime.sim.now - self._last_plan_at < cfg.cooldown)
        if self._draining is None and not in_cooldown:
            if util > cfg.high and active < self.max_silos:
                self._grow(util, active)
            elif util < cfg.low and active > cfg.min_silos:
                # Only shrink if the survivors' projected load stays
                # inside the band — never trade a lull for an overload.
                projected = util * active / (active - 1)
                if projected < cfg.high:
                    self._shrink(util, active, per_silo)
        runtime.sim.schedule(cfg.period, self._tick)

    # ------------------------------------------------------------------
    # Plans: one integrated membership + pools + rebalance change.
    # ------------------------------------------------------------------
    def _grow(self, util: float, active: int) -> None:
        cfg = self.config
        runtime = self.runtime
        # Proportional step: enough silos that the measured demand would
        # sit at the band's midpoint.
        mid = (cfg.low + cfg.high) / 2.0
        desired = min(self.max_silos, math.ceil(active * util / mid))
        step = max(1, desired - active)
        plan_id = self._begin("grow", util, active,
                              min(active + step, self.max_silos))
        added = []
        for _ in range(step):
            server = runtime.add_silo()
            if server is None:
                break
            added.append(server)
        self._account()
        new_active = self.active
        self.grows += 1
        self.decisions.append(
            (runtime.sim.now, util, new_active, f"grow+{len(added)}"))
        self._resize_pools(new_active)
        self._rebalance()
        self._commit(plan_id, "grow", util, active, new_active,
                     server=added[0] if added else -1)

    def _shrink(self, util: float, active: int,
                per_silo: list[tuple[float, int]]) -> None:
        runtime = self.runtime
        # Drain the least-loaded silo (ties: lowest id) — fewest
        # activations to migrate, least disruption.
        victim = min(per_silo)[1]
        plan_id = self._begin("shrink", util, active, active - 1,
                              server=victim)
        self._draining = victim
        self.shrinks += 1
        self.decisions.append(
            (runtime.sim.now, util, active - 1, f"drain:{victim}"))
        started = runtime.drain_silo(
            victim, poll=self.config.drain_poll,
            on_complete=lambda server, _ctx=(plan_id, util, active):
                self._drain_done(server, *_ctx))
        if not started:  # silo died between measure and act
            self._draining = None
            return
        self._resize_pools(self.active)
        self._rebalance()

    def _drain_done(self, server: int, plan_id: int, util: float,
                    active: int) -> None:
        self._draining = None
        self._account()
        self._commit(plan_id, "shrink", util, active, self.active,
                     server=server)

    # ------------------------------------------------------------------
    def _begin(self, kind: str, util: float, before: int, after: int,
               server: int = -1) -> int:
        self._plan_ids += 1
        self.plans_begun += 1
        self._last_plan_at = self.runtime.sim.now
        self._emit(self._plan_ids, "begin", kind, util, before, after, server)
        return self._plan_ids

    def _commit(self, plan_id: int, kind: str, util: float, before: int,
                after: int, server: int = -1) -> None:
        self.plans_committed += 1
        self._emit(plan_id, "commit", kind, util, before, after, server)

    def _emit(self, plan_id: int, phase: str, kind: str, util: float,
              before: int, after: int, server: int) -> None:
        obs = self.runtime.obs
        if obs is not None:
            obs.events.emit(ScalePlanEvent(
                self.runtime.sim.now, plan_id=plan_id, phase=phase,
                kind=kind, server=server, utilization=util,
                active_before=before, active_after=after))

    def _resize_pools(self, active: int) -> None:
        for pool, ratio in self._pools:
            pool.resize(max(1, round(ratio * active)))

    def _rebalance(self) -> None:
        if self.actop is None or not self.config.rebalance:
            return
        sim = self.runtime.sim
        for i, agent in enumerate(self.actop.agents):
            silo = agent.silo
            if silo.dead or silo.draining:
                continue
            # Staggered so concurrent exchange proposals don't collide.
            sim.schedule(0.05 * (i + 1), self._agent_round, agent)

    def _agent_round(self, agent) -> None:
        if agent.silo.dead:
            return
        agent.initiate_round()

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-ready run summary (the ``repro autoscale`` artifact)."""
        return {
            "plans_begun": self.plans_begun,
            "plans_committed": self.plans_committed,
            "grows": self.grows,
            "shrinks": self.shrinks,
            "active_silos": self.active,
            "silo_seconds": round(self.silo_seconds, 3),
            "decisions": [
                {"t": round(t, 3), "utilization": round(u, 4),
                 "active": a, "action": action}
                for t, u, a, action in self.decisions
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"AutoscaleController(active={self.active}, "
                f"plans={self.plans_committed}/{self.plans_begun}, "
                f"band=[{self.config.low}, {self.config.high}])")
