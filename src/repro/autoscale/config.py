"""Configuration for the elastic autoscaling controller."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["AutoscaleConfig"]


@dataclass(frozen=True)
class AutoscaleConfig:
    """Knobs for :class:`~repro.autoscale.controller.AutoscaleController`.

    The controller keeps cluster-mean CPU utilization inside the
    ``[low, high]`` band by adding silos (grow) or draining them
    (shrink), between ``min_silos`` and ``max_silos`` active.

    Attributes:
        period: seconds between control ticks (workload time units).
        low / high: target utilization band; below ``low`` the
            controller considers shrinking, above ``high`` growing.
        min_silos: floor of active silos.
        max_silos: ceiling of active silos; ``None`` means the cluster's
            ``num_servers`` (the fleet the runtime was built with is the
            provisioning ceiling — parked silos cost nothing).
        initial_silos: silos active at start; ``None`` starts with the
            whole fleet (no parking).
        cooldown: minimum seconds between scaling plans, so a plan's
            effect lands in the measurements before the next decision.
        warmup: seconds before the first control tick.
        drain_poll: quiescence polling period handed to
            :meth:`~repro.actor.runtime.ActorRuntime.drain_silo`.
        rebalance: trigger an ActOp partitioning round on every live
            silo after each plan's membership/pool change, folding
            locality repair into the same reconfiguration (the
            integrated scaling+rebalancing of arXiv:1602.03770).
    """

    period: float = 2.0
    low: float = 0.35
    high: float = 0.70
    min_silos: int = 1
    max_silos: Optional[int] = None
    initial_silos: Optional[int] = None
    cooldown: float = 4.0
    warmup: float = 2.0
    drain_poll: float = 0.25
    rebalance: bool = True

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be > 0")
        if not 0.0 < self.low < self.high < 1.0:
            raise ValueError(
                f"need 0 < low < high < 1, got [{self.low}, {self.high}]")
        if self.min_silos < 1:
            raise ValueError("min_silos must be >= 1")
        if self.max_silos is not None and self.max_silos < self.min_silos:
            raise ValueError("max_silos must be >= min_silos")
        if self.initial_silos is not None and self.initial_silos < 1:
            raise ValueError("initial_silos must be >= 1")
        if self.cooldown < 0 or self.warmup < 0:
            raise ValueError("cooldown and warmup must be >= 0")
        if self.drain_poll <= 0:
            raise ValueError("drain_poll must be > 0")
