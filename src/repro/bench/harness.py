"""Calibrated experiment harness shared by the benchmark suite.

Every table/figure bench builds on the same three experiment drivers so
that baselines and optimized runs differ only in the optimization under
test.  The calibration constants here pin the *operating points* of the
paper: the Halo cluster baseline sits at ~80% CPU at the top load (the
paper's 6K req/s point), and the single-server workloads saturate at the
paper's 15K req/s point under the default one-thread-per-stage-per-core
allocation.

Scaling: the paper's absolute rates are impractical for an in-process
DES, so experiments use the time-scaling trick (see
``ClusterConfig.time_scale``): all durations stretched by ``time_scale``,
rates divided by it — utilization and latency *shape* invariant.
Reported latencies are normalized back.  Every result carries its
parameters for the EXPERIMENTS.md record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..actor.runtime import ActorRuntime, ClusterConfig
from ..autoscale.config import AutoscaleConfig
from ..cluster import Cluster, build_cluster
from ..core.actop import ActOp, ActOpConfig, ThreadControllerConfig
from ..core.partitioning.coordinator import PartitioningConfig
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..faults.resilience import AdmissionConfig, ResilienceConfig
from ..workloads.counter import CounterConfig, CounterWorkload
from ..workloads.halo import HaloConfig, HaloWorkload
from ..workloads.heartbeat import HeartbeatConfig, HeartbeatWorkload
from ..workloads.stageflow import StageflowConfig, StageflowWorkload
from .sampler import ClusterSampler

__all__ = [
    "ExperimentResult",
    "HaloExperiment",
    "HeartbeatExperiment",
    "CounterExperiment",
    "StageflowExperiment",
    "HALO_RATE_FULL",
    "halo_partitioning_config",
    "halo_thread_config",
    "heartbeat_thread_config",
]

# ----------------------------------------------------------------------
# Calibration constants (measured: the Halo baseline costs ~5.05 ms of
# cluster CPU per client request on 10x8 cores under random placement,
# so ~12.7K req/s is the 80%-utilization point the paper calls "6K").
# ----------------------------------------------------------------------
HALO_RATE_FULL = 12_668.0      # paper-equivalent of the 6K req/s point
HALO_TIME_SCALE = 40.0
HEARTBEAT_TIME_SCALE = 5.0
COUNTER_TIME_SCALE = 5.0


def halo_partitioning_config() -> PartitioningConfig:
    """The calibrated online-protocol settings for the scaled Halo runs."""
    return PartitioningConfig(
        round_period=1.0,
        stats_period=0.5,
        cooldown=0.5,
        delta=24,
        candidate_fraction=0.4,
        candidate_max=96,
        decay=0.85,
        max_peers_tried=6,
        warmup=15.0,
    )


def halo_thread_config(time_scale: float = HALO_TIME_SCALE) -> ThreadControllerConfig:
    return ThreadControllerConfig(eta=1e-4 * time_scale, period=5.0)


def heartbeat_thread_config(time_scale: float = HEARTBEAT_TIME_SCALE) -> ThreadControllerConfig:
    return ThreadControllerConfig(eta=1e-4 * time_scale, period=4.0)


@dataclass
class ExperimentResult:
    """Everything a bench reports for one configuration.

    Latencies are normalized back to paper-equivalent seconds (i.e.
    divided by the run's time_scale).
    """

    label: str
    mean: float
    median: float
    p95: float
    p99: float
    requests: int
    cpu_utilization: float
    remote_fraction: float
    migrations: int
    rejected: int
    timed_out: int = 0
    shed: int = 0
    retries: int = 0
    failovers: int = 0
    thread_allocation: dict[str, int] = field(default_factory=dict)
    cdf: list[tuple[float, float]] = field(default_factory=list)
    call_median: float = 0.0
    call_p99: float = 0.0
    call_cdf: list[tuple[float, float]] = field(default_factory=list)
    sampler: Optional[ClusterSampler] = None

    def summary_ms(self) -> dict[str, float]:
        return {
            "mean_ms": self.mean * 1000,
            "median_ms": self.median * 1000,
            "p95_ms": self.p95 * 1000,
            "p99_ms": self.p99 * 1000,
        }


def improvement(baseline: float, optimized: float) -> float:
    """The paper's improvement metric: 100% x (1 - optimized/baseline)."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (1.0 - optimized / baseline)


class _ExperimentBase:
    """Warmup / measure / collect shared across the three drivers."""

    def __init__(self, runtime: ActorRuntime, time_scale: float, label: str):
        self.runtime = runtime
        self.time_scale = time_scale
        self.label = label
        self.sampler: Optional[ClusterSampler] = None

    def _measure(
        self,
        warmup: float,
        duration: float,
        sample_period: Optional[float] = None,
        cdf_points: int = 0,
    ) -> ExperimentResult:
        rt = self.runtime
        if sample_period is not None:
            self.sampler = ClusterSampler(rt, period=sample_period)
            self.sampler.start()
        rt.run(until=warmup)
        rt.reset_latency_stats()
        local0, remote0 = rt.msgs_local, rt.msgs_remote
        migrations0 = rt.migrations_total
        rejected0 = rt.rejected_requests
        timed_out0 = rt.requests_timed_out
        shed0 = rt.requests_shed
        retries0 = rt.request_retries
        failovers0 = rt.failovers
        busy0 = rt.cpu_busy_snapshot()
        t0 = rt.sim.now
        rt.run(until=warmup + duration)

        ts = self.time_scale
        lat = rt.client_latency
        call = rt.call_latency
        d_local = rt.msgs_local - local0
        d_remote = rt.msgs_remote - remote0
        total_msgs = d_local + d_remote
        has_calls = call.count > 0
        return ExperimentResult(
            label=self.label,
            mean=lat.mean / ts,
            median=(lat.median if lat.count else 0.0) / ts,
            p95=(lat.p95 if lat.count else 0.0) / ts,
            p99=(lat.p99 if lat.count else 0.0) / ts,
            requests=lat.count,
            cpu_utilization=rt.mean_cpu_utilization(busy0, t0),
            remote_fraction=d_remote / total_msgs if total_msgs else 0.0,
            migrations=rt.migrations_total - migrations0,
            rejected=rt.rejected_requests - rejected0,
            timed_out=rt.requests_timed_out - timed_out0,
            shed=rt.requests_shed - shed0,
            retries=rt.request_retries - retries0,
            failovers=rt.failovers - failovers0,
            thread_allocation=rt.silos[0].server.thread_allocation(),
            cdf=[(v / ts, q) for v, q in lat.cdf(cdf_points)] if cdf_points else [],
            call_median=(call.median if has_calls else 0.0) / ts,
            call_p99=(call.p99 if has_calls else 0.0) / ts,
            call_cdf=[(v / ts, q) for v, q in call.cdf(cdf_points)]
            if cdf_points and has_calls
            else [],
            sampler=self.sampler,
        )


class HaloExperiment(_ExperimentBase):
    """One Halo Presence run on the calibrated 10-server cluster.

    Args:
        load_fraction: share of the 80%-utilization request rate (the
            paper's 2K/4K/6K loads map to 1/3, 2/3, 1.0).
        players: concurrent player target (paper: 100K; scaled default 2K).
        partitioning: enable the §4 optimizer.
        thread_allocation: enable the §5 optimizer.
        num_servers / seed / time_scale: infrastructure knobs.
        resilience: retry/deadline/admission policies (None = off).
        faults: a fault plan armed when the experiment starts.
        max_receiver_queue: shorthand for
            ``ResilienceConfig(admission=AdmissionConfig(receiver_queue=...))``;
            ignored when ``resilience`` is given explicitly.
    """

    def __init__(
        self,
        load_fraction: float = 1.0,
        players: int = 2_000,
        partitioning: bool = False,
        thread_allocation: bool = False,
        num_servers: int = 10,
        seed: int = 1,
        time_scale: float = HALO_TIME_SCALE,
        max_receiver_queue: Optional[int] = None,
        resilience: Optional[ResilienceConfig] = None,
        faults: Optional[FaultPlan] = None,
        label: Optional[str] = None,
    ):
        if resilience is None and max_receiver_queue is not None:
            resilience = ResilienceConfig(
                admission=AdmissionConfig(receiver_queue=max_receiver_queue))
        actop_config = ActOpConfig(
            partitioning=halo_partitioning_config() if partitioning else None,
            thread_allocation=(halo_thread_config(time_scale)
                               if thread_allocation else None),
        )
        cluster = build_cluster(
            ClusterConfig(num_servers=num_servers, seed=seed,
                          time_scale=time_scale),
            resilience=resilience,
            actop=actop_config if actop_config.enabled else None,
            faults=faults,
        )
        super().__init__(
            cluster.runtime,
            time_scale,
            label
            or f"halo(load={load_fraction:.2f}, part={partitioning}, thr={thread_allocation})",
        )
        self.cluster: Cluster = cluster
        self.actop: Optional[ActOp] = cluster.actop
        self.injector: Optional[FaultInjector] = cluster.injector
        # Request rate scales with the population so per-actor load is
        # invariant (the paper's 10K/100K/1M sweep holds rate at 4K).
        rate = HALO_RATE_FULL * load_fraction * (players / 2_000.0)
        self.workload = HaloWorkload(
            cluster.runtime,
            HaloConfig(
                target_players=players,
                pool_target=max(16, players // 50),
                request_rate=rate / time_scale,
                game_duration=(120.0, 180.0),
            ),
        )

    def run(
        self,
        warmup: float = 90.0,
        duration: float = 90.0,
        sample_period: Optional[float] = None,
        cdf_points: int = 0,
    ) -> ExperimentResult:
        self.workload.start()
        self.cluster.start()
        return self._measure(warmup, duration, sample_period, cdf_points)


class HeartbeatExperiment(_ExperimentBase):
    """One single-server Heartbeat run (§6.2 / Fig. 11a)."""

    def __init__(
        self,
        request_rate: float = 15_000.0,
        monitors: int = 800,
        thread_allocation: bool = False,
        io_wait: float = 0.0,
        seed: int = 3,
        time_scale: float = HEARTBEAT_TIME_SCALE,
        resilience: Optional[ResilienceConfig] = None,
        faults: Optional[FaultPlan] = None,
        label: Optional[str] = None,
    ):
        cluster = build_cluster(
            ClusterConfig(num_servers=1, seed=seed, time_scale=time_scale),
            resilience=resilience,
            actop=(ActOpConfig(
                thread_allocation=heartbeat_thread_config(time_scale))
                if thread_allocation else None),
            faults=faults,
        )
        super().__init__(
            cluster.runtime,
            time_scale,
            label or f"heartbeat(rate={request_rate:.0f}, thr={thread_allocation})",
        )
        self.cluster: Cluster = cluster
        self.actop: Optional[ActOp] = cluster.actop
        self.injector: Optional[FaultInjector] = cluster.injector
        self.workload = HeartbeatWorkload(
            cluster.runtime,
            HeartbeatConfig(
                num_monitors=monitors,
                request_rate=request_rate / time_scale,
                io_wait=io_wait,
            ),
        )

    def run(self, warmup: float = 25.0, duration: float = 35.0,
            cdf_points: int = 0) -> ExperimentResult:
        self.workload.start()
        self.cluster.start()
        return self._measure(warmup, duration, cdf_points=cdf_points)


class StageflowExperiment(_ExperimentBase):
    """One Stageflow inference-pipeline run, fixed-fleet or autoscaled.

    Unlike the single-window drivers this one is *phased*: a flash-crowd
    or diurnal study measures several absolute windows over one run, so
    callers :meth:`start` once and then call :meth:`measure_window` per
    phase.  ``autoscale=AutoscaleConfig(...)`` arms the elastic
    controller (reachable afterwards as ``self.controller``);
    ``autoscale=None`` is the peak-provisioned fixed baseline.
    """

    def __init__(
        self,
        config: Optional[StageflowConfig] = None,
        autoscale: Optional[AutoscaleConfig] = None,
        num_servers: int = 6,
        processors: int = 2,
        seed: int = 3,
        time_scale: float = 1.0,
        resilience: Optional[ResilienceConfig] = None,
        faults: Optional[FaultPlan] = None,
        label: Optional[str] = None,
    ):
        cluster = build_cluster(
            ClusterConfig(num_servers=num_servers, processors=processors,
                          seed=seed, time_scale=time_scale),
            resilience=resilience,
            faults=faults,
            autoscale=autoscale,
        )
        config = config or StageflowConfig()
        mode = "autoscale" if autoscale is not None else "fixed"
        super().__init__(
            cluster.runtime, time_scale,
            label or f"stageflow({config.curve}, {config.policy}, {mode})",
        )
        self.cluster: Cluster = cluster
        self.controller = cluster.autoscale
        self.injector: Optional[FaultInjector] = cluster.injector
        self.num_servers = num_servers
        # Construct before cluster.start(): pools must be registered
        # when the controller derives its replicas-per-silo ratios.
        self.workload = StageflowWorkload(cluster.runtime, config,
                                          autoscale=cluster.autoscale)
        self._started = False

    def start(self) -> "StageflowExperiment":
        """Arm the cluster (parks surplus silos under autoscale), then
        deploy the pools over the resulting live set."""
        if not self._started:
            self._started = True
            self.cluster.start()
            self.workload.start()
        return self

    def measure_window(self, start: float, end: float) -> ExperimentResult:
        """Run to absolute time ``start``, reset stats, measure to ``end``."""
        self.start()
        return self._measure(start, end - start)

    def silo_seconds(self) -> float:
        """Provisioned capacity so far: powered-silo-seconds (the study's
        cost metric; the fixed baseline pays the full fleet throughout)."""
        if self.controller is not None:
            self.controller._account()
            return self.controller.silo_seconds
        return self.num_servers * self.runtime.sim.now


class CounterExperiment(_ExperimentBase):
    """One single-server counter run (§3 / Figs. 4-5)."""

    def __init__(
        self,
        request_rate: float = 15_000.0,
        actors: int = 8_000,
        threads: Optional[dict[str, int]] = None,
        seed: int = 7,
        time_scale: float = COUNTER_TIME_SCALE,
        resilience: Optional[ResilienceConfig] = None,
        faults: Optional[FaultPlan] = None,
        label: Optional[str] = None,
    ):
        cluster = build_cluster(
            ClusterConfig(num_servers=1, seed=seed, time_scale=time_scale),
            resilience=resilience,
            faults=faults,
        )
        super().__init__(
            cluster.runtime, time_scale,
            label or f"counter(rate={request_rate:.0f})"
        )
        self.cluster: Cluster = cluster
        self.actop: Optional[ActOp] = cluster.actop
        self.injector: Optional[FaultInjector] = cluster.injector
        self.workload = CounterWorkload(
            cluster.runtime,
            CounterConfig(num_actors=actors, request_rate=request_rate / time_scale),
        )
        if threads:
            cluster.runtime.silos[0].server.apply_allocation(threads)

    def run(self, warmup: float = 10.0, duration: float = 20.0,
            cdf_points: int = 0) -> ExperimentResult:
        self.workload.start()
        self.cluster.start()
        return self._measure(warmup, duration, cdf_points=cdf_points)
