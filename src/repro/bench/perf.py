"""Performance microbenchmarks behind ``repro perf``.

Every perf-focused PR should land with before/after numbers from this
suite.  It measures the three layers of the simulation hot path in
isolation plus end-to-end:

* ``event_loop``       — raw engine throughput: chains of self-
  rescheduling callbacks (schedule + heap pop per event).
* ``cancellation``     — the timeout-timer storm: every fired event also
  schedules-and-cancels a far-future timer, the pattern the actor
  server's per-call timeouts produce.  Exercises slab cancellation and
  heap self-compaction.
* ``stage_pipeline``   — the SEDA stage -> CpuPool -> stage work-item
  cycle (two stages over a shared 8-core pool).
* ``histogram``        — streaming :class:`HistogramRecorder` record
  throughput vs the reservoir recorder.
* ``halo_end_to_end``  — a small seeded Halo cluster; reports simulator
  events per wall-clock second, the number the Fig.-10 benches are
  bounded by.
* ``spacesaving``      — weighted offers into the Space-Saving summary
  under constant eviction pressure, for both the dict reference and the
  array backend; ``extras`` reports the final heap length, the direct
  witness of the offer() heap-churn fix.

Every benchmark result carries ``peak_rss_bytes`` (process peak at the
end of the run, via ``resource.getrusage``) and ``alloc_blocks_delta``
(``sys.getallocatedblocks`` across the run) so BENCH_*.json captures the
memory trajectory alongside throughput; the actor-count scaling curve
with per-point RSS lives in :mod:`repro.bench.scale` behind
``repro perf --scaling``.

All benchmarks are deterministic in *simulated* behaviour (fixed seeds);
only wall-clock throughput varies between machines.  Results are emitted
as machine-readable JSON (see :func:`run_suite`) so successive runs can
be diffed:

    PYTHONPATH=src python -m repro perf --json perf.json
    PYTHONPATH=src python -m repro perf --smoke        # CI-sized run

An opt-in cProfile hook (``--profile DIR``) dumps per-benchmark pstats
files for drill-down.
"""

from __future__ import annotations

import cProfile
import json
import platform
import resource
import sys
import time
from typing import Any, Callable, Optional

from ..sim.engine import Simulator

__all__ = ["BENCHMARKS", "run_benchmark", "run_suite", "render_results"]


# ----------------------------------------------------------------------
# Individual benchmarks.  Each returns (units_done, wall_seconds, extras).
# ----------------------------------------------------------------------
def bench_event_loop(events: int = 200_000, chains: int = 100) -> tuple[int, float, dict]:
    sim = Simulator()
    fired = [0]

    def tick(i: int) -> None:
        fired[0] += 1
        if fired[0] < events:
            sim.schedule(0.001, tick, i)

    for i in range(chains):
        sim.schedule(0.001 * (i + 1), tick, i)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return fired[0], elapsed, {"chains": chains}


def bench_cancellation(events: int = 100_000) -> tuple[int, float, dict]:
    sim = Simulator()
    fired = [0]
    noop = lambda: None  # noqa: E731

    def tick() -> None:
        fired[0] += 1
        timer = sim.schedule(10.0, noop)  # per-call timeout timer ...
        timer.cancel()                    # ... almost always cancelled
        if fired[0] < events:
            sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return fired[0], elapsed, {"final_queue_size": sim.queue_size()}


def bench_stage_pipeline(items: int = 100_000) -> tuple[int, float, dict]:
    from ..seda.stage import Stage
    from ..sim.cpu import CpuPool

    sim = Simulator()
    cpu = CpuPool(sim, processors=8)
    first = Stage(sim, cpu, "first", threads=4)
    second = Stage(sim, cpu, "second", threads=4)
    done = [0]

    def forward(event) -> None:
        second.submit(1e-5, finish)

    def finish(event) -> None:
        done[0] += 1
        if done[0] < items:
            first.submit(1e-5, forward)

    for _ in range(32):
        first.submit(1e-5, forward)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return done[0], elapsed, {"stages": 2, "processors": 8}


def bench_histogram(samples: int = 500_000) -> tuple[int, float, dict]:
    from .metrics import HistogramRecorder

    hist = HistogramRecorder()
    # Deterministic pseudo-latencies spanning ~3 decades.
    values = [1e-4 * (1.0 + (i * 2654435761 % 1000) / 100.0) for i in range(4096)]
    start = time.perf_counter()
    record = hist.record
    for i in range(samples):
        record(values[i & 4095])
    elapsed = time.perf_counter() - start
    return samples, elapsed, {
        "buckets": hist.num_buckets,
        "p99": hist.p99,
    }


def bench_halo_end_to_end(
    players: int = 200, servers: int = 4, horizon: float = 20.0
) -> tuple[int, float, dict]:
    from .harness import HaloExperiment

    exp = HaloExperiment(players=players, num_servers=servers, seed=1)
    exp.workload.start()
    start = time.perf_counter()
    exp.runtime.run(until=horizon)
    elapsed = time.perf_counter() - start
    events = exp.runtime.sim.events_processed
    return events, elapsed, {
        "players": players,
        "servers": servers,
        "requests": exp.runtime.requests_completed,
    }


def bench_spacesaving(offers: int = 300_000, capacity: int = 256
                      ) -> tuple[int, float, dict]:
    from ..graph.arrayback import ArraySpaceSaving
    from ..graph.spacesaving import SpaceSaving

    # Deterministic key stream over 16x capacity distinct keys: steady
    # mix of in-place increments (the churn-fix path) and evictions.
    keys = [(i * 2654435761) % (capacity * 16) for i in range(8192)]

    def drive(summary):
        offer = summary.offer
        start = time.perf_counter()
        for i in range(offers):
            offer(keys[i & 8191], 1.5)
        return time.perf_counter() - start

    dict_summary = SpaceSaving(capacity)
    dict_seconds = drive(dict_summary)
    array_summary = ArraySpaceSaving(capacity)
    array_seconds = drive(array_summary)
    return offers, dict_seconds, {
        "capacity": capacity,
        # Pre-fix this was ~offers long (one push per increment);
        # post-fix it stays O(capacity).
        "dict_final_heap_len": len(dict_summary._heap),
        "array_final_heap_len": len(array_summary._heap),
        "array_rate_per_sec": round(offers / array_seconds, 1)
        if array_seconds > 0 else 0.0,
    }


# name -> (callable, full kwargs, smoke kwargs)
BENCHMARKS: dict[str, tuple[Callable[..., tuple[int, float, dict]], dict, dict]] = {
    "event_loop": (bench_event_loop, {"events": 200_000}, {"events": 20_000}),
    "cancellation": (bench_cancellation, {"events": 100_000}, {"events": 10_000}),
    "stage_pipeline": (bench_stage_pipeline, {"items": 100_000}, {"items": 10_000}),
    "histogram": (bench_histogram, {"samples": 500_000}, {"samples": 50_000}),
    "halo_end_to_end": (
        bench_halo_end_to_end,
        {"players": 200, "horizon": 20.0},
        {"players": 100, "horizon": 5.0},
    ),
    "spacesaving": (
        bench_spacesaving,
        {"offers": 300_000},
        {"offers": 30_000},
    ),
}


def _peak_rss_bytes() -> int:
    scale = 1024 if sys.platform != "darwin" else 1
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * scale


def run_benchmark(
    name: str,
    smoke: bool = False,
    repeat: int = 3,
    profile_dir: Optional[str] = None,
) -> dict[str, Any]:
    """Run one benchmark ``repeat`` times; report the best rate.

    Best-of-N is the standard microbenchmark reduction: it filters out
    scheduler noise, which only ever slows a run down.
    """
    fn, full_kwargs, smoke_kwargs = BENCHMARKS[name]
    kwargs = smoke_kwargs if smoke else full_kwargs
    runs = []
    extras: dict = {}
    alloc_before = sys.getallocatedblocks()
    for i in range(max(1, repeat)):
        if profile_dir is not None and i == 0:
            profiler = cProfile.Profile()
            profiler.enable()
            units, seconds, extras = fn(**kwargs)
            profiler.disable()
            import os

            os.makedirs(profile_dir, exist_ok=True)
            profiler.dump_stats(os.path.join(profile_dir, f"{name}.pstats"))
        else:
            units, seconds, extras = fn(**kwargs)
        runs.append({"units": units, "seconds": seconds,
                     "rate": units / seconds if seconds > 0 else 0.0})
    best = max(runs, key=lambda r: r["rate"])
    return {
        "name": name,
        "params": kwargs,
        "repeat": len(runs),
        "units": best["units"],
        "seconds": round(best["seconds"], 6),
        "rate_per_sec": round(best["rate"], 1),
        "all_rates_per_sec": [round(r["rate"], 1) for r in runs],
        # Memory trajectory (satellite of the 1M-actor work): process
        # peak is monotone across the suite, so compare points across
        # runs of the SAME suite order, or run --only <name>.
        "peak_rss_bytes": _peak_rss_bytes(),
        "alloc_blocks_delta": sys.getallocatedblocks() - alloc_before,
        "extras": extras,
    }


def run_suite(
    smoke: bool = False,
    repeat: int = 3,
    only: Optional[list[str]] = None,
    profile_dir: Optional[str] = None,
) -> dict[str, Any]:
    """Run the whole suite; returns a JSON-serializable result document."""
    names = list(BENCHMARKS) if not only else [n for n in only if n in BENCHMARKS]
    if only:
        unknown = set(only) - set(BENCHMARKS)
        if unknown:
            raise ValueError(f"unknown benchmark(s): {sorted(unknown)}")
    results = [run_benchmark(n, smoke=smoke, repeat=repeat, profile_dir=profile_dir)
               for n in names]
    return {
        "schema": 2,
        "mode": "smoke" if smoke else "full",
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "benchmarks": {r["name"]: r for r in results},
    }


def render_results(doc: dict[str, Any]) -> str:
    """Human-readable companion to the JSON document."""
    from .reporting import render_table

    rows = []
    for name, r in doc["benchmarks"].items():
        rows.append([
            name,
            f"{r['units']:,}",
            r["seconds"],
            f"{r['rate_per_sec']:,.0f}",
        ])
    return render_table(
        ["benchmark", "units", "best seconds", "units/sec"],
        rows,
        title=f"repro perf ({doc['mode']}) — python {doc['python']}",
        floatfmt=".4f",
    )


def main_json(doc: dict[str, Any]) -> str:
    return json.dumps(doc, indent=2, sort_keys=True)
