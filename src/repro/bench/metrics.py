"""Measurement utilities: latency recorders, time series, counters.

The paper reports medians, 95th/99th percentiles and CDFs of end-to-end
latency (Figs. 10–11), plus time series of remote-message share and actor
movements (Fig. 10a).  These helpers collect exactly those, with an
optional reservoir cap so multi-minute simulations stay in memory.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Optional, Sequence

__all__ = ["LatencyRecorder", "TimeSeries", "percentile"]


def percentile(samples: Sequence[float], q: float) -> float:
    """q-th percentile (q in [0, 100]) by linear interpolation.

    Mirrors numpy's default so tests can cross-check, without forcing the
    hot path through numpy conversions.
    """
    if not samples:
        raise ValueError("no samples")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    data = sorted(samples)
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return data[lo]
    frac = rank - lo
    return data[lo] * (1 - frac) + data[hi] * frac


class LatencyRecorder:
    """Collects latency samples; answers mean / percentile / CDF queries.

    Args:
        reservoir: if set, keep at most this many samples via uniform
            reservoir sampling (Vitter's algorithm R).  Mean and count stay
            exact; percentiles become estimates — fine at the reservoir
            sizes used by the benches (>= 50k).
        seed: reservoir RNG seed, for reproducibility.
    """

    def __init__(self, reservoir: Optional[int] = None, seed: int = 0):
        self._samples: list[float] = []
        self._reservoir = reservoir
        self._rng = random.Random(seed)
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative latency {value}")
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value
        if self._reservoir is None or len(self._samples) < self._reservoir:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._reservoir:
                self._samples[slot] = value

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        return percentile(self._samples, q)

    @property
    def median(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def cdf(self, points: int = 100) -> list[tuple[float, float]]:
        """Return (latency, cumulative fraction) pairs."""
        if not self._samples:
            return []
        data = sorted(self._samples)
        n = len(data)
        step = max(1, n // points)
        out = [(data[i], (i + 1) / n) for i in range(0, n, step)]
        if out[-1][0] != data[-1]:
            out.append((data[-1], 1.0))
        return out

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's samples into this one."""
        for value in other._samples:
            self.record(value)

    def summary(self) -> dict[str, float]:
        """The row shape the paper's tables use."""
        if not self.count:
            return {"count": 0, "mean": 0.0, "median": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p95": self.p95,
            "p99": self.p99,
        }


class TimeSeries:
    """Ordered (time, value) samples, e.g. remote-message share over time."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("time series must be recorded in order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> float:
        if not self.values:
            raise ValueError("empty time series")
        return self.values[-1]

    def tail_mean(self, fraction: float = 0.5) -> float:
        """Mean of the last ``fraction`` of samples (steady-state value)."""
        if not self.values:
            raise ValueError("empty time series")
        start = int(len(self.values) * (1 - fraction))
        tail = self.values[start:]
        return sum(tail) / len(tail)

    def items(self) -> Iterable[tuple[float, float]]:
        return zip(self.times, self.values)
