"""Measurement utilities: latency recorders, time series, counters.

The paper reports medians, 95th/99th percentiles and CDFs of end-to-end
latency (Figs. 10–11), plus time series of remote-message share and actor
movements (Fig. 10a).  These helpers collect exactly those, with an
optional reservoir cap so multi-minute simulations stay in memory.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Optional, Sequence

__all__ = ["HistogramRecorder", "LatencyRecorder", "TimeSeries", "percentile"]


def percentile(samples: Sequence[float], q: float) -> float:
    """q-th percentile (q in [0, 100]) by linear interpolation.

    Mirrors numpy's default so tests can cross-check, without forcing the
    hot path through numpy conversions.
    """
    if not samples:
        raise ValueError("no samples")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    data = sorted(samples)
    if len(data) == 1:
        return data[0]
    rank = (q / 100.0) * (len(data) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return data[lo]
    frac = rank - lo
    return data[lo] * (1 - frac) + data[hi] * frac


class LatencyRecorder:
    """Collects latency samples; answers mean / percentile / CDF queries.

    Args:
        reservoir: if set, keep at most this many samples via uniform
            reservoir sampling (Vitter's algorithm R).  Mean and count stay
            exact; percentiles become estimates — fine at the reservoir
            sizes used by the benches (>= 50k).
        seed: reservoir RNG seed, for reproducibility.
    """

    def __init__(self, reservoir: Optional[int] = None, seed: int = 0):
        self._samples: list[float] = []
        self._reservoir = reservoir
        self._rng = random.Random(seed)
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative latency {value}")
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value
        if self._reservoir is None or len(self._samples) < self._reservoir:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._reservoir:
                self._samples[slot] = value

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        return percentile(self._samples, q)

    @property
    def median(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def cdf(self, points: int = 100) -> list[tuple[float, float]]:
        """Return (latency, cumulative fraction) pairs."""
        if not self._samples:
            return []
        data = sorted(self._samples)
        n = len(data)
        step = max(1, n // points)
        out = [(data[i], (i + 1) / n) for i in range(0, n, step)]
        if out[-1][0] != data[-1]:
            out.append((data[-1], 1.0))
        return out

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder into this one.

        ``count`` / ``total`` / ``max_value`` stay exact.  The merged
        reservoir is built by a weighted draw: each slot picks from one
        side with probability proportional to that side's *underlying*
        stream length, so the result is an (approximately) uniform sample
        of the union stream.  Replaying the other reservoir through
        :meth:`record` — the old behaviour — double-sampled the already
        down-sampled reservoir and skewed percentiles toward whichever
        side was merged last.
        """
        n1, n2 = self.count, other.count
        if n2 == 0:
            return
        self.count = n1 + n2
        self.total += other.total
        if other.max_value > self.max_value:
            self.max_value = other.max_value
        s1, s2 = self._samples, other._samples
        if n1 == 0:
            self._samples = list(s2)
            if self._reservoir is not None and len(self._samples) > self._reservoir:
                self._samples = self._rng.sample(self._samples, self._reservoir)
            return
        available = len(s1) + len(s2)
        target = available if self._reservoir is None else min(self._reservoir, available)
        # How many of the merged slots come from self's stream: binomial
        # draw with p = n1/(n1+n2), clamped so both sides can supply their
        # share.  When neither side was down-sampled the clamp forces
        # take1 == len(s1) and the merge is exact.
        p = n1 / (n1 + n2)
        rng = self._rng
        take1 = sum(1 for _ in range(target) if rng.random() < p)
        take1 = max(target - len(s2), min(take1, len(s1)))
        merged = rng.sample(s1, take1) + rng.sample(s2, target - take1)
        rng.shuffle(merged)  # keep future algorithm-R replacement uniform
        self._samples = merged

    def summary(self) -> dict[str, float]:
        """The row shape the paper's tables use."""
        if not self.count:
            return {"count": 0, "mean": 0.0, "median": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p95": self.p95,
            "p99": self.p99,
        }


class HistogramRecorder:
    """Mergeable log-bucketed streaming histogram (HDR-histogram style).

    Values are counted in geometrically spaced buckets: bucket ``i`` covers
    ``[min_value * g**(i-1), min_value * g**i)`` with growth factor
    ``g = 1 + max_relative_error``.  That makes :meth:`record` O(1) (one
    ``log`` and a dict increment), quantiles O(buckets), and memory
    proportional to the *dynamic range* of the data rather than the sample
    count — unlike :class:`LatencyRecorder`, which keeps (a reservoir of)
    raw samples and sorts them per percentile query.

    Two histograms with the same parameters merge exactly (bucket counts
    add), so per-silo or per-window histograms can be combined without
    bias; merge is associative and commutative on counts.

    Args:
        max_relative_error: bucket width as a fraction of the value;
            quantiles are accurate to within this relative error
            (default 1%).
        min_value: smallest distinguishable value; everything in
            ``[0, min_value)`` lands in the underflow bucket 0.
    """

    def __init__(self, max_relative_error: float = 0.01, min_value: float = 1e-7):
        if not 0 < max_relative_error < 1:
            raise ValueError("max_relative_error must be in (0, 1)")
        if min_value <= 0:
            raise ValueError("min_value must be positive")
        self.max_relative_error = max_relative_error
        self.min_value = min_value
        self._growth = 1.0 + max_relative_error
        self._inv_log_g = 1.0 / math.log(self._growth)
        self._log_min = math.log(min_value)
        self._buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0
        self.min_seen = math.inf

    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        """O(1): bucket the value and bump exact count/total/extrema."""
        if value < 0:
            raise ValueError(f"negative value {value}")
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value
        if value < self.min_seen:
            self.min_seen = value
        if value < self.min_value:
            index = 0
        else:
            index = 1 + int((math.log(value) - self._log_min) * self._inv_log_g)
        buckets = self._buckets
        buckets[index] = buckets.get(index, 0) + 1

    def _bucket_mid(self, index: int) -> float:
        if index <= 0:
            return self.min_value / 2.0
        lower = self.min_value * self._growth ** (index - 1)
        return lower * (1.0 + self._growth) / 2.0

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def num_buckets(self) -> int:
        return len(self._buckets)

    def percentile(self, q: float) -> float:
        """q-th percentile (q in [0, 100]) to within one bucket width."""
        return self._percentile_of(self._buckets, self.count, q)

    def _percentile_of(self, buckets: dict[int, int], count: int, q: float) -> float:
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        if count <= 0:
            raise ValueError("no samples")
        rank = (q / 100.0) * count
        cumulative = 0
        result = 0.0
        for index in sorted(buckets):
            cumulative += buckets[index]
            if cumulative >= rank:
                result = self._bucket_mid(index)
                break
        # Clamp to the observed range so extreme quantiles never report
        # values outside the data.
        lo = self.min_seen if self.min_seen is not math.inf else 0.0
        return min(max(result, lo), self.max_value)

    @property
    def median(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def summary(self) -> dict[str, float]:
        """Same row shape as :meth:`LatencyRecorder.summary`."""
        if not self.count:
            return {"count": 0, "mean": 0.0, "median": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p95": self.p95,
            "p99": self.p99,
        }

    # ------------------------------------------------------------------
    # Merging & windowed queries
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "HistogramRecorder") -> None:
        if (other.max_relative_error != self.max_relative_error
                or other.min_value != self.min_value):
            raise ValueError("cannot merge histograms with different bucketing")

    def merge(self, other: "HistogramRecorder") -> None:
        """Exact merge: bucket counts add; count/total/extrema stay exact."""
        self._check_compatible(other)
        buckets = self._buckets
        for index, c in other._buckets.items():
            buckets[index] = buckets.get(index, 0) + c
        self.count += other.count
        self.total += other.total
        if other.max_value > self.max_value:
            self.max_value = other.max_value
        if other.min_seen < self.min_seen:
            self.min_seen = other.min_seen

    def snapshot(self) -> tuple[int, dict[int, int]]:
        """Cheap copy of (count, bucket counts) for windowed diffs."""
        return self.count, dict(self._buckets)

    def percentile_since(self, snapshot: tuple[int, dict[int, int]], q: float) -> float:
        """Percentile of only the values recorded after ``snapshot``.

        This is what makes per-window percentile *time series* affordable:
        the sampler snapshots the histogram each tick and diffs counts,
        instead of sorting a window's worth of raw samples.
        """
        count0, buckets0 = snapshot
        delta = {}
        for index, c in self._buckets.items():
            d = c - buckets0.get(index, 0)
            if d > 0:
                delta[index] = d
        return self._percentile_of(delta, self.count - count0, q)


class TimeSeries:
    """Ordered (time, value) samples, e.g. remote-message share over time."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("time series must be recorded in order")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def last(self) -> float:
        if not self.values:
            raise ValueError("empty time series")
        return self.values[-1]

    def tail_mean(self, fraction: float = 0.5) -> float:
        """Mean of the last ``fraction`` of samples (steady-state value)."""
        if not self.values:
            raise ValueError("empty time series")
        start = int(len(self.values) * (1 - fraction))
        tail = self.values[start:]
        return sum(tail) / len(tail)

    def merge(self, other: "TimeSeries") -> None:
        """Exact merge: interleave ``other``'s samples by timestamp.

        Both series stay individually ordered, so a stable two-pointer
        merge preserves the in-order invariant; on timestamp ties
        ``self``'s sample precedes ``other``'s (merging per-silo series
        in silo order is therefore deterministic).  ``other`` is left
        untouched.
        """
        if not other.times:
            return
        if not self.times or self.times[-1] <= other.times[0]:
            # Common fast path: windows don't overlap, just append.
            self.times.extend(other.times)
            self.values.extend(other.values)
            return
        times: list[float] = []
        values: list[float] = []
        i = j = 0
        while i < len(self.times) and j < len(other.times):
            if self.times[i] <= other.times[j]:
                times.append(self.times[i])
                values.append(self.values[i])
                i += 1
            else:
                times.append(other.times[j])
                values.append(other.values[j])
                j += 1
        times.extend(self.times[i:])
        values.extend(self.values[i:])
        times.extend(other.times[j:])
        values.extend(other.values[j:])
        self.times = times
        self.values = values

    def items(self) -> Iterable[tuple[float, float]]:
        return zip(self.times, self.values)
