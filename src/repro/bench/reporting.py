"""Text rendering of paper-vs-measured tables for the bench output.

Each bench prints the series the paper's figure shows next to what the
reproduction measured, in a fixed-width table that survives pytest's
captured output and gets pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["render_table", "render_heatmap", "banner"]


def banner(title: str) -> str:
    line = "=" * max(64, len(title) + 4)
    return f"\n{line}\n  {title}\n{line}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    floatfmt: str = ".2f",
) -> str:
    """Render a fixed-width table."""

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(banner(title))
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_heatmap(
    row_labels: Sequence[object],
    col_labels: Sequence[object],
    values: Sequence[Sequence[float]],
    title: Optional[str] = None,
    row_title: str = "",
    col_title: str = "",
    floatfmt: str = ".1f",
) -> str:
    """Render a Fig.-5-style matrix of numbers."""
    lines = []
    if title:
        lines.append(banner(title))
    if col_title:
        lines.append(f"(rows: {row_title}, cols: {col_title})")
    width = max(
        6,
        *(len(format(v, floatfmt)) for row in values for v in row),
        *(len(str(c)) for c in col_labels),
    )
    head = " " * 8 + " ".join(str(c).rjust(width) for c in col_labels)
    lines.append(head)
    for label, row in zip(row_labels, values):
        cells = " ".join(format(v, floatfmt).rjust(width) for v in row)
        lines.append(f"{str(label):>7} {cells}")
    return "\n".join(lines)
