"""Periodic cluster sampling for time-series figures.

Fig. 10(a) plots the share of remote messages and the actor-movement rate
over time; Fig. 7 plots queue lengths and thread allocations.  The
samplers here attach to a running system and record windowed diffs of the
relevant monotone counters.
"""

from __future__ import annotations

from typing import Optional

from ..actor.runtime import ActorRuntime
from .metrics import TimeSeries

__all__ = ["ClusterSampler"]


class ClusterSampler:
    """Samples remote-message share, migrations, CPU, imbalance, and
    per-window latency percentiles.

    The latency series diff the runtime's streaming
    :class:`~repro.bench.metrics.HistogramRecorder` snapshots, so each
    window's median/p99 costs O(buckets) instead of sorting the window's
    raw samples.

    Args:
        runtime: the cluster under test.
        period: sampling window in simulated seconds.
    """

    def __init__(self, runtime: ActorRuntime, period: float = 5.0):
        if period <= 0:
            raise ValueError("period must be positive")
        self.runtime = runtime
        self.period = period
        self.remote_share = TimeSeries("remote_share")
        self.migrations_per_window = TimeSeries("migrations")
        self.cpu_utilization = TimeSeries("cpu")
        self.imbalance = TimeSeries("imbalance")
        self.latency_median = TimeSeries("latency_median")
        self.latency_p99 = TimeSeries("latency_p99")
        self._running = False
        self._last_local = 0
        self._last_remote = 0
        self._last_migrations = 0
        self._last_busy: Optional[list[float]] = None
        self._last_time = 0.0
        self._last_hist: Optional[tuple[int, dict[int, int]]] = None

    def start(self) -> None:
        self._running = True
        self._snapshot()
        self.runtime.sim.schedule(self.period, self._tick)

    def stop(self) -> None:
        self._running = False

    def _snapshot(self) -> None:
        self._last_local = self.runtime.msgs_local
        self._last_remote = self.runtime.msgs_remote
        self._last_migrations = self.runtime.migrations_total
        self._last_busy = self.runtime.cpu_busy_snapshot()
        self._last_time = self.runtime.sim.now
        self._last_hist = self.runtime.client_latency_hist.snapshot()

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.runtime.sim.now
        local = self.runtime.msgs_local - self._last_local
        remote = self.runtime.msgs_remote - self._last_remote
        total = local + remote
        self.remote_share.record(now, remote / total if total else 0.0)
        self.migrations_per_window.record(
            now, self.runtime.migrations_total - self._last_migrations
        )
        assert self._last_busy is not None
        self.cpu_utilization.record(
            now, self.runtime.mean_cpu_utilization(self._last_busy, self._last_time)
        )
        census = self.runtime.census()
        if census:
            self.imbalance.record(now, max(census.values()) - min(census.values()))
        hist = self.runtime.client_latency_hist
        if self._last_hist is not None and hist.count > self._last_hist[0]:
            self.latency_median.record(
                now, hist.percentile_since(self._last_hist, 50)
            )
            self.latency_p99.record(
                now, hist.percentile_since(self._last_hist, 99)
            )
        self._snapshot()
        self.runtime.sim.schedule(self.period, self._tick)
