"""Actor-count scaling bench: 10k → 1M actors on a 10-silo cluster.

The paper's headline configuration (§6) is ~10^6 player actors on 10
servers.  This module measures how the simulator holds up along that
axis: wall-clock for bootstrap and run, simulator throughput, and —
the number this repo's memory work is gated on — **peak RSS per
actor**, read from ``resource.getrusage``.

Two paper-scale workload switches are enabled for these points (both
opt-in, both deterministic, neither used by the pinned small-scale
digests): ``direct_bootstrap`` installs the initial games without
flooding t=0 with ~10^5 ``start_game`` fan-outs, and
``lazy_idle_pool`` keeps pooled players unactivated until matched.

Unlike the Fig.-10f bench (which scales load *with* population to show
per-actor overhead), the request rate here is held at the paper's
absolute level: the paper drives ~4K status requests/s against the
whole cluster whatever the population, so a 100× bigger population must
not mean a 100× bigger message load on the same 10 silos.

``peak_rss_bytes`` is process-lifetime peak, so a curve measured
in-process would attribute the 1M point's memory to the 10k point.
:func:`run_scaling_curve` therefore runs each point in a fresh
subprocess (``repro perf --scale-point N --json -``) by default.

Gate thresholds live here and are enforced both by ``repro perf
--scaling --gate`` (the CI scale-smoke job) and by
``benchmarks/perf/test_scaling_gate.py`` — RSS regressions fail CI
exactly like latency regressions do.
"""

from __future__ import annotations

import json
import os
import resource
import subprocess
import sys
import time
from typing import Any, Optional, Sequence

__all__ = [
    "DEFAULT_POINTS",
    "RSS_PER_ACTOR_GATE_BYTES",
    "gate_violations",
    "run_scale_point",
    "run_scaling_curve",
]

# ≲4 KB amortized per actor keeps the paper's 10^6-actor population
# within ~4 GB on one machine (acceptance criterion of the memory work;
# the seed tree measured ~3.3 KB/actor at 100k and could not reach 1M).
RSS_PER_ACTOR_GATE_BYTES = 4096

# 10k / 100k / 1M — the curve the EXPERIMENTS.md entry plots.
DEFAULT_POINTS = (10_000, 100_000, 1_000_000)

# Paper-absolute request load (§6.1: 2-6K req/s against the cluster).
PAPER_REQUEST_RATE = 4_000.0
SCALE_TIME_SCALE = 40.0  # same documented trick as bench.harness
SCALE_SEED = 1
SCALE_SERVERS = 10


def _peak_rss_bytes() -> int:
    # ru_maxrss is KiB on Linux (bytes on macOS, where getpagesize-based
    # code would be wrong anyway; the CI gate runs on Linux).
    scale = 1024 if sys.platform != "darwin" else 1
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * scale


def run_scale_point(
    actors: int,
    servers: int = SCALE_SERVERS,
    seed: int = SCALE_SEED,
    horizon: float = 30.0,
    request_rate: float = PAPER_REQUEST_RATE,
    time_scale: float = SCALE_TIME_SCALE,
) -> dict[str, Any]:
    """Run one seeded Halo population and measure it end to end."""
    from ..actor.runtime import ActorRuntime, ClusterConfig
    from ..workloads.halo import HaloConfig, HaloWorkload

    alloc_before = sys.getallocatedblocks()
    # Interpreter + import baseline, read before the cluster exists.  In
    # an isolated subprocess nothing heavy has run yet, so current peak
    # IS the baseline; the gate applies to what the actors add on top.
    baseline_rss = _peak_rss_bytes()
    runtime = ActorRuntime(ClusterConfig(
        num_servers=servers, seed=seed, time_scale=time_scale,
    ))
    config = HaloConfig(
        target_players=actors,
        pool_target=max(16, actors // 50),
        game_duration=(120.0, 180.0),
        request_rate=request_rate / time_scale,
        direct_bootstrap=True,
        lazy_idle_pool=True,
    )
    workload = HaloWorkload(runtime, config)

    boot_start = time.perf_counter()
    workload.start()
    boot_seconds = time.perf_counter() - boot_start

    run_start = time.perf_counter()
    runtime.run(until=horizon)
    run_seconds = time.perf_counter() - run_start

    peak_rss = _peak_rss_bytes()
    events = runtime.sim.events_processed
    activations = sum(len(silo.activations) for silo in runtime.silos)
    return {
        "actors": actors,
        "servers": servers,
        "seed": seed,
        "horizon_sim_s": horizon,
        "request_rate_full": request_rate,
        "time_scale": time_scale,
        "bootstrap_seconds": round(boot_seconds, 3),
        "run_seconds": round(run_seconds, 3),
        "wall_seconds": round(boot_seconds + run_seconds, 3),
        "events": events,
        "events_per_sec": round(events / run_seconds, 1) if run_seconds > 0 else 0.0,
        "activations": activations,
        "population": workload.population,
        "games_started": workload.games_started,
        "requests_issued": workload.requests_issued,
        "requests_completed": runtime.requests_completed,
        "idle_short_circuits": workload.idle_short_circuits,
        "peak_rss_bytes": peak_rss,
        "baseline_rss_bytes": baseline_rss,
        "rss_bytes_per_actor": round(peak_rss / actors, 1),
        "rss_delta_bytes_per_actor": round(
            max(0, peak_rss - baseline_rss) / actors, 1),
        "alloc_blocks_delta": sys.getallocatedblocks() - alloc_before,
    }


def gate_violations(point: dict[str, Any]) -> list[str]:
    """Threshold checks for one measured point; empty list = pass."""
    violations = []
    # Gate on the population's own footprint (peak minus interpreter
    # baseline): the ~60 MB a bare interpreter costs would swamp the
    # small points while being noise at 10^6 actors.
    delta = max(0, point["peak_rss_bytes"]
                - point.get("baseline_rss_bytes", 0))
    per_actor = delta / point["actors"]
    if per_actor > RSS_PER_ACTOR_GATE_BYTES:
        violations.append(
            f"{point['actors']:,} actors: {per_actor:,.0f} B/actor peak RSS "
            f"over baseline exceeds the {RSS_PER_ACTOR_GATE_BYTES} B gate"
        )
    return violations


def _run_point_subprocess(actors: int, horizon: float) -> dict[str, Any]:
    """Measure one point in a fresh interpreter for a clean RSS peak."""
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, "-m", "repro", "perf",
        "--scale-point", str(actors), "--horizon", str(horizon), "--json", "-",
    ]
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"scale point {actors} failed (exit {proc.returncode}): "
            f"{proc.stderr.strip()[-500:]}"
        )
    return json.loads(proc.stdout)["point"]


def run_scaling_curve(
    points: Optional[Sequence[int]] = None,
    horizon: float = 30.0,
    isolate: bool = True,
) -> dict[str, Any]:
    """Measure the full actor-count scaling curve.

    With ``isolate`` (default) each point runs in its own subprocess so
    ``peak_rss_bytes`` is that point's own peak; in-process mode exists
    for environments where spawning interpreters is unwelcome, and
    over-reports RSS for every point after the largest-so-far.
    """
    measured = []
    for actors in points or DEFAULT_POINTS:
        if isolate:
            point = _run_point_subprocess(actors, horizon)
        else:
            point = run_scale_point(actors, horizon=horizon)
        point["violations"] = gate_violations(point)
        measured.append(point)
    return {
        "schema": 2,
        "kind": "scaling",
        "gate_rss_bytes_per_actor": RSS_PER_ACTOR_GATE_BYTES,
        "isolated": isolate,
        "points": measured,
        "gate_passed": all(not p["violations"] for p in measured),
    }


def render_curve(doc: dict[str, Any]) -> str:
    from .reporting import render_table

    rows = []
    for p in doc["points"]:
        rows.append([
            f"{p['actors']:,}",
            f"{p['wall_seconds']:.1f}",
            f"{p['events']:,}",
            f"{p['events_per_sec']:,.0f}",
            f"{p['peak_rss_bytes'] / 2**20:,.0f}",
            f"{p['rss_delta_bytes_per_actor']:,.0f}",
            "FAIL" if p["violations"] else "ok",
        ])
    return render_table(
        ["actors", "wall s", "events", "events/s", "peak RSS MiB",
         "B/actor", f"gate ≤{doc['gate_rss_bytes_per_actor']}B"],
        rows,
        title="repro perf --scaling (10-silo seeded Halo)",
    )
