"""Measurement and benchmark-harness utilities.

The harness/sampler exports are loaded lazily (PEP 562): they depend on
the actor runtime, which itself uses :mod:`repro.bench.metrics`, and an
eager import here would close that cycle.
"""

from .metrics import HistogramRecorder, LatencyRecorder, TimeSeries, percentile
from .reporting import banner, render_heatmap, render_table

__all__ = [
    "ClusterSampler",
    "CounterExperiment",
    "ExperimentResult",
    "HALO_RATE_FULL",
    "HaloExperiment",
    "HeartbeatExperiment",
    "HistogramRecorder",
    "LatencyRecorder",
    "TimeSeries",
    "banner",
    "halo_partitioning_config",
    "halo_thread_config",
    "heartbeat_thread_config",
    "improvement",
    "percentile",
    "render_heatmap",
    "render_table",
]

_LAZY = {
    "ClusterSampler": "sampler",
    "CounterExperiment": "harness",
    "ExperimentResult": "harness",
    "HALO_RATE_FULL": "harness",
    "HaloExperiment": "harness",
    "HeartbeatExperiment": "harness",
    "halo_partitioning_config": "harness",
    "halo_thread_config": "harness",
    "heartbeat_thread_config": "harness",
    "improvement": "harness",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
