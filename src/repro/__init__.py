"""ActOp reproduction — "Optimizing Distributed Actor Systems for Dynamic
Interactive Services" (EuroSys 2016).

The package splits into the paper's contribution and its substrates:

* :mod:`repro.core` — ActOp itself: the distributed locality-aware actor
  partitioning algorithm (§4) and the model-driven SEDA thread-allocation
  optimizer (§5), plus the integrated :class:`~repro.core.ActOp` facade.
* :mod:`repro.actor` — an Orleans-like virtual-actor runtime (what the
  paper prototypes against), running on a discrete-event simulation.
* :mod:`repro.seda` — SEDA stages, the staged-server chassis, and the
  standalone pipeline emulator of §5.1.
* :mod:`repro.sim` — the simulation substrate: event engine, simulated
  processors with a run queue, network, deterministic RNG streams.
* :mod:`repro.graph` — communication graphs, Space-Saving edge sampling,
  generators, and the comparator partitioners (multilevel, Ja-Be-Ja).
* :mod:`repro.queueing` — M/M/1 / Jackson-network formulas.
* :mod:`repro.workloads` — Halo Presence, Heartbeat, the counter app,
  and Stageflow (an inference pipeline over actor pools).
* :mod:`repro.pools` — data-parallel actor pools: a router actor
  fronting N worker replicas with pluggable balancing policies.
* :mod:`repro.autoscale` — the elastic grow/shrink controller that adds
  or drains silos, resizes pools, and triggers ActOp rebalancing as one
  integrated plan; ``repro autoscale`` on the CLI.
* :mod:`repro.bench` — recorders and harness utilities.
* :mod:`repro.obs` — observability: causal tracing across the whole
  stack, structured runtime events, Chrome-trace/JSONL export, and
  trace-derived latency-breakdown analysis (``repro trace`` on the CLI).
* :mod:`repro.faults` — deterministic fault injection (silo crashes,
  partitions, link degradation, slow silos, directory staleness) and
  the client-side resilience policies (retry, deadlines, admission
  control with load shedding); ``repro faults`` on the CLI.
* :mod:`repro.analysis` — the hygiene toolchain: an AST lint pass over
  the tree's determinism/actor/API invariants and an opt-in runtime
  race sanitizer; ``repro lint`` on the CLI.
* :mod:`repro.backend` — one actor API, two engines: the deterministic
  simulator (``SimBackend``, the reference) and a real asyncio runtime
  (``AsyncioBackend``: task-group silos, TCP transport, wall-clock
  timers, supervision); select via ``build_cluster(backend=...)``.

The package ships a ``py.typed`` marker: the inline annotations are the
public typing surface.

Quickstart::

    from repro import ClusterConfig, ResilienceConfig, RetryPolicy, build_cluster
    cluster = build_cluster(
        ClusterConfig(num_servers=4),
        resilience=ResilienceConfig(call_timeout=0.5,
                                    retry=RetryPolicy(max_attempts=3)),
    )
    runtime = cluster.runtime
    # register actors, drive load, cluster.run(until=...) ...

See ``examples/quickstart.py`` for a complete runnable walk-through.
"""

from .analysis import LintReport, Sanitizer, lint_paths
from .autoscale import AutoscaleConfig, AutoscaleController
from .backend import (
    AsyncioBackend,
    Backend,
    BackendError,
    SimBackend,
    SupervisionPolicy,
)
from .actor import (
    Actor,
    ActorCrashed,
    ActorError,
    ActorId,
    ActorRef,
    ActorRuntime,
    All,
    Call,
    CallTimeout,
    ClusterConfig,
    RequestShed,
    SerializationModel,
    Sleep,
    Tell,
    idempotent,
)
from .bench.metrics import (
    HistogramRecorder,
    LatencyRecorder,
    TimeSeries,
    percentile,
)
from .cluster import Cluster, build_cluster
from .core import (
    ActOp,
    ActOpConfig,
    ModelBasedController,
    OfflinePartitioner,
    PartitionAgent,
    PartitioningConfig,
    QueueLengthController,
    ThreadAllocationProblem,
    ThreadControllerConfig,
)
from .faults import (
    AdmissionConfig,
    FaultInjector,
    FaultPlan,
    ResilienceConfig,
    RetryPolicy,
)
from .obs import (
    EventLog,
    Observability,
    Span,
    TraceContext,
    Tracer,
    chrome_trace_document,
)
from .pools import ActorPool, DpaPolicy, RouterActor, make_policy
from .seda import Stage, StagedServer, StageEvent, StageStats, StatsWindow
from .sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "ActOp",
    "ActOpConfig",
    "Actor",
    "ActorCrashed",
    "ActorError",
    "ActorId",
    "ActorRef",
    "ActorPool",
    "ActorRuntime",
    "AdmissionConfig",
    "All",
    "AsyncioBackend",
    "AutoscaleConfig",
    "AutoscaleController",
    "Backend",
    "BackendError",
    "Call",
    "CallTimeout",
    "Cluster",
    "ClusterConfig",
    "DpaPolicy",
    "EventLog",
    "FaultInjector",
    "FaultPlan",
    "HistogramRecorder",
    "LatencyRecorder",
    "LintReport",
    "ModelBasedController",
    "Observability",
    "OfflinePartitioner",
    "PartitionAgent",
    "PartitioningConfig",
    "QueueLengthController",
    "RequestShed",
    "ResilienceConfig",
    "RetryPolicy",
    "RouterActor",
    "Sanitizer",
    "SerializationModel",
    "SimBackend",
    "Simulator",
    "Sleep",
    "Span",
    "Stage",
    "StageEvent",
    "StageStats",
    "StagedServer",
    "StatsWindow",
    "SupervisionPolicy",
    "Tell",
    "ThreadAllocationProblem",
    "ThreadControllerConfig",
    "TimeSeries",
    "TraceContext",
    "Tracer",
    "build_cluster",
    "chrome_trace_document",
    "idempotent",
    "lint_paths",
    "make_policy",
    "percentile",
    "__version__",
]
