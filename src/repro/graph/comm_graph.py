"""Weighted undirected communication graphs.

The partitioning problem of §4.1 is defined over a graph whose vertices
are actors and whose edge weights are proportional to the message rate
between a pair of actors.  This module gives the offline representation
used by the synthetic-graph studies, the comparator partitioners, and the
property tests; the *online* per-server view lives in
:mod:`repro.core.partitioning` and is fed by Space-Saving samples.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

__all__ = ["CommGraph"]

Vertex = Hashable


class CommGraph:
    """An undirected weighted graph stored as nested adjacency dicts."""

    def __init__(self) -> None:
        self._adj: dict[Vertex, dict[Vertex, float]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        self._adj.setdefault(v, {})

    def add_edge(self, u: Vertex, v: Vertex, weight: float = 1.0) -> None:
        """Add ``weight`` to the edge (u, v); creates vertices as needed."""
        if u == v:
            raise ValueError("self-loops are not meaningful here")
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        self._adj.setdefault(u, {})
        self._adj.setdefault(v, {})
        self._adj[u][v] = self._adj[u].get(v, 0.0) + weight
        self._adj[v][u] = self._adj[v].get(u, 0.0) + weight

    def remove_vertex(self, v: Vertex) -> None:
        for u in self._adj.pop(v, {}):
            del self._adj[u][v]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def neighbors(self, v: Vertex) -> dict[Vertex, float]:
        """The neighbor->weight map of ``v`` (do not mutate)."""
        return self._adj[v]

    def weight(self, u: Vertex, v: Vertex) -> float:
        return self._adj.get(u, {}).get(v, 0.0)

    def degree(self, v: Vertex) -> float:
        """Weighted degree: sum of incident edge weights."""
        return sum(self._adj[v].values())

    def edges(self) -> Iterator[tuple[Vertex, Vertex, float]]:
        """Each undirected edge once, as (u, v, weight)."""
        seen: set[Vertex] = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if v not in seen:
                    yield (u, v, w)
            seen.add(u)

    def total_weight(self) -> float:
        return sum(w for _, _, w in self.edges())

    def subgraph(self, keep: Iterable[Vertex]) -> "CommGraph":
        # Insertion-ordered membership set: the subgraph's vertex order
        # follows the caller's order, not hash order.
        keep_set = dict.fromkeys(keep)
        sub = CommGraph()
        for v in keep_set:
            if v in self._adj:
                sub.add_vertex(v)
        for u, v, w in self.edges():
            if u in keep_set and v in keep_set:
                sub.add_edge(u, v, w)
        return sub

    def copy(self) -> "CommGraph":
        clone = CommGraph()
        clone._adj = {v: dict(nbrs) for v, nbrs in self._adj.items()}
        return clone

    def merge(self, other: "CommGraph") -> None:
        """Fold another graph's vertices and edge weights into this one."""
        for v in other.vertices():
            self.add_vertex(v)
        for u, v, w in other.edges():
            self.add_edge(u, v, w)
