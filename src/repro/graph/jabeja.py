"""Ja-Be-Ja: distributed balanced partitioning by color swaps.

Rahimian et al. (SASO 2013) — the paper's closest related work ([30],
§4.1/§7).  Every vertex holds a color (its server); pairs of vertices
*swap* colors when the swap increases the number of same-color neighbors,
with simulated annealing to escape local optima.  Because only swaps
happen, balance is preserved exactly — but each swap is an object-level
exchange, which is precisely the unbatched per-vertex coordination the
paper argues does not scale to rapidly changing graphs.

This implementation is used by the ablation bench to compare convergence
behavior (swaps executed vs. cut achieved) against ActOp's server-level
batched exchanges.
"""

from __future__ import annotations

import random
from typing import Hashable, Optional

from .comm_graph import CommGraph

__all__ = ["jabeja_partition", "JabejaResult"]

Vertex = Hashable


class JabejaResult:
    """Outcome of a Ja-Be-Ja run."""

    def __init__(self, assignment: dict[Vertex, int], swaps: int, rounds: int):
        self.assignment = assignment
        self.swaps = swaps
        self.rounds = rounds


def _color_degree(graph: CommGraph, assignment: dict[Vertex, int], v: Vertex,
                  color: int) -> float:
    return sum(w for u, w in graph.neighbors(v).items() if assignment[u] == color)


def jabeja_partition(
    graph: CommGraph,
    parts: int,
    rounds: int = 100,
    alpha: float = 2.0,
    temperature: float = 2.0,
    cooling: float = 0.01,
    sample_size: int = 3,
    rng: Optional[random.Random] = None,
    initial: Optional[dict[Vertex, int]] = None,
) -> JabejaResult:
    """Run Ja-Be-Ja color swapping.

    Args:
        graph: the communication graph.
        parts: number of colors (servers).
        rounds: sweeps over all vertices.
        alpha: utility exponent (the paper's recommended 2).
        temperature: initial annealing temperature (>= 1).
        cooling: temperature decrement per round (floors at 1.0).
        sample_size: random (non-neighbor) partner candidates per vertex.
        rng: randomness source.
        initial: starting colors; defaults to balanced round-robin over a
            shuffled vertex order (the random placement baseline).

    Returns:
        :class:`JabejaResult` with the final assignment and swap count.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    rng = rng or random.Random(0)
    vertices = list(graph.vertices())
    if initial is None:
        shuffled = vertices[:]
        rng.shuffle(shuffled)
        assignment = {v: i % parts for i, v in enumerate(shuffled)}
    else:
        assignment = dict(initial)

    swaps = 0
    temp = temperature
    for round_no in range(rounds):
        order = vertices[:]
        rng.shuffle(order)
        for v in order:
            cv = assignment[v]
            partners = list(graph.neighbors(v))
            partners.extend(rng.choice(vertices) for _ in range(sample_size))
            best_partner, best_score = None, 0.0
            dv_own = _color_degree(graph, assignment, v, cv)
            for u in partners:
                cu = assignment[u]
                if cu == cv or u == v:
                    continue
                du_own = _color_degree(graph, assignment, u, cu)
                old = dv_own**alpha + du_own**alpha
                dv_new = _color_degree(graph, assignment, v, cu)
                du_new = _color_degree(graph, assignment, u, cv)
                # Color swap changes (v,u) adjacency bookkeeping for the
                # pair itself; exclude the mutual edge, as in the paper.
                shared = graph.weight(v, u)
                if shared:
                    dv_new -= shared
                    du_new -= shared
                new = dv_new**alpha + du_new**alpha
                score = new * temp - old
                if score > best_score:
                    best_partner, best_score = u, score
            if best_partner is not None:
                assignment[v], assignment[best_partner] = (
                    assignment[best_partner],
                    assignment[v],
                )
                swaps += 1
        temp = max(1.0, temp - cooling)
    return JabejaResult(assignment, swaps, rounds)
