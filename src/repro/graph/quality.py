"""Partition-quality metrics: cut cost and balance.

§4.1 defines the objective: minimize the total weight C of edges crossing
partitions, subject to the balance constraint ``||Vp| - |Vq|| <= delta``
for every pair of servers.  These functions evaluate any assignment
against that objective; they are used by the comparator benches and by
the Theorem-1 property tests.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Mapping

from .comm_graph import CommGraph

__all__ = [
    "cut_cost",
    "partition_sizes",
    "max_imbalance",
    "is_balanced",
    "remote_fraction",
]

Vertex = Hashable


def cut_cost(graph: CommGraph, assignment: Mapping[Vertex, int]) -> float:
    """Total weight of edges whose endpoints sit on different servers (C)."""
    total = 0.0
    for u, v, w in graph.edges():
        if assignment[u] != assignment[v]:
            total += w
    return total


def partition_sizes(assignment: Mapping[Vertex, int]) -> dict[int, int]:
    """Vertices per server."""
    return dict(Counter(assignment.values()))


def max_imbalance(assignment: Mapping[Vertex, int], num_servers: int) -> int:
    """max_p |Vp| - min_p |Vq| over all servers (empty servers count as 0)."""
    sizes = partition_sizes(assignment)
    counts = [sizes.get(p, 0) for p in range(num_servers)]
    return max(counts) - min(counts)


def is_balanced(assignment: Mapping[Vertex, int], num_servers: int, delta: int) -> bool:
    """The paper's balance constraint: every pairwise gap <= delta."""
    return max_imbalance(assignment, num_servers) <= delta


def remote_fraction(graph: CommGraph, assignment: Mapping[Vertex, int]) -> float:
    """Fraction of communication weight that crosses servers.

    This is the quantity Fig. 10(a) tracks over time (~0.9 random,
    ~0.12 after ActOp converges).
    """
    total = graph.total_weight()
    if total == 0:
        return 0.0
    return cut_cost(graph, assignment) / total
