"""Synthetic communication-graph generators.

The partitioning algorithm is exercised on graph families chosen to match
the paper's workloads and stress cases:

* :func:`clustered_graph` — the Halo-Presence shape: dense small clusters
  (a game and its players) with optional sparse inter-cluster chatter.
* :func:`ring_of_cliques` — a classic partitioning benchmark with a known
  optimal cut.
* :func:`random_graph` — Erdős–Rényi noise, the worst case for locality.
* :func:`power_law_graph` — preferential attachment, modeling social-
  network hub actors.
* :func:`grid_graph` — planar locality, as in spatial game worlds.
"""

from __future__ import annotations

import random
from typing import Optional

from .comm_graph import CommGraph

__all__ = [
    "clustered_graph",
    "ring_of_cliques",
    "random_graph",
    "power_law_graph",
    "grid_graph",
]


def clustered_graph(
    num_clusters: int,
    cluster_size: int,
    intra_weight: float = 10.0,
    inter_edges_per_cluster: int = 2,
    inter_weight: float = 1.0,
    rng: Optional[random.Random] = None,
    hub_and_spoke: bool = True,
    graph_factory=CommGraph,
) -> CommGraph:
    """Clusters of heavily-communicating vertices, lightly cross-linked.

    With ``hub_and_spoke`` (the Halo shape) each cluster has a hub (the
    game actor) connected to every member (players) — matching the
    player -> game -> broadcast pattern of §3.  Otherwise clusters are
    cliques.
    """
    if num_clusters < 1 or cluster_size < 2:
        raise ValueError("need >= 1 cluster of size >= 2")
    rng = rng or random.Random(0)
    graph = graph_factory()
    clusters: list[list[int]] = []
    next_id = 0
    for _ in range(num_clusters):
        members = list(range(next_id, next_id + cluster_size))
        next_id += cluster_size
        clusters.append(members)
        if hub_and_spoke:
            hub = members[0]
            for member in members[1:]:
                graph.add_edge(hub, member, intra_weight)
        else:
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    graph.add_edge(u, v, intra_weight)
    if num_clusters > 1 and inter_edges_per_cluster > 0:
        for ci, members in enumerate(clusters):
            for _ in range(inter_edges_per_cluster):
                cj = rng.randrange(num_clusters - 1)
                if cj >= ci:
                    cj += 1
                u = rng.choice(members)
                v = rng.choice(clusters[cj])
                graph.add_edge(u, v, inter_weight)
    return graph


def ring_of_cliques(num_cliques: int, clique_size: int, bridge_weight: float = 1.0,
                    clique_weight: float = 5.0,
                    graph_factory=CommGraph) -> CommGraph:
    """Cliques joined in a ring by single light edges.

    The optimal n-way cut (n dividing num_cliques) cuts only bridge
    edges, which gives property tests an exact target.
    """
    if num_cliques < 2 or clique_size < 2:
        raise ValueError("need >= 2 cliques of size >= 2")
    graph = graph_factory()
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                graph.add_edge(base + i, base + j, clique_weight)
    for c in range(num_cliques):
        u = c * clique_size
        v = ((c + 1) % num_cliques) * clique_size + clique_size // 2
        graph.add_edge(u, v, bridge_weight)
    return graph


def random_graph(
    n: int,
    mean_degree: float = 4.0,
    weight_range: tuple[float, float] = (1.0, 5.0),
    rng: Optional[random.Random] = None,
    graph_factory=CommGraph,
) -> CommGraph:
    """Erdős–Rényi G(n, m) with uniform random weights."""
    if n < 2:
        raise ValueError("need at least two vertices")
    rng = rng or random.Random(0)
    graph = graph_factory()
    for v in range(n):
        graph.add_vertex(v)
    m = int(n * mean_degree / 2)
    lo, hi = weight_range
    added = 0
    while added < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or graph.weight(u, v) > 0:
            continue
        graph.add_edge(u, v, rng.uniform(lo, hi))
        added += 1
    return graph


def power_law_graph(
    n: int,
    attach: int = 2,
    rng: Optional[random.Random] = None,
    graph_factory=CommGraph,
) -> CommGraph:
    """Barabási–Albert preferential attachment (hub-heavy degree law)."""
    if n < attach + 1:
        raise ValueError("need n > attach")
    rng = rng or random.Random(0)
    graph = graph_factory()
    targets = list(range(attach + 1))
    for i in range(attach + 1):
        for j in range(i + 1, attach + 1):
            graph.add_edge(i, j, 1.0)
    # repeated-endpoint list implements preferential attachment
    endpoint_pool: list[int] = []
    for u, v, _ in graph.edges():
        endpoint_pool.extend((u, v))
    for v in range(attach + 1, n):
        chosen: set[int] = set()
        while len(chosen) < attach:
            chosen.add(rng.choice(endpoint_pool))
        for u in sorted(chosen):
            graph.add_edge(v, u, 1.0)
            endpoint_pool.extend((v, u))
    return graph


def grid_graph(rows: int, cols: int, weight: float = 1.0,
               graph_factory=CommGraph) -> CommGraph:
    """A rows x cols 4-neighbor mesh."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    graph = graph_factory()
    def vid(r: int, c: int) -> int:
        return r * cols + c
    for r in range(rows):
        for c in range(cols):
            graph.add_vertex(vid(r, c))
            if r + 1 < rows:
                graph.add_edge(vid(r, c), vid(r + 1, c), weight)
            if c + 1 < cols:
                graph.add_edge(vid(r, c), vid(r, c + 1), weight)
    return graph
