"""Centralized multilevel balanced k-way partitioner (METIS stand-in).

§4.1 rules out the centralized design route ("collecting all the data in
one location ... does not scale; METIS ... required several hours"), but
the paper still uses it as the quality yardstick.  This module is our
from-scratch equivalent: the classic three-phase multilevel scheme

1. **Coarsen** by heavy-edge matching until the graph is small,
2. **Initial partition** by greedy balanced assignment, and
3. **Uncoarsen + refine** with boundary Kernighan–Lin/FM passes,

operating on the full graph in one address space.  The ablation bench
(`benchmarks/test_ablation_partitioners.py`) uses it to contextualize the
distributed algorithm's cut quality and to demonstrate the centralized
running-time blowup with graph size.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Hashable, Mapping, Optional

from .comm_graph import CommGraph

__all__ = ["multilevel_partition"]

Vertex = Hashable


def _heavy_edge_matching(
    graph: CommGraph, vweights: Mapping[Vertex, int], rng: random.Random
) -> tuple[CommGraph, dict[Vertex, int], dict[Vertex, Vertex]]:
    """One coarsening level: match each vertex to its heaviest unmatched
    neighbor, merge the pairs, and return (coarse graph, coarse vertex
    weights, fine->coarse map)."""
    order = list(graph.vertices())
    rng.shuffle(order)
    matched: set[Vertex] = set()
    merge_to: dict[Vertex, Vertex] = {}
    for v in order:
        if v in matched:
            continue
        best, best_w = None, 0.0
        for u, w in graph.neighbors(v).items():
            if u not in matched and w > best_w:
                best, best_w = u, w
        matched.add(v)
        merge_to[v] = v
        if best is not None:
            matched.add(best)
            merge_to[best] = v

    coarse = CommGraph()
    cweights: dict[Vertex, int] = {}
    for v, rep in merge_to.items():
        cweights[rep] = cweights.get(rep, 0) + vweights[v]
        coarse.add_vertex(rep)
    for u, v, w in graph.edges():
        ru, rv = merge_to[u], merge_to[v]
        if ru != rv:
            coarse.add_edge(ru, rv, w)
    return coarse, cweights, merge_to


def _region_growth_order(graph: CommGraph) -> list[Vertex]:
    """Vertices in Prim-style region-growth order: always visit next the
    unvisited vertex with the greatest total edge weight into the visited
    region.  Tight communities come out contiguous, which is exactly what
    the greedy initial partition needs."""
    order: list[Vertex] = []
    visited: set[Vertex] = set()
    attraction: dict[Vertex, float] = {}
    by_degree = sorted(graph.vertices(), key=graph.degree, reverse=True)
    heap: list[tuple[float, int, Vertex]] = []
    counter = itertools.count()

    def visit(v: Vertex) -> None:
        visited.add(v)
        order.append(v)
        for u, w in graph.neighbors(v).items():
            if u not in visited:
                attraction[u] = attraction.get(u, 0.0) + w
                heapq.heappush(heap, (-attraction[u], next(counter), u))

    for seed in by_degree:
        if seed in visited:
            continue
        visit(seed)
        while heap:
            neg, _, v = heapq.heappop(heap)
            if v in visited or attraction.get(v) != -neg:
                continue  # stale entry
            visit(v)
    return order


def _greedy_initial_partition(
    graph: CommGraph,
    vweights: Mapping[Vertex, int],
    parts: int,
    capacity: float,
    rng: random.Random,
) -> dict[Vertex, int]:
    """Assign vertices in weighted-BFS order from high-degree seeds, each
    to the connected part with the most attraction (falling back to the
    lightest part).  BFS order keeps clusters contiguous so the greedy
    pass does not scatter a tight community across parts."""
    order = _region_growth_order(graph)
    assignment: dict[Vertex, int] = {}
    loads = [0.0] * parts
    for v in order:
        attraction = [0.0] * parts
        for u, w in graph.neighbors(v).items():
            p = assignment.get(u)
            if p is not None:
                attraction[p] += w
        candidates = [
            p for p in range(parts) if loads[p] + vweights[v] <= capacity
        ]
        if not candidates:
            candidates = list(range(parts))
        best = max(candidates, key=lambda p: (attraction[p], -loads[p]))
        assignment[v] = best
        loads[best] += vweights[v]
    return assignment


def _refine(
    graph: CommGraph,
    vweights: Mapping[Vertex, int],
    assignment: dict[Vertex, int],
    parts: int,
    capacity: float,
    passes: int,
) -> None:
    """Boundary FM refinement: greedily move vertices with positive gain
    while capacities allow; repeat until a pass makes no move."""
    loads = [0.0] * parts
    for v, p in assignment.items():
        loads[p] += vweights[v]
    for _ in range(passes):
        moved = 0
        for v in graph.vertices():
            here = assignment[v]
            pull = [0.0] * parts
            for u, w in graph.neighbors(v).items():
                pull[assignment[u]] += w
            internal = pull[here]
            best_gain, best_part = 0.0, here
            for p in range(parts):
                if p == here:
                    continue
                if loads[p] + vweights[v] > capacity:
                    continue
                gain = pull[p] - internal
                if gain > best_gain:
                    best_gain, best_part = gain, p
            if best_part != here:
                assignment[v] = best_part
                loads[here] -= vweights[v]
                loads[best_part] += vweights[v]
                moved += 1
        if moved == 0:
            break


def multilevel_partition(
    graph: CommGraph,
    parts: int,
    imbalance: float = 0.05,
    coarsen_until: int = 200,
    refine_passes: int = 4,
    rng: Optional[random.Random] = None,
) -> dict[Vertex, int]:
    """Partition ``graph`` into ``parts`` balanced sets, minimizing cut.

    Args:
        graph: the full communication graph (centralized view).
        parts: number of servers n.
        imbalance: allowed relative overload per part (epsilon).
        coarsen_until: stop coarsening below this many coarse vertices.
        refine_passes: FM passes per uncoarsening level.
        rng: randomness for matching/initial partition tie-breaks.

    Returns:
        vertex -> part assignment covering every vertex.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if parts == 1:
        return {v: 0 for v in graph.vertices()}
    rng = rng or random.Random(0)

    levels: list[tuple[CommGraph, dict[Vertex, int], dict[Vertex, Vertex]]] = []
    current = graph
    vweights: dict[Vertex, int] = {v: 1 for v in graph.vertices()}
    while current.num_vertices > max(coarsen_until, 4 * parts):
        coarse, cweights, merge_to = _heavy_edge_matching(current, vweights, rng)
        if coarse.num_vertices == current.num_vertices:
            break  # nothing matched; graph is edgeless or adversarial
        levels.append((current, vweights, merge_to))
        current, vweights = coarse, cweights

    def initial_cap(total: float) -> float:
        return (total / parts) * (1.0 + imbalance)

    def refine_cap(total: float) -> float:
        # Refinement needs at least one unit of slack, or positive-gain
        # FM moves between exactly-full parts would all be blocked.
        return max(initial_cap(total), total / parts + 1.0)

    total = sum(vweights.values())
    assignment = _greedy_initial_partition(
        current, vweights, parts, initial_cap(total), rng
    )
    _refine(current, vweights, assignment, parts, refine_cap(total), refine_passes)

    while levels:
        fine_graph, fine_weights, merge_to = levels.pop()
        assignment = {v: assignment[rep] for v, rep in merge_to.items()}
        total = sum(fine_weights.values())
        _refine(fine_graph, fine_weights, assignment, parts, refine_cap(total),
                refine_passes)
    return assignment
