"""Space-Saving top-k stream sampling (Metwally, Agrawal, El Abbadi 2005).

§4.3 of the paper: each server keeps only the *heaviest* communication
edges, found by running Space-Saving over the stream of observed messages.
"Light" edges cannot influence partitioning (only small candidate sets are
exchanged), so a constant-size summary suffices.

This implementation supports **weighted** increments (servers fold
per-actor message counters in periodically, so one offer may carry many
messages) and keeps the classic guarantees:

* every key with true count > N/capacity is present in the summary, and
* for each monitored key, ``count - error <= true <= count``.

The minimum element is tracked with a lazily-invalidated heap that is
rebuilt when stale entries pile up, giving amortized O(log capacity) per
offer without the pointer gymnastics of the stream-summary structure.
"""

from __future__ import annotations

import heapq
from typing import Generic, Hashable, Iterable, TypeVar

__all__ = ["SpaceSaving"]

K = TypeVar("K", bound=Hashable)


class SpaceSaving(Generic[K]):
    """A fixed-capacity heavy-hitter summary."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        # key -> [count, error]; lists to allow in-place increments.
        self._entries: dict[K, list[float]] = {}
        self._heap: list[tuple[float, K]] = []
        self.total_weight = 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    def offer(self, key: K, weight: float = 1.0) -> None:
        """Record ``weight`` more observations of ``key``."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self.total_weight += weight
        entry = self._entries.get(key)
        if entry is not None:
            # In-place increment only: the key's existing heap pair goes
            # stale (count too low) and is lazily refreshed by _pop_min.
            # Pushing here — the old behavior — grew the heap by one pair
            # per offer and made every fold O(stream log stream).
            entry[0] += weight
        elif len(self._entries) < self.capacity:
            self._entries[key] = [weight, 0.0]
            heapq.heappush(self._heap, (weight, key))
        else:
            min_count, victim = self._pop_min()
            del self._entries[victim]
            # The newcomer inherits the victim's count as overestimation
            # error — the signature Space-Saving move.
            self._entries[key] = [min_count + weight, min_count]
            heapq.heappush(self._heap, (min_count + weight, key))
            if len(self._heap) > max(64, 2 * self.capacity):
                self._rebuild_heap()

    def _pop_min(self) -> tuple[float, K]:
        """Pop the live minimum (count, key) pair.

        Heap pairs are lower bounds: a pair's count can only lag its
        entry (offers never push).  So when the top pair is live it is
        the true minimum — any other entry's count dominates its own
        heap pair, which dominates the top.  Stale-low pairs are
        refreshed in place (heapreplace) instead of accumulating.
        """
        heap = self._heap
        entries = self._entries
        while heap:
            count, key = heap[0]
            entry = entries.get(key)
            if entry is None:
                heapq.heappop(heap)  # forgotten key
                continue
            if entry[0] == count:
                heapq.heappop(heap)
                return count, key
            heapq.heapreplace(heap, (entry[0], key))
        raise RuntimeError("heap/entries desynchronized")  # pragma: no cover

    def _rebuild_heap(self) -> None:
        self._heap = [(entry[0], key) for key, entry in self._entries.items()]
        heapq.heapify(self._heap)

    # ------------------------------------------------------------------
    def count(self, key: K) -> float:
        """Monitored (over-)estimate of the key's count; 0 if unmonitored."""
        entry = self._entries.get(key)
        return entry[0] if entry is not None else 0.0

    def guaranteed_count(self, key: K) -> float:
        """Lower bound on the true count (count - error)."""
        entry = self._entries.get(key)
        return entry[0] - entry[1] if entry is not None else 0.0

    def error(self, key: K) -> float:
        entry = self._entries.get(key)
        return entry[1] if entry is not None else 0.0

    def top(self, k: int) -> list[tuple[K, float]]:
        """The k heaviest monitored keys as (key, estimated count)."""
        ordered = sorted(self._entries.items(), key=lambda kv: kv[1][0], reverse=True)
        return [(key, entry[0]) for key, entry in ordered[:k]]

    def items(self) -> Iterable[tuple[K, float]]:
        """All monitored (key, estimated count) pairs, unordered."""
        return ((key, entry[0]) for key, entry in self._entries.items())

    def decay(self, factor: float) -> None:
        """Multiply every count by ``factor`` in (0, 1].

        Exponential decay lets the summary track *rates* on a changing
        graph (§4.1's "rapidly time-varying actor graphs") instead of
        lifetime totals: old edges fade, freeing room for new ones.

        Scaling every heap entry by the same positive factor preserves
        both the heap invariant and the live/stale distinction (a heap
        count matches its entry's count after scaling iff it matched
        before), so no rebuild — and no O(n) heapify — is needed.
        """
        if not 0 < factor <= 1:
            raise ValueError("decay factor must be in (0, 1]")
        if factor == 1.0:
            return
        for entry in self._entries.values():
            entry[0] *= factor
            entry[1] *= factor
        self._heap = [(count * factor, key) for count, key in self._heap]
        self.total_weight *= factor

    def forget(self, key: K) -> None:
        """Drop a key (e.g. an actor that was migrated away).  O(1).

        The key's heap entries become stale and are skipped by
        :meth:`_pop_min` / discarded at the next threshold rebuild —
        the same lazy machinery that absorbs count updates.  (Migration-
        heavy runs call ``forget`` once per moved actor per fold, so an
        eager rebuild here was quadratic in the migration rate.)
        """
        if self._entries.pop(key, None) is not None:
            # Safety valve: if forgets have made the heap mostly stale
            # without intervening offers, compact it here.
            if len(self._heap) > max(64, 2 * len(self._entries)):
                self._rebuild_heap()

    def merge(self, other: "SpaceSaving[K]") -> None:
        """Fold another summary's monitored counts into this one.

        Standard Space-Saving merge-by-offer: the result keeps both
        guarantees with errors summing in the worst case.
        """
        for key, count in list(other.items()):
            if count > 0:
                self.offer(key, count)
