"""Array-backed graph summaries for paper-scale populations.

The dict-of-dicts :class:`~repro.graph.comm_graph.CommGraph` and the
dict-of-lists :class:`~repro.graph.spacesaving.SpaceSaving` are the
*reference* implementations: obviously correct, property-tested, and
fine up to a few thousand actors.  At the paper's 10^6-actor scale
(§6) their per-entry overhead — a dict slot plus a 2-element list plus
boxed floats per monitored key — dominates RSS.

This module re-implements both on parallel ``array('d')`` buffers with
index maps, as Le Merrer et al. prescribe for stream summaries on
workers: a monitored Space-Saving key costs one insertion-ordered dict
slot, one list cell, and two C doubles; a graph vertex costs one dict
slot plus two compact arrays of neighbor slots and weights.

Both classes are pinned **byte-for-byte equivalent** to the dict
references — same keys, same float counts and errors, same iteration
order — by a Hypothesis property test
(``tests/property/test_prop_array_backends.py``) over randomized
weighted offer/merge/decay/forget sequences.  That equivalence is what
keeps seeded digests identical whichever backend a run selects.

All iteration is over insertion-ordered index dicts or positional
arrays — never over hash-ordered sets — so the backends are
digest-neutral by construction (DET rules).
"""

from __future__ import annotations

import heapq
from array import array
from typing import Generic, Hashable, Iterable, Iterator, Optional, TypeVar

try:  # numpy is optional: vectorized decay, identical float64 semantics
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

__all__ = ["ArraySpaceSaving", "ArrayCommGraph"]

K = TypeVar("K", bound=Hashable)
Vertex = Hashable


class ArraySpaceSaving(Generic[K]):
    """Space-Saving on parallel key/count/error arrays.

    Mirrors :class:`repro.graph.spacesaving.SpaceSaving` operation for
    operation (same lazily-refreshed min-heap, same eviction rule, same
    float arithmetic) while storing counts and errors unboxed.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._slots: dict[K, int] = {}      # key -> slot, insertion-ordered
        self._keys: list[Optional[K]] = []  # slot -> key (None when free)
        self._counts: array = array("d")
        self._errors: array = array("d")
        self._free: list[int] = []
        self._heap: list[tuple[float, K]] = []
        self.total_weight = 0.0

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, key: K) -> bool:
        return key in self._slots

    # ------------------------------------------------------------------
    def offer(self, key: K, weight: float = 1.0) -> None:
        """Record ``weight`` more observations of ``key``."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self.total_weight += weight
        slot = self._slots.get(key)
        if slot is not None:
            self._counts[slot] += weight
        elif len(self._slots) < self.capacity:
            if self._free:
                slot = self._free.pop()
                self._keys[slot] = key
                self._counts[slot] = weight
                self._errors[slot] = 0.0
            else:
                slot = len(self._keys)
                self._keys.append(key)
                self._counts.append(weight)
                self._errors.append(0.0)
            self._slots[key] = slot
            heapq.heappush(self._heap, (weight, key))
        else:
            min_count, victim = self._pop_min()
            vslot = self._slots.pop(victim)
            self._keys[vslot] = key
            self._counts[vslot] = min_count + weight
            self._errors[vslot] = min_count
            self._slots[key] = vslot
            heapq.heappush(self._heap, (min_count + weight, key))
            if len(self._heap) > max(64, 2 * self.capacity):
                self._rebuild_heap()

    def _pop_min(self) -> tuple[float, K]:
        heap = self._heap
        slots = self._slots
        counts = self._counts
        while heap:
            count, key = heap[0]
            slot = slots.get(key)
            if slot is None:
                heapq.heappop(heap)  # forgotten key
                continue
            current = counts[slot]
            if current == count:
                heapq.heappop(heap)
                return count, key
            heapq.heapreplace(heap, (current, key))
        raise RuntimeError("heap/slots desynchronized")  # pragma: no cover

    def _rebuild_heap(self) -> None:
        self._heap = [(self._counts[slot], key)
                      for key, slot in self._slots.items()]
        heapq.heapify(self._heap)

    # ------------------------------------------------------------------
    def count(self, key: K) -> float:
        slot = self._slots.get(key)
        return self._counts[slot] if slot is not None else 0.0

    def guaranteed_count(self, key: K) -> float:
        slot = self._slots.get(key)
        if slot is None:
            return 0.0
        return self._counts[slot] - self._errors[slot]

    def error(self, key: K) -> float:
        slot = self._slots.get(key)
        return self._errors[slot] if slot is not None else 0.0

    def top(self, k: int) -> list[tuple[K, float]]:
        ordered = sorted(self._slots.items(),
                         key=lambda kv: self._counts[kv[1]], reverse=True)
        return [(key, self._counts[slot]) for key, slot in ordered[:k]]

    def items(self) -> Iterable[tuple[K, float]]:
        return ((key, self._counts[slot]) for key, slot in self._slots.items())

    def decay(self, factor: float) -> None:
        """Multiply every count by ``factor`` in (0, 1]."""
        if not 0 < factor <= 1:
            raise ValueError("decay factor must be in (0, 1]")
        if factor == 1.0:
            return
        if _np is not None and len(self._counts):
            # float64 in-place multiply: bit-identical to the Python
            # float loop below (both are IEEE-754 double operations).
            _np.frombuffer(self._counts)[:] *= factor
            _np.frombuffer(self._errors)[:] *= factor
        else:
            for slot in range(len(self._counts)):
                self._counts[slot] *= factor
                self._errors[slot] *= factor
        self._heap = [(count * factor, key) for count, key in self._heap]
        self.total_weight *= factor

    def forget(self, key: K) -> None:
        """Drop a key; its slot is recycled and heap pairs go stale."""
        slot = self._slots.pop(key, None)
        if slot is not None:
            self._keys[slot] = None
            self._free.append(slot)
            if len(self._heap) > max(64, 2 * len(self._slots)):
                self._rebuild_heap()

    def merge(self, other) -> None:
        """Fold another summary's monitored counts into this one."""
        for key, count in list(other.items()):
            if count > 0:
                self.offer(key, count)


class ArrayCommGraph:
    """Undirected weighted graph on slot-indexed parallel arrays.

    API-compatible with :class:`repro.graph.comm_graph.CommGraph`; a
    vertex holds its neighbors as an ``array('l')`` of vertex slots and
    an ``array('d')`` of weights, appended in edge-insertion order.
    """

    def __init__(self) -> None:
        self._index: dict[Vertex, int] = {}  # vertex -> slot, insertion-ordered
        self._verts: list[Optional[Vertex]] = []  # slot -> vertex (None = free)
        self._nbrs: list[array] = []         # slot -> neighbor slots
        self._wts: list[array] = []          # slot -> edge weights
        self._free: list[int] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _slot_for(self, v: Vertex) -> int:
        slot = self._index.get(v)
        if slot is None:
            if self._free:
                slot = self._free.pop()
                self._verts[slot] = v
            else:
                slot = len(self._verts)
                self._verts.append(v)
                self._nbrs.append(array("l"))
                self._wts.append(array("d"))
            self._index[v] = slot
        return slot

    def add_vertex(self, v: Vertex) -> None:
        self._slot_for(v)

    def add_edge(self, u: Vertex, v: Vertex, weight: float = 1.0) -> None:
        """Add ``weight`` to the edge (u, v); creates vertices as needed."""
        if u == v:
            raise ValueError("self-loops are not meaningful here")
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        us, vs = self._slot_for(u), self._slot_for(v)
        self._bump(us, vs, weight)
        self._bump(vs, us, weight)

    def _bump(self, us: int, vs: int, weight: float) -> None:
        nbrs = self._nbrs[us]
        try:
            pos = nbrs.index(vs)
        except ValueError:
            nbrs.append(vs)
            self._wts[us].append(weight)
        else:
            self._wts[us][pos] += weight

    def remove_vertex(self, v: Vertex) -> None:
        slot = self._index.pop(v, None)
        if slot is None:
            return
        for nslot in self._nbrs[slot]:
            arr = self._nbrs[nslot]
            pos = arr.index(slot)
            del arr[pos]
            del self._wts[nslot][pos]
        self._nbrs[slot] = array("l")
        self._wts[slot] = array("d")
        self._verts[slot] = None
        self._free.append(slot)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._index

    def __len__(self) -> int:
        return len(self._index)

    @property
    def num_vertices(self) -> int:
        return len(self._index)

    @property
    def num_edges(self) -> int:
        return sum(len(self._nbrs[slot]) for slot in self._index.values()) // 2

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._index)

    def neighbors(self, v: Vertex) -> dict[Vertex, float]:
        """The neighbor->weight map of ``v`` (built on demand)."""
        slot = self._index[v]
        verts = self._verts
        return {verts[n]: w for n, w in zip(self._nbrs[slot], self._wts[slot])}

    def weight(self, u: Vertex, v: Vertex) -> float:
        us = self._index.get(u)
        vs = self._index.get(v)
        if us is None or vs is None:
            return 0.0
        try:
            pos = self._nbrs[us].index(vs)
        except ValueError:
            return 0.0
        return self._wts[us][pos]

    def degree(self, v: Vertex) -> float:
        """Weighted degree: sum of incident edge weights."""
        return sum(self._wts[self._index[v]])

    def edges(self) -> Iterator[tuple[Vertex, Vertex, float]]:
        """Each undirected edge once, as (u, v, weight)."""
        seen: set[int] = set()
        verts = self._verts
        for u, slot in self._index.items():
            for nslot, w in zip(self._nbrs[slot], self._wts[slot]):
                if nslot not in seen:
                    yield (u, verts[nslot], w)
            seen.add(slot)

    def total_weight(self) -> float:
        return sum(w for _, _, w in self.edges())

    def subgraph(self, keep: Iterable[Vertex]) -> "ArrayCommGraph":
        keep_set = dict.fromkeys(keep)
        sub = ArrayCommGraph()
        for v in keep_set:
            if v in self._index:
                sub.add_vertex(v)
        for u, v, w in self.edges():
            if u in keep_set and v in keep_set:
                sub.add_edge(u, v, w)
        return sub

    def copy(self) -> "ArrayCommGraph":
        clone = ArrayCommGraph()
        clone._index = dict(self._index)
        clone._verts = list(self._verts)
        clone._nbrs = [array("l", a) for a in self._nbrs]
        clone._wts = [array("d", a) for a in self._wts]
        clone._free = list(self._free)
        return clone

    def merge(self, other) -> None:
        """Fold another graph's vertices and edge weights into this one."""
        for v in other.vertices():
            self.add_vertex(v)
        for u, v, w in other.edges():
            self.add_edge(u, v, w)
