"""Graph substrate: communication graphs, Space-Saving edge sampling,
synthetic generators, quality metrics, and the comparator partitioners
(centralized multilevel and Ja-Be-Ja)."""

from .arrayback import ArrayCommGraph, ArraySpaceSaving
from .comm_graph import CommGraph
from .generators import (
    clustered_graph,
    grid_graph,
    power_law_graph,
    random_graph,
    ring_of_cliques,
)
from .jabeja import JabejaResult, jabeja_partition
from .multilevel import multilevel_partition
from .quality import (
    cut_cost,
    is_balanced,
    max_imbalance,
    partition_sizes,
    remote_fraction,
)
from .spacesaving import SpaceSaving
from .streaming import STREAMING_HEURISTICS, streaming_partition

__all__ = [
    "ArrayCommGraph",
    "ArraySpaceSaving",
    "CommGraph",
    "JabejaResult",
    "SpaceSaving",
    "clustered_graph",
    "cut_cost",
    "grid_graph",
    "is_balanced",
    "jabeja_partition",
    "max_imbalance",
    "multilevel_partition",
    "partition_sizes",
    "power_law_graph",
    "random_graph",
    "remote_fraction",
    "ring_of_cliques",
    "STREAMING_HEURISTICS",
    "streaming_partition",
]
