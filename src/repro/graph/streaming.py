"""One-pass streaming graph partitioning (Stanton & Kliot, KDD 2012).

Reference [31] of the paper — co-authored by ActOp's second author — and
the natural third comparator: it needs neither the full graph in memory
(centralized multilevel) nor iterative refinement (Alg. 1, Ja-Be-Ja).
Vertices arrive one at a time with their edge lists and are assigned
immediately and permanently.

Heuristics implemented (names from the KDD paper):

* ``balanced``      — always the least-loaded part (the balance-only
  baseline; equivalent to round-robin under ties).
* ``hash``          — deterministic hash of the vertex id.
* ``greedy``        — *linear deterministic greedy* (LDG), the paper's
  winner: maximize |N(v) ∩ P_i| * (1 - |P_i|/C), neighbors weighted,
  capacity-penalized.
* ``fennel``        — the Fennel-style variant with an additive load
  penalty (gamma * |P_i|), a common follow-on; included because it often
  edges out LDG on power-law graphs.

Streaming placement is the regime an actor runtime actually faces at
*activation* time (an actor appears and must be placed now), which makes
this comparator a lens on the paper's "static actor assignment is
insufficient" argument: a good one-shot placement still decays as the
communication graph churns.
"""

from __future__ import annotations

import random
from typing import Callable, Hashable, Iterable, Optional

from .comm_graph import CommGraph

__all__ = ["streaming_partition", "STREAMING_HEURISTICS"]

Vertex = Hashable


def _stable_hash(vertex: Vertex, parts: int) -> int:
    h = 0
    for ch in str(vertex):
        h = (h * 131 + ord(ch)) % (2**32)
    return h % parts


def _score_balanced(part, load, capacity, attraction, gamma):
    return -load


def _score_greedy(part, load, capacity, attraction, gamma):
    # Linear deterministic greedy: neighbor pull, linearly damped by fill.
    return attraction * (1.0 - load / capacity)


def _score_fennel(part, load, capacity, attraction, gamma):
    return attraction - gamma * load


STREAMING_HEURISTICS = ("balanced", "hash", "greedy", "fennel")


def streaming_partition(
    graph: CommGraph,
    parts: int,
    heuristic: str = "greedy",
    slack: float = 0.1,
    gamma: float = 1.5,
    order: Optional[Iterable[Vertex]] = None,
    rng: Optional[random.Random] = None,
) -> dict[Vertex, int]:
    """Assign vertices in a single streaming pass.

    Args:
        graph: the communication graph (consulted only for the arriving
            vertex's incident edges, as a stream would deliver them).
        parts: number of servers.
        heuristic: one of :data:`STREAMING_HEURISTICS`.
        slack: capacity headroom; each part holds at most
            ``ceil(n/parts * (1+slack))`` vertices.
        gamma: load-penalty coefficient for the fennel heuristic.
        order: arrival order (default: random shuffle — the hardest case
            for streaming heuristics).
        rng: randomness for the default order and tie-breaks.

    Returns:
        vertex -> part assignment.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if heuristic not in STREAMING_HEURISTICS:
        raise ValueError(f"unknown heuristic {heuristic!r}")
    rng = rng or random.Random(0)
    vertices = list(order) if order is not None else None
    if vertices is None:
        vertices = list(graph.vertices())
        rng.shuffle(vertices)
    n = len(vertices)
    if n == 0:
        return {}
    capacity = max(1.0, (n / parts) * (1.0 + slack))

    if heuristic == "hash":
        return {v: _stable_hash(v, parts) for v in vertices}

    score: Callable = {
        "balanced": _score_balanced,
        "greedy": _score_greedy,
        "fennel": _score_fennel,
    }[heuristic]

    assignment: dict[Vertex, int] = {}
    loads = [0.0] * parts
    for v in vertices:
        attraction = [0.0] * parts
        for u, w in graph.neighbors(v).items():
            p = assignment.get(u)
            if p is not None:
                attraction[p] += w
        best_part, best_score = None, None
        for p in range(parts):
            if loads[p] + 1 > capacity:
                continue
            # Ties broken by least load (as in the KDD paper) — otherwise
            # every zero-attraction arrival piles onto the first part.
            s = (score(p, loads[p], capacity, attraction[p], gamma), -loads[p])
            if best_score is None or s > best_score:
                best_part, best_score = p, s
        if best_part is None:  # every part at capacity (slack too tight)
            best_part = min(range(parts), key=lambda p: loads[p])
        assignment[v] = best_part
        loads[best_part] += 1
    return assignment
