"""Open Jackson networks with probabilistic routing.

Eq. (1) of the paper uses the Jackson end-to-end delay formula with the
per-stage arrival rates taken as *measured* inputs.  This module supplies
the other half of the classical theory: given extraneous arrival rates
``gamma`` and a routing matrix ``P`` (``P[i][j]`` = probability an event
leaving stage i proceeds to stage j), solve the traffic equations

    lambda = gamma + P^T lambda

for the stationary per-stage rates, and evaluate the network's delay.
Used by tests to cross-validate the simulator's measured stage rates
against theory (e.g. the counter pipeline's receiver->worker->sender
chain), and available to model richer topologies (the §2 server has
branching: worker output splits between the two sender stages).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .jackson import StageLoad, jackson_latency

__all__ = ["solve_traffic_equations", "JacksonNetwork"]


def solve_traffic_equations(
    gamma: Sequence[float], routing: Sequence[Sequence[float]]
) -> list[float]:
    """Stationary arrival rates of an open Jackson network.

    Args:
        gamma: extraneous (outside) arrival rate into each stage.
        routing: routing[i][j] = P(event leaving i enters j); row sums
            must be <= 1 (the remainder departs the network).

    Returns:
        lambda_i per stage.

    Raises:
        ValueError: on malformed inputs or a non-dissipative network
            (spectral radius >= 1, i.e. traffic never leaves).
    """
    g = np.asarray(gamma, dtype=float)
    P = np.asarray(routing, dtype=float)
    k = g.shape[0]
    if P.shape != (k, k):
        raise ValueError(f"routing must be {k}x{k}, got {P.shape}")
    if (g < 0).any() or (P < 0).any():
        raise ValueError("rates and probabilities must be non-negative")
    row_sums = P.sum(axis=1)
    if (row_sums > 1 + 1e-9).any():
        raise ValueError("routing row sums must be <= 1")
    # lambda = gamma + P^T lambda  ->  (I - P^T) lambda = gamma
    eye = np.eye(k)
    try:
        lam = np.linalg.solve(eye - P.T, g)
    except np.linalg.LinAlgError as exc:
        raise ValueError("traffic equations are singular") from exc
    if (lam < -1e-9).any() or not np.isfinite(lam).all():
        raise ValueError("network is non-dissipative (traffic accumulates)")
    return [float(x) for x in lam]


class JacksonNetwork:
    """An open network of M/M/1-modeled stages with routing.

    Combines the traffic equations with the paper's Eq.-(1) delay proxy.
    """

    def __init__(
        self,
        service_rates_per_thread: Sequence[float],
        gamma: Sequence[float],
        routing: Sequence[Sequence[float]],
        names: Sequence[str] = (),
    ):
        if len(service_rates_per_thread) != len(gamma):
            raise ValueError("length mismatch between rates and gamma")
        self.arrival_rates = solve_traffic_equations(gamma, routing)
        self.stages = [
            StageLoad(
                arrival_rate=lam,
                service_rate_per_thread=s,
                name=names[i] if i < len(names) else f"stage{i}",
            )
            for i, (lam, s) in enumerate(
                zip(self.arrival_rates, service_rates_per_thread)
            )
        ]

    def latency(self, threads: Sequence[float]) -> float:
        """Eq. (1) at the solved stationary rates."""
        return jackson_latency(self.stages, threads)

    def utilizations(self, threads: Sequence[float]) -> list[float]:
        return [
            stage.arrival_rate / stage.service_rate(t)
            for stage, t in zip(self.stages, threads)
        ]
