"""M/M/1 and M/M/c queue formulas.

§5 of the paper models every SEDA stage as an M/M/1 queue with service
rate ``mu_i = t_i * s_i`` (threads times per-thread rate).  These are the
textbook closed forms (Bertsekas & Gallager, *Data Networks*) used both by
the optimizer and by tests that validate the simulator against theory.
"""

from __future__ import annotations

import math

__all__ = [
    "mm1_utilization",
    "mm1_mean_queue_length",
    "mm1_mean_latency",
    "mm1_mean_wait",
    "mmc_erlang_c",
    "mmc_mean_latency",
]


def _check_stable(lam: float, mu: float) -> None:
    if lam < 0 or mu <= 0:
        raise ValueError(f"need lam >= 0 and mu > 0, got lam={lam}, mu={mu}")
    if lam >= mu:
        raise ValueError(f"unstable queue: lam={lam} >= mu={mu}")


def mm1_utilization(lam: float, mu: float) -> float:
    """Server utilization rho = lam / mu."""
    _check_stable(lam, mu)
    return lam / mu


def mm1_mean_queue_length(lam: float, mu: float) -> float:
    """Mean number in system, L = rho / (1 - rho).

    This is the quantity whose non-linearity in rho the paper uses (§5.1)
    to explain why queue-length-threshold controllers oscillate.
    """
    rho = mm1_utilization(lam, mu)
    return rho / (1.0 - rho)


def mm1_mean_latency(lam: float, mu: float) -> float:
    """Mean time in system (wait + service), T = 1 / (mu - lam).

    The per-stage latency term the paper sums in Eq. (1).
    """
    _check_stable(lam, mu)
    return 1.0 / (mu - lam)


def mm1_mean_wait(lam: float, mu: float) -> float:
    """Mean time waiting in queue (excluding service)."""
    rho = mm1_utilization(lam, mu)
    return rho / (mu - lam)


def mmc_erlang_c(lam: float, mu: float, c: int) -> float:
    """Erlang-C: probability an arrival must queue in an M/M/c system.

    ``mu`` here is the *per-server* service rate; stability requires
    ``lam < c * mu``.
    """
    if c < 1:
        raise ValueError("need at least one server")
    if lam < 0 or mu <= 0:
        raise ValueError("need lam >= 0 and mu > 0")
    a = lam / mu  # offered load in Erlangs
    rho = a / c
    if rho >= 1.0:
        raise ValueError(f"unstable queue: offered load {a} >= servers {c}")
    # Sum_{k=0}^{c-1} a^k / k!  computed iteratively for stability.
    term = 1.0
    acc = 1.0
    for k in range(1, c):
        term *= a / k
        acc += term
    top = term * (a / c) / (1.0 - rho)
    return top / (acc + top)


def mmc_mean_latency(lam: float, mu: float, c: int) -> float:
    """Mean time in system for M/M/c (per-server rate ``mu``)."""
    pq = mmc_erlang_c(lam, mu, c)
    wait = pq / (c * mu - lam)
    return wait + 1.0 / mu


def mm1_percentile_latency(lam: float, mu: float, q: float) -> float:
    """q-quantile of M/M/1 sojourn time (exponential with rate mu - lam)."""
    _check_stable(lam, mu)
    if not 0 < q < 1:
        raise ValueError("quantile must be in (0, 1)")
    return -math.log(1.0 - q) / (mu - lam)
