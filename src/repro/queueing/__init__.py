"""Queueing-theory substrate: M/M/1 / M/M/c formulas and the Jackson
latency proxy the thread-allocation optimizer minimizes."""

from .jackson import StageLoad, jackson_latency, jackson_latency_with_penalty
from .network import JacksonNetwork, solve_traffic_equations
from .mm1 import (
    mm1_mean_latency,
    mm1_mean_queue_length,
    mm1_mean_wait,
    mm1_percentile_latency,
    mm1_utilization,
    mmc_erlang_c,
    mmc_mean_latency,
)

__all__ = [
    "JacksonNetwork",
    "StageLoad",
    "jackson_latency",
    "jackson_latency_with_penalty",
    "mm1_mean_latency",
    "mm1_mean_queue_length",
    "mm1_mean_wait",
    "mm1_percentile_latency",
    "mm1_utilization",
    "mmc_erlang_c",
    "mmc_mean_latency",
    "solve_traffic_equations",
]
