"""Jackson-network latency proxy (Eq. (1) of the paper).

A SEDA server is a network of stage queues.  Under Jackson assumptions
(Poisson extraneous arrivals, exponential service, probabilistic routing)
the expected end-to-end delay is the arrival-rate-weighted sum of per-queue
M/M/1 latencies:

    (1/lambda_tot) * sum_i  lambda_i / (mu_i - lambda_i)

The paper uses this as a *proxy* objective — traffic is not actually
Poisson — and our evaluation (like theirs) checks that minimizing the
proxy reduces real simulated latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["StageLoad", "jackson_latency", "jackson_latency_with_penalty"]


@dataclass(frozen=True)
class StageLoad:
    """Observed load of one SEDA stage, as the optimizer sees it.

    Attributes:
        arrival_rate: lambda_i, events per second entering the stage.
        service_rate_per_thread: s_i = 1 / (x_i + w_i).
        cpu_fraction: beta_i = x_i / (x_i + w_i), the share of a processor
            one thread of this stage consumes while busy.
        name: diagnostic label.
    """

    arrival_rate: float
    service_rate_per_thread: float
    cpu_fraction: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError(f"negative arrival rate for {self.name!r}")
        if self.service_rate_per_thread <= 0:
            raise ValueError(f"non-positive service rate for {self.name!r}")
        if not 0 < self.cpu_fraction <= 1:
            raise ValueError(f"cpu_fraction must be in (0, 1], got {self.cpu_fraction}")

    def service_rate(self, threads: float) -> float:
        """mu_i = t_i * s_i."""
        return threads * self.service_rate_per_thread


def jackson_latency(stages: Sequence[StageLoad], threads: Sequence[float]) -> float:
    """Eq. (1): weighted mean per-stage M/M/1 latency.

    Returns ``inf`` for infeasible allocations (any mu_i <= lambda_i), so
    the function can be used directly by grid searches and optimizers.
    """
    if len(stages) != len(threads):
        raise ValueError("stages and threads length mismatch")
    lam_tot = sum(s.arrival_rate for s in stages)
    if lam_tot <= 0:
        return 0.0
    total = 0.0
    for stage, t in zip(stages, threads):
        mu = stage.service_rate(t)
        if mu <= stage.arrival_rate:
            return float("inf")
        total += stage.arrival_rate / (mu - stage.arrival_rate)
    return total / lam_tot


def jackson_latency_with_penalty(
    stages: Sequence[StageLoad],
    threads: Sequence[float],
    eta: float,
) -> float:
    """The full objective of problem (*): Eq. (1) plus eta * sum(t_i)."""
    base = jackson_latency(stages, threads)
    if base == float("inf"):
        return base
    return base + eta * sum(threads)
