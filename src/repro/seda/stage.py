"""A SEDA stage: task queue + bounded thread pool over shared processors.

Each server stage (receive, application logic, send, ...) owns a FIFO queue
of events and a configurable number of threads (§2, Fig. 2).  A thread
takes one event at a time through the Fig.-9 lifecycle:

    stage-queue wait -> ready time r -> compute x -> blocking wait w

Compute runs on the server's shared :class:`~repro.sim.cpu.CpuPool` (which
supplies ``r`` and inflates ``x`` under oversubscription); the blocking
wait models synchronous I/O and holds the thread *without* holding a core.

The stage keeps monotone counters (:class:`StageStats`) from which the
§5.4 estimator derives its inputs.  Crucially, the counters expose only
what the paper can measure on a real system — wall-clock ``z`` and CPU
time ``x`` — while ready time and blocking wait stay hidden and must be
inferred.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..sim.cpu import CpuBurst, CpuPool
from ..sim.engine import Simulator

__all__ = ["StageEvent", "StageStats", "StatsWindow", "Stage"]


class StageEvent:
    """One unit of work flowing through a stage."""

    __slots__ = (
        "compute",
        "wait",
        "callback",
        "args",
        "ctx",
        "enqueue_time",
        "dispatch_time",
        "grant_time",
        "compute_done_time",
        "complete_time",
    )

    def __init__(self, compute: float, wait: float, callback: Callable[..., Any], args: tuple):
        self.compute = compute
        self.wait = wait
        self.callback = callback
        self.args = args
        self.ctx = None  # optional TraceContext (repro.obs causal tracing)
        self.enqueue_time = 0.0
        self.dispatch_time = 0.0
        self.grant_time = 0.0
        self.compute_done_time = 0.0
        self.complete_time = 0.0

    # Per-event breakdown (used by tests and the Fig.-4 bench tracer).
    @property
    def queue_wait(self) -> float:
        """Time spent in the stage queue before a thread picked it up."""
        return self.dispatch_time - self.enqueue_time

    @property
    def ready_time(self) -> float:
        """Time runnable but waiting for a processor (``r``)."""
        return self.grant_time - self.dispatch_time

    @property
    def cpu_time(self) -> float:
        """Measured on-CPU time (``x``), inclusive of switch inflation."""
        return self.compute_done_time - self.grant_time

    @property
    def wallclock(self) -> float:
        """``z`` — thread-held wall-clock time: r + x + w."""
        return self.complete_time - self.dispatch_time


@dataclass
class StatsWindow:
    """A snapshot diff of :class:`StageStats` over a sampling window."""

    elapsed: float
    arrivals: int
    completions: int
    mean_z: float
    mean_x: float
    mean_queue_wait: float
    mean_ready: float  # ground truth; the alpha estimator must not use it
    mean_wait: float = 0.0  # blocking wait; observable only with OS/ETW support

    @property
    def arrival_rate(self) -> float:
        return self.arrivals / self.elapsed if self.elapsed > 0 else 0.0


class StageStats:
    """Monotone counters; sample with :meth:`snapshot` + :meth:`window`."""

    __slots__ = (
        "arrivals",
        "completions",
        "sum_z",
        "sum_x",
        "sum_queue_wait",
        "sum_ready",
        "sum_wait",
    )

    def __init__(self) -> None:
        self.arrivals = 0
        self.completions = 0
        self.sum_z = 0.0
        self.sum_x = 0.0
        self.sum_queue_wait = 0.0
        self.sum_ready = 0.0
        self.sum_wait = 0.0

    def snapshot(self) -> tuple:
        return (
            self.arrivals,
            self.completions,
            self.sum_z,
            self.sum_x,
            self.sum_queue_wait,
            self.sum_ready,
            self.sum_wait,
        )

    def window(self, before: tuple, elapsed: float) -> StatsWindow:
        arrivals = self.arrivals - before[0]
        completions = self.completions - before[1]
        n = max(completions, 1)
        wait_before = before[6] if len(before) > 6 else 0.0
        return StatsWindow(
            elapsed=elapsed,
            arrivals=arrivals,
            completions=completions,
            mean_z=(self.sum_z - before[2]) / n,
            mean_x=(self.sum_x - before[3]) / n,
            mean_queue_wait=(self.sum_queue_wait - before[4]) / n,
            mean_ready=(self.sum_ready - before[5]) / n,
            mean_wait=(self.sum_wait - wait_before) / n,
        )


class Stage:
    """A single SEDA stage.

    Args:
        sim: driving simulator.
        cpu: the server's shared processor pool.
        name: stage name ("receiver", "worker", ...).
        threads: initial thread-pool size.
        blocking: whether events of this stage may carry a synchronous
            wait component (the paper's S0 — stages *known* to never block
            — is the complement of this flag).
        tracer: deprecated single-callback form of :attr:`observers`;
            append ``hook(stage, event)`` callables to ``observers``
            instead.
    """

    # Armed race sanitizer; class-level None so the disarmed completion
    # path pays one attribute load and no per-instance storage.
    _san = None

    def __init__(
        self,
        sim: Simulator,
        cpu: CpuPool,
        name: str,
        threads: int = 1,
        blocking: bool = False,
        tracer: Optional[Callable[["Stage", StageEvent], None]] = None,
    ):
        if threads < 1:
            raise ValueError("a stage needs at least one thread")
        self.sim = sim
        self.cpu = cpu
        self.name = name
        self.blocking = blocking
        #: Per-event completion hooks ``hook(stage, event)``, fired in
        #: registration order after the stats update, before the event's
        #: own callback.  Hooks must observe only (no scheduling, no RNG).
        self.observers: list[Callable[["Stage", StageEvent], None]] = []
        self._legacy_tracer: Optional[Callable[["Stage", StageEvent], None]] = None
        if tracer is not None:
            self.tracer = tracer
        self.stats = StageStats()
        #: Queue depth at which :attr:`backpressure` starts reporting a
        #: non-zero signal (None disables it).  Set cluster-wide via
        #: ``AdmissionConfig.stage_soft_limit``.
        self.soft_limit: Optional[int] = None

        self._threads = threads
        self._busy = 0
        self._queue: deque[StageEvent] = deque()
        cpu.register_threads(threads)

    # ------------------------------------------------------------------
    # Completion hooks
    # ------------------------------------------------------------------
    @property
    def tracer(self) -> Optional[Callable[["Stage", StageEvent], None]]:
        """Deprecated: the single-callback predecessor of :attr:`observers`."""
        return self._legacy_tracer

    @tracer.setter
    def tracer(self, callback: Optional[Callable[["Stage", StageEvent], None]]) -> None:
        warnings.warn(
            "Stage.tracer is deprecated; append to Stage.observers instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if self._legacy_tracer is not None:
            self.observers.remove(self._legacy_tracer)
        self._legacy_tracer = callback
        if callback is not None:
            self.observers.append(callback)

    # ------------------------------------------------------------------
    # Thread-pool control (the knob §5 optimizes)
    # ------------------------------------------------------------------
    @property
    def threads(self) -> int:
        return self._threads

    def set_threads(self, n: int) -> None:
        """Resize the pool.  Shrinking is lazy: busy threads finish their
        current event and then retire, as in real SEDA controllers."""
        if n < 1:
            raise ValueError("a stage needs at least one thread")
        self.cpu.register_threads(n - self._threads)
        self._threads = n
        self._dispatch()

    # ------------------------------------------------------------------
    # Event flow
    # ------------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def busy_threads(self) -> int:
        return self._busy

    @property
    def backpressure(self) -> float:
        """Instantaneous overload signal in [0, 1].

        0.0 below the soft limit (or with no limit configured); ramps
        linearly to 1.0 as the queue reaches twice the limit.  Thread
        controllers and admission policies may observe this without any
        effect on the simulation (it is a pure read).
        """
        limit = self.soft_limit
        if limit is None:
            return 0.0
        excess = len(self._queue) - limit
        if excess <= 0:
            return 0.0
        return min(1.0, excess / limit)

    def submit(
        self,
        compute: float,
        callback: Callable[..., Any],
        *args: Any,
        wait: float = 0.0,
    ) -> StageEvent:
        """Enqueue an event; ``callback(event, *args)`` fires at completion."""
        if wait > 0 and not self.blocking:
            raise ValueError(f"stage {self.name!r} is declared non-blocking")
        event = StageEvent(compute, wait, callback, args)
        event.enqueue_time = self.sim.now
        self.stats.arrivals += 1
        self._queue.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        queue = self._queue
        if not queue or self._busy >= self._threads:
            return
        now = self.sim.now
        submit = self.cpu.submit
        while queue and self._busy < self._threads:
            self._busy += 1
            event = queue.popleft()
            event.dispatch_time = now
            submit(event.compute, self._compute_done, event)

    def _compute_done(self, burst: CpuBurst, event: StageEvent) -> None:
        event.grant_time = burst.grant_time
        event.compute_done_time = self.sim.now
        if event.wait > 0:
            # Blocking wait: the thread is held but the core is released.
            self.sim.defer(event.wait, self._complete, event)
        else:
            self._complete(event)

    def _complete(self, event: StageEvent) -> None:
        now = self.sim.now
        event.complete_time = now
        # Inlined per-event breakdown (the property forms are one Python
        # call each; this method runs once per work item).
        dispatch_time = event.dispatch_time
        grant_time = event.grant_time
        st = self.stats
        st.completions += 1
        st.sum_z += now - dispatch_time
        st.sum_x += event.compute_done_time - grant_time
        st.sum_queue_wait += dispatch_time - event.enqueue_time
        st.sum_ready += grant_time - dispatch_time
        st.sum_wait += event.wait
        self._busy -= 1
        if self._queue:
            self._dispatch()
        san = self._san
        if san is None:
            for observer in self.observers:
                observer(self, event)
            event.callback(event, *event.args)
            return
        # Sanitizer armed: attribute the callback (and anything it touches)
        # to this stage unless a finer-grained context is pushed inside.
        san.push_context(f"stage:{self.name}")
        try:
            for observer in self.observers:
                observer(self, event)
            event.callback(event, *event.args)
        finally:
            san.pop_context()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Stage({self.name!r}, threads={self._threads}, busy={self._busy}, "
            f"queued={len(self._queue)})"
        )
