"""Standalone K-stage SEDA pipeline emulator.

§5.1 of the paper builds "a SEDA emulator with 6 stages" to demonstrate
that queue-length-threshold thread controllers oscillate (Fig. 7).  This
module is that emulator: an open-loop Poisson source feeds stage 1; each
request flows through all K stages in order, with per-stage compute and
(optionally) blocking-wait demands.  Controllers attach to the underlying
:class:`~repro.seda.server.StagedServer` and retune thread counts
periodically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..bench.metrics import LatencyRecorder
from ..sim.engine import Simulator
from ..sim.rng import RngRegistry
from .server import StagedServer
from .stage import StageEvent

__all__ = ["StageProfile", "SedaEmulator"]


@dataclass(frozen=True)
class StageProfile:
    """Demand profile of one pipeline stage.

    Attributes:
        name: stage label.
        compute: mean on-CPU seconds per event (x_i).
        wait: mean blocking-wait seconds per event (w_i); 0 for pure-CPU
            stages (the paper's S0 set used to calibrate alpha).
        threads: initial thread-pool size.
    """

    name: str
    compute: float
    wait: float = 0.0
    threads: int = 1


class SedaEmulator:
    """An open-loop staged pipeline with exponential demands.

    Args:
        sim: driving simulator.
        profiles: per-stage demand profiles, in pipeline order.
        arrival_rate: Poisson request rate into stage 1.
        processors: cores shared by all stages.
        rng: RNG registry (streams: ``seda.arrivals``, ``seda.service``).
        deterministic_service: if True, use the mean demands exactly
            (useful for analytical cross-checks); otherwise exponential.
    """

    def __init__(
        self,
        sim: Simulator,
        profiles: Sequence[StageProfile],
        arrival_rate: float,
        processors: int = 8,
        rng: Optional[RngRegistry] = None,
        switch_factor: float = 0.05,
        deterministic_service: bool = False,
    ):
        if not profiles:
            raise ValueError("need at least one stage profile")
        self.sim = sim
        self.profiles = list(profiles)
        self.arrival_rate = arrival_rate
        self.deterministic_service = deterministic_service
        rng = rng or RngRegistry(0)
        self._arrival_rng = rng.stream("seda.arrivals")
        self._service_rng = rng.stream("seda.service")

        self.server = StagedServer(
            sim, processors=processors, switch_factor=switch_factor, name="emulator"
        )
        for profile in self.profiles:
            self.server.add_stage(
                profile.name, threads=profile.threads, blocking=profile.wait > 0
            )
        self.latency = LatencyRecorder()
        self.completed = 0
        self._stopped = False

    # ------------------------------------------------------------------
    # Source
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin generating requests."""
        self._stopped = False
        self._schedule_arrival()

    def stop(self) -> None:
        """Stop generating new requests (in-flight ones drain)."""
        self._stopped = True

    def _schedule_arrival(self) -> None:
        if self._stopped:
            return
        gap = self._arrival_rng.expovariate(self.arrival_rate)
        self.sim.defer(gap, self._arrive)

    def _arrive(self) -> None:
        self._schedule_arrival()
        self._enter_stage(0, self.sim.now)

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def _demand(self, mean: float) -> float:
        if mean <= 0:
            return 0.0
        if self.deterministic_service:
            return mean
        return self._service_rng.expovariate(1.0 / mean)

    def _enter_stage(self, index: int, start_time: float) -> None:
        profile = self.profiles[index]
        stage = self.server.stage(profile.name)
        stage.submit(
            self._demand(profile.compute),
            self._stage_done,
            index,
            start_time,
            wait=self._demand(profile.wait),
        )

    def _stage_done(self, event: StageEvent, index: int, start_time: float) -> None:
        nxt = index + 1
        if nxt < len(self.profiles):
            self._enter_stage(nxt, start_time)
        else:
            self.completed += 1
            self.latency.record(self.sim.now - start_time)

    # ------------------------------------------------------------------
    # Observation helpers for controller experiments (Fig. 7)
    # ------------------------------------------------------------------
    def queue_lengths(self) -> dict[str, int]:
        return {p.name: self.server.stage(p.name).queue_length for p in self.profiles}

    def thread_allocation(self) -> dict[str, int]:
        return self.server.thread_allocation()
