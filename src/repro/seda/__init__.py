"""SEDA substrate: stages, the staged-server chassis, and the standalone
pipeline emulator used for the §5.1 controller study."""

from .emulator import SedaEmulator, StageProfile
from .server import StagedServer
from .stage import Stage, StageEvent, StageStats, StatsWindow

__all__ = [
    "SedaEmulator",
    "Stage",
    "StageEvent",
    "StageProfile",
    "StageStats",
    "StagedServer",
    "StatsWindow",
]
