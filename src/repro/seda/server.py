"""A staged (SEDA) server: shared processors + named stages.

This is the generic chassis used both by the Orleans-style actor server
(:mod:`repro.actor.server`) and by the standalone pipeline emulator
(:mod:`repro.seda.emulator`).  It owns the CPU pool, the stage registry,
and the windowed-sampling machinery that controllers consume.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from ..sim.cpu import CpuPool
from ..sim.engine import Simulator
from .stage import Stage, StageEvent, StatsWindow

__all__ = ["StagedServer"]


class StagedServer:
    """A server made of SEDA stages sharing one processor pool.

    Args:
        sim: driving simulator.
        processors: number of cores (the paper's testbed uses 8).
        switch_factor: per-excess-thread compute inflation (see
            :class:`~repro.sim.cpu.CpuPool`).
        name: diagnostic label.
    """

    def __init__(
        self,
        sim: Simulator,
        processors: int = 8,
        switch_factor: float = 0.05,
        dispatch_overhead: float = 2e-6,
        name: str = "server",
    ):
        self.sim = sim
        self.name = name
        self.cpu = CpuPool(
            sim,
            processors,
            switch_factor=switch_factor,
            dispatch_overhead=dispatch_overhead,
        )
        self.stages: dict[str, Stage] = {}
        self._last_sample_time = 0.0
        self._last_snapshots: dict[str, tuple] = {}
        self._last_busy_time = 0.0

    # ------------------------------------------------------------------
    # Stage management
    # ------------------------------------------------------------------
    def add_stage(
        self,
        name: str,
        threads: int = 1,
        blocking: bool = False,
        tracer: Optional[Callable[[Stage, StageEvent], None]] = None,
    ) -> Stage:
        if name in self.stages:
            raise ValueError(f"stage {name!r} already exists")
        # repro: waive[API-DEPRECATED] -- the shim's own forwarding path; warns only when a tracer is actually passed
        stage = Stage(self.sim, self.cpu, name, threads, blocking=blocking, tracer=tracer)
        self.stages[name] = stage
        return stage

    def stage(self, name: str) -> Stage:
        return self.stages[name]

    def thread_allocation(self) -> dict[str, int]:
        """Current threads per stage."""
        return {name: st.threads for name, st in self.stages.items()}

    def apply_allocation(self, allocation: Mapping[str, int]) -> None:
        """Set thread counts for the named stages (others untouched)."""
        for name, threads in allocation.items():
            self.stages[name].set_threads(threads)

    @property
    def total_threads(self) -> int:
        return sum(st.threads for st in self.stages.values())

    def backpressure(self) -> dict[str, float]:
        """Per-stage instantaneous backpressure (see :attr:`Stage.backpressure`)."""
        return {name: st.backpressure for name, st in self.stages.items()}

    @property
    def max_backpressure(self) -> float:
        """The server's worst stage backpressure right now."""
        return max((st.backpressure for st in self.stages.values()),
                   default=0.0)

    # ------------------------------------------------------------------
    # Windowed sampling (what controllers and estimators consume)
    # ------------------------------------------------------------------
    def begin_window(self) -> None:
        """Mark the start of a measurement window."""
        self._last_sample_time = self.sim.now
        self._last_busy_time = self.cpu.busy_time
        self._last_snapshots = {
            name: st.stats.snapshot() for name, st in self.stages.items()
        }

    def end_window(self) -> dict[str, StatsWindow]:
        """Close the window and return per-stage stats diffs.

        The window is implicitly re-opened at the current instant, so
        periodic controllers can call this alone on every tick.
        """
        elapsed = self.sim.now - self._last_sample_time
        windows = {}
        for name, st in self.stages.items():
            before = self._last_snapshots.get(name)
            if before is None:
                before = (0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
            windows[name] = st.stats.window(before, elapsed)
        self.begin_window()
        return windows

    def cpu_utilization_window(self) -> float:
        """Utilization since the last :meth:`begin_window` call."""
        return self.cpu.utilization(self._last_busy_time, self._last_sample_time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StagedServer({self.name!r}, stages={list(self.stages)})"
