"""Ping-latency microbenchmark for the asyncio backend.

Two silos, one :class:`PingerActor` pinned to silo 0, one
:class:`PongerActor` pinned to silo 1; every client request drives one
cross-silo round trip (``ping -> Call(pong) -> response``).  Over the
TCP transport each round trip pays two real socket hops with pickle
framing — the number this reports is the floor of what the real runtime
adds over the pure-python actor machinery, the asyncio counterpart of
``repro perf``'s event-engine microbenchmarks.

``repro perf --backend asyncio`` runs this and honours the ``--json``
convention; CI's ``asyncio-smoke`` job archives the document.
"""

from __future__ import annotations

import time
from typing import Optional

from ..actor.actor import Actor, idempotent
from ..actor.calls import Call
from ..actor.ids import ActorRef
from ..actor.runtime import ClusterConfig
from ..bench.metrics import percentile
from .asyncio_backend import AsyncioBackend

__all__ = ["PingerActor", "PongerActor", "ping_latency"]


class PongerActor(Actor):
    """Replies with its bounce count (state survives restarts)."""

    def __init__(self) -> None:
        super().__init__()
        self.bounces = 0

    @idempotent
    def pong(self, n: int) -> int:
        self.bounces += 1
        return n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PongerActor(bounces={self.bounces})"


class PingerActor(Actor):
    """One ``ping`` turn = one cross-silo call to its ponger."""

    def __init__(self) -> None:
        super().__init__()
        self.pings = 0

    @idempotent
    def ping(self, n: int):
        """Replay-safe: ``pings`` is a liveness counter, never an exact
        count, and the ponger's bounce is itself idempotent."""
        self.pings += 1
        result = yield Call(ActorRef("ponger", 0), "pong", n, size=64)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PingerActor(pings={self.pings})"


def ping_latency(pings: int = 1000, *, silos: int = 2,
                 transport: str = "tcp", seed: int = 0,
                 warmup: int = 50,
                 backend: Optional[AsyncioBackend] = None) -> dict:
    """Sequential cross-silo round trips; returns the JSON summary doc.

    Each request completes before the next is issued, so every recorded
    latency is one uncontended round trip (client hop + actor turn +
    cross-silo call + response), not a queueing artifact.
    """
    if pings < 1:
        raise ValueError("pings must be >= 1")
    owns_backend = backend is None
    if backend is None:
        backend = AsyncioBackend(
            ClusterConfig(num_servers=max(2, silos), seed=seed),
            transport=transport)
    backend.register_actor("pinger", PingerActor)
    backend.register_actor("ponger", PongerActor)
    backend.start()
    pinger = backend.ref("pinger", 0)
    backend.spawn(pinger, server=0)
    backend.spawn(backend.ref("ponger", 0), server=1)

    latencies: list[float] = []

    def one_ping(n: int, record: bool) -> None:
        backend.client_request(
            pinger, "ping", n, size=64, response_size=64,
            on_complete=(lambda latency, result:
                         latencies.append(latency)) if record else None)
        backend.flush()

    for n in range(warmup):
        one_ping(n, record=False)
    wall_start = time.perf_counter()  # repro: waive[DET-WALLCLOCK] -- real-runtime benchmark: wall time IS the measurement
    for n in range(pings):
        one_ping(n, record=True)
    wall = time.perf_counter() - wall_start  # repro: waive[DET-WALLCLOCK] -- real-runtime benchmark: wall time IS the measurement

    doc = {
        "schema": 1,
        "kind": "asyncio_ping",
        "backend": "asyncio",
        "transport": backend.transport,
        "silos": backend.num_servers,
        "pings": pings,
        "completed": len(latencies),
        "mean_ms": round(sum(latencies) / len(latencies) * 1e3, 4),
        "p50_ms": round(percentile(latencies, 50.0) * 1e3, 4),
        "p99_ms": round(percentile(latencies, 99.0) * 1e3, 4),
        "wall_s": round(wall, 3),
        "throughput_rps": round(pings / wall, 1) if wall > 0 else None,
        "msgs_remote": backend.msgs_remote,
        "msgs_local": backend.msgs_local,
    }
    if owns_backend:
        backend.shutdown()
    return doc
