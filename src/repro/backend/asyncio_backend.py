"""``AsyncioBackend``: the real runtime — the substitution table in reverse.

The same ``repro.actor`` programs that run on the discrete-event
simulator run here over genuine concurrency:

==========================  =============================================
simulated primitive         asyncio primitive
==========================  =============================================
event-heap virtual time     the loop's wall clock (``loop.time()``)
``sim.schedule(d, fn)``     ``loop.call_later(d, fn)``
per-activation work queue   per-activation ``asyncio.Queue`` + pump task
worker-stage turn segment   a coroutine driving the actor generator
``yield Call(...)``         ``await`` on a pending-response future
``yield All([...])``        concurrent awaits joined in call order
``yield Sleep(d)``          ``await asyncio.sleep(d)``
modeled network transit     TCP frames (length-prefixed pickle) or an
                            in-process hop (``loop.call_soon``)
modeled serialization cost  actual ``pickle`` bytes on the TCP path
silo crash (model flag)     cancel the silo's tasks, close its sockets
==========================  =============================================

Silos are task groups on one loop by default (``transport="inproc"``);
``transport="tcp"`` gives every silo a real listening socket on
127.0.0.1 and routes every cross-silo message through the network stack,
so a "remote" call pays genuine serialize → socket → deserialize.
``transport="inproc-copy"`` keeps the in-process hop but pickle
round-trips every cross-silo message — TCP's copy semantics without the
sockets, so the XB portability crosscheck can prove reference-sharing
and copy delivery produce identical logical results.

The public surface deliberately mirrors the slice of
:class:`~repro.actor.runtime.ActorRuntime` that workloads and pools
drive (``register_actor`` / ``ref`` / ``activate`` / ``locate`` /
``client_request`` / ``silos`` / ``placement`` / ``rng`` / ``sim``), so
``StageflowWorkload`` and ``ActorPool`` run **unmodified** on either
engine — the acceptance bar of ROADMAP item 2.

What the real runtime adds that the simulator cannot: supervision
(:mod:`repro.backend.supervision`) — application exceptions inside a
turn are crash events with restart/stop/escalate semantics instead of
run-aborting bugs.
"""

from __future__ import annotations

import asyncio
import inspect
import pickle
import struct
from typing import Any, Callable, Hashable, Optional

from ..actor.actor import Actor
from ..actor.calls import All, Call, Sleep, Tell
from ..analysis.sanitizer import current as _sanitizer_current
from ..actor.directory import Directory
from ..actor.errors import ActorCrashed, ActorError, CallTimeout
from ..actor.ids import ActorId, ActorRef
from ..actor.messages import Message, MessageKind, next_call_id
from ..actor.placement import PlacementPolicy, RandomPlacement
from ..actor.runtime import ClusterConfig
from ..bench.metrics import LatencyRecorder
from ..sim.rng import RngRegistry
from .base import Backend, BackendError, Clock
from .supervision import SupervisionPolicy, Supervisor

__all__ = ["AsyncioBackend", "WallClock", "DEFAULT_CALL_TIMEOUT"]

# Wall-clock seconds before an unanswered call/client request resolves
# as CallTimeout.  The simulator can afford "no timeout" (a lost message
# there is a modeling decision); on a real runtime a crashed callee must
# never hang its caller forever.
DEFAULT_CALL_TIMEOUT = 5.0

_FRAME_HEADER = struct.Struct(">I")
_TRANSPORTS = ("inproc", "inproc-copy", "tcp")


class WallClock:
    """Wall time rebased to 0 at backend construction.

    Satisfies the :class:`~repro.backend.base.Clock` protocol with the
    simulator's ``now``/``schedule``/``defer`` vocabulary so timer-based
    code (fault plans, report loops) runs against either engine.
    """

    __slots__ = ("_loop", "_t0")

    def __init__(self, loop: asyncio.AbstractEventLoop):
        self._loop = loop
        self._t0 = loop.time()

    @property
    def now(self) -> float:
        return self._loop.time() - self._t0

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any):
        return self._loop.call_later(max(0.0, delay), fn, *args)

    # The simulator distinguishes cancellable timers (schedule) from
    # fire-and-forget deferrals; on a real loop both are call_later.
    defer = schedule

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WallClock(now={self.now:.3f})"


class AsyncioActivation:
    """A live actor on one asyncio silo: instance + mailbox + pump."""

    __slots__ = ("actor_id", "instance", "mailbox", "pump_task",
                 "turn_tasks", "stopped", "restarts", "messages_handled",
                 "open_turns")

    def __init__(self, actor_id: ActorId, instance: Actor):
        self.actor_id = actor_id
        self.instance = instance
        self.mailbox: asyncio.Queue = asyncio.Queue()
        self.pump_task: Optional[asyncio.Task] = None
        self.turn_tasks: set[asyncio.Task] = set()
        self.stopped = False          # supervision verdict "stop"
        self.restarts = 0             # supervision restarts of this actor
        self.messages_handled = 0
        self.open_turns = 0

    @property
    def idle(self) -> bool:
        return self.mailbox.empty() and self.open_turns == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AsyncioActivation({self.actor_id})"


class _WorkerShim:
    """The worker-stage sampling surface pools expect from a silo.

    The simulator exposes SEDA stage occupancy; here the analogues are
    mailbox depth (queued turns) and open turns (running/suspended), with
    ``processors`` standing in for the thread pool width.
    """

    __slots__ = ("_silo",)

    def __init__(self, silo: "AsyncioSilo"):
        self._silo = silo

    @property
    def queue_length(self) -> int:
        return sum(a.mailbox.qsize() for a in self._silo.activations.values())

    @property
    def busy_threads(self) -> int:
        return self._silo.open_turns

    @property
    def threads(self) -> int:
        return self._silo.backend.config.processors


class _CpuShim:
    """CPU-pressure sampling surface (``silo.server.cpu`` in the sim)."""

    __slots__ = ("_silo",)

    def __init__(self, silo: "AsyncioSilo"):
        self._silo = silo

    @property
    def run_queue_length(self) -> int:
        return self._silo.open_turns

    @property
    def processors(self) -> int:
        return self._silo.backend.config.processors


class _ServerShim:
    __slots__ = ("cpu",)

    def __init__(self, silo: "AsyncioSilo"):
        self.cpu = _CpuShim(silo)


class AsyncioSilo:
    """One silo: a group of activation tasks, plus an optional TCP port.

    Mirrors the membership flags and counters of the simulated
    :class:`~repro.actor.server.Silo` that workloads/pools/benches read
    (``dead``/``draining``/``activations``/``msgs_*``/``worker``/
    ``server``), so load sampling and deploy loops are backend-blind.
    """

    def __init__(self, backend: "AsyncioBackend", server_id: int):
        self.backend = backend
        self.server_id = server_id
        self.dead = False
        self.draining = False
        self.activations: dict[ActorId, AsyncioActivation] = {}
        # call_id -> future for calls *issued from* this silo's actors.
        self.pending: dict[int, asyncio.Future] = {}
        # destination silo -> (port, writer): cached outbound connections.
        self.peers: dict[int, tuple[int, asyncio.StreamWriter]] = {}
        self.tcp_server: Optional[asyncio.AbstractServer] = None
        self.open_turns = 0
        self.msgs_local = 0
        self.msgs_remote = 0
        self.client_requests = 0
        self.worker = _WorkerShim(self)
        self.server = _ServerShim(self)

    # ------------------------------------------------------------------
    @property
    def num_activations(self) -> int:
        return len(self.activations)

    @property
    def idle(self) -> bool:
        return (self.open_turns == 0 and not self.pending
                and all(a.mailbox.empty() for a in self.activations.values()))

    # ------------------------------------------------------------------
    # Routing (issue path: counts local/remote like the sim's
    # _dispatch_request; arrival path: receive()).
    # ------------------------------------------------------------------
    def _resolve_or_place(self, target: ActorId) -> int:
        backend = self.backend
        location = backend.directory.lookup(target)
        if location is not None:
            return location
        if target in backend.storage or target in backend.discarded:
            # §4.3: a previously-seen actor re-places at the caller.
            destination = self.server_id
        else:
            destination = backend.placement.choose(
                target, self.server_id, backend.num_servers)
        dest_silo = backend.silos[destination]
        if dest_silo.dead or dest_silo.draining:
            live = [s.server_id for s in backend.silos
                    if not (s.dead or s.draining)]
            if not live:
                raise RuntimeError("every silo in the cluster has failed")
            destination = live[destination % len(live)]
            backend.failovers += 1
        backend.activate(target, destination)
        return destination

    def dispatch(self, message: Message) -> None:
        """Issue a request from this silo toward its target."""
        if self.dead:
            return  # dropped on the floor; callers' timeouts handle it
        if message.kind is MessageKind.CLIENT_REQUEST:
            self.client_requests += 1
        target = message.target
        assert target is not None
        destination = self._resolve_or_place(target)
        if destination == self.server_id:
            if message.kind is not MessageKind.CLIENT_REQUEST:
                self.msgs_local += 1
                self.backend.msgs_local += 1
            self._enqueue(self.activations[target], message)
        else:
            if message.kind is not MessageKind.CLIENT_REQUEST:
                self.msgs_remote += 1
                self.backend.msgs_remote += 1
            self.backend._transport_send(self, destination, message)

    def receive(self, message: Message) -> None:
        """A message arrives off the transport."""
        if self.dead:
            return
        if message.kind is MessageKind.RESPONSE:
            self.resolve_response(message)
            return
        activation = self.activations.get(message.target)
        if activation is not None:
            self._enqueue(activation, message)
            return
        # Migrated away (or crashed here): re-resolve and forward.
        self.dispatch(message)

    def _enqueue(self, activation: AsyncioActivation, message: Message) -> None:
        activation.mailbox.put_nowait(message)

    def resolve_response(self, response: Message) -> None:
        future = self.pending.pop(response.call_id, None)
        if future is None or future.done():
            self.backend.late_responses += 1
            return
        future.set_result(response.result)

    # ------------------------------------------------------------------
    # Activation lifecycle
    # ------------------------------------------------------------------
    def host(self, actor_id: ActorId) -> AsyncioActivation:
        if actor_id in self.activations:
            raise ValueError(
                f"{actor_id} is already active on silo {self.server_id}")
        backend = self.backend
        cls = backend.actor_types[actor_id.actor_type]
        instance = cls()
        instance._bind(actor_id, self.server_id)
        state = backend.storage.get(actor_id)
        if state is not None:
            instance.restore_state(state)
        activation = AsyncioActivation(actor_id, instance)
        self.activations[actor_id] = activation
        instance.on_activate()
        activation.pump_task = backend._loop.create_task(
            backend._pump(self, activation),
            name=f"pump:{actor_id}")
        return activation

    def deactivate_actor(self, actor_id: ActorId,
                         discard_state: bool = False) -> bool:
        """Deactivate a quiescent actor (persisting state). Returns False
        when the actor is not here or still has work in flight."""
        activation = self.activations.get(actor_id)
        if activation is None or not activation.idle:
            return False
        backend = self.backend
        activation.instance.on_deactivate()
        if discard_state:
            backend.storage.pop(actor_id, None)
            backend.discarded.add(actor_id)
        else:
            backend.storage[actor_id] = activation.instance.capture_state()
        if activation.pump_task is not None:
            activation.pump_task.cancel()
        del self.activations[actor_id]
        backend.directory.unregister(actor_id)
        return True

    # ------------------------------------------------------------------
    # Failure / membership
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Crash: volatile state lost, tasks cancelled, sockets closed.

        Actors hosted here re-activate elsewhere on their next call,
        restored from last persisted state — the §2 contract, same as
        the simulated silo."""
        if self.dead:
            return
        self.dead = True
        self.draining = False
        backend = self.backend
        for actor_id in list(self.activations):
            backend.directory.unregister(actor_id)
        current = None
        try:
            current = asyncio.current_task()
        except RuntimeError:  # pragma: no cover - no running loop
            pass
        for activation in self.activations.values():
            if (activation.pump_task is not None
                    and activation.pump_task is not current):
                activation.pump_task.cancel()
            for task in list(activation.turn_tasks):
                if task is not current:
                    task.cancel()
        self.activations.clear()
        for future in self.pending.values():
            if not future.done():
                future.cancel()
        self.pending.clear()
        self._close_transport()

    def restart(self) -> None:
        """Bring a failed silo back (empty, ready to host again)."""
        if not self.dead:
            return
        self.dead = False
        self.draining = False
        self.backend._reopen_transport(self)

    def _close_transport(self) -> None:
        for _, writer in self.peers.values():
            writer.close()
        self.peers.clear()
        if self.tcp_server is not None:
            self.tcp_server.close()
            self.tcp_server = None
        self.backend._ports.pop(self.server_id, None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AsyncioSilo({self.server_id}, actors={len(self.activations)})"


class AsyncioBackend(Backend):
    """The real runtime: silos as asyncio task groups on one loop.

    Args:
        config: the shared :class:`~repro.actor.runtime.ClusterConfig`;
            ``num_servers``, ``processors``, ``seed`` and ``time_scale``
            apply here (the modeled-cost knobs — serialization tables,
            network latency — are the simulator's and are ignored: real
            pickling and real sockets charge themselves).
        supervision: crash policy (default: restart with a budget of 3
            per 30 s, then escalate).
        transport: ``"inproc"`` (cross-silo hop = loop callback; the
            fast default for tests), ``"inproc-copy"`` (same hop, but
            every cross-silo message is pickle round-tripped first —
            TCP's copy semantics without the sockets, the validator for
            the XB portability rules), or ``"tcp"`` (every silo listens
            on 127.0.0.1 and cross-silo messages travel as
            length-prefixed pickle frames over real sockets).
        call_timeout: wall-clock seconds before an unanswered call or
            client request fails with
            :class:`~repro.actor.errors.CallTimeout`.
    """

    name = "asyncio"

    def __init__(self, config: Optional[ClusterConfig] = None, *,
                 supervision: Optional[SupervisionPolicy] = None,
                 transport: str = "inproc",
                 call_timeout: Optional[float] = DEFAULT_CALL_TIMEOUT):
        self.config = config or ClusterConfig()
        if self.config.num_servers < 1:
            raise ValueError("need at least one server")
        if transport not in _TRANSPORTS:
            raise BackendError(
                f"unknown transport {transport!r}; expected one of "
                f"{_TRANSPORTS}")
        self.transport = transport
        self.call_timeout = call_timeout
        self._loop = asyncio.new_event_loop()
        self._clock = WallClock(self._loop)
        self.rng_registry = RngRegistry(self.config.seed)
        self.directory = Directory(self.config.num_servers)
        self.placement: PlacementPolicy = RandomPlacement(self.rng_registry)
        self.actor_types: dict[str, type] = {}
        self.storage: dict[ActorId, dict[str, Any]] = {}
        self.discarded: set[ActorId] = set()
        self.obs = None  # observability attachment point (sim parity)
        self.supervisor = Supervisor(supervision)
        self.silos = [AsyncioSilo(self, i)
                      for i in range(self.config.num_servers)]
        self._gateway_rng = self.rng_registry.stream("client.gateway")
        self._ports: dict[int, int] = {}
        # call_id -> (t0, future, hook, timer) for external client calls.
        self._client_pending: dict[int, tuple] = {}
        self._started = False
        self._closed = False

        self.client_latency = LatencyRecorder(reservoir=200_000)
        self.call_latency = LatencyRecorder(reservoir=200_000)
        self.msgs_local = 0
        self.msgs_remote = 0
        self.requests_completed = 0
        self.requests_timed_out = 0
        self.late_responses = 0
        self.pickle_copy_failures = 0
        self.failovers = 0
        self.migrations_total = 0
        self.actor_crashes = 0
        self.silos_added = 0
        self.silos_drained = 0

    # ------------------------------------------------------------------
    # Backend protocol
    # ------------------------------------------------------------------
    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def sim(self) -> Clock:
        """Runtime-facade alias: workload code schedules on ``rt.sim``."""
        return self._clock

    @property
    def rng(self) -> RngRegistry:
        return self.rng_registry

    @property
    def runtime(self) -> "AsyncioBackend":
        return self

    @property
    def num_servers(self) -> int:
        return self.config.num_servers

    @property
    def active_servers(self) -> int:
        return sum(1 for s in self.silos if not (s.dead or s.draining))

    def register_actor(self, actor_type: str, cls: type) -> None:
        if not issubclass(cls, Actor):
            raise TypeError(f"{cls!r} is not an Actor subclass")
        if actor_type in self.actor_types:
            raise ValueError(f"actor type {actor_type!r} already registered")
        self.actor_types[actor_type] = cls

    def ref(self, actor_type: str, key: Hashable) -> ActorRef:
        if actor_type not in self.actor_types:
            raise KeyError(f"unknown actor type {actor_type!r}")
        return ActorRef(actor_type, key)

    def spawn(self, ref: ActorRef, server: Optional[int] = None) -> int:
        location = self.locate(ref.id)
        if location is not None:
            return location
        if server is None:
            server = self.placement.choose(ref.id, 0, self.num_servers)
        destination = self.pick_live_server(server)
        self.activate(ref.id, destination)
        return destination

    def send(self, ref: ActorRef, method: str, *args: Any,
             size: int = 256) -> None:
        gateway = self.silos[self.pick_live_server(
            self._gateway_rng.randrange(self.num_servers))]
        message = Message(
            kind=MessageKind.ONEWAY,
            target=ref.id,
            method=method,
            args=args,
            size=size,
            created_at=self._clock.now,
        )
        gateway.dispatch(message)

    def call(self, ref: ActorRef, method: str, *args: Any,
             size: int = 256, response_size: int = 256,
             on_complete: Optional[Callable[[float, Any], None]] = None,
             idempotent: bool = True) -> asyncio.Future:
        return self.client_request(
            ref, method, *args, size=size, response_size=response_size,
            on_complete=on_complete, idempotent=idempotent)

    # ------------------------------------------------------------------
    # Runtime facade: activation management
    # ------------------------------------------------------------------
    def activate(self, actor_id: ActorId, server: int) -> None:
        self.directory.register(actor_id, server)
        self.silos[server].host(actor_id)

    def locate(self, actor_id: ActorId) -> Optional[int]:
        return self.directory.lookup(actor_id)

    def deactivate(self, actor_id: ActorId, discard_state: bool = False) -> bool:
        location = self.directory.lookup(actor_id)
        if location is None:
            return False
        return self.silos[location].deactivate_actor(
            actor_id, discard_state=discard_state)

    def census(self) -> dict[int, int]:
        return self.directory.census()

    def pick_live_server(self, preferred: Optional[int] = None) -> int:
        if preferred is not None:
            silo = self.silos[preferred]
            if not (silo.dead or silo.draining):
                return preferred
        live = [s.server_id for s in self.silos if not (s.dead or s.draining)]
        if not live:
            raise RuntimeError("every silo in the cluster has failed")
        return live[self._gateway_rng.randrange(len(live))]

    def remote_message_fraction(self) -> float:
        total = self.msgs_local + self.msgs_remote
        return self.msgs_remote / total if total else 0.0

    @property
    def inflight_requests(self) -> int:
        return len(self._client_pending)

    # ------------------------------------------------------------------
    # Runtime facade: membership (fault plans / autoscale vocabulary)
    # ------------------------------------------------------------------
    def fail_silo(self, server: int) -> None:
        self.silos[server].fail()

    def restart_silo(self, server: int) -> None:
        self.silos[server].restart()

    def add_silo(self, server: Optional[int] = None) -> Optional[int]:
        if server is None:
            for silo in self.silos:
                if silo.dead:
                    server = silo.server_id
                    break
            else:
                return None
        silo = self.silos[server]
        if not silo.dead:
            return None
        silo.restart()
        self.silos_added += 1
        return server

    def drain_silo(self, server: int, poll: float = 0.05,
                   on_complete: Optional[Callable[[int], None]] = None) -> bool:
        silo = self.silos[server]
        if silo.dead or silo.draining:
            return False
        others = [s for s in self.silos
                  if not (s.dead or s.draining) and s.server_id != server]
        if not others:
            raise RuntimeError("cannot drain the last live silo")
        silo.draining = True
        self._clock.schedule(poll, self._drain_poll, server, poll, on_complete)
        return True

    def _drain_poll(self, server: int, poll: float,
                    on_complete: Optional[Callable[[int], None]]) -> None:
        silo = self.silos[server]
        if silo.dead:
            if on_complete is not None:
                on_complete(server)
            return
        # Persist-and-evict every quiescent activation; the next call to
        # each re-places it on a live silo (its state followed it out).
        for actor_id in list(silo.activations):
            if silo.deactivate_actor(actor_id):
                self.migrations_total += 1
        if not silo.activations and silo.open_turns == 0 and not silo.pending:
            silo.dead = True
            silo.draining = False
            silo._close_transport()
            self.silos_drained += 1
            if on_complete is not None:
                on_complete(server)
            return
        self._clock.schedule(poll, self._drain_poll, server, poll, on_complete)

    # ------------------------------------------------------------------
    # Client traffic
    # ------------------------------------------------------------------
    def client_request(
        self,
        ref: ActorRef,
        method: str,
        *args: Any,
        size: int = 256,
        response_size: int = 256,
        on_complete: Optional[Callable[[float, Any], None]] = None,
        idempotent: bool = True,
    ) -> asyncio.Future:
        """Issue one external request; returns a future for the result.

        Mirrors the simulator's signature (``on_complete(latency,
        result)``); additionally returns an ``asyncio.Future`` callers
        may await inside the loop or drain via :meth:`flush`.
        """
        call_id = next_call_id()
        future = self._loop.create_future()
        timer = None
        if self.call_timeout is not None:
            timer = self._clock.schedule(
                self.call_timeout, self._client_timed_out,
                call_id, ref.id, method)
        self._client_pending[call_id] = (self._clock.now, future,
                                         on_complete, timer)
        gateway = self.silos[self.pick_live_server(
            self._gateway_rng.randrange(self.num_servers))]
        message = Message(
            kind=MessageKind.CLIENT_REQUEST,
            target=ref.id,
            method=method,
            args=args,
            size=size,
            call_id=call_id,
            created_at=self._clock.now,
            response_size=response_size,
        )
        gateway.dispatch(message)
        return future

    def _complete_client(self, message: Message, result: Any) -> None:
        entry = self._client_pending.pop(message.call_id, None)
        if entry is None:
            self.late_responses += 1
            return
        t0, future, hook, timer = entry
        if timer is not None:
            timer.cancel()
        latency = self._clock.now - t0
        self.client_latency.record(latency)
        self.requests_completed += 1
        if not future.done():
            future.set_result(result)
        if hook is not None:
            hook(latency, result)

    def _client_timed_out(self, call_id: int, target: ActorId,
                          method: str) -> None:
        entry = self._client_pending.pop(call_id, None)
        if entry is None:
            return  # already resolved; stale timer
        t0, future, hook, _ = entry
        self.requests_timed_out += 1
        error = CallTimeout(target, method, self.call_timeout or 0.0)
        if not future.done():
            future.set_result(error)
        if hook is not None:
            hook(self._clock.now - t0, error)

    # ------------------------------------------------------------------
    # Turn execution: mailbox pump -> turn coroutine -> generator driver
    # ------------------------------------------------------------------
    async def _pump(self, silo: AsyncioSilo, activation: AsyncioActivation) -> None:
        """One task per activation: pops the mailbox in FIFO order and
        starts turns — concurrently for reentrant actors (the default),
        strictly one-at-a-time otherwise (Orleans' turn contract)."""
        try:
            while True:
                message = await activation.mailbox.get()
                if activation.stopped:
                    self._respond(silo, message, ActorError(
                        f"actor {activation.actor_id} was stopped by its "
                        f"supervisor"))
                    continue
                if type(activation.instance).REENTRANT:
                    task = self._loop.create_task(
                        self._turn(silo, activation, message),
                        name=f"turn:{activation.actor_id}.{message.method}")
                    activation.turn_tasks.add(task)
                    task.add_done_callback(activation.turn_tasks.discard)
                else:
                    await self._turn(silo, activation, message)
        except asyncio.CancelledError:
            raise

    async def _turn(self, silo: AsyncioSilo, activation: AsyncioActivation,
                    message: Message) -> None:
        activation.messages_handled += 1
        activation.open_turns += 1
        silo.open_turns += 1
        try:
            method = getattr(activation.instance, message.method, None)
            if method is None:
                result: Any = ActorError(
                    f"actor {activation.actor_id} has no method "
                    f"{message.method!r}")
            else:
                try:
                    if inspect.isgeneratorfunction(method):
                        result = await self._drive(
                            silo, activation, method(*message.args))
                    else:
                        result = method(*message.args)
                except ActorError as error:
                    result = error
                except asyncio.CancelledError:
                    raise
                except Exception as error:  # noqa: BLE001 — supervision seam
                    result = self._actor_crashed(
                        silo, activation, message, error)
        finally:
            activation.open_turns -= 1
            silo.open_turns -= 1
        self._respond(silo, message, result)

    async def _drive(self, silo: AsyncioSilo, activation: AsyncioActivation,
                     generator) -> Any:
        """Interpret the generator-coroutine protocol — the same Call /
        All / Tell / Sleep vocabulary the simulated turn executor runs,
        with awaits where the simulator queues resumes."""
        send_value: Any = None
        throw = False
        while True:
            try:
                if throw:
                    throw = False
                    yielded = generator.throw(send_value)
                else:
                    yielded = generator.send(send_value)
            except StopIteration as stop:
                return stop.value
            if isinstance(yielded, Tell):
                self._probe_payload(activation, generator, yielded.args)
                oneway = Message(
                    kind=MessageKind.ONEWAY,
                    target=yielded.target.id,
                    method=yielded.method,
                    args=yielded.args,
                    size=yielded.size,
                    sender=activation.actor_id,
                    created_at=self._clock.now,
                )
                silo.dispatch(oneway)
                send_value = None
                continue
            if isinstance(yielded, Sleep):
                await asyncio.sleep(yielded.duration * self.config.time_scale)
                send_value = None
                continue
            if isinstance(yielded, Call):
                self._probe_payload(activation, generator, yielded.args)
                result = await self._issue_call(silo, activation, yielded)
                if isinstance(result, ActorError):
                    send_value, throw = result, True
                else:
                    send_value = result
                continue
            if isinstance(yielded, All):
                for call in yielded.calls:
                    self._probe_payload(activation, generator, call.args)
                results = await asyncio.gather(
                    *(self._issue_call(silo, activation, call)
                      for call in yielded.calls))
                errors = [r for r in results if isinstance(r, ActorError)]
                if errors:
                    send_value, throw = errors[0], True  # first error wins
                else:
                    send_value = list(results)
                continue
            raise TypeError(
                f"actor {activation.actor_id} yielded {yielded!r}; expected "
                "Call, All, Sleep, or Tell")

    async def _issue_call(self, silo: AsyncioSilo,
                          activation: AsyncioActivation, call: Call) -> Any:
        """One actor-to-actor call: dispatch, await the response future.
        Never raises — errors (including timeouts) return as values for
        the driver to throw at the yield point."""
        call_id = next_call_id()
        future = self._loop.create_future()
        silo.pending[call_id] = future
        message = Message(
            kind=MessageKind.CALL,
            target=call.target.id,
            method=call.method,
            args=call.args,
            size=call.size,
            call_id=call_id,
            sender=activation.actor_id,
            reply_to_server=silo.server_id,
            created_at=self._clock.now,
            response_size=call.response_size,
        )
        issued_at = self._clock.now
        silo.dispatch(message)
        timeout = (call.timeout if call.timeout is not None
                   else self.call_timeout)
        try:
            if timeout is not None:
                result = await asyncio.wait_for(future, timeout)
            else:
                result = await future
        except (asyncio.TimeoutError, asyncio.CancelledError) as error:
            silo.pending.pop(call_id, None)
            if isinstance(error, asyncio.CancelledError) and silo.dead:
                raise  # our own silo died under us: the turn is gone
            if isinstance(error, asyncio.CancelledError) and not future.cancelled():
                raise  # external cancellation (shutdown), not a timeout
            return CallTimeout(call.target.id, call.method, timeout or 0.0)
        self.call_latency.record(self._clock.now - issued_at)
        return result

    def _respond(self, silo: AsyncioSilo, message: Message, result: Any) -> None:
        if message.kind is MessageKind.ONEWAY or silo.dead:
            return
        if message.kind is MessageKind.CLIENT_REQUEST:
            self._complete_client(message, result)
            return
        response = message.make_response(
            result, size=message.response_size, server_id=silo.server_id)
        destination = message.reply_to_server
        assert destination is not None
        if destination == silo.server_id:
            silo.msgs_local += 1
            self.msgs_local += 1
            silo.resolve_response(response)
        else:
            silo.msgs_remote += 1
            self.msgs_remote += 1
            self._transport_send(silo, destination, response)

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _actor_crashed(self, silo: AsyncioSilo, activation: AsyncioActivation,
                       message: Message, error: BaseException) -> ActorCrashed:
        self.actor_crashes += 1
        decision = self.supervisor.decide(activation.actor_id, self._clock.now)
        if decision == "restart":
            self._restart_activation(silo, activation)
        elif decision == "stop":
            activation.stopped = True
        else:  # escalate: the failure is the silo's
            silo.fail()
        return ActorCrashed(activation.actor_id, message.method, error)

    def _restart_activation(self, silo: AsyncioSilo,
                            activation: AsyncioActivation) -> None:
        """Restart in place: fresh instance, last persisted state."""
        cls = type(activation.instance)
        instance = cls()
        instance._bind(activation.actor_id, silo.server_id)
        state = self.storage.get(activation.actor_id)
        if state is not None:
            instance.restore_state(state)
        activation.instance = instance
        activation.restarts += 1
        instance.on_activate()

    # ------------------------------------------------------------------
    # Payload probe (sanitizer)
    # ------------------------------------------------------------------
    def _probe_payload(self, activation: AsyncioActivation, generator,
                       args: tuple) -> None:
        """While a sanitizer is armed, inspect an outgoing payload for
        the dynamic cousins of the XB rules: an argument the sender's
        own state still references (shared inproc, copied over TCP —
        XB-ALIASED-MUTABLE) and arguments pickle rejects outright
        (XB-UNPICKLABLE-PAYLOAD).  Disarmed cost: one None check."""
        san = _sanitizer_current()
        if san is None or not args:
            return
        sender = type(activation.instance).__name__
        method = getattr(generator, "__name__", "<turn>")
        state = activation.instance.__dict__
        mutable_ids = {id(v) for v in state.values()
                       if isinstance(v, (list, dict, set, bytearray))}

        def aliases_state(obj: Any) -> bool:
            return id(obj) in mutable_ids

        for arg in args:
            hit = aliases_state(arg)
            if not hit and isinstance(arg, (list, tuple, set)):
                hit = any(aliases_state(e) for e in arg)
            elif not hit and isinstance(arg, dict):
                hit = any(aliases_state(v) for v in arg.values())
            if hit:
                san.record_payload_alias(
                    sender, method,
                    f"payload {type(arg).__name__} aliases sender state")
                break
        try:
            pickle.dumps(args, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as err:  # noqa: BLE001 — pickle raises many types
            san.record_unpicklable_payload(sender, method, repr(err))

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _transport_send(self, silo: AsyncioSilo, destination: int,
                        message: Message) -> None:
        dest = self.silos[destination]
        if self.transport == "tcp":
            self._loop.create_task(
                self._tcp_send(silo, destination, message),
                name=f"send:{silo.server_id}->{destination}")
            return
        if self.transport == "inproc-copy":
            copied = self._copy_message(message)
            if copied is None:
                return  # unpicklable: lost, exactly as it would be on TCP
            message = copied
        # A cross-silo hop is always asynchronous — never runs the
        # receiver inside the sender's stack frame.
        self._loop.call_soon(dest.receive, message)

    def _copy_message(self, message: Message) -> Optional[Message]:
        """Pickle round-trip one cross-silo message: TCP's deep-copy
        semantics at the same boundary (and only there — local delivery
        stays by-reference on every transport), without the sockets.
        An unpicklable message is dropped, as TCP would lose it."""
        try:
            return pickle.loads(
                pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:  # noqa: BLE001 — pickle raises many types
            self.pickle_copy_failures += 1
            return None

    async def _tcp_send(self, silo: AsyncioSilo, destination: int,
                        message: Message) -> None:
        if silo.dead:
            return
        try:
            payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:  # noqa: BLE001 — pickle raises many types
            # Unserializable payload: the message can never cross the
            # wire.  Count it and drop (the caller's timeout fires);
            # propagating here would only kill an unawaited task.
            self.pickle_copy_failures += 1
            return
        try:
            writer = await self._peer_writer(silo, destination)
            if writer is None:
                return  # destination is down: dropped, like the sim
            writer.write(_FRAME_HEADER.pack(len(payload)) + payload)
            await writer.drain()
        except (ConnectionError, OSError):
            # Connection died (peer crashed mid-send): message is lost;
            # invalidate the cached writer so the next send reconnects.
            silo.peers.pop(destination, None)

    async def _peer_writer(self, silo: AsyncioSilo,
                           destination: int) -> Optional[asyncio.StreamWriter]:
        port = self._ports.get(destination)
        if port is None:
            return None
        cached = silo.peers.get(destination)
        if cached is not None:
            cached_port, writer = cached
            if cached_port == port and not writer.is_closing():
                return writer
            writer.close()
            silo.peers.pop(destination, None)
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        silo.peers[destination] = (port, writer)
        return writer

    async def _serve_peer(self, silo: AsyncioSilo,
                          reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                header = await reader.readexactly(_FRAME_HEADER.size)
                (length,) = _FRAME_HEADER.unpack(header)
                payload = await reader.readexactly(length)
                message = pickle.loads(payload)
                silo.receive(message)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # Shutdown cancels reader tasks mid-readexactly; finishing
            # normally here keeps streams' connection_made callback from
            # re-raising the cancellation into the loop's exception
            # handler (noise, not signal, during teardown).
            pass
        finally:
            writer.close()

    async def _open_server(self, silo: AsyncioSilo) -> None:
        server = await asyncio.start_server(
            lambda r, w: self._serve_peer(silo, r, w), "127.0.0.1", 0)
        silo.tcp_server = server
        self._ports[silo.server_id] = server.sockets[0].getsockname()[1]

    def _reopen_transport(self, silo: AsyncioSilo) -> None:
        if self.transport != "tcp" or not self._started:
            return
        if self._loop.is_running():
            self._loop.create_task(self._open_server(silo))
        else:
            self._loop.run_until_complete(self._open_server(silo))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "AsyncioBackend":
        if self._started:
            return self
        self._started = True
        if self.transport == "tcp":
            async def _open_all() -> None:
                for silo in self.silos:
                    if not silo.dead:
                        await self._open_server(silo)
            self._loop.run_until_complete(_open_all())
        return self

    def run(self, until: Optional[float] = None) -> None:
        """Advance the wall clock to ``until`` (seconds since backend
        construction), or run to idle when ``until`` is None."""
        if not self._started:
            self.start()
        if until is None:
            self.run_until_idle()
            return
        remaining = until - self._clock.now
        if remaining > 0:
            self._loop.run_until_complete(asyncio.sleep(remaining))

    def run_until_idle(self, timeout: float = 30.0) -> bool:
        """Spin the loop until no client request is pending and every
        silo is quiescent (or ``timeout`` wall seconds pass).  Returns
        True when idleness was reached."""
        if not self._started:
            self.start()

        async def _idle() -> bool:
            deadline = self._loop.time() + timeout
            settled = 0
            while self._loop.time() < deadline:
                if (not self._client_pending
                        and all(s.idle or s.dead for s in self.silos)):
                    # Two consecutive idle observations: transport tasks
                    # (call_soon hops, tcp frames) get a chance to land.
                    settled += 1
                    if settled >= 2:
                        return True
                else:
                    settled = 0
                await asyncio.sleep(0.001)
            return False

        return self._loop.run_until_complete(_idle())

    def flush(self, timeout: float = 30.0) -> None:
        """Drive the loop until every currently-pending client request
        has resolved (completed or timed out)."""
        if not self._started:
            self.start()
        futures = [entry[1] for entry in self._client_pending.values()]
        if not futures:
            return
        self._loop.run_until_complete(
            asyncio.wait(futures, timeout=timeout))

    def shutdown(self) -> None:
        """Cancel every task, close every socket, close the loop."""
        if self._closed:
            return
        self._closed = True

        async def _close() -> None:
            tasks = [t for t in asyncio.all_tasks(self._loop)
                     if t is not asyncio.current_task()]
            for task in tasks:
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            for silo in self.silos:
                silo._close_transport()

        try:
            if not self._loop.is_closed():
                self._loop.run_until_complete(_close())
        finally:
            if not self._loop.is_closed():
                self._loop.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"AsyncioBackend(servers={self.num_servers}, "
                f"transport={self.transport!r}, t={self._clock.now:.3f})")
