"""Supervision policies: what happens when an actor turn crashes.

The simulator treats any non-``ActorError`` exception inside a turn as a
bug in the *simulation* and crashes the run loudly — correct for a
deterministic model, useless for a live runtime where application code
throws for real.  The asyncio backend therefore layers classic
supervision-tree semantics (Erlang/OTP restart strategies, as catalogued
in the actor-model pattern notes) on top of the Orleans re-activation
contract:

* ``restart`` — re-instantiate the actor in place from its last
  *persisted* state, up to ``max_restarts`` crashes within a sliding
  ``window``; past the budget, fall through to ``on_exhaustion``.
* ``stop`` — mark the activation stopped; subsequent messages fail with
  an :class:`~repro.actor.errors.ActorError` instead of re-running
  broken code.
* ``escalate`` — the failure is the silo's: fail the whole silo, losing
  its volatile state, exactly like a :class:`~repro.faults.plan.SiloCrash`
  — the next call re-places every hosted actor elsewhere (§2's
  fault-tolerance contract), which is how an escalation ultimately
  *heals*.

Whatever the decision, the caller always observes the crash as an
:class:`~repro.actor.errors.ActorCrashed` result at its await point —
supervision decides the *actor's* fate, never silently swallows the
error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..actor.ids import ActorId

__all__ = ["SupervisionPolicy", "Supervisor"]

_STRATEGIES = ("restart", "stop", "escalate")
_EXHAUSTION = ("escalate", "stop")


@dataclass(frozen=True)
class SupervisionPolicy:
    """Declarative crash-handling policy for one backend.

    Attributes:
        strategy: ``restart`` | ``stop`` | ``escalate`` — the decision
            for a crashing actor (``restart`` is the OTP default and
            ours).
        max_restarts: restart budget per actor within ``window`` (only
            meaningful for ``restart``).  The budget counts *crashes*:
            the (max_restarts+1)-th crash inside the window exhausts it.
        window: sliding window (seconds, backend clock) over which
            crashes are counted toward the budget.
        on_exhaustion: ``escalate`` | ``stop`` — what a budget-exhausted
            actor gets instead of another restart.
    """

    strategy: str = "restart"
    max_restarts: int = 3
    window: float = 30.0
    on_exhaustion: str = "escalate"

    def __post_init__(self) -> None:
        if self.strategy not in _STRATEGIES:
            raise ValueError(
                f"unknown supervision strategy {self.strategy!r}; "
                f"expected one of {_STRATEGIES}")
        if self.on_exhaustion not in _EXHAUSTION:
            raise ValueError(
                f"unknown on_exhaustion {self.on_exhaustion!r}; "
                f"expected one of {_EXHAUSTION}")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.window <= 0:
            raise ValueError("window must be > 0")


class Supervisor:
    """Per-backend crash bookkeeping: applies a :class:`SupervisionPolicy`.

    Pure decision logic — the backend executes the verdict (re-binding
    the instance, marking the activation stopped, failing the silo).
    Kept separate so the budget/window arithmetic is unit-testable
    without an event loop.
    """

    def __init__(self, policy: Optional[SupervisionPolicy] = None):
        self.policy = policy or SupervisionPolicy()
        self._crashes: dict[ActorId, list[float]] = {}
        self.restarts = 0
        self.stops = 0
        self.escalations = 0

    def decide(self, actor_id: ActorId, now: float) -> str:
        """Record one crash of ``actor_id`` at ``now``; return the verdict
        (``restart`` / ``stop`` / ``escalate``)."""
        policy = self.policy
        if policy.strategy == "restart":
            window_start = now - policy.window
            history = [t for t in self._crashes.get(actor_id, ())
                       if t > window_start]
            history.append(now)
            self._crashes[actor_id] = history
            decision = ("restart" if len(history) <= policy.max_restarts
                        else policy.on_exhaustion)
        else:
            decision = policy.strategy
        if decision == "restart":
            self.restarts += 1
        elif decision == "stop":
            self.stops += 1
        else:
            self.escalations += 1
        return decision

    def crashes_in_window(self, actor_id: ActorId, now: float) -> int:
        """How many recorded crashes of ``actor_id`` are inside the
        policy window at ``now`` (introspection for tests/benches)."""
        window_start = now - self.policy.window
        return sum(1 for t in self._crashes.get(actor_id, ())
                   if t > window_start)

    def forget(self, actor_id: ActorId) -> None:
        """Drop crash history (e.g. after the silo hosting it failed)."""
        self._crashes.pop(actor_id, None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Supervisor({self.policy.strategy!r}, "
                f"restarts={self.restarts}, stops={self.stops}, "
                f"escalations={self.escalations})")
