"""Fault plans on the asyncio backend: the same vocabulary, real timers.

One :class:`~repro.faults.plan.FaultPlan` drives both engines.  The
crash/membership subset — :class:`SiloCrash`, :class:`SiloRestart`,
:class:`AddSilo`, :class:`DrainSilo` — maps directly: the injector arms
a wall-clock timer per action and calls the same ``fail_silo`` /
``restart_silo`` / ``add_silo`` / ``drain_silo`` runtime verbs the
simulated injector calls.

The *modeled-network* subset (partitions, link degradation, slow silos,
directory staleness) has no meaning over real sockets yet — those
actions are rejected at **build** time with a
:class:`~repro.backend.base.BackendError` naming the offending action,
never silently skipped mid-run.
"""

from __future__ import annotations

from typing import Optional

from ..faults.plan import AddSilo, DrainSilo, FaultPlan, SiloCrash, SiloRestart
from .base import BackendError

__all__ = ["AsyncioFaultInjector", "SUPPORTED_ACTIONS"]

SUPPORTED_ACTIONS = (SiloCrash, SiloRestart, AddSilo, DrainSilo)


class AsyncioFaultInjector:
    """Schedules a crash-vocabulary :class:`FaultPlan` on wall-clock time."""

    def __init__(self, backend, plan: Optional[FaultPlan] = None):
        self.backend = backend
        self.plan = plan or FaultPlan()
        for action in self.plan:
            if not isinstance(action, SUPPORTED_ACTIONS):
                supported = ", ".join(c.__name__ for c in SUPPORTED_ACTIONS)
                raise BackendError(
                    f"the asyncio backend cannot inject "
                    f"{type(action).__name__} (its network/compute model "
                    f"is real, not simulated); supported actions: "
                    f"{supported}")
        self.started = False
        self.faults_started = 0

    def start(self) -> "AsyncioFaultInjector":
        """Arm the plan: one wall-clock timer per action, times relative
        to the instant ``start()`` runs (the simulated injector's
        contract)."""
        if self.started:
            raise RuntimeError("AsyncioFaultInjector.start() called twice")
        self.started = True
        base = self.backend.clock.now
        for action in self.plan.actions:
            self.backend.clock.schedule(
                base + action.at - self.backend.clock.now,
                self._begin, action)
        return self

    def _begin(self, action) -> None:
        self.faults_started += 1
        backend = self.backend
        if isinstance(action, SiloCrash):
            backend.fail_silo(action.server)
        elif isinstance(action, SiloRestart):
            backend.restart_silo(action.server)
        elif isinstance(action, AddSilo):
            backend.add_silo(action.server)
        elif isinstance(action, DrainSilo):
            backend.drain_silo(action.server)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"AsyncioFaultInjector(actions={len(self.plan)}, "
                f"started={self.started})")
