"""The backend seam: one protocol, two engines.

Everything above this line — actor programs, ``FaultPlan``s, workloads,
pools — talks to a :class:`Backend`: spawn an actor somewhere, send it a
one-way message, call it and get the result back through a completion
hook, schedule a timer on the backend's :class:`Clock`, and draw from
its seeded RNG registry.  Below the line live two concrete engines:

* :class:`~repro.backend.sim.SimBackend` — the discrete-event simulator
  (:class:`~repro.actor.runtime.ActorRuntime`), the **reference
  implementation**: deterministic, seeded, bit-identical digests.
* :class:`~repro.backend.asyncio_backend.AsyncioBackend` — the real
  runtime: silos as asyncio task groups, per-activation mailboxes, TCP
  sockets between silos, wall-clock timers, and supervision policies.

The split is ROADMAP item 2 — "the substitution table in reverse": the
DESIGN table maps Orleans primitives onto simulated ones; the asyncio
backend maps the same programs back onto real concurrency.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Hashable, Optional, Protocol, runtime_checkable

from ..actor.ids import ActorId, ActorRef

__all__ = ["Backend", "BackendError", "Clock"]


class BackendError(RuntimeError):
    """A backend cannot satisfy the requested configuration.

    Raised at *build* time (``build_cluster(backend=...)``) — never mid
    run — so an unsupported layer/fault/policy combination fails loudly
    before any traffic flows.
    """


@runtime_checkable
class Clock(Protocol):
    """The time seam both engines expose.

    The simulator's :class:`~repro.sim.engine.Simulator` satisfies this
    natively (virtual time); the asyncio backend's ``WallClock`` maps it
    onto ``loop.time()`` and ``loop.call_later``.  ``schedule``/``defer``
    return a cancellable timer handle (an object with ``.cancel()``).
    """

    @property
    def now(self) -> float: ...

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Any: ...

    def defer(self, delay: float, fn: Callable[..., Any], *args: Any) -> Any: ...


class Backend(abc.ABC):
    """One concrete actor engine behind the backend-neutral API.

    Subclasses provide the five seams named by ROADMAP item 2 —
    ``spawn``/``send``/``call``/``clock``/``rng`` — plus lifecycle
    (``start``/``run``/``shutdown``) and registration.  The ``runtime``
    property returns the object workloads drive: the wrapped
    :class:`~repro.actor.runtime.ActorRuntime` for the simulator, the
    backend itself (a runtime-shaped facade) for asyncio — so the same
    workload code runs unmodified on either engine.
    """

    #: Short identifier (``"sim"`` / ``"asyncio"``) used by CLIs and errors.
    name: str = "abstract"

    # ------------------------------------------------------------------
    # Registration and addressing
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def register_actor(self, actor_type: str, cls: type) -> None:
        """Register an application actor class under a type name."""

    @abc.abstractmethod
    def ref(self, actor_type: str, key: Hashable) -> ActorRef:
        """A location-transparent handle for one logical actor."""

    # ------------------------------------------------------------------
    # The five seams
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def spawn(self, ref: ActorRef, server: Optional[int] = None) -> int:
        """Eagerly activate ``ref`` (idempotent), returning its silo.

        ``server`` is a placement preference; a dead/draining preference
        folds into the live set.  Without it the backend's placement
        policy decides.  Actors not spawned explicitly still activate
        lazily on first message — Orleans' virtual-actor contract.
        """

    @abc.abstractmethod
    def send(self, ref: ActorRef, method: str, *args: Any,
             size: int = 256) -> None:
        """Fire-and-forget one-way message from outside the cluster."""

    @abc.abstractmethod
    def call(self, ref: ActorRef, method: str, *args: Any,
             size: int = 256, response_size: int = 256,
             on_complete: Optional[Callable[[float, Any], None]] = None,
             idempotent: bool = True) -> Any:
        """Request/response from outside the cluster.

        ``on_complete(latency, result)`` fires when the response (or an
        :class:`~repro.actor.errors.ActorError` outcome) arrives.
        """

    @property
    @abc.abstractmethod
    def clock(self) -> Clock:
        """The engine's time source (virtual or wall)."""

    @property
    @abc.abstractmethod
    def rng(self):
        """The seeded :class:`~repro.sim.rng.RngRegistry` of named substreams."""

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def runtime(self):
        """The runtime-shaped facade workloads and pools drive."""

    def start(self) -> "Backend":
        """Bring the engine up (open transports, arm timers). Idempotent."""
        return self

    @abc.abstractmethod
    def run(self, until: Optional[float] = None) -> None:
        """Advance the engine: to virtual time ``until`` (sim) or for the
        equivalent wall-clock window (asyncio); ``None`` runs to idle."""

    def shutdown(self) -> None:
        """Release engine resources (sockets, loops). Idempotent."""

    # ------------------------------------------------------------------
    def locate(self, actor_id: ActorId) -> Optional[int]:
        """Directory lookup: which silo hosts ``actor_id`` (None = none)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"
