"""``repro.backend``: one actor API, two engines (ROADMAP item 2).

* :class:`Backend` — the protocol: ``spawn``/``send``/``call`` seams, a
  :class:`Clock`, a seeded RNG registry, and a runtime-shaped facade.
* :class:`SimBackend` — the discrete-event simulator (the reference
  implementation; seeded digests are bit-identical to pre-backend
  builds).
* :class:`AsyncioBackend` — the real runtime: per-activation asyncio
  mailboxes, TCP (or in-process) transport between silos, wall-clock
  timers, and :class:`SupervisionPolicy` crash handling layered on the
  same :class:`~repro.faults.plan.FaultPlan` crash vocabulary.

Select an engine through the one construction path::

    cluster = build_cluster(ClusterConfig(num_servers=2),
                            backend="asyncio", transport="tcp")
"""

from .asyncio_backend import DEFAULT_CALL_TIMEOUT, AsyncioBackend, WallClock
from .base import Backend, BackendError, Clock
from .bench import PingerActor, PongerActor, ping_latency
from .faults import SUPPORTED_ACTIONS, AsyncioFaultInjector
from .sim import SimBackend
from .supervision import SupervisionPolicy, Supervisor

__all__ = [
    "AsyncioBackend",
    "AsyncioFaultInjector",
    "Backend",
    "BackendError",
    "Clock",
    "DEFAULT_CALL_TIMEOUT",
    "PingerActor",
    "PongerActor",
    "SUPPORTED_ACTIONS",
    "SimBackend",
    "SupervisionPolicy",
    "Supervisor",
    "WallClock",
    "ping_latency",
]
