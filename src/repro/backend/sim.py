"""``SimBackend``: the discrete-event engine behind the backend seam.

A thin adapter — the :class:`~repro.actor.runtime.ActorRuntime` already
*is* the reference implementation; this class only gives it the
:class:`~repro.backend.base.Backend` shape so ``build_cluster`` can hand
out one neutral handle for either engine.

Neutrality invariant: constructing a ``SimBackend`` around a runtime
performs **no RNG draws, schedules no events, and mutates no runtime
state** — a seeded run through ``build_cluster(backend="sim")`` is
bit-identical to one built before this class existed (pinned by
``tests/integration/test_scale_digest.py``).  The ``spawn``/``send``
seams draw from the runtime's existing streams only when actually
called.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Optional

from ..actor.ids import ActorId, ActorRef
from ..actor.messages import Message, MessageKind
from ..actor.runtime import ActorRuntime
from .base import Backend, Clock

__all__ = ["SimBackend"]


class SimBackend(Backend):
    """The simulator as a :class:`Backend` (the reference engine)."""

    name = "sim"

    def __init__(self, runtime: ActorRuntime):
        self._runtime = runtime

    # ------------------------------------------------------------------
    # Registration and addressing
    # ------------------------------------------------------------------
    def register_actor(self, actor_type: str, cls: type) -> None:
        self._runtime.register_actor(actor_type, cls)

    def ref(self, actor_type: str, key: Hashable) -> ActorRef:
        return self._runtime.ref(actor_type, key)

    # ------------------------------------------------------------------
    # The five seams
    # ------------------------------------------------------------------
    def spawn(self, ref: ActorRef, server: Optional[int] = None) -> int:
        rt = self._runtime
        location = rt.locate(ref.id)
        if location is not None:
            return location
        if server is None:
            server = rt.placement.choose(ref.id, 0, rt.num_servers)
        destination = rt.pick_live_server(server)
        rt.activate(ref.id, destination)
        return destination

    def send(self, ref: ActorRef, method: str, *args: Any,
             size: int = 256) -> None:
        rt = self._runtime
        gateway = rt.silos[rt.pick_live_server(
            rt._gateway_rng.randrange(rt.num_servers))]
        message = Message(
            kind=MessageKind.ONEWAY,
            target=ref.id,
            method=method,
            args=args,
            size=size,
            created_at=rt.sim.now,
        )
        destination = gateway._resolve_or_place(ref.id)
        rt.network.deliver(size, rt.silos[destination].deliver, message,
                           dst=destination)

    def call(self, ref: ActorRef, method: str, *args: Any,
             size: int = 256, response_size: int = 256,
             on_complete: Optional[Callable[[float, Any], None]] = None,
             idempotent: bool = True) -> Any:
        return self._runtime.client_request(
            ref, method, *args, size=size, response_size=response_size,
            on_complete=on_complete, idempotent=idempotent)

    @property
    def clock(self) -> Clock:
        return self._runtime.sim

    @property
    def rng(self):
        return self._runtime.rng

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def runtime(self) -> ActorRuntime:
        return self._runtime

    def run(self, until: Optional[float] = None) -> None:
        self._runtime.run(until=until)

    def locate(self, actor_id: ActorId) -> Optional[int]:
        return self._runtime.locate(actor_id)
