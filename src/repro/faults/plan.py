"""Declarative fault plans: *what* goes wrong, *when*.

A :class:`FaultPlan` is a pure description — an ordered list of fault
actions with times relative to injector start.  Nothing here touches a
simulator or an RNG; the :class:`~repro.faults.injector.FaultInjector`
turns the plan into scheduled events against a live cluster.

The action vocabulary covers the failure modes the paper's §2 contract
and evaluation imply but never drives systematically:

* :class:`SiloCrash` / :class:`SiloRestart` — fail-stop silo loss and
  recovery (volatile state lost, re-activation elsewhere on next call).
* :class:`NetworkPartition` — two silo groups stop exchanging messages
  for a window (messages between them are dropped deterministically).
* :class:`LinkDegradation` — probabilistic drop / added delay /
  duplication on matching links for a window.
* :class:`SlowSilo` — one silo's compute runs ``factor``× slower for a
  window (a straggler / noisy-neighbour model).
* :class:`DirectoryStaleness` — deactivate a sample of registered actors
  and poison location caches with wrong hints, exercising the stale-hint
  re-placement path of §4.3.

Builder methods return ``self`` so plans chain::

    plan = (FaultPlan()
            .crash(at=20.0, server=3)
            .restart(at=35.0, server=3)
            .degrade(at=10.0, until=30.0, drop=0.05))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "FaultAction",
    "SiloCrash",
    "SiloRestart",
    "AddSilo",
    "DrainSilo",
    "NetworkPartition",
    "LinkDegradation",
    "SlowSilo",
    "DirectoryStaleness",
    "FaultPlan",
]


@dataclass(frozen=True)
class SiloCrash:
    """Fail-stop crash of one silo at ``at`` (seconds after start)."""

    at: float
    server: int


@dataclass(frozen=True)
class SiloRestart:
    """Bring a crashed silo back, empty and ready to host."""

    at: float
    server: int


@dataclass(frozen=True)
class AddSilo:
    """Bring a parked or crashed silo back into service at ``at``.

    ``server=None`` picks the lowest-numbered dead silo — the same
    grow action :mod:`repro.autoscale` plans execute, so chaos plans
    and autoscale plans share one vocabulary.
    """

    at: float
    server: Optional[int] = None


@dataclass(frozen=True)
class DrainSilo:
    """Gracefully drain ``server`` starting at ``at``.

    Placement stops targeting the silo immediately, its activations
    migrate off (§4.3 opportunistic migration in bulk), and it leaves
    service once empty — unlike :class:`SiloCrash`, nothing is lost.
    Chaos tests use this to race a drain against load spikes.
    """

    at: float
    server: int


@dataclass(frozen=True)
class NetworkPartition:
    """Silos in ``group_a`` cannot reach ``group_b`` during [at, until).

    Messages crossing the cut are dropped deterministically (no RNG
    draw).  Client links (src/dst ``None``) are never partitioned — the
    partition models the inter-silo fabric, not the front door.
    """

    at: float
    until: float
    group_a: frozenset
    group_b: frozenset

    def separates(self, src: Optional[int], dst: Optional[int]) -> bool:
        if src is None or dst is None:
            return False
        a, b = self.group_a, self.group_b
        return (src in a and dst in b) or (src in b and dst in a)


@dataclass(frozen=True)
class LinkDegradation:
    """Probabilistic link faults on matching messages during [at, until).

    ``src``/``dst`` of ``None`` are wildcards (match anything, including
    the client side of a link).  Effects compose across overlapping
    degradations: drop/duplicate probabilities combine independently,
    added delays sum.
    """

    at: float
    until: float
    drop: float = 0.0       # P(message silently lost)
    delay: float = 0.0      # seconds added to every transit
    duplicate: float = 0.0  # P(message delivered twice)
    src: Optional[int] = None
    dst: Optional[int] = None

    def matches(self, src: Optional[int], dst: Optional[int]) -> bool:
        return ((self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst))


@dataclass(frozen=True)
class SlowSilo:
    """One silo computes ``factor``× slower during [at, until)."""

    at: float
    until: float
    server: int
    factor: float = 2.0


@dataclass(frozen=True)
class DirectoryStaleness:
    """Deactivate ``count`` random registered actors and plant wrong
    location-cache hints for them on every silo, at ``at``."""

    at: float
    count: int = 1


FaultAction = Union[SiloCrash, SiloRestart, AddSilo, DrainSilo,
                    NetworkPartition, LinkDegradation, SlowSilo,
                    DirectoryStaleness]

_WINDOWED = (NetworkPartition, LinkDegradation, SlowSilo)
_NETWORK = (NetworkPartition, LinkDegradation)


class FaultPlan:
    """An ordered, validated collection of fault actions."""

    def __init__(self, actions: Optional[list] = None):
        self.actions: list[FaultAction] = []
        for action in actions or []:
            self.add(action)

    # ------------------------------------------------------------------
    # Generic + chainable builders
    # ------------------------------------------------------------------
    def add(self, action: FaultAction) -> "FaultPlan":
        _validate(action)
        self.actions.append(action)
        return self

    def crash(self, at: float, server: int) -> "FaultPlan":
        return self.add(SiloCrash(at, server))

    def restart(self, at: float, server: int) -> "FaultPlan":
        return self.add(SiloRestart(at, server))

    def add_silo(self, at: float, server: Optional[int] = None) -> "FaultPlan":
        return self.add(AddSilo(at, server))

    def drain_silo(self, at: float, server: int) -> "FaultPlan":
        return self.add(DrainSilo(at, server))

    def partition(self, at: float, until: float,
                  group_a, group_b) -> "FaultPlan":
        return self.add(NetworkPartition(at, until,
                                         frozenset(group_a),
                                         frozenset(group_b)))

    def degrade(self, at: float, until: float, *, drop: float = 0.0,
                delay: float = 0.0, duplicate: float = 0.0,
                src: Optional[int] = None,
                dst: Optional[int] = None) -> "FaultPlan":
        return self.add(LinkDegradation(at, until, drop, delay, duplicate,
                                        src, dst))

    def slow_silo(self, at: float, until: float, server: int,
                  factor: float = 2.0) -> "FaultPlan":
        return self.add(SlowSilo(at, until, server, factor))

    def stale_directory(self, at: float, count: int = 1) -> "FaultPlan":
        return self.add(DirectoryStaleness(at, count))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        return not self.actions

    @property
    def has_network_faults(self) -> bool:
        return any(isinstance(a, _NETWORK) for a in self.actions)

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self):
        return iter(self.actions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds = ", ".join(type(a).__name__ for a in self.actions)
        return f"FaultPlan([{kinds}])"


def _validate(action: FaultAction) -> None:
    if action.at < 0:
        raise ValueError(f"{type(action).__name__}.at must be >= 0")
    if isinstance(action, _WINDOWED) and action.until <= action.at:
        raise ValueError(
            f"{type(action).__name__} window must end after it starts "
            f"(at={action.at}, until={action.until})")
    if isinstance(action, LinkDegradation):
        for name in ("drop", "duplicate"):
            p = getattr(action, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"LinkDegradation.{name} must be in [0, 1]")
        if action.delay < 0:
            raise ValueError("LinkDegradation.delay must be >= 0")
    if isinstance(action, NetworkPartition):
        if not action.group_a or not action.group_b:
            raise ValueError("partition groups must be non-empty")
        if action.group_a & action.group_b:
            raise ValueError("partition groups must be disjoint")
    if isinstance(action, SlowSilo) and action.factor < 1.0:
        raise ValueError("SlowSilo.factor must be >= 1")
    if isinstance(action, DirectoryStaleness) and action.count < 1:
        raise ValueError("DirectoryStaleness.count must be >= 1")
