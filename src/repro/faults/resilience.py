"""Client-side resilience policies: retries, deadlines, admission.

These are pure configuration dataclasses; the mechanisms live in
:class:`~repro.actor.runtime.ActorRuntime`.  They model the standard
production toolkit the paper's §2 contract presumes around an actor
cluster ("callers see timeouts, not hangs") but never spells out:

* :class:`RetryPolicy` — exponential backoff with jitter, capped
  attempts, idempotency-aware (non-idempotent requests are never
  re-dispatched unless the policy explicitly allows it).
* per-request **deadline** — an end-to-end budget layered on top of the
  per-attempt ``call_timeout``; retries never extend past it.
* :class:`AdmissionConfig` — a bounded client-request admission window
  with a load-shedding policy (``reject`` new arrivals vs. ``drop_oldest``
  in-flight), plus the per-silo receiver-queue bound and the SEDA
  soft-limit that feeds the backpressure signal.

``ResilienceConfig`` composes all three; every field defaults to "off",
and a runtime built with ``resilience=None`` takes a fast path that is
bit-identical to a build without this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["RetryPolicy", "AdmissionConfig", "ResilienceConfig"]

SHED_POLICIES = ("reject", "drop_oldest")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with multiplicative jitter.

    The delay before retry attempt ``n`` (1-based) is::

        min(max_delay, base_delay * multiplier**(n-1)) * (1 + jitter * U)

    with ``U`` uniform in [0, 1) from the ``resilience.retry`` substream,
    so seeded runs retry at reproducible instants.

    ``max_attempts`` counts total dispatches (1 = no retries).  With
    ``idempotent_only`` (the default), requests issued with
    ``idempotent=False`` fail on their first timeout — re-dispatching a
    non-idempotent operation could double-apply it.

    The static side of the same contract: ``repro lint --flow`` traces
    every retryable ``client_request`` through the actor interaction
    graph and flags state mutations reachable without an
    ``@repro.idempotent`` marker (``FLOW-RETRY-NONIDEMPOTENT``), so a
    replay hazard is caught at lint time, not in a fault drill.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    idempotent_only: bool = True

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    def delay_for(self, attempt: int, rng) -> float:
        """Backoff before retry ``attempt`` (1-based), unscaled seconds."""
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter > 0:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


@dataclass(frozen=True)
class AdmissionConfig:
    """Bounded admission of client requests, with load shedding.

    Attributes:
        capacity: max in-flight client requests cluster-wide (None = no
            bound).  Arrivals beyond it are shed per ``policy``.
        policy: ``"reject"`` sheds the *new* arrival; ``"drop_oldest"``
            abandons the oldest in-flight request to admit the new one
            (fresher work is likelier to still matter to its caller).
        receiver_queue: per-silo receiver-stage bound on queued client
            requests (absorbs the old ``ClusterConfig.max_receiver_queue``).
        stage_soft_limit: queue depth at which silo stages start
            reporting backpressure (None = no signal).
    """

    capacity: Optional[int] = None
    policy: str = "reject"
    receiver_queue: Optional[int] = None
    stage_soft_limit: Optional[int] = None

    def __post_init__(self):
        if self.policy not in SHED_POLICIES:
            raise ValueError(
                f"policy must be one of {SHED_POLICIES}, got {self.policy!r}")
        if self.capacity is not None and self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        if self.receiver_queue is not None and self.receiver_queue < 0:
            raise ValueError("receiver_queue must be >= 0")
        if self.stage_soft_limit is not None and self.stage_soft_limit < 1:
            raise ValueError("stage_soft_limit must be >= 1")


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything between "request issued" and "caller sees an outcome".

    Attributes:
        call_timeout: per-attempt timeout in unscaled seconds (absorbs
            the old ``ClusterConfig.call_timeout``; also the default for
            actor-to-actor calls).
        request_deadline: end-to-end client-request budget in unscaled
            seconds; retries stop once it would be exceeded.
        retry: retry policy for timed-out client requests (None = fail
            on first timeout).
        admission: admission/shedding configuration (None = unbounded).
    """

    call_timeout: Optional[float] = None
    request_deadline: Optional[float] = None
    retry: Optional[RetryPolicy] = None
    admission: Optional[AdmissionConfig] = None

    def __post_init__(self):
        if self.call_timeout is not None and self.call_timeout <= 0:
            raise ValueError("call_timeout must be positive")
        if self.request_deadline is not None and self.request_deadline <= 0:
            raise ValueError("request_deadline must be positive")
