"""The fault injector: turns a :class:`FaultPlan` into scheduled chaos.

``FaultInjector(runtime, plan).start()`` schedules every action of the
plan against the runtime's simulator (times relative to the instant
``start()`` runs).  Windowed actions (partitions, degradations, slow
silos) get a begin and an end event; instantaneous ones (crash, restart,
staleness) fire once.

Determinism & neutrality
------------------------
All randomness (probabilistic drops/duplicates, staleness sampling)
comes from dedicated named substreams (``faults.network``,
``faults.staleness``) created lazily, so a plan without probabilistic
actions draws nothing.  An **empty plan schedules nothing and installs
nothing** — the run is bit-identical to one that never imported this
module (asserted by ``tests/integration/test_faults.py``).

Network faults are applied through :class:`LinkFaultModel`, installed on
``Network.faults`` only when the plan contains network actions.  The
model's pass-through path performs exactly the operations of the plain
delivery path, so an installed-but-idle model changes nothing.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..obs.events import FaultInjectionEvent
from .plan import (
    AddSilo,
    DirectoryStaleness,
    DrainSilo,
    FaultPlan,
    LinkDegradation,
    NetworkPartition,
    SiloCrash,
    SiloRestart,
    SlowSilo,
)

__all__ = ["FaultInjector", "LinkFaultModel"]


class LinkFaultModel:
    """Active partitions + degradations applied at message-transmit time.

    Installed on :attr:`repro.sim.network.Network.faults` by the
    injector; the network delegates :meth:`transmit` for every message
    while installed.
    """

    def __init__(self, network, rng_registry):
        self.network = network
        self._rng_registry = rng_registry
        self._rng = None  # lazily created: idle models must not touch RNG
        self._partitions: list[NetworkPartition] = []
        self._degradations: list[LinkDegradation] = []
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_delayed = 0

    # ------------------------------------------------------------------
    def add(self, action) -> None:
        if isinstance(action, NetworkPartition):
            self._partitions.append(action)
        else:
            self._degradations.append(action)

    def remove(self, action) -> None:
        if isinstance(action, NetworkPartition):
            self._partitions.remove(action)
        else:
            self._degradations.remove(action)

    @property
    def idle(self) -> bool:
        return not (self._partitions or self._degradations)

    def _random(self) -> float:
        if self._rng is None:
            self._rng = self._rng_registry.stream("faults.network")
        return self._rng.random()

    # ------------------------------------------------------------------
    def transmit(self, size_bytes: int, callback: Callable[..., Any],
                 args: tuple, src: Optional[int],
                 dst: Optional[int]) -> float:
        """Deliver one message subject to the active faults.

        Returns the reported transit latency; a dropped message still
        reports the base latency so tracer network-hop spans stay sane.
        """
        network = self.network
        for partition in self._partitions:
            if partition.separates(src, dst):
                self.messages_dropped += 1
                return network.base_latency
        drop = 0.0
        delay = 0.0
        duplicate = 0.0
        for deg in self._degradations:
            if deg.matches(src, dst):
                drop = 1.0 - (1.0 - drop) * (1.0 - deg.drop)
                duplicate = 1.0 - (1.0 - duplicate) * (1.0 - deg.duplicate)
                delay += deg.delay
        if drop > 0.0 and self._random() < drop:
            self.messages_dropped += 1
            return network.base_latency
        latency = network.latency() + delay
        if delay > 0.0:
            self.messages_delayed += 1
        network.sim.defer(latency, callback, *args)
        if duplicate > 0.0 and self._random() < duplicate:
            self.messages_duplicated += 1
            network.sim.defer(network.latency() + delay, callback, *args)
        return latency


class FaultInjector:
    """Schedules a :class:`FaultPlan` against a live runtime."""

    def __init__(self, runtime, plan: Optional[FaultPlan] = None):
        self.runtime = runtime
        self.plan = plan or FaultPlan()
        self.link_faults: Optional[LinkFaultModel] = None
        self.started = False
        self.faults_started = 0
        self.faults_ended = 0
        self.actors_staled = 0

    # ------------------------------------------------------------------
    def start(self) -> "FaultInjector":
        """Arm the plan.  An empty plan schedules and installs nothing."""
        if self.started:
            raise RuntimeError("FaultInjector.start() called twice")
        self.started = True
        if self.plan.empty:
            return self
        runtime = self.runtime
        if self.plan.has_network_faults:
            self.link_faults = LinkFaultModel(runtime.network, runtime.rng)
            runtime.network.faults = self.link_faults
        # Plan times are simulator seconds (the same clock as
        # ``runtime.run(until=...)`` and the harness warmup/duration),
        # offset from the instant start() runs.
        for action in self.plan.actions:
            runtime.sim.schedule(action.at, self._begin, action)
            until = getattr(action, "until", None)
            if until is not None:
                runtime.sim.schedule(until, self._end, action)
        return self

    # ------------------------------------------------------------------
    def _begin(self, action) -> None:
        self.faults_started += 1
        runtime = self.runtime
        if isinstance(action, SiloCrash):
            runtime.fail_silo(action.server)
        elif isinstance(action, SiloRestart):
            runtime.restart_silo(action.server)
        elif isinstance(action, AddSilo):
            runtime.add_silo(action.server)
        elif isinstance(action, DrainSilo):
            runtime.drain_silo(action.server)
        elif isinstance(action, SlowSilo):
            runtime.silos[action.server].server.cpu.throttle = action.factor
        elif isinstance(action, (NetworkPartition, LinkDegradation)):
            self.link_faults.add(action)
        elif isinstance(action, DirectoryStaleness):
            self._inject_staleness(action)
        self._emit(action, "start")

    def _end(self, action) -> None:
        self.faults_ended += 1
        if isinstance(action, SlowSilo):
            self.runtime.silos[action.server].server.cpu.throttle = 1.0
        elif isinstance(action, (NetworkPartition, LinkDegradation)):
            self.link_faults.remove(action)
        self._emit(action, "end")

    def _inject_staleness(self, action: DirectoryStaleness) -> None:
        """Deactivate sampled actors and plant wrong hints everywhere.

        The directory contract forbids unregistering a still-hosted
        actor, so staleness is modeled as a *graceful* deactivation plus
        cache poisoning: the next call finds no directory entry, follows
        a wrong hint, and the silo there must re-place the actor —
        exactly the §4.3 stale-witness path.
        """
        runtime = self.runtime
        entries = runtime.directory.entries()
        if not entries or runtime.num_servers < 2:
            return
        rng = runtime.rng.stream("faults.staleness")
        count = min(action.count, len(entries))
        for actor_id, location in rng.sample(entries, count):
            silo = runtime.silos[location]
            if silo.dead or actor_id not in silo.activations:
                continue
            wrong = rng.randrange(runtime.num_servers - 1)
            if wrong >= location:
                wrong += 1
            silo.deactivate(actor_id)
            for other in runtime.silos:
                other.location_cache.hint(actor_id, wrong)
            self.actors_staled += 1

    def _emit(self, action, phase: str) -> None:
        obs = self.runtime.obs
        if obs is None:
            return
        detail = {}
        for name in ("server", "factor", "drop", "delay", "duplicate",
                     "count", "src", "dst"):
            value = getattr(action, name, None)
            if value is not None:
                detail[name] = value
        obs.events.emit(FaultInjectionEvent(
            self.runtime.sim.now, fault=type(action).__name__,
            phase=phase, detail=detail))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "armed" if self.started else "idle"
        return (f"FaultInjector({state}, plan={len(self.plan)} actions, "
                f"started={self.faults_started}, ended={self.faults_ended})")
