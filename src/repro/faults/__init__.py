"""Deterministic fault injection and resilience policies.

Two halves, deliberately decoupled:

* **Faults** (:mod:`~repro.faults.plan`, :mod:`~repro.faults.injector`) —
  what goes wrong: silo crashes/recoveries, network partitions and
  degradations, slow silos, directory staleness, all scheduled from a
  declarative :class:`FaultPlan` with named RNG substreams for
  reproducibility.
* **Resilience** (:mod:`~repro.faults.resilience`) — what the cluster
  does about it: retry with backoff + jitter, end-to-end deadlines,
  bounded admission with load shedding.

Both are provably neutral when inactive: an empty plan plus
``resilience=None`` leaves a seeded run bit-identical to one that never
loaded this package.
"""

from .injector import FaultInjector, LinkFaultModel
from .plan import (
    AddSilo,
    DirectoryStaleness,
    DrainSilo,
    FaultAction,
    FaultPlan,
    LinkDegradation,
    NetworkPartition,
    SiloCrash,
    SiloRestart,
    SlowSilo,
)
from .resilience import AdmissionConfig, ResilienceConfig, RetryPolicy

__all__ = [
    "FaultPlan",
    "FaultAction",
    "SiloCrash",
    "SiloRestart",
    "AddSilo",
    "DrainSilo",
    "NetworkPartition",
    "LinkDegradation",
    "SlowSilo",
    "DirectoryStaleness",
    "FaultInjector",
    "LinkFaultModel",
    "RetryPolicy",
    "AdmissionConfig",
    "ResilienceConfig",
]
