"""``build_cluster``: the one entry point that composes the layered configs.

Construction used to be scattered — ``ActorRuntime`` took machine knobs
plus a couple of resilience fields, ``ActOp`` took two optional configs,
fault plans had nowhere to live, and every bench re-implemented the
wiring.  The layered API separates the concerns:

* :class:`~repro.actor.runtime.ClusterConfig` — the machine: silos,
  processors, network, serialization, time scale, seed.
* :class:`~repro.faults.resilience.ResilienceConfig` — behaviour between
  request and outcome: timeouts, deadlines, retry, admission/shedding.
* :class:`~repro.core.actop.ActOpConfig` — the optimizer: partitioning
  and/or thread allocation.
* :class:`~repro.faults.plan.FaultPlan` — scheduled chaos.

::

    cluster = build_cluster(
        ClusterConfig(num_servers=4, seed=7),
        resilience=ResilienceConfig(call_timeout=0.5,
                                    retry=RetryPolicy(max_attempts=3)),
        actop=ActOpConfig(partitioning=PartitioningConfig()),
        faults=FaultPlan().crash(at=20, server=1).restart(at=35, server=1),
    )
    cluster.start()
    cluster.run(until=60.0)

Every layer defaults to "absent", and absent layers add nothing to the
run — a cluster built with only a ``ClusterConfig`` is bit-identical to
a bare ``ActorRuntime``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .actor.runtime import ActorRuntime, ClusterConfig
from .autoscale.config import AutoscaleConfig
from .autoscale.controller import AutoscaleController
from .core.actop import ActOp, ActOpConfig
from .faults.injector import FaultInjector
from .faults.plan import FaultPlan
from .faults.resilience import ResilienceConfig
from .sim.engine import Simulator

__all__ = ["Cluster", "build_cluster"]


@dataclass
class Cluster:
    """A composed cluster: runtime + optional optimizer + fault injector
    + optional autoscaler.

    The runtime is always present; ``actop``, ``injector``, and
    ``autoscale`` are None when their layer was not configured.
    :meth:`start` arms whatever is present (idempotence is the caller's
    concern — call it once).
    """

    runtime: ActorRuntime
    actop: Optional[ActOp] = None
    injector: Optional[FaultInjector] = None
    autoscale: Optional[AutoscaleController] = None
    _started: bool = False

    def start(self) -> "Cluster":
        """Arm the optimizer, the fault plan, and the autoscaler (once)."""
        if self._started:
            raise RuntimeError("Cluster.start() called twice")
        self._started = True
        if self.actop is not None:
            self.actop.start()
        if self.injector is not None:
            self.injector.start()
        if self.autoscale is not None:
            self.autoscale.start()
        return self

    def run(self, until: Optional[float] = None) -> None:
        """Drive the simulator (starting the cluster first if needed)."""
        if not self._started:
            self.start()
        self.runtime.run(until=until)

    # Convenience pass-throughs the benches lean on.
    @property
    def sim(self):
        return self.runtime.sim

    @property
    def config(self) -> ClusterConfig:
        return self.runtime.config


def build_cluster(
    cluster: Optional[ClusterConfig] = None,
    resilience: Optional[ResilienceConfig] = None,
    actop: Optional[ActOpConfig] = None,
    faults: Optional[FaultPlan] = None,
    *,
    autoscale: Optional[AutoscaleConfig] = None,
    sim: Optional[Simulator] = None,
) -> Cluster:
    """Compose a cluster from the five config layers.

    Args:
        cluster: machine configuration (defaults to the paper's testbed).
        resilience: retry/deadline/admission policies (None = off; the
            runtime takes its bit-identical fast path).
        actop: optimizer configuration; None or a disabled config builds
            no optimizer.
        faults: fault plan; None or an empty plan installs nothing.
        autoscale: elastic-scaling configuration; None builds no
            controller (the run is bit-identical to earlier builds).
            When both actop and autoscale are configured, scaling plans
            trigger ActOp rebalancing rounds.
        sim: an existing simulator to share (tests compose several
            drivers on one clock).

    Returns a :class:`Cluster`; call :meth:`Cluster.start` (or just
    :meth:`Cluster.run`) to arm the optimizer, fault plan, and
    autoscaler.
    """
    runtime = ActorRuntime(cluster or ClusterConfig(), sim=sim,
                           resilience=resilience)
    optimizer = (ActOp(runtime, actop)
                 if actop is not None and actop.enabled else None)
    injector = (FaultInjector(runtime, faults)
                if faults is not None and not faults.empty else None)
    controller = (AutoscaleController(runtime, autoscale, actop=optimizer)
                  if autoscale is not None else None)
    return Cluster(runtime=runtime, actop=optimizer, injector=injector,
                   autoscale=controller)
