"""``build_cluster``: the one entry point that composes the layered configs.

Construction used to be scattered — ``ActorRuntime`` took machine knobs
plus a couple of resilience fields, ``ActOp`` took two optional configs,
fault plans had nowhere to live, and every bench re-implemented the
wiring.  The layered API separates the concerns:

* :class:`~repro.actor.runtime.ClusterConfig` — the machine: silos,
  processors, network, serialization, time scale, seed.
* :class:`~repro.faults.resilience.ResilienceConfig` — behaviour between
  request and outcome: timeouts, deadlines, retry, admission/shedding.
* :class:`~repro.core.actop.ActOpConfig` — the optimizer: partitioning
  and/or thread allocation.
* :class:`~repro.faults.plan.FaultPlan` — scheduled chaos.
* ``backend`` — which engine runs it all: the deterministic simulator
  (``"sim"``, the reference implementation) or the real asyncio runtime
  (``"asyncio"``: task-group silos, TCP transport, wall-clock time,
  supervision) — ROADMAP item 2's substitution table in reverse.

::

    cluster = build_cluster(
        ClusterConfig(num_servers=4, seed=7),
        resilience=ResilienceConfig(call_timeout=0.5,
                                    retry=RetryPolicy(max_attempts=3)),
        actop=ActOpConfig(partitioning=PartitioningConfig()),
        faults=FaultPlan().crash(at=20, server=1).restart(at=35, server=1),
    )
    cluster.start()
    cluster.run(until=60.0)

    # Same program, real runtime:
    cluster = build_cluster(ClusterConfig(num_servers=2), backend="asyncio",
                            transport="tcp",
                            supervision=SupervisionPolicy(max_restarts=3))

Every layer defaults to "absent", and absent layers add nothing to the
run — a sim cluster built with only a ``ClusterConfig`` is bit-identical
to a bare ``ActorRuntime`` (and to pre-backend builds; the digest pins
enforce it).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Optional

from .actor.runtime import ActorRuntime, ClusterConfig
from .autoscale.config import AutoscaleConfig
from .autoscale.controller import AutoscaleController
from .backend.asyncio_backend import DEFAULT_CALL_TIMEOUT, AsyncioBackend
from .backend.base import Backend, BackendError
from .backend.faults import AsyncioFaultInjector
from .backend.sim import SimBackend
from .backend.supervision import SupervisionPolicy
from .core.actop import ActOp, ActOpConfig
from .faults.injector import FaultInjector
from .faults.plan import FaultPlan
from .faults.resilience import ResilienceConfig
from .sim.engine import Simulator

__all__ = ["BACKENDS", "Cluster", "build_cluster"]

BACKENDS = ("sim", "asyncio")

# Layers only the simulator implements today; naming them in the asyncio
# error keeps the failure actionable.
_SIM_ONLY = "actop, autoscale, and a shared sim are simulator-only layers"


@dataclass
class Cluster:
    """A composed cluster: backend + optional optimizer + fault injector
    + optional autoscaler.

    ``runtime`` is the backend-neutral object workloads drive — the
    :class:`~repro.actor.runtime.ActorRuntime` on the simulator, the
    :class:`~repro.backend.asyncio_backend.AsyncioBackend` facade on the
    real runtime; both expose the same registration/traffic surface.
    ``actop``, ``injector``, and ``autoscale`` are None when their layer
    was not configured.  :meth:`start` arms whatever is present
    (idempotence is the caller's concern — call it once).  The cluster
    is a context manager: ``with build_cluster(...) as cluster: ...``
    releases backend resources (sockets, loops) on exit.
    """

    runtime: Any
    actop: Optional[ActOp] = None
    injector: Optional[Any] = None
    autoscale: Optional[AutoscaleController] = None
    backend: Optional[Backend] = None
    _started: bool = field(default=False, repr=False)

    def start(self) -> "Cluster":
        """Arm the backend, optimizer, fault plan, and autoscaler (once)."""
        if self._started:
            raise RuntimeError("Cluster.start() called twice")
        self._started = True
        if self.backend is not None:
            self.backend.start()
        if self.actop is not None:
            self.actop.start()
        if self.injector is not None:
            self.injector.start()
        if self.autoscale is not None:
            self.autoscale.start()
        return self

    def run(self, until: Optional[float] = None) -> None:
        """Drive the engine (starting the cluster first if needed)."""
        if not self._started:
            self.start()
        self.runtime.run(until=until)

    def shutdown(self) -> None:
        """Release backend resources (idempotent; no-op on the sim)."""
        if self.backend is not None:
            self.backend.shutdown()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # Convenience pass-throughs the benches lean on.
    @property
    def sim(self):
        return self.runtime.sim

    @property
    def config(self) -> ClusterConfig:
        return self.runtime.config

    @property
    def backend_name(self) -> str:
        return self.backend.name if self.backend is not None else "sim"


def build_cluster(
    config: Optional[ClusterConfig] = None,
    *legacy: Any,
    backend: str = "sim",
    resilience: Optional[ResilienceConfig] = None,
    actop: Optional[ActOpConfig] = None,
    faults: Optional[FaultPlan] = None,
    autoscale: Optional[AutoscaleConfig] = None,
    sim: Optional[Simulator] = None,
    supervision: Optional[SupervisionPolicy] = None,
    transport: str = "inproc",
    call_timeout: Optional[float] = None,
    **deprecated: Any,
) -> Cluster:
    """Compose a cluster from the config layers — the single construction
    path for either engine.

    Args:
        config: machine configuration (defaults to the paper's testbed).
        backend: ``"sim"`` (deterministic discrete-event reference) or
            ``"asyncio"`` (real tasks, sockets, wall-clock time).
        resilience: retry/deadline/admission policies (None = off; the
            sim runtime takes its bit-identical fast path).  The asyncio
            backend honours ``call_timeout`` only and rejects the rest.
        actop: optimizer configuration; None or a disabled config builds
            no optimizer (sim only).
        faults: fault plan; None or an empty plan installs nothing.  On
            asyncio only the crash/membership vocabulary is supported —
            network-model actions raise :class:`BackendError` at build
            time.
        autoscale: elastic-scaling configuration; None builds no
            controller (sim only).
        sim: an existing simulator to share (tests compose several
            drivers on one clock; sim backend only).
        supervision: crash policy for the asyncio backend
            (restart/stop/escalate with a max-restart budget).
        transport: asyncio inter-silo transport, ``"inproc"``,
            ``"inproc-copy"`` (in-process hop with TCP's pickle
            deep-copy semantics), or ``"tcp"``.
        call_timeout: asyncio wall-clock call timeout override (defaults
            to ``resilience.call_timeout`` when given, else 5 s).

    Returns a :class:`Cluster`; call :meth:`Cluster.start` (or just
    :meth:`Cluster.run`) to arm the backend, optimizer, fault plan, and
    autoscaler.

    Deprecated forms (kept as warning shims, behaviour unchanged):
    positional ``resilience``/``actop``/``faults`` after the config, and
    the old ``cluster=`` keyword for the first argument.
    """
    config, resilience, actop, faults = _fold_legacy_arguments(
        config, legacy, resilience, actop, faults, deprecated)
    if backend not in BACKENDS:
        raise BackendError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}")

    if backend == "asyncio":
        return _build_asyncio(config, resilience=resilience, actop=actop,
                              faults=faults, autoscale=autoscale, sim=sim,
                              supervision=supervision, transport=transport,
                              call_timeout=call_timeout)

    if supervision is not None:
        raise BackendError(
            "supervision policies apply to the asyncio backend only: the "
            "simulator treats in-turn exceptions as bugs in the model "
            "(pass backend='asyncio', or drop supervision=)")
    if transport != "inproc":
        raise BackendError(
            "transport selection applies to the asyncio backend only "
            "(the simulator models its own network)")
    if call_timeout is not None:
        raise BackendError(
            "call_timeout= at build_cluster level is an asyncio knob; on "
            "the simulator pass ResilienceConfig(call_timeout=...)")
    runtime = ActorRuntime(config or ClusterConfig(), sim=sim,
                           resilience=resilience)
    optimizer = (ActOp(runtime, actop)
                 if actop is not None and actop.enabled else None)
    injector = (FaultInjector(runtime, faults)
                if faults is not None and not faults.empty else None)
    controller = (AutoscaleController(runtime, autoscale, actop=optimizer)
                  if autoscale is not None else None)
    return Cluster(runtime=runtime, actop=optimizer, injector=injector,
                   autoscale=controller, backend=SimBackend(runtime))


def _build_asyncio(config, *, resilience, actop, faults, autoscale, sim,
                   supervision, transport, call_timeout) -> Cluster:
    if actop is not None or autoscale is not None or sim is not None:
        raise BackendError(
            f"backend='asyncio' does not support these layers yet "
            f"({_SIM_ONLY}); build with backend='sim' or drop them")
    if resilience is not None:
        unsupported = [name for name in ("retry", "admission",
                                         "request_deadline")
                       if getattr(resilience, name, None) is not None]
        if unsupported:
            raise BackendError(
                f"backend='asyncio' supports ResilienceConfig.call_timeout "
                f"only; unsupported fields set: {', '.join(unsupported)}")
        if call_timeout is None:
            call_timeout = resilience.call_timeout
    engine = AsyncioBackend(
        config or ClusterConfig(),
        supervision=supervision,
        transport=transport,
        call_timeout=(call_timeout if call_timeout is not None
                      else DEFAULT_CALL_TIMEOUT))
    injector = (AsyncioFaultInjector(engine, faults)
                if faults is not None and not faults.empty else None)
    return Cluster(runtime=engine, injector=injector, backend=engine)


def _fold_legacy_arguments(config, legacy, resilience, actop, faults,
                           deprecated):
    """Deprecation shims for the pre-backend ``build_cluster`` signature.

    Warn exactly once per call, behave identically — the contract every
    shim in this tree honours (tests/integration/test_deprecation_shims).
    """
    if "cluster" in deprecated:
        if config is not None:
            raise TypeError(
                "build_cluster() got both a positional config and the "
                "deprecated cluster= keyword")
        config = deprecated.pop("cluster")
        warnings.warn(
            "build_cluster(cluster=...) is deprecated; the first argument "
            "is now named config (pass it positionally or as config=...)",
            DeprecationWarning, stacklevel=3)
    if deprecated:
        unexpected = ", ".join(sorted(deprecated))
        raise TypeError(
            f"build_cluster() got unexpected keyword arguments: {unexpected}")
    if legacy:
        if len(legacy) > 3:
            raise TypeError(
                f"build_cluster() takes at most 4 positional arguments "
                f"({1 + len(legacy)} given)")
        warnings.warn(
            "positional resilience/actop/faults arguments to "
            "build_cluster() are deprecated; pass them as keywords "
            "(resilience=..., actop=..., faults=...)",
            DeprecationWarning, stacklevel=3)
        for value, name, current in zip(
                legacy, ("resilience", "actop", "faults"),
                (resilience, actop, faults)):
            if current is not None:
                raise TypeError(
                    f"build_cluster() got multiple values for {name!r}")
            if name == "resilience":
                resilience = value
            elif name == "actop":
                actop = value
            else:
                faults = value
    return config, resilience, actop, faults
