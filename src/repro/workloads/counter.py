"""The counter micro-application (§3, Figs. 4 and 5).

"We run a simple counter application where in response to a client
request an actor increments a counter.  We invoke 15K requests/sec on 8K
actors."  One actor type, no actor-to-actor calls — the workload isolates
the single-server SEDA pipeline, which is exactly what the latency-
breakdown (Fig. 4) and thread-allocation-heatmap (Fig. 5) experiments
need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..actor.actor import Actor
from ..actor.runtime import ActorRuntime

__all__ = ["CounterActor", "CounterWorkload", "CounterConfig"]


class CounterActor(Actor):
    """Holds one integer; increments on request."""

    COMPUTE = {"increment": 60e-6, "read": 30e-6}

    def __init__(self) -> None:
        super().__init__()
        self.value = 0

    def increment(self, amount: int = 1) -> int:
        self.value += amount
        return self.value

    def read(self) -> int:
        return self.value


@dataclass
class CounterConfig:
    """Workload shape (paper values: 15_000 req/s over 8_000 actors)."""

    num_actors: int = 8_000
    request_rate: float = 15_000.0
    request_size: int = 128
    response_size: int = 64


class CounterWorkload:
    """Open-loop Poisson client requests to uniformly random counters."""

    ACTOR_TYPE = "counter"

    def __init__(self, runtime: ActorRuntime, config: Optional[CounterConfig] = None):
        self.runtime = runtime
        self.config = config or CounterConfig()
        if self.ACTOR_TYPE not in runtime.actor_types:
            runtime.register_actor(self.ACTOR_TYPE, CounterActor)
        self._arrival_rng = runtime.rng.stream("counter.arrivals")
        self._target_rng = runtime.rng.stream("counter.targets")
        self._running = False
        self.requests_issued = 0

    def start(self) -> None:
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        if not self._running:
            return
        gap = self._arrival_rng.expovariate(self.config.request_rate)
        self.runtime.sim.schedule(gap, self._fire)

    def _fire(self) -> None:
        self._schedule_next()
        key = self._target_rng.randrange(self.config.num_actors)
        ref = self.runtime.ref(self.ACTOR_TYPE, key)
        self.requests_issued += 1
        self.runtime.client_request(
            ref,
            "increment",
            1,
            size=self.config.request_size,
            response_size=self.config.response_size,
            # An increment is NOT replay-safe: a retried request would
            # double-count.  Declaring it keeps idempotent-only retry
            # policies from ever replaying one (FLOW-RETRY-NONIDEMPOTENT).
            idempotent=False,
        )
