"""The paper's workloads: Halo Presence (§3/§6.1), Heartbeat (§6.2), the
counter micro-app (§3), and Stageflow (an inference pipeline over
data-parallel actor pools, the autoscaling study's driver)."""

from .counter import CounterActor, CounterConfig, CounterWorkload
from .halo import GameActor, HaloConfig, HaloWorkload, PlayerActor
from .heartbeat import (
    HeartbeatActor,
    HeartbeatConfig,
    HeartbeatWorkload,
    make_blocking_heartbeat,
)
from .stageflow import (
    DEFAULT_STAGES,
    PipelineActor,
    StageflowConfig,
    StageflowWorkload,
    StageSpec,
    StageWorkerActor,
)

__all__ = [
    "CounterActor",
    "CounterConfig",
    "CounterWorkload",
    "DEFAULT_STAGES",
    "GameActor",
    "HaloConfig",
    "HaloWorkload",
    "HeartbeatActor",
    "HeartbeatConfig",
    "HeartbeatWorkload",
    "PipelineActor",
    "PlayerActor",
    "StageSpec",
    "StageWorkerActor",
    "StageflowConfig",
    "StageflowWorkload",
    "make_blocking_heartbeat",
]
