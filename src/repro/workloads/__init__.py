"""The paper's workloads: Halo Presence (§3/§6.1), Heartbeat (§6.2), and
the counter micro-app (§3)."""

from .counter import CounterActor, CounterConfig, CounterWorkload
from .halo import GameActor, HaloConfig, HaloWorkload, PlayerActor
from .heartbeat import (
    HeartbeatActor,
    HeartbeatConfig,
    HeartbeatWorkload,
    make_blocking_heartbeat,
)

__all__ = [
    "CounterActor",
    "CounterConfig",
    "CounterWorkload",
    "GameActor",
    "HaloConfig",
    "HaloWorkload",
    "HeartbeatActor",
    "HeartbeatConfig",
    "HeartbeatWorkload",
    "PlayerActor",
    "make_blocking_heartbeat",
]
