"""The Heartbeat benchmark (§6.2).

"Heartbeat implements a simple monitoring service which maintains the
status periodically updated by the client.  This workload is similar in
its call pattern to many popular services built with Orleans, like
running statistics, aggregates or standing queries."  Single actor type,
single server, high request rates (10K / 12.5K / 15K in Fig. 11a) —
the workload that evaluates the thread-allocation optimization alone.

Monitors optionally perform a synchronous blocking wait per beat
(``io_wait``) to model the legacy synchronous-I/O libraries §5.2 insists
the controller must support; the estimator then has to infer beta < 1
for the worker stage through the alpha trick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..actor.actor import Actor, idempotent
from ..actor.runtime import ActorRuntime

__all__ = ["HeartbeatActor", "HeartbeatWorkload", "HeartbeatConfig"]


class HeartbeatActor(Actor):
    """Stores the latest status beat for one monitored entity."""

    COMPUTE = {"beat": 115e-6, "status": 45e-6}
    WAIT: dict[str, float] = {}

    def __init__(self) -> None:
        super().__init__()
        self.last_status: object = None
        self.beats = 0

    @idempotent
    def beat(self, status: object) -> int:
        # Replay-safe: the status write is last-writer-wins and ``beats``
        # is only a liveness diagnostic, so a retried beat converges.
        self.last_status = status
        self.beats += 1
        return self.beats

    def status(self) -> object:
        return self.last_status


def make_blocking_heartbeat(io_wait: float) -> type[HeartbeatActor]:
    """A HeartbeatActor variant whose ``beat`` blocks ``io_wait`` seconds
    on a synchronous call (legacy I/O), exercising the beta < 1 path."""

    class BlockingHeartbeatActor(HeartbeatActor):
        WAIT = {"beat": io_wait}

    BlockingHeartbeatActor.__name__ = f"BlockingHeartbeatActor_{io_wait:g}"
    return BlockingHeartbeatActor


@dataclass
class HeartbeatConfig:
    """Workload shape (Fig. 11a sweeps request_rate over 10K/12.5K/15K)."""

    num_monitors: int = 4_000
    request_rate: float = 15_000.0
    status_fraction: float = 0.1   # share of requests that are reads
    request_size: int = 192
    response_size: int = 64
    io_wait: float = 0.0           # synchronous blocking seconds per beat


class HeartbeatWorkload:
    """Open-loop client beats (and occasional reads) to random monitors."""

    ACTOR_TYPE = "heartbeat"

    def __init__(self, runtime: ActorRuntime, config: Optional[HeartbeatConfig] = None):
        self.runtime = runtime
        self.config = config or HeartbeatConfig()
        if self.ACTOR_TYPE not in runtime.actor_types:
            cls = (
                make_blocking_heartbeat(self.config.io_wait)
                if self.config.io_wait > 0
                else HeartbeatActor
            )
            runtime.register_actor(self.ACTOR_TYPE, cls)
        self._arrival_rng = runtime.rng.stream("heartbeat.arrivals")
        self._target_rng = runtime.rng.stream("heartbeat.targets")
        self._running = False
        self.requests_issued = 0

    def start(self) -> None:
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        if not self._running:
            return
        gap = self._arrival_rng.expovariate(self.config.request_rate)
        self.runtime.sim.schedule(gap, self._fire)

    def _fire(self) -> None:
        self._schedule_next()
        key = self._target_rng.randrange(self.config.num_monitors)
        ref = self.runtime.ref(self.ACTOR_TYPE, key)
        self.requests_issued += 1
        if self._target_rng.random() < self.config.status_fraction:
            self.runtime.client_request(
                ref, "status",
                size=self.config.request_size // 2,
                response_size=self.config.response_size,
            )
        else:
            self.runtime.client_request(
                ref, "beat", self.requests_issued,
                size=self.config.request_size,
                response_size=self.config.response_size,
            )
