"""Halo Presence (§3, §6.1) — the paper's flagship workload.

Two actor types:

* **Player** — holds a reference to its current game.  A client status
  request hits a player; the player forwards to its game, which
  broadcasts to all members and aggregates the replies — so one client
  request fans out into 1 + 1 + 8 + 8 = 18 actor-to-actor messages
  (with the paper's 8 players per game), exactly the §3 arithmetic.
* **Game** — the chat-room-like hub holding its member list.

The driver reproduces §6.1's generative churn model:

* new players arrive Poisson and enter a pool of idle players;
* matchmaking repeatedly draws ``players_per_game`` players at random
  from the pool whenever it holds more than ``pool_target``;
* game durations are uniform in ``game_duration``;
* a player plays ``games_per_player`` (uniform integer range) games and
  then leaves the system (its actor is idle-collected);
* clients issue status requests about random live players at
  ``request_rate``.

Paper-scale values (100K players, 1000-player pool, 20–30-minute games,
6K req/s) are impractical for an in-process DES, so the defaults are a
documented scale-down with the same *ratios*: ~1% of the communication
graph churning per simulated minute once durations are compressed, and a
request rate chosen to land at the same per-server CPU utilization.
"""

from __future__ import annotations

import itertools
from array import array
from dataclasses import dataclass
from typing import Optional

from ..actor.actor import Actor, idempotent
from ..actor.calls import All, Call
from ..actor.ids import ActorRef
from ..actor.runtime import ActorRuntime

__all__ = ["PlayerActor", "GameActor", "HaloConfig", "HaloWorkload"]


class PlayerActor(Actor):
    """A live player; belongs to at most one game at a time."""

    COMPUTE = {
        "request_status": 40e-6,
        "update": 25e-6,
        "join_game": 20e-6,
        "leave_game": 20e-6,
    }

    def __init__(self) -> None:
        super().__init__()
        self.game: Optional[ActorRef] = None
        self.updates_seen = 0

    def join_game(self, game_ref: ActorRef) -> bool:
        self.game = game_ref
        return True

    def leave_game(self) -> bool:
        self.game = None
        return True

    @idempotent
    def update(self, payload: object) -> int:
        """Receive one broadcast event from the game.

        Safe to replay: ``updates_seen`` is a liveness diagnostic, never
        read back as an exact count, so a retried broadcast converges.
        """
        self.updates_seen += 1
        return 1

    def request_status(self, payload: object):
        """Client entry point: report status via the game fan-out."""
        if self.game is None:
            return {"state": "idle"}
        acks = yield Call(self.game, "broadcast_status", payload,
                          size=256, response_size=64)
        return {"state": "playing", "acks": acks}


class GameActor(Actor):
    """A game session: the hub of its members' communication."""

    COMPUTE = {
        "start_game": 30e-6,
        "broadcast_status": 50e-6,
        "end_game": 30e-6,
    }

    def __init__(self) -> None:
        super().__init__()
        self.members: list[ActorRef] = []

    def start_game(self, members: tuple[ActorRef, ...]):
        """Install the roster and notify every member (actor-to-actor)."""
        self.members = list(members)
        yield All([
            Call(p, "join_game", self.self_ref(), size=128, response_size=32)
            for p in self.members
        ])
        return True

    def broadcast_status(self, payload: object):
        """Fan the event out to every member and count the acks."""
        if not self.members:
            return 0
        acks = yield All([
            Call(p, "update", payload, size=256, response_size=32)
            for p in self.members
        ])
        return sum(acks)

    def end_game(self):
        """Release every member, then dissolve."""
        if self.members:
            yield All([
                Call(p, "leave_game", size=64, response_size=32)
                for p in self.members
            ])
        self.members = []
        return True


@dataclass
class HaloConfig:
    """Workload shape.

    Paper values in comments; defaults are the documented scale-down
    used by the benches (override freely).
    """

    target_players: int = 2_000          # paper: 100_000
    players_per_game: int = 8            # paper: 8
    pool_target: int = 40                # paper: 1_000 idle players
    game_duration: tuple[float, float] = (60.0, 90.0)   # paper: 1200-1800 s
    games_per_player: tuple[int, int] = (3, 5)          # paper: 3-5
    request_rate: float = 120.0          # paper: 2_000-6_000 req/s
    matchmaking_period: float = 1.0
    request_size: int = 256
    response_size: int = 128
    bootstrap: bool = True               # start with a full population
    # Paper-scale switches (defaults preserve the original message-driven
    # behavior bit for bit; the scale benches flip them):
    direct_bootstrap: bool = False       # install bootstrap games without messages
    lazy_idle_pool: bool = False         # pooled players cost O(bytes), not O(activation)
    discard_departed: bool = True        # drop state of departed players / closed games


class HaloWorkload:
    """Drives Halo Presence against a cluster, with §6.1's churn model."""

    PLAYER = "player"
    GAME = "game"

    def __init__(self, runtime: ActorRuntime, config: Optional[HaloConfig] = None):
        self.runtime = runtime
        self.config = config or HaloConfig()
        if self.PLAYER not in runtime.actor_types:
            runtime.register_actor(self.PLAYER, PlayerActor)
            runtime.register_actor(self.GAME, GameActor)
        rng = runtime.rng
        self._arrival_rng = rng.stream("halo.arrivals")
        self._match_rng = rng.stream("halo.matchmaking")
        self._request_rng = rng.stream("halo.requests")
        self._player_ids = itertools.count()
        self._game_ids = itertools.count()

        self.idle_pool: list[int] = []
        self.playing: set[int] = set()      # membership checks only, never iterated
        # Struct-of-arrays player bookkeeping, indexed by pid (pids are
        # dense sequential ints): a million players cost ~13 bytes each
        # here instead of three dict entries apiece.
        self.games_played: array = array("i")
        self.quota: array = array("b")
        self._live_index: array = array("l")  # pid -> live_players slot, -1 = departed
        self.live_players: list[int] = []   # sampled for status requests
        self.active_games: dict[int, list[int]] = {}
        self.requests_issued = 0
        self.games_started = 0
        self.players_departed = 0
        self.idle_short_circuits = 0        # lazy_idle_pool: requests answered locally
        self._running = False

    # ------------------------------------------------------------------
    # Population bookkeeping
    # ------------------------------------------------------------------
    def _mean_session_seconds(self) -> float:
        games = sum(self.config.games_per_player) / 2
        duration = sum(self.config.game_duration) / 2
        return games * duration

    def arrival_rate(self) -> float:
        """Poisson arrival rate that sustains ``target_players`` (§6.1)."""
        return self.config.target_players / self._mean_session_seconds()

    def _add_player(self) -> int:
        pid = next(self._player_ids)
        self.games_played.append(0)
        self.quota.append(self._match_rng.randint(*self.config.games_per_player))
        self.idle_pool.append(pid)
        self._live_index.append(len(self.live_players))
        self.live_players.append(pid)
        return pid

    def _remove_player(self, pid: int) -> None:
        # O(1) removal: swap with the last live player.
        idx = self._live_index[pid]
        self._live_index[pid] = -1
        last = self.live_players.pop()
        if last != pid:
            self.live_players[idx] = last
            self._live_index[last] = idx
        self.players_departed += 1
        self.runtime.deactivate(self.runtime.ref(self.PLAYER, pid).id,
                                discard_state=self.config.discard_departed)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._running = True
        if self.config.bootstrap:
            self._bootstrap()
        self._schedule_arrival()
        self.runtime.sim.schedule(self.config.matchmaking_period, self._matchmaking_tick)
        self._schedule_request()

    def stop(self) -> None:
        self._running = False

    def _bootstrap(self) -> None:
        """Start at steady state: a full population, most of it in games
        whose remaining durations are uniform (stationary residuals)."""
        for _ in range(self.config.target_players):
            self._add_player()
        # Form games out of everyone beyond the idle-pool target.
        while len(self.idle_pool) >= self.config.pool_target + self.config.players_per_game:
            if self.config.direct_bootstrap:
                self._install_game()
            else:
                self._start_game(bootstrap=True)

    # ------------------------------------------------------------------
    # Arrivals
    # ------------------------------------------------------------------
    def _schedule_arrival(self) -> None:
        if not self._running:
            return
        gap = self._arrival_rng.expovariate(self.arrival_rate())
        self.runtime.sim.schedule(gap, self._on_arrival)

    def _on_arrival(self) -> None:
        if not self._running:
            return
        self._add_player()
        self._schedule_arrival()

    # ------------------------------------------------------------------
    # Matchmaking and game lifecycle
    # ------------------------------------------------------------------
    def _matchmaking_tick(self) -> None:
        if not self._running:
            return
        while len(self.idle_pool) >= self.config.pool_target + self.config.players_per_game:
            self._start_game()
        self.runtime.sim.schedule(self.config.matchmaking_period, self._matchmaking_tick)

    def _draw_members(self) -> list[int]:
        members = []
        for _ in range(self.config.players_per_game):
            idx = self._match_rng.randrange(len(self.idle_pool))
            self.idle_pool[idx], self.idle_pool[-1] = (
                self.idle_pool[-1],
                self.idle_pool[idx],
            )
            members.append(self.idle_pool.pop())
        return members

    def _start_game(self, bootstrap: bool = False) -> None:
        members = self._draw_members()
        gid = next(self._game_ids)
        self.active_games[gid] = members
        self.playing.update(members)
        self.games_started += 1
        game_ref = self.runtime.ref(self.GAME, gid)
        refs = tuple(self.runtime.ref(self.PLAYER, pid) for pid in members)
        self.runtime.client_request(game_ref, "start_game", refs,
                                    size=256, response_size=32)
        lo, hi = self.config.game_duration
        duration = self._match_rng.uniform(lo, hi)
        if bootstrap:
            # Stationary residual lifetime: the game is already underway.
            duration *= self._match_rng.random()
        self.runtime.sim.schedule(duration, self._end_game, gid)

    def _install_game(self) -> None:
        """Bootstrap a game *directly*: place and host the game and its
        members, wire the refs, and schedule the residual duration — no
        messages.  A 10^6-player bootstrap through ``_start_game`` would
        put ~10^5 simultaneous ``start_game`` fan-outs (each 1 + 8 + 8
        messages) on the t=0 event queue before the run proper begins;
        installing state directly keeps bootstrap O(population) with no
        event-queue spike.  Draw order matches ``_start_game(bootstrap=
        True)`` exactly; only the message traffic differs, so this is an
        opt-in mode for the scale benches, not the pinned default."""
        members = self._draw_members()
        gid = next(self._game_ids)
        self.active_games[gid] = members
        self.playing.update(members)
        self.games_started += 1
        rt = self.runtime
        game_ref = rt.ref(self.GAME, gid)
        placement = rt.placement
        dest = placement.choose(game_ref.id, 0, rt.num_servers)
        rt.activate(game_ref.id, dest)
        game = rt.silos[dest].activations[game_ref.id].instance
        member_refs = []
        for pid in members:
            pref = rt.ref(self.PLAYER, pid)
            pdest = placement.choose(pref.id, 0, rt.num_servers)
            rt.activate(pref.id, pdest)
            rt.silos[pdest].activations[pref.id].instance.game = game_ref
            member_refs.append(pref)
        game.members = member_refs
        lo, hi = self.config.game_duration
        duration = self._match_rng.uniform(lo, hi)
        duration *= self._match_rng.random()  # stationary residual
        rt.sim.schedule(duration, self._end_game, gid)

    def _end_game(self, gid: int) -> None:
        if not self._running:
            return
        members = self.active_games.pop(gid, None)
        if members is None:
            return
        game_ref = self.runtime.ref(self.GAME, gid)
        # Player bookkeeping happens only once the game has released every
        # member (in the completion hook): deactivating a departing player
        # before the game's leave_game call reaches it would immediately
        # re-activate it, leaking actors.
        self.runtime.client_request(
            game_ref, "end_game", size=64, response_size=32,
            on_complete=lambda latency, result: self._game_closed(gid, members),
        )

    def _game_closed(self, gid: int, members: list[int]) -> None:
        self.runtime.deactivate(self.runtime.ref(self.GAME, gid).id,
                                discard_state=self.config.discard_departed)
        for pid in members:
            self.playing.discard(pid)
            if self._live_index[pid] < 0:
                continue  # departed concurrently (should not happen)
            self.games_played[pid] += 1
            if self.games_played[pid] >= self.quota[pid]:
                self._remove_player(pid)
            else:
                self.idle_pool.append(pid)

    # ------------------------------------------------------------------
    # Client status requests
    # ------------------------------------------------------------------
    def _schedule_request(self) -> None:
        if not self._running:
            return
        gap = self._request_rng.expovariate(self.config.request_rate)
        self.runtime.sim.schedule(gap, self._fire_request)

    def _fire_request(self) -> None:
        if not self._running:
            return
        self._schedule_request()
        if not self.live_players:
            return
        pid = self.live_players[self._request_rng.randrange(len(self.live_players))]
        if self.config.lazy_idle_pool and pid not in self.playing:
            # The workload knows this player is pooled; answer the
            # status probe locally instead of activating an idle actor
            # just to have it say "idle".  RNG draw order above is
            # identical either way.
            self.idle_short_circuits += 1
            return
        ref = self.runtime.ref(self.PLAYER, pid)
        self.requests_issued += 1
        self.runtime.client_request(
            ref, "request_status", self.requests_issued,
            size=self.config.request_size,
            response_size=self.config.response_size,
        )

    # ------------------------------------------------------------------
    @property
    def population(self) -> int:
        return len(self.live_players)
