"""Failure-handling primitives.

Orleans promises (§2): "the system automatically handles hardware or
software failures by re-instantiating the failed actor upon the next
call to it."  Our runtime mirrors that contract:

* calls carry an optional timeout; a response that never arrives (e.g.
  its target silo died) resolves the await by *throwing*
  :class:`CallTimeout` into the suspended turn;
* application errors raised by an actor method travel back to the caller
  as an :class:`ActorError` and are re-thrown at the await point;
* a failed silo loses its volatile actor state; the next call to any of
  its actors re-activates the actor elsewhere from the last persisted
  state.
"""

from __future__ import annotations

__all__ = ["ActorCrashed", "ActorError", "CallTimeout", "RequestShed"]


class ActorError(Exception):
    """An error crossing an actor boundary.

    When an actor method raises ``ActorError`` (or a subclass), the error
    becomes the call's result and is re-raised inside the calling actor's
    turn at its ``yield`` — or handed to the client's completion hook.
    Any *other* exception type is considered a bug in the simulation and
    propagates, crashing the run loudly.
    """


class CallTimeout(ActorError):
    """The response did not arrive within the configured call timeout."""

    def __init__(self, target, method: str, timeout: float):
        super().__init__(f"call to {target}.{method} timed out after {timeout}s")
        self.target = target
        self.method = method
        self.timeout = timeout

    def __reduce__(self):
        # Exceptions with multi-arg __init__ need an explicit recipe to
        # survive pickling (the asyncio backend ships error results over
        # real sockets between silos).
        return (CallTimeout, (self.target, self.method, self.timeout))


class ActorCrashed(ActorError):
    """An actor turn raised a non-:class:`ActorError` exception.

    On the simulator this is a bug and crashes the run; on the asyncio
    backend it is a *supervision* event: the policy decides the actor's
    fate (restart / stop / escalate) and the caller's await point sees
    this error as the call's result — crashes never vanish silently.
    ``cause`` carries the original exception.
    """

    def __init__(self, actor_id, method: str, cause: BaseException):
        super().__init__(
            f"actor {actor_id} crashed in {method!r}: {cause!r}")
        self.actor_id = actor_id
        self.method = method
        self.cause = cause

    def __reduce__(self):
        return (ActorCrashed, (self.actor_id, self.method, self.cause))


class RequestShed(ActorError):
    """Admission control shed this request before it entered the cluster.

    Raised at the client's completion hook only — shedding is a
    client-edge decision (graceful degradation under overload), so no
    actor ever observes it.
    """

    def __init__(self, target, method: str, policy: str):
        super().__init__(
            f"request to {target}.{method} shed by admission control "
            f"({policy})")
        self.target = target
        self.method = method
        self.policy = policy

    def __reduce__(self):
        return (RequestShed, (self.target, self.method, self.policy))
