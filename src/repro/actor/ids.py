"""Actor identities and references.

Orleans actors ("grains") are addressed by (type, key) and are *virtual*:
a reference can be created and called without the actor having been
instantiated anywhere — the runtime activates it on first use and the
physical location stays hidden from application code (§2).  That location
transparency is exactly what lets ActOp migrate actors under a running
application.
"""

from __future__ import annotations

from typing import Any, Hashable, NamedTuple

__all__ = ["ActorId", "ActorRef", "set_hash_salt"]

# Hash perturbation for the sanitizer's order-dependence probe.  Zero
# (the default) reproduces the plain tuple hash bit for bit; a non-zero
# salt reshuffles every hash-ordered container of ActorIds, so a seeded
# run whose result changes under salt provably iterates one somewhere.
_HASH_SALT = 0


def set_hash_salt(salt: int) -> None:
    """Perturb (salt != 0) or restore (salt == 0) ActorId hashing.

    Used by :func:`repro.analysis.sanitizer.detect_order_dependence`;
    production code never calls this.
    """
    global _HASH_SALT
    _HASH_SALT = salt


class ActorId(NamedTuple):
    """Stable logical identity of an actor."""

    actor_type: str
    key: Hashable

    def __str__(self) -> str:
        return f"{self.actor_type}/{self.key}"

    def __hash__(self) -> int:
        salt = _HASH_SALT
        if salt:
            return hash((salt, self.actor_type, self.key))
        return tuple.__hash__(self)


class ActorRef:
    """A location-transparent handle to an actor.

    Application code only ever holds refs; the runtime resolves them to a
    hosting server at message-send time.  Refs are cheap value objects and
    compare by identity of the actor they denote.
    """

    __slots__ = ("id",)

    def __init__(self, actor_type: str, key: Hashable):
        self.id = ActorId(actor_type, key)

    @property
    def actor_type(self) -> str:
        return self.id.actor_type

    @property
    def key(self) -> Hashable:
        return self.id.key

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, ActorRef) and self.id == other.id

    def __hash__(self) -> int:
        return hash(self.id)

    def __repr__(self) -> str:
        return f"ActorRef({self.id})"
