"""Actor identities and references.

Orleans actors ("grains") are addressed by (type, key) and are *virtual*:
a reference can be created and called without the actor having been
instantiated anywhere — the runtime activates it on first use and the
physical location stays hidden from application code (§2).  That location
transparency is exactly what lets ActOp migrate actors under a running
application.

At paper scale (10^6 actors, §6) identity objects dominate memory and
hashing dominates directory lookups, so ``ActorId`` instances are
*interned*: one canonical object per (type, key), with the tuple hash
computed once and cached.  Interning also assigns each id a small dense
``seq`` integer, which the silo-level communication tables use to pack an
edge into a single machine word instead of a tuple.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator

__all__ = ["ActorId", "ActorRef", "set_hash_salt"]

# Hash perturbation for the sanitizer's order-dependence probe.  Zero
# (the default) reproduces the plain tuple hash bit for bit; a non-zero
# salt reshuffles every hash-ordered container of ActorIds, so a seeded
# run whose result changes under salt provably iterates one somewhere.
_HASH_SALT = 0

# CommTable packs an edge as (src.seq << 32) | dst.seq — one machine
# word per edge.  The pack silently aliases distinct edges if a seq ever
# reaches 2^32, so interning refuses to hand out a seq that wide instead
# of corrupting communication graphs (and with them, migration
# decisions) at some far-away fold.
_MAX_SEQ = (1 << 32) - 1


def set_hash_salt(salt: int) -> None:
    """Perturb (salt != 0) or restore (salt == 0) ActorId hashing.

    Used by :func:`repro.analysis.sanitizer.detect_order_dependence`;
    production code never calls this.
    """
    global _HASH_SALT
    _HASH_SALT = salt


class ActorId:
    """Stable logical identity of an actor.

    Instances are interned: ``ActorId(t, k) is ActorId(t, k)``.  The
    cached ``_hash`` equals ``hash((t, k))`` so every hash-ordered
    container of ids iterates exactly as it did when ActorId was a plain
    NamedTuple — seeded digests depend on that.  Equality and ordering
    remain tuple-compatible (an ActorId compares equal to the bare
    ``(type, key)`` pair, and sorts element-wise), and ids still unpack
    like 2-tuples.
    """

    __slots__ = ("actor_type", "key", "seq", "_hash")

    _intern: dict[tuple[str, Hashable], "ActorId"] = {}

    def __new__(cls, actor_type: str, key: Hashable) -> "ActorId":
        pair = (actor_type, key)
        cached = cls._intern.get(pair)
        if cached is not None:
            return cached
        seq = len(cls._intern)
        if seq > _MAX_SEQ:
            raise OverflowError(
                f"ActorId intern space exhausted: id #{seq} for "
                f"({actor_type!r}, {key!r}) does not fit the 32-bit seq "
                "field that CommTable packs into (src.seq << 32) | dst.seq; "
                "a wider seq would silently alias communication edges"
            )
        self = object.__new__(cls)
        self.actor_type = actor_type
        self.key = key
        self.seq = seq
        self._hash = hash(pair)
        cls._intern[pair] = self
        return self

    def __str__(self) -> str:
        return f"{self.actor_type}/{self.key}"

    def __repr__(self) -> str:
        return f"ActorId(actor_type={self.actor_type!r}, key={self.key!r})"

    def __hash__(self) -> int:
        salt = _HASH_SALT
        if salt:
            return hash((salt, self.actor_type, self.key))
        return self._hash

    # Tuple-compatible protocol ----------------------------------------
    def __eq__(self, other: Any) -> bool:
        if self is other:
            return True
        if isinstance(other, ActorId):
            return self.actor_type == other.actor_type and self.key == other.key
        if isinstance(other, tuple):
            return len(other) == 2 and (self.actor_type, self.key) == other
        return NotImplemented

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def _astuple(self) -> tuple[str, Hashable]:
        return (self.actor_type, self.key)

    @staticmethod
    def _other_tuple(other: Any) -> Any:
        if isinstance(other, ActorId):
            return (other.actor_type, other.key)
        if isinstance(other, tuple):
            return other
        return NotImplemented

    def __lt__(self, other: Any) -> Any:
        o = self._other_tuple(other)
        return o if o is NotImplemented else self._astuple() < o

    def __le__(self, other: Any) -> Any:
        o = self._other_tuple(other)
        return o if o is NotImplemented else self._astuple() <= o

    def __gt__(self, other: Any) -> Any:
        o = self._other_tuple(other)
        return o if o is NotImplemented else self._astuple() > o

    def __ge__(self, other: Any) -> Any:
        o = self._other_tuple(other)
        return o if o is NotImplemented else self._astuple() >= o

    def __iter__(self) -> Iterator[Any]:
        return iter((self.actor_type, self.key))

    def __len__(self) -> int:
        return 2

    def __getitem__(self, index: int) -> Any:
        return (self.actor_type, self.key)[index]

    def __reduce__(self):
        # Re-intern on unpickle / deepcopy rather than duplicating.
        return (ActorId, (self.actor_type, self.key))

    # ------------------------------------------------------------------
    @classmethod
    def interned_count(cls) -> int:
        return len(cls._intern)


class ActorRef:
    """A location-transparent handle to an actor.

    Application code only ever holds refs; the runtime resolves them to a
    hosting server at message-send time.  Refs are cheap value objects and
    compare by identity of the actor they denote.
    """

    __slots__ = ("id",)

    def __init__(self, actor_type: str, key: Hashable):
        self.id = ActorId(actor_type, key)

    @property
    def actor_type(self) -> str:
        return self.id.actor_type

    @property
    def key(self) -> Hashable:
        return self.id.key

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, ActorRef) and self.id is other.id

    def __hash__(self) -> int:
        return hash(self.id)

    def __repr__(self) -> str:
        return f"ActorRef({self.id})"
