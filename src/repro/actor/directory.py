"""The distributed placement directory (modeled) and location caches.

Orleans keeps a distributed directory mapping actor to hosting server;
§4.3's migration mechanism works by *removing* an actor's entry and
letting the next caller re-place it, steered by location-cache hints on
the two servers involved in the migration.

Modeling note: we keep the directory as a single authoritative map with
atomic updates (the DES serializes all events, so no distributed-registry
races arise).  Lookup cost is zero — consistent with the paper, whose
latency story never charges directory traffic; what matters here is the
*protocol* around entries appearing and disappearing.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from .ids import ActorId

__all__ = ["Directory", "LocationCache"]


class Directory:
    """Authoritative actor -> server map plus a per-server census."""

    def __init__(self, num_servers: int):
        self._entries: dict[ActorId, int] = {}
        self._census: Counter[int] = Counter({p: 0 for p in range(num_servers)})

    def lookup(self, actor_id: ActorId) -> Optional[int]:
        return self._entries.get(actor_id)

    def register(self, actor_id: ActorId, server: int) -> None:
        if actor_id in self._entries:
            raise ValueError(f"{actor_id} is already registered")
        self._entries[actor_id] = server
        self._census[server] += 1

    def unregister(self, actor_id: ActorId) -> int:
        """Remove an entry (deactivation); returns the old server."""
        server = self._entries.pop(actor_id)
        self._census[server] -= 1
        return server

    def census(self) -> dict[int, int]:
        """Activations per server (the balance denominator)."""
        return dict(self._census)

    def entries(self) -> list[tuple[ActorId, int]]:
        """A snapshot of every (actor, server) registration.

        Insertion-ordered, so deterministic samplers (e.g. the fault
        injector's staleness action) stay reproducible across runs.
        """
        return list(self._entries.items())

    def count(self, server: int) -> int:
        return self._census[server]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, actor_id: ActorId) -> bool:
        return actor_id in self._entries


class LocationCache:
    """A silo's bounded cache of placement hints (§4.3).

    After migrating actor A from p to q, both p and q record A -> q; the
    next message to A from either silo re-places it on q.  "Old cached
    location values are evicted in order to maintain low space overhead"
    — we use FIFO eviction at a configurable capacity.
    """

    def __init__(self, capacity: int = 100_000):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._hints: dict[ActorId, int] = {}

    def hint(self, actor_id: ActorId, server: int) -> None:
        if actor_id in self._hints:
            # refresh: move to the back of the FIFO
            del self._hints[actor_id]
        elif len(self._hints) >= self.capacity:
            oldest = next(iter(self._hints))
            del self._hints[oldest]
        self._hints[actor_id] = server

    def get(self, actor_id: ActorId) -> Optional[int]:
        return self._hints.get(actor_id)

    def forget(self, actor_id: ActorId) -> None:
        self._hints.pop(actor_id, None)

    def __len__(self) -> int:
        return len(self._hints)
