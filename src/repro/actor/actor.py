"""The actor base class.

Application actors subclass :class:`Actor`, declare per-method simulated
compute demands, and write methods either as plain functions (compute
only) or as generators that ``yield`` :class:`~repro.actor.calls.Call` /
:class:`~repro.actor.calls.All` to interact with other actors — the
programming model §2 describes ("developers write applications in a
familiar object-oriented style").

State lifecycle: whatever the actor stores on ``self`` between
``on_activate`` and ``on_deactivate`` is persisted by the runtime and
restored on the next activation — possibly on a different server.  This
is the Orleans activation/deactivation mechanism §4.3 leans on for
transparent migration.
"""

from __future__ import annotations

from typing import Any, ClassVar, Optional

from .ids import ActorId, ActorRef

__all__ = ["Actor", "DEFAULT_COMPUTE", "DEFAULT_RESUME_COMPUTE", "idempotent"]

DEFAULT_COMPUTE = 50e-6          # 50 µs of application logic per invocation
DEFAULT_RESUME_COMPUTE = 5e-6    # 5 µs to resume a suspended turn


def idempotent(method):
    """Mark an actor method as safe to replay.

    A retrying :class:`~repro.faults.resilience.ResilienceConfig` may
    re-send a timed-out request whose first attempt already executed.
    This marker documents (and lets the ``FLOW-RETRY-NONIDEMPOTENT``
    lint rule verify) that replaying the method converges — e.g. a
    last-writer-wins status write, or a monotonic counter that is only
    read as a liveness signal, never as an exact count.  It has no
    runtime effect.
    """
    method.__repro_idempotent__ = True
    return method


class Actor:
    """Base class for application actors.

    Class-level knobs:

    * ``COMPUTE``: method name -> simulated on-CPU seconds of application
      logic (defaults to :data:`DEFAULT_COMPUTE`).
    * ``WAIT``: method name -> simulated synchronous blocking seconds
      (legacy sync I/O; makes the hosting worker stage a *blocking* stage
      for the §5 model).
    * ``REENTRANT``: whether new invocations may interleave with a turn
      suspended at a yield point.  Orleans-style call-chain reentrancy is
      required for call cycles such as player -> game -> player; the
      default is True.
    * ``PERSISTED``: optional tuple of field names that make up the
      actor's durable state.  When declared, ``capture_state()``
      snapshots exactly those fields (instead of the whole ``__dict__``),
      so deactivation, migration, and supervision restarts restore only
      the declared set — any other field reverts to its ``__init__``
      value.  The ``XB-UNPERSISTED-RESTORE`` lint rule flags methods
      that mutate non-underscore fields outside the declared set.
    """

    COMPUTE: ClassVar[dict[str, float]] = {}
    WAIT: ClassVar[dict[str, float]] = {}
    REENTRANT: ClassVar[bool] = True
    PERSISTED: ClassVar[Optional[tuple[str, ...]]] = None

    def __init__(self) -> None:
        # Filled in by the runtime at activation time.
        self._id: Optional[ActorId] = None
        self._server_id: Optional[int] = None

    # ------------------------------------------------------------------
    # Runtime-facing
    # ------------------------------------------------------------------
    def _bind(self, actor_id: ActorId, server_id: int) -> None:
        self._id = actor_id
        self._server_id = server_id

    @classmethod
    def compute_cost(cls, method: str) -> float:
        return cls.COMPUTE.get(method, DEFAULT_COMPUTE)

    @classmethod
    def wait_cost(cls, method: str) -> float:
        return cls.WAIT.get(method, 0.0)

    # ------------------------------------------------------------------
    # Application-facing
    # ------------------------------------------------------------------
    @property
    def id(self) -> ActorId:
        if self._id is None:
            raise RuntimeError("actor is not activated")
        return self._id

    @property
    def key(self) -> Any:
        return self.id.key

    def self_ref(self) -> ActorRef:
        return ActorRef(self.id.actor_type, self.id.key)

    def on_activate(self) -> None:
        """Hook: called after state restore, before the first message."""

    def on_deactivate(self) -> None:
        """Hook: called before state capture on deactivation/migration."""

    # State capture: everything in __dict__ except runtime bindings —
    # or exactly the declared PERSISTED subset when the class names one.
    _RUNTIME_FIELDS = ("_id", "_server_id")

    def capture_state(self) -> dict[str, Any]:
        if self.PERSISTED is not None:
            return {k: v for k, v in self.__dict__.items()
                    if k in self.PERSISTED}
        return {
            k: v for k, v in self.__dict__.items() if k not in self._RUNTIME_FIELDS
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
