"""Asynchronous call primitives yielded from actor methods.

Actor methods are written as generators; ``yield Call(...)`` suspends the
turn until the response arrives, and ``yield All([...])`` fans out and
joins — the shape of the Halo game actor's broadcast (§3).  These objects
are pure descriptions; the silo's turn executor interprets them.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from .ids import ActorRef

__all__ = ["Call", "All", "Sleep", "Tell"]


class Call:
    """A single actor-to-actor request awaiting one response.

    ``timeout`` (seconds, in workload time units) overrides the cluster's
    default call timeout for this call only; None inherits the default.
    """

    __slots__ = ("target", "method", "args", "size", "response_size", "timeout")

    def __init__(
        self,
        target: ActorRef,
        method: str,
        *args: Any,
        size: int = 256,
        response_size: Optional[int] = None,
        timeout: Optional[float] = None,
    ):
        self.target = target
        self.method = method
        self.args = args
        self.size = size
        self.response_size = response_size if response_size is not None else size // 2 or 64
        self.timeout = timeout

    def __repr__(self) -> str:
        return f"Call({self.target.id}.{self.method})"


class All:
    """Fan-out join: issue every call concurrently, resume with the list
    of results in call order."""

    __slots__ = ("calls",)

    def __init__(self, calls: Sequence[Call]):
        self.calls = list(calls)
        if not self.calls:
            raise ValueError("All() needs at least one call")

    def __repr__(self) -> str:
        return f"All({len(self.calls)} calls)"


class Tell:
    """A fire-and-forget message: dispatched immediately, no response,
    and the yielding turn resumes at once without suspending.  The
    one-way pattern of classic actor systems (Akka/Erlang casts)."""

    __slots__ = ("target", "method", "args", "size")

    def __init__(self, target: ActorRef, method: str, *args: Any,
                 size: int = 256):
        self.target = target
        self.method = method
        self.args = args
        self.size = size

    def __repr__(self) -> str:
        return f"Tell({self.target.id}.{self.method})"


class Sleep:
    """Suspend the turn for a simulated duration without holding a thread.

    Used by workload actors for think time (e.g. a player idling between
    heartbeats when the behavior is driven from inside the actor)."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise ValueError("sleep duration must be >= 0")
        self.duration = duration

    def __repr__(self) -> str:
        return f"Sleep({self.duration})"
