"""The Orleans-like actor substrate.

Everything the paper assumes from Orleans (§2) lives here: virtual actors
addressed by (type, key), on-demand activation, a placement directory,
pluggable placement policies, SEDA-staged silos with RPC/LPC message
paths, and the transparent opportunistic migration machinery of §4.3.
"""

from .activation import Activation, WorkItem, WorkKind
from .actor import DEFAULT_COMPUTE, DEFAULT_RESUME_COMPUTE, Actor, idempotent
from .calls import All, Call, Sleep, Tell
from .directory import Directory, LocationCache
from .errors import ActorCrashed, ActorError, CallTimeout, RequestShed
from .ids import ActorId, ActorRef
from .messages import Message, MessageKind
from .placement import (
    HashPlacement,
    PlacementPolicy,
    PreferLocalPlacement,
    RandomPlacement,
    RoundRobinPlacement,
)
from .runtime import ActorRuntime, ClusterConfig
from .serialization import SerializationModel
from .server import STAGE_NAMES, Silo

__all__ = [
    "Activation",
    "Actor",
    "ActorCrashed",
    "ActorError",
    "ActorId",
    "ActorRef",
    "ActorRuntime",
    "All",
    "Call",
    "CallTimeout",
    "ClusterConfig",
    "DEFAULT_COMPUTE",
    "DEFAULT_RESUME_COMPUTE",
    "Directory",
    "HashPlacement",
    "LocationCache",
    "Message",
    "MessageKind",
    "PlacementPolicy",
    "PreferLocalPlacement",
    "RandomPlacement",
    "RequestShed",
    "RoundRobinPlacement",
    "STAGE_NAMES",
    "SerializationModel",
    "Tell",
    "Silo",
    "Sleep",
    "WorkItem",
    "WorkKind",
    "idempotent",
]
