"""Placement policies for newly activated actors (§2–3).

Orleans ships several static policies; the paper evaluates against the
default **random** policy ("Orleans is by default configured with a
simple random placement policy") and discusses why **prefer-local** and
hash-based placement are insufficient.  ActOp does not replace the
placement policy — new actors still land by policy; the partitioning
protocol then migrates them to where they belong.  Migration *hints*
(location-cache entries left by §4.3's opportunistic mechanism) take
precedence over the policy and are handled by the silo, not here.
"""

from __future__ import annotations

from typing import Protocol

from ..sim.rng import RngRegistry
from .ids import ActorId

__all__ = [
    "PlacementPolicy",
    "RandomPlacement",
    "HashPlacement",
    "PreferLocalPlacement",
    "RoundRobinPlacement",
]


class PlacementPolicy(Protocol):
    """Chooses a server for a brand-new activation."""

    def choose(self, actor_id: ActorId, calling_server: int, num_servers: int) -> int:
        """Return the server index to activate ``actor_id`` on."""
        ...


class RandomPlacement:
    """Uniform random — Orleans' default; balances load, ignores locality."""

    def __init__(self, rng: RngRegistry):
        self._rng = rng.stream("placement.random")

    def choose(self, actor_id: ActorId, calling_server: int, num_servers: int) -> int:
        return self._rng.randrange(num_servers)


class HashPlacement:
    """Consistent-hash style: a deterministic function of the identity.

    The key-value-store strategy §1 contrasts with: balanced, stable,
    and completely locality-blind.
    """

    def choose(self, actor_id: ActorId, calling_server: int, num_servers: int) -> int:
        # Stable across processes (no PYTHONHASHSEED dependence) for ints
        # and strings, which is all the workloads use.
        key = f"{actor_id.actor_type}:{actor_id.key}"
        h = 0
        for ch in key:
            h = (h * 131 + ord(ch)) % (2**32)
        return h % num_servers


class PreferLocalPlacement:
    """Activate where first called (§3's "local placement policy").

    Wins when the callee is exclusively owned by its first caller; loses
    when later, more frequent callers live elsewhere — and can badly skew
    load, which is why Orleans does not default to it.
    """

    def choose(self, actor_id: ActorId, calling_server: int, num_servers: int) -> int:
        return calling_server


class RoundRobinPlacement:
    """Deterministic rotation; occasionally useful in tests."""

    def __init__(self) -> None:
        self._next = 0

    def choose(self, actor_id: ActorId, calling_server: int, num_servers: int) -> int:
        chosen = self._next % num_servers
        self._next += 1
        return chosen
