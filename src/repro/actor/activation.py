"""Activations: a live actor instance on a specific silo.

An activation owns the actor object, its per-actor work queue (Orleans
runs at most one thread inside an actor at any instant) and the
deactivation latch used by transparent migration.  Communication
counters (§4.3) do NOT live here: a million idle activations must cost
O(bytes) each, so per-edge counts are aggregated in the silo-level
:class:`repro.actor.commtable.CommTable` instead of a dict per actor.

The work queue is a plain list: empty lists cost 56 bytes against a
deque's ~760, and queues are almost always empty or near-empty (depth
beyond a handful only occurs under overload), so pop(0) beats the
constant factor of deque at every realistic depth.
"""

from __future__ import annotations

from enum import Enum, auto
from typing import Any, Optional

from .actor import Actor
from .ids import ActorId
from .messages import Message

__all__ = ["Activation", "WorkItem", "WorkKind"]


class WorkKind(Enum):
    START = auto()    # begin a new turn for an incoming request
    RESUME = auto()   # resume a turn suspended at a yield point


class WorkItem:
    """One compute-stage segment waiting its turn inside the actor."""

    __slots__ = ("kind", "message", "continuation", "value", "compute", "wait",
                 "throw")

    def __init__(
        self,
        kind: WorkKind,
        compute: float,
        wait: float = 0.0,
        message: Optional[Message] = None,
        continuation: Any = None,
        value: Any = None,
        throw: bool = False,
    ):
        self.kind = kind
        self.compute = compute
        self.wait = wait
        self.message = message          # START: the triggering request
        self.continuation = continuation  # RESUME: the suspended turn
        self.value = value              # RESUME: value to send into the generator
        self.throw = throw              # RESUME: raise value inside instead

class Activation:
    """A live actor on one silo."""

    __slots__ = (
        "actor_id",
        "instance",
        "queue",
        "segment_running",
        "open_turns",
        "pending_calls",
        "deactivating",
        "discard_state",
        "deactivation_hint",
        "messages_handled",
        "last_active",
    )

    def __init__(self, actor_id: ActorId, instance: Actor):
        self.actor_id = actor_id
        self.instance = instance
        self.queue: list[WorkItem] = []
        self.segment_running = False
        self.open_turns = 0          # turns started but not yet completed
        self.pending_calls = 0       # outstanding Call()s awaiting responses
        self.deactivating = False
        self.discard_state = False   # deactivate without persisting state
        self.deactivation_hint: Optional[int] = None
        self.messages_handled = 0
        self.last_active = 0.0       # sim time of the last enqueued work

    # ------------------------------------------------------------------
    @property
    def reentrant(self) -> bool:
        return type(self.instance).REENTRANT

    def next_eligible(self) -> Optional[WorkItem]:
        """Pop the next runnable work item, honoring reentrancy rules.

        RESUME items are always eligible (they belong to already-open
        turns).  START items are eligible when the actor is reentrant or
        no turn is open.  FIFO order is preserved among eligible items;
        a blocked START does not block later RESUMEs.
        """
        if not self.queue or self.segment_running:
            return None
        if self.reentrant:
            return self.queue.pop(0)
        for idx, item in enumerate(self.queue):
            if item.kind is WorkKind.RESUME or self.open_turns == 0:
                del self.queue[idx]
                return item
        return None

    @property
    def quiescent(self) -> bool:
        """Safe to deactivate: nothing queued, running, or awaited."""
        return (
            not self.queue
            and not self.segment_running
            and self.open_turns == 0
            and self.pending_calls == 0
        )
