"""The cluster runtime: silos, directory, placement, client traffic.

This is the public entry point of the actor substrate — the piece that
plays Orleans' role in the reproduction.  It owns the simulator, the
network, the placement directory, per-silo SEDA servers, and the
persisted actor state store, and it exposes the measurement points the
paper reports: end-to-end client latency, actor-to-actor call latency,
remote/local message counters, migrations, and per-server CPU.

Client-side resilience (retry with backoff, end-to-end deadlines,
bounded admission with load shedding) is configured through a
:class:`~repro.faults.resilience.ResilienceConfig`; a runtime built with
``resilience=None`` takes a fast path whose event sequence is
bit-identical to a build without the resilience layer.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional, Type

from ..bench.metrics import HistogramRecorder, LatencyRecorder
from ..faults.resilience import AdmissionConfig, ResilienceConfig
from ..obs.events import RetryEvent, ShedEvent, SiloScaleEvent
from ..sim.engine import Simulator
from ..sim.network import Network
from ..sim.rng import RngRegistry
from .actor import Actor
from .directory import Directory
from .errors import CallTimeout, RequestShed
from .ids import ActorId, ActorRef
from .messages import Message, MessageKind, next_call_id
from .placement import PlacementPolicy, RandomPlacement
from .serialization import SerializationModel
from .server import Silo

__all__ = ["ClusterConfig", "ActorRuntime"]

_MISSING = object()  # sentinel: call id not in flight (late / duplicate)


@dataclass
class ClusterConfig:
    """Cluster-wide knobs (defaults mirror the paper's testbed).

    Attributes:
        num_servers: silo count (the paper's cluster has 10).
        processors: cores per silo (8).
        switch_factor: per-excess-thread compute inflation.
        dispatch_overhead: fixed per-burst context-switch cost.
        initial_threads: threads per stage at boot; ``None`` uses the
            Orleans default of one thread per stage per core (§3).
        serialization: RPC/LPC cost model.
        network_latency / network_jitter: wire model.
        resume_compute: CPU cost of resuming a suspended turn.
        client_response_size: bytes of a client-bound response.
        location_cache_capacity: per-silo hint cache size.
        max_receiver_queue: deprecated — use
            ``ResilienceConfig(admission=AdmissionConfig(receiver_queue=...))``.
        time_scale: multiply every simulated duration (costs, network,
            waits) by this factor; drive the workload at rate/time_scale
            and the system sits at the *same* utilization with the same
            latency shape while simulating time_scale-fold fewer events.
            Benches report latencies divided back by time_scale.
        call_timeout: deprecated — use ``ResilienceConfig(call_timeout=...)``.
        seed: root seed for every RNG substream.
    """

    num_servers: int = 10
    processors: int = 8
    switch_factor: float = 0.05
    dispatch_overhead: float = 2e-6
    initial_threads: Optional[int] = None
    serialization: SerializationModel = field(default_factory=SerializationModel)
    network_latency: float = 0.0005
    network_jitter: float = 0.1
    resume_compute: float = 5e-6
    client_response_size: int = 256
    location_cache_capacity: int = 100_000
    max_receiver_queue: Optional[int] = None
    time_scale: float = 1.0
    idle_collection_age: Optional[float] = None
    idle_collection_period: float = 30.0
    call_timeout: Optional[float] = None
    seed: int = 0


class _ClientRequest:
    """In-flight bookkeeping for one resilient client request.

    One instance spans every dispatch attempt; per-attempt artifacts
    (call id, timer, trace context) are re-created by
    :meth:`ActorRuntime._dispatch_attempt`.
    """

    __slots__ = ("ref", "method", "args", "size", "response_size",
                 "on_complete", "idempotent", "t0", "deadline_at",
                 "attempts", "call_id", "admitted", "backoff_timer")

    def __init__(self, ref: ActorRef, method: str, args: tuple, size: int,
                 response_size: int, on_complete, idempotent: bool,
                 t0: float, deadline_at: Optional[float]):
        self.ref = ref
        self.method = method
        self.args = args
        self.size = size
        self.response_size = response_size
        self.on_complete = on_complete
        self.idempotent = idempotent
        self.t0 = t0
        self.deadline_at = deadline_at
        self.attempts = 0
        self.call_id = -1
        self.admitted = False
        self.backoff_timer = None


class ActorRuntime:
    """An Orleans-like cluster over the discrete-event simulator."""

    # Armed race sanitizer (repro.analysis.sanitizer), or None.
    _san = None

    def __init__(self, config: Optional[ClusterConfig] = None,
                 sim: Optional[Simulator] = None,
                 resilience: Optional[ResilienceConfig] = None):
        self.config = config or ClusterConfig()
        if self.config.num_servers < 1:
            raise ValueError("need at least one server")
        self.sim = sim or Simulator()
        self.rng = RngRegistry(self.config.seed)
        ts = self.config.time_scale
        if ts <= 0:
            raise ValueError("time_scale must be positive")
        self.time_scale = ts
        self.serialization = self.config.serialization.scaled(ts)
        self.resume_compute = self.config.resume_compute * ts

        resilience = self._fold_deprecated_config(resilience)
        self.resilience = resilience
        self.retry_policy = resilience.retry if resilience else None
        self.admission = resilience.admission if resilience else None
        self.call_timeout = (
            resilience.call_timeout * ts
            if resilience is not None and resilience.call_timeout is not None
            else None
        )
        self.request_deadline = (
            resilience.request_deadline * ts
            if resilience is not None and resilience.request_deadline is not None
            else None
        )
        self.max_receiver_queue = (
            self.admission.receiver_queue if self.admission is not None else None
        )

        self.network = Network(
            self.sim,
            self.rng,
            base_latency=self.config.network_latency * ts,
            jitter=self.config.network_jitter,
        )
        self.directory = Directory(self.config.num_servers)
        self.placement: PlacementPolicy = RandomPlacement(self.rng)
        self.actor_types: dict[str, Type[Actor]] = {}
        self.storage: dict[ActorId, dict[str, Any]] = {}
        # Tombstones for actors deactivated with discard_state=True: the
        # placement fast path must still treat them as "existed before"
        # (§4.3 re-places at the calling server) even though their state
        # was dropped, or discarding would perturb seeded placement RNG
        # draws.  Membership-only — never iterated.
        self.discarded: set[ActorId] = set()
        # Observability attachment point (set by repro.obs.Observability).
        # None means fully uninstrumented: every tracing branch below is
        # one attribute load + comparison.
        self.obs = None
        self._client_traces: dict[int, Any] = {}
        self.silos = [Silo(self, i) for i in range(self.config.num_servers)]
        self._gateway_rng = self.rng.stream("client.gateway")
        self._retry_rng = None  # lazily created "resilience.retry" stream
        if self.admission is not None and self.admission.stage_soft_limit:
            for silo in self.silos:
                for stage in silo.server.stages.values():
                    stage.soft_limit = self.admission.stage_soft_limit
        if self.config.idle_collection_age is not None:
            self.sim.schedule(self.config.idle_collection_period,
                              self._idle_collection_tick)

        # Cluster-wide measurements.  The reservoir recorder is the exact
        # (sorted) reference; the streaming histogram answers windowed
        # percentile queries in O(buckets) for the samplers.
        self.client_latency = LatencyRecorder(reservoir=200_000)
        self.call_latency = LatencyRecorder(reservoir=200_000)
        self.client_latency_hist = HistogramRecorder()
        self.msgs_local = 0
        self.msgs_remote = 0
        self.migrations_total = 0
        self.rejected_requests = 0
        self.requests_completed = 0
        self.requests_timed_out = 0
        self.requests_shed = 0
        self.request_retries = 0
        self.late_responses = 0
        self.failovers = 0
        self.silos_added = 0
        self.silos_drained = 0
        self._client_hooks: dict[int, Callable[[float, Any], None]] = {}
        self._client_timers: dict[int, Any] = {}
        # call_id -> _ClientRequest (resilient) or None (fast path).
        # Responses whose call id is absent are late or duplicated and
        # get discarded (counted in late_responses), never double-completed.
        self._inflight: dict[int, Optional[_ClientRequest]] = {}
        # Admission window: insertion-ordered, so drop_oldest is O(1).
        self._admitted: dict[_ClientRequest, None] = {}

    def _fold_deprecated_config(
        self, resilience: Optional[ResilienceConfig]
    ) -> Optional[ResilienceConfig]:
        """Deprecation shim for ClusterConfig.{call_timeout,max_receiver_queue}."""
        cfg = self.config
        if cfg.call_timeout is None and cfg.max_receiver_queue is None:
            return resilience
        warnings.warn(
            "ClusterConfig.call_timeout and ClusterConfig.max_receiver_queue "
            "are deprecated; pass ResilienceConfig(call_timeout=..., "
            "admission=AdmissionConfig(receiver_queue=...)) instead",
            DeprecationWarning, stacklevel=3,
        )
        if resilience is not None:
            return resilience  # explicit config wins over deprecated knobs
        admission = (AdmissionConfig(receiver_queue=cfg.max_receiver_queue)
                     if cfg.max_receiver_queue is not None else None)
        return ResilienceConfig(call_timeout=cfg.call_timeout,
                                admission=admission)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    @property
    def num_servers(self) -> int:
        return self.config.num_servers

    def register_actor(self, actor_type: str, cls: Type[Actor]) -> None:
        """Register an application actor class under a type name."""
        if not issubclass(cls, Actor):
            raise TypeError(f"{cls!r} is not an Actor subclass")
        if actor_type in self.actor_types:
            raise ValueError(f"actor type {actor_type!r} already registered")
        self.actor_types[actor_type] = cls

    def set_placement(self, policy: PlacementPolicy) -> None:
        self.placement = policy

    def ref(self, actor_type: str, key: Hashable) -> ActorRef:
        if actor_type not in self.actor_types:
            raise KeyError(f"unknown actor type {actor_type!r}")
        return ActorRef(actor_type, key)

    # ------------------------------------------------------------------
    # Activation management (silos call back into these)
    # ------------------------------------------------------------------
    def activate(self, actor_id: ActorId, server: int) -> None:
        self.directory.register(actor_id, server)
        self.silos[server].host(actor_id)

    def locate(self, actor_id: ActorId) -> Optional[int]:
        return self.directory.lookup(actor_id)

    def _idle_collection_tick(self) -> None:
        """Orleans-style activation GC: silos drop long-idle actors."""
        age = self.config.idle_collection_age
        assert age is not None
        for silo in self.silos:
            silo.collect_idle(age)
        self.sim.schedule(self.config.idle_collection_period,
                          self._idle_collection_tick)

    def deactivate(self, actor_id: ActorId, discard_state: bool = False) -> bool:
        """Idle-collect an actor wherever it lives (no placement hint).

        With ``discard_state`` the actor's persisted state is dropped
        instead of captured — for actors whose lifecycle is over (a
        departed player, a dissolved game), keeping storage from growing
        monotonically with churn.  A tombstone preserves the placement
        branch the stored state would have selected.
        """
        location = self.directory.lookup(actor_id)
        if location is None:
            return False
        return self.silos[location].deactivate(actor_id, discard_state=discard_state)

    # ------------------------------------------------------------------
    # Failure injection (§2's fault-tolerance contract)
    # ------------------------------------------------------------------
    def fail_silo(self, server: int) -> None:
        """Crash one silo (volatile state lost; directory entries dropped)."""
        self.silos[server].fail()

    def restart_silo(self, server: int) -> None:
        self.silos[server].restart()

    def pick_live_server(self, preferred: Optional[int] = None) -> int:
        """A live, non-draining server, preferring the caller's own (used
        when placement lands on a dead or draining silo)."""
        if preferred is not None:
            silo = self.silos[preferred]
            if not (silo.dead or silo.draining):
                return preferred
        live = [s.server_id for s in self.silos if not (s.dead or s.draining)]
        if not live:
            raise RuntimeError("every silo in the cluster has failed")
        return live[self._gateway_rng.randrange(len(live))]

    def census(self) -> dict[int, int]:
        return self.directory.census()

    # ------------------------------------------------------------------
    # Elastic membership (repro.autoscale; also reachable from fault
    # plans via AddSilo / DrainSilo — one action vocabulary)
    # ------------------------------------------------------------------
    @property
    def active_servers(self) -> int:
        """Silos currently accepting placement (live and not draining)."""
        return sum(1 for s in self.silos if not (s.dead or s.draining))

    def add_silo(self, server: Optional[int] = None) -> Optional[int]:
        """Bring a parked or crashed silo back into service.

        ``server=None`` picks the lowest-numbered dead silo.  Returns the
        server id, or None when there is no parked capacity (or the named
        silo is already live).  Capacity is fixed at construction
        (``ClusterConfig.num_servers`` is the fleet ceiling); elasticity
        is membership, not allocation — the Orleans model, where a silo
        process joins or leaves a pre-provisioned cluster.
        """
        if server is None:
            for silo in self.silos:
                if silo.dead:
                    server = silo.server_id
                    break
            else:
                return None
        silo = self.silos[server]
        if not silo.dead:
            return None
        silo.restart()
        self.silos_added += 1
        obs = self.obs
        if obs is not None:
            obs.events.emit(SiloScaleEvent(
                self.sim.now, server=server, action="add"))
        return server

    def drain_silo(self, server: int, poll: float = 0.25,
                   on_complete: Optional[Callable[[int], None]] = None) -> bool:
        """Gracefully remove one silo: the §4.3 migration path in bulk.

        The silo immediately stops being a placement/gateway target (the
        admission edge of the PR-3 shedding path: no *new* work is let
        in), every hosted activation starts an opportunistic migration to
        the remaining live silos (round-robin over server ids — the ActOp
        rebalance kick that follows repairs locality), and a poll loop
        decommissions the silo once it is empty and idle.  Returns False
        if the silo is already dead or draining; ``on_complete(server)``
        fires at decommission time.
        """
        silo = self.silos[server]
        if silo.dead or silo.draining:
            return False
        recipients = [s.server_id for s in self.silos
                      if not (s.dead or s.draining) and s.server_id != server]
        if not recipients:
            raise RuntimeError("cannot drain the last live silo")
        silo.draining = True
        obs = self.obs
        if obs is not None:
            obs.events.emit(SiloScaleEvent(
                self.sim.now, server=server, action="drain_begin",
                activations=len(silo.activations)))
        self._migrate_off(silo, recipients)
        self.sim.schedule(poll, self._drain_poll, server, poll, on_complete)
        return True

    def _migrate_off(self, silo: Silo, recipients: list[int]) -> None:
        for i, actor_id in enumerate(list(silo.activations)):
            activation = silo.activations.get(actor_id)
            if activation is not None and not activation.deactivating:
                silo.migrate(actor_id, recipients[i % len(recipients)])

    def _drain_poll(self, server: int, poll: float,
                    on_complete: Optional[Callable[[int], None]]) -> None:
        silo = self.silos[server]
        if silo.dead:
            # Crashed (or already decommissioned) mid-drain: the silo is
            # out of service either way, so the drain is complete.
            if on_complete is not None:
                on_complete(server)
            return
        if not silo.quiesced:
            recipients = [s.server_id for s in self.silos
                          if not (s.dead or s.draining)]
            if recipients:
                # Re-kick stragglers: an activation can outlive the first
                # sweep (e.g. it was mid-call-chain and a racing message
                # re-drove it), and plain deactivations need a hint too.
                self._migrate_off(silo, recipients)
            self.sim.schedule(poll, self._drain_poll, server, poll, on_complete)
            return
        silo.decommission()
        self.silos_drained += 1
        obs = self.obs
        if obs is not None:
            obs.events.emit(SiloScaleEvent(
                self.sim.now, server=server, action="drain_done"))
        if on_complete is not None:
            on_complete(server)

    # ------------------------------------------------------------------
    # Client traffic
    # ------------------------------------------------------------------
    def client_request(
        self,
        ref: ActorRef,
        method: str,
        *args: Any,
        size: int = 256,
        response_size: int = 256,
        on_complete: Optional[Callable[[float, Any], None]] = None,
        idempotent: bool = True,
    ) -> None:
        """Issue one external client request toward an actor.

        Latency (request creation to response delivery at the client) is
        recorded in :attr:`client_latency`; ``on_complete(latency,
        result)`` fires as well if given — with an
        :class:`~repro.actor.errors.ActorError` result on timeout or
        shed.  ``idempotent=False`` marks the request unsafe to
        re-dispatch; the retry policy honours it.
        """
        if self.resilience is None:
            # Fast path: bit-identical to a runtime without the
            # resilience layer (same calls, same order, no extra draws).
            gateway = self.silos[self.pick_live_server(
                self._gateway_rng.randrange(self.num_servers))]
            destination = gateway._resolve_or_place(ref.id)
            call_id = next_call_id()
            obs = self.obs
            ctx = (obs.tracer.begin_request(f"{ref.id}.{method}")
                   if obs is not None else None)
            message = Message(
                kind=MessageKind.CLIENT_REQUEST,
                target=ref.id,
                method=method,
                args=args,
                size=size,
                call_id=call_id,
                created_at=self.sim.now,
                response_size=response_size,
                trace=ctx,
            )
            self._inflight[call_id] = None
            if ctx is not None:
                self._client_traces[call_id] = ctx
            if on_complete is not None:
                self._client_hooks[call_id] = on_complete
            latency = self.network.deliver(
                size, self.silos[destination].deliver, message,
                dst=destination)
            if ctx is not None:
                obs.tracer.network_hop(ctx, None, destination, size, latency)
            return

        now = self.sim.now
        deadline_at = (now + self.request_deadline
                       if self.request_deadline is not None else None)
        state = _ClientRequest(ref, method, args, size, response_size,
                               on_complete, idempotent, now, deadline_at)
        if not self._admit(state):
            return
        self._dispatch_attempt(state)

    def _dispatch_attempt(self, state: _ClientRequest) -> None:
        """One dispatch of a resilient request (first try or retry)."""
        state.attempts += 1
        gateway = self.silos[self.pick_live_server(
            self._gateway_rng.randrange(self.num_servers))]
        destination = gateway._resolve_or_place(state.ref.id)
        call_id = next_call_id()
        state.call_id = call_id
        self._inflight[call_id] = state
        obs = self.obs
        ctx = (obs.tracer.begin_request(f"{state.ref.id}.{state.method}")
               if obs is not None else None)
        message = Message(
            kind=MessageKind.CLIENT_REQUEST,
            target=state.ref.id,
            method=state.method,
            args=state.args,
            size=state.size,
            call_id=call_id,
            created_at=self.sim.now,
            response_size=state.response_size,
            trace=ctx,
        )
        if ctx is not None:
            self._client_traces[call_id] = ctx
        if state.on_complete is not None:
            self._client_hooks[call_id] = state.on_complete
        timeout = self.call_timeout
        if state.deadline_at is not None:
            remaining = max(state.deadline_at - self.sim.now, 0.0)
            timeout = remaining if timeout is None else min(timeout, remaining)
        if timeout is not None:
            self._client_timers[call_id] = self.sim.schedule(
                timeout, self._client_request_timed_out,
                call_id, state.ref.id, state.method,
            )
        latency = self.network.deliver(
            state.size, self.silos[destination].deliver, message,
            dst=destination)
        if ctx is not None:
            obs.tracer.network_hop(ctx, None, destination, state.size, latency)

    def complete_client_request(self, response: Message) -> None:
        """Called when a client response leaves the cluster (post-network)."""
        state = self._inflight.pop(response.call_id, _MISSING)
        if state is _MISSING:
            # Late (the request already timed out / was shed) or a
            # network-duplicated delivery: discard, never double-complete.
            self.late_responses += 1
            return
        timer = self._client_timers.pop(response.call_id, None)
        if timer is not None:
            timer.cancel()
        ctx = self._client_traces.pop(response.call_id, None)
        if ctx is not None and self.obs is not None:
            self.obs.tracer.end_request(ctx)
        if state is None:
            latency = self.sim.now - response.created_at
        else:
            # Retried requests measure from first issue, not last attempt.
            latency = self.sim.now - state.t0
            self._release(state)
        self.client_latency.record(latency)
        self.client_latency_hist.record(latency)
        self.requests_completed += 1
        hook = self._client_hooks.pop(response.call_id, None)
        if hook is not None:
            hook(latency, response.result)

    def _client_request_timed_out(self, call_id: int, target, method: str) -> None:
        state = self._inflight.pop(call_id, _MISSING)
        if state is _MISSING:
            return  # already resolved; stale timer
        self._client_timers.pop(call_id, None)
        ctx = self._client_traces.pop(call_id, None)
        if state is not None and self._should_retry(state):
            # This attempt is dead (its late response, if any, will be
            # discarded via _inflight); the request lives on.
            if ctx is not None and self.obs is not None:
                self.obs.tracer.end_request(ctx, error="timeout")
            self._client_hooks.pop(call_id, None)
            backoff = self.retry_policy.delay_for(
                state.attempts, self._retry_stream()) * self.time_scale
            if state.deadline_at is not None:
                backoff = min(backoff, max(state.deadline_at - self.sim.now,
                                           0.0))
            self.request_retries += 1
            obs = self.obs
            if obs is not None:
                obs.events.emit(RetryEvent(
                    self.sim.now, target=str(target), method=method,
                    attempt=state.attempts, backoff=backoff))
            state.backoff_timer = self.sim.schedule(
                backoff, self._retry_attempt, state)
            return
        if ctx is not None and self.obs is not None:
            self.obs.tracer.end_request(ctx, error="timeout")
        self.requests_timed_out += 1
        if state is not None:
            self._release(state)
        hook = self._client_hooks.pop(call_id, None)
        if hook is not None:
            hook(
                self.call_timeout or 0.0,
                CallTimeout(target, method,
                            (self.call_timeout or 0.0) / self.time_scale),
            )

    def _should_retry(self, state: _ClientRequest) -> bool:
        policy = self.retry_policy
        if policy is None or state.attempts >= policy.max_attempts:
            return False
        if policy.idempotent_only and not state.idempotent:
            return False
        if state.deadline_at is not None and self.sim.now >= state.deadline_at:
            return False
        return True

    def _retry_attempt(self, state: _ClientRequest) -> None:
        state.backoff_timer = None
        self._dispatch_attempt(state)

    def _retry_stream(self):
        if self._retry_rng is None:
            self._retry_rng = self.rng.stream("resilience.retry")
        return self._retry_rng

    # ------------------------------------------------------------------
    # Admission control (graceful degradation under overload)
    # ------------------------------------------------------------------
    def _admit(self, state: _ClientRequest) -> bool:
        admission = self.admission
        if admission is None or admission.capacity is None:
            return True
        if len(self._admitted) < admission.capacity:
            self._admitted[state] = None
            state.admitted = True
            return True
        if admission.policy == "reject":
            self._shed(state, "reject", victim_age=0.0)
            return False
        # drop_oldest: abandon the stalest *non-in-flight* request — one
        # parked in retry backoff, whose server-side work is already lost.
        # Evicting dispatched work is the classic drop-oldest livelock
        # (benchmarks/test_overload_shedding.py): under a sustained ramp
        # every admitted request is evicted before it can complete, so
        # goodput collapses to zero while the server stays busy.  When
        # every admitted request is in flight, shedding the new arrival
        # is the only progress-preserving choice.
        victim = next(
            (r for r in self._admitted if r.backoff_timer is not None), None
        )
        if victim is None:
            self._shed(state, "drop_oldest", victim_age=0.0)
            return False
        self._abandon(victim)
        self._admitted[state] = None
        state.admitted = True
        return True

    def _abandon(self, victim: _ClientRequest) -> None:
        """Evict a request from the admission window."""
        del self._admitted[victim]
        victim.admitted = False
        if victim.backoff_timer is not None:
            victim.backoff_timer.cancel()
            victim.backoff_timer = None
        else:
            # Evicting dispatched work: _admit never takes this path any
            # more, but the sanitizer keeps watching it so a regression
            # (or a direct caller) is flagged with the livelock citation.
            san = self._san
            if san is not None:
                san.record_inflight_eviction(
                    victim.ref.id, self.sim.now - victim.t0)
            self._inflight.pop(victim.call_id, None)
            timer = self._client_timers.pop(victim.call_id, None)
            if timer is not None:
                timer.cancel()
        ctx = self._client_traces.pop(victim.call_id, None)
        if ctx is not None and self.obs is not None:
            self.obs.tracer.end_request(ctx, error="shed")
        self._client_hooks.pop(victim.call_id, None)
        self._shed(victim, "drop_oldest",
                   victim_age=self.sim.now - victim.t0)

    def _shed(self, state: _ClientRequest, policy: str,
              victim_age: float) -> None:
        self.requests_shed += 1
        obs = self.obs
        if obs is not None:
            obs.events.emit(ShedEvent(
                self.sim.now, target=str(state.ref.id), method=state.method,
                policy=policy, victim_age=victim_age))
        if state.on_complete is not None:
            state.on_complete(
                victim_age,
                RequestShed(state.ref.id, state.method, policy))

    def _release(self, state: _ClientRequest) -> None:
        if state.admitted:
            self._admitted.pop(state, None)
            state.admitted = False

    @property
    def inflight_requests(self) -> int:
        """Client requests currently between issue and outcome."""
        return len(self._inflight)

    # ------------------------------------------------------------------
    # Measurement hooks
    # ------------------------------------------------------------------
    def record_call_latency(self, latency: float) -> None:
        self.call_latency.record(latency)

    def reset_latency_stats(self) -> None:
        """Discard warmup samples (benches call this at steady state)."""
        self.client_latency = LatencyRecorder(reservoir=200_000)
        self.call_latency = LatencyRecorder(reservoir=200_000)
        self.client_latency_hist = HistogramRecorder()

    def record_migration(self) -> None:
        self.migrations_total += 1

    def remote_message_fraction(self) -> float:
        """Lifetime share of actor-to-actor messages that crossed silos."""
        total = self.msgs_local + self.msgs_remote
        return self.msgs_remote / total if total else 0.0

    def mean_cpu_utilization(self, busy_before: list[float], time_before: float) -> float:
        """Cluster-mean CPU utilization since a snapshot (see silo pools)."""
        utils = [
            silo.server.cpu.utilization(before, time_before)
            for silo, before in zip(self.silos, busy_before)
        ]
        return sum(utils) / len(utils)

    def cpu_busy_snapshot(self) -> list[float]:
        return [silo.server.cpu.busy_time for silo in self.silos]

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ActorRuntime(servers={self.num_servers}, "
            f"actors={len(self.directory)}, t={self.sim.now:.3f})"
        )
