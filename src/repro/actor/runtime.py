"""The cluster runtime: silos, directory, placement, client traffic.

This is the public entry point of the actor substrate — the piece that
plays Orleans' role in the reproduction.  It owns the simulator, the
network, the placement directory, per-silo SEDA servers, and the
persisted actor state store, and it exposes the measurement points the
paper reports: end-to-end client latency, actor-to-actor call latency,
remote/local message counters, migrations, and per-server CPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional, Type

from ..bench.metrics import HistogramRecorder, LatencyRecorder
from ..sim.engine import Simulator
from ..sim.network import Network
from ..sim.rng import RngRegistry
from .actor import Actor
from .directory import Directory
from .ids import ActorId, ActorRef
from .messages import Message, MessageKind, next_call_id
from .placement import PlacementPolicy, RandomPlacement
from .serialization import SerializationModel
from .server import Silo

__all__ = ["ClusterConfig", "ActorRuntime"]


@dataclass
class ClusterConfig:
    """Cluster-wide knobs (defaults mirror the paper's testbed).

    Attributes:
        num_servers: silo count (the paper's cluster has 10).
        processors: cores per silo (8).
        switch_factor: per-excess-thread compute inflation.
        dispatch_overhead: fixed per-burst context-switch cost.
        initial_threads: threads per stage at boot; ``None`` uses the
            Orleans default of one thread per stage per core (§3).
        serialization: RPC/LPC cost model.
        network_latency / network_jitter: wire model.
        resume_compute: CPU cost of resuming a suspended turn.
        client_response_size: bytes of a client-bound response.
        location_cache_capacity: per-silo hint cache size.
        max_receiver_queue: client-request admission bound (None = no
            rejection; the throughput bench sets it).
        time_scale: multiply every simulated duration (costs, network,
            waits) by this factor; drive the workload at rate/time_scale
            and the system sits at the *same* utilization with the same
            latency shape while simulating time_scale-fold fewer events.
            Benches report latencies divided back by time_scale.
        seed: root seed for every RNG substream.
    """

    num_servers: int = 10
    processors: int = 8
    switch_factor: float = 0.05
    dispatch_overhead: float = 2e-6
    initial_threads: Optional[int] = None
    serialization: SerializationModel = field(default_factory=SerializationModel)
    network_latency: float = 0.0005
    network_jitter: float = 0.1
    resume_compute: float = 5e-6
    client_response_size: int = 256
    location_cache_capacity: int = 100_000
    max_receiver_queue: Optional[int] = None
    time_scale: float = 1.0
    idle_collection_age: Optional[float] = None
    idle_collection_period: float = 30.0
    call_timeout: Optional[float] = None
    seed: int = 0


class ActorRuntime:
    """An Orleans-like cluster over the discrete-event simulator."""

    def __init__(self, config: Optional[ClusterConfig] = None,
                 sim: Optional[Simulator] = None):
        self.config = config or ClusterConfig()
        if self.config.num_servers < 1:
            raise ValueError("need at least one server")
        self.sim = sim or Simulator()
        self.rng = RngRegistry(self.config.seed)
        ts = self.config.time_scale
        if ts <= 0:
            raise ValueError("time_scale must be positive")
        self.time_scale = ts
        self.serialization = self.config.serialization.scaled(ts)
        self.resume_compute = self.config.resume_compute * ts
        self.call_timeout = (
            self.config.call_timeout * ts
            if self.config.call_timeout is not None else None
        )
        self.network = Network(
            self.sim,
            self.rng,
            base_latency=self.config.network_latency * ts,
            jitter=self.config.network_jitter,
        )
        self.directory = Directory(self.config.num_servers)
        self.placement: PlacementPolicy = RandomPlacement(self.rng)
        self.actor_types: dict[str, Type[Actor]] = {}
        self.storage: dict[ActorId, dict[str, Any]] = {}
        # Observability attachment point (set by repro.obs.Observability).
        # None means fully uninstrumented: every tracing branch below is
        # one attribute load + comparison.
        self.obs = None
        self._client_traces: dict[int, Any] = {}
        self.silos = [Silo(self, i) for i in range(self.config.num_servers)]
        self._gateway_rng = self.rng.stream("client.gateway")
        if self.config.idle_collection_age is not None:
            self.sim.schedule(self.config.idle_collection_period,
                              self._idle_collection_tick)

        # Cluster-wide measurements.  The reservoir recorder is the exact
        # (sorted) reference; the streaming histogram answers windowed
        # percentile queries in O(buckets) for the samplers.
        self.client_latency = LatencyRecorder(reservoir=200_000)
        self.call_latency = LatencyRecorder(reservoir=200_000)
        self.client_latency_hist = HistogramRecorder()
        self.msgs_local = 0
        self.msgs_remote = 0
        self.migrations_total = 0
        self.rejected_requests = 0
        self.requests_completed = 0
        self.requests_timed_out = 0
        self._client_hooks: dict[int, Callable[[float, Any], None]] = {}
        self._client_timers: dict[int, Any] = {}

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    @property
    def num_servers(self) -> int:
        return self.config.num_servers

    def register_actor(self, actor_type: str, cls: Type[Actor]) -> None:
        """Register an application actor class under a type name."""
        if not issubclass(cls, Actor):
            raise TypeError(f"{cls!r} is not an Actor subclass")
        if actor_type in self.actor_types:
            raise ValueError(f"actor type {actor_type!r} already registered")
        self.actor_types[actor_type] = cls

    def set_placement(self, policy: PlacementPolicy) -> None:
        self.placement = policy

    def ref(self, actor_type: str, key: Hashable) -> ActorRef:
        if actor_type not in self.actor_types:
            raise KeyError(f"unknown actor type {actor_type!r}")
        return ActorRef(actor_type, key)

    # ------------------------------------------------------------------
    # Activation management (silos call back into these)
    # ------------------------------------------------------------------
    def activate(self, actor_id: ActorId, server: int) -> None:
        self.directory.register(actor_id, server)
        self.silos[server].host(actor_id)

    def locate(self, actor_id: ActorId) -> Optional[int]:
        return self.directory.lookup(actor_id)

    def _idle_collection_tick(self) -> None:
        """Orleans-style activation GC: silos drop long-idle actors."""
        age = self.config.idle_collection_age
        assert age is not None
        for silo in self.silos:
            silo.collect_idle(age)
        self.sim.schedule(self.config.idle_collection_period,
                          self._idle_collection_tick)

    def deactivate(self, actor_id: ActorId) -> bool:
        """Idle-collect an actor wherever it lives (no placement hint)."""
        location = self.directory.lookup(actor_id)
        if location is None:
            return False
        return self.silos[location].deactivate(actor_id)

    # ------------------------------------------------------------------
    # Failure injection (§2's fault-tolerance contract)
    # ------------------------------------------------------------------
    def fail_silo(self, server: int) -> None:
        """Crash one silo (volatile state lost; directory entries dropped)."""
        self.silos[server].fail()

    def restart_silo(self, server: int) -> None:
        self.silos[server].restart()

    def pick_live_server(self, preferred: Optional[int] = None) -> int:
        """A live server, preferring the caller's own (used when placement
        lands on a dead silo)."""
        if preferred is not None and not self.silos[preferred].dead:
            return preferred
        live = [s.server_id for s in self.silos if not s.dead]
        if not live:
            raise RuntimeError("every silo in the cluster has failed")
        return live[self._gateway_rng.randrange(len(live))]

    def census(self) -> dict[int, int]:
        return self.directory.census()

    # ------------------------------------------------------------------
    # Client traffic
    # ------------------------------------------------------------------
    def client_request(
        self,
        ref: ActorRef,
        method: str,
        *args: Any,
        size: int = 256,
        response_size: int = 256,
        on_complete: Optional[Callable[[float, Any], None]] = None,
    ) -> None:
        """Issue one external client request toward an actor.

        Latency (request creation to response delivery at the client) is
        recorded in :attr:`client_latency`; ``on_complete(latency,
        result)`` fires as well if given.
        """
        gateway = self.silos[self.pick_live_server(
            self._gateway_rng.randrange(self.num_servers))]
        destination = gateway._resolve_or_place(ref.id)
        call_id = next_call_id()
        obs = self.obs
        ctx = (obs.tracer.begin_request(f"{ref.id}.{method}")
               if obs is not None else None)
        message = Message(
            kind=MessageKind.CLIENT_REQUEST,
            target=ref.id,
            method=method,
            args=args,
            size=size,
            call_id=call_id,
            created_at=self.sim.now,
            response_size=response_size,
            trace=ctx,
        )
        if ctx is not None:
            self._client_traces[call_id] = ctx
        if on_complete is not None:
            self._client_hooks[call_id] = on_complete
        if self.call_timeout is not None:
            self._client_timers[call_id] = self.sim.schedule(
                self.call_timeout, self._client_request_timed_out,
                call_id, ref.id, method,
            )
        latency = self.network.deliver(
            size, self.silos[destination].deliver, message)
        if ctx is not None:
            obs.tracer.network_hop(ctx, None, destination, size, latency)

    def complete_client_request(self, response: Message) -> None:
        """Called when a client response leaves the cluster (post-network)."""
        timer = self._client_timers.pop(response.call_id, None)
        if timer is not None:
            timer.cancel()
        ctx = self._client_traces.pop(response.call_id, None)
        if ctx is not None and self.obs is not None:
            self.obs.tracer.end_request(ctx)
        latency = self.sim.now - response.created_at
        self.client_latency.record(latency)
        self.client_latency_hist.record(latency)
        self.requests_completed += 1
        hook = self._client_hooks.pop(response.call_id, None)
        if hook is not None:
            hook(latency, response.result)

    def _client_request_timed_out(self, call_id: int, target, method: str) -> None:
        from .errors import CallTimeout

        self._client_timers.pop(call_id, None)
        ctx = self._client_traces.pop(call_id, None)
        if ctx is not None and self.obs is not None:
            self.obs.tracer.end_request(ctx, error="timeout")
        self.requests_timed_out += 1
        hook = self._client_hooks.pop(call_id, None)
        if hook is not None:
            hook(
                self.call_timeout or 0.0,
                CallTimeout(target, method,
                            (self.call_timeout or 0.0) / self.time_scale),
            )

    # ------------------------------------------------------------------
    # Measurement hooks
    # ------------------------------------------------------------------
    def record_call_latency(self, latency: float) -> None:
        self.call_latency.record(latency)

    def reset_latency_stats(self) -> None:
        """Discard warmup samples (benches call this at steady state)."""
        self.client_latency = LatencyRecorder(reservoir=200_000)
        self.call_latency = LatencyRecorder(reservoir=200_000)
        self.client_latency_hist = HistogramRecorder()

    def record_migration(self) -> None:
        self.migrations_total += 1

    def remote_message_fraction(self) -> float:
        """Lifetime share of actor-to-actor messages that crossed silos."""
        total = self.msgs_local + self.msgs_remote
        return self.msgs_remote / total if total else 0.0

    def mean_cpu_utilization(self, busy_before: list[float], time_before: float) -> float:
        """Cluster-mean CPU utilization since a snapshot (see silo pools)."""
        utils = [
            silo.server.cpu.utilization(before, time_before)
            for silo, before in zip(self.silos, busy_before)
        ]
        return sum(utils) / len(utils)

    def cpu_busy_snapshot(self) -> list[float]:
        return [silo.server.cpu.busy_time for silo in self.silos]

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ActorRuntime(servers={self.num_servers}, "
            f"actors={len(self.directory)}, t={self.sim.now:.3f})"
        )
