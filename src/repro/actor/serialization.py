"""Serialization / deep-copy cost model.

The heart of the locality argument (§3, Fig. 3): a *remote* call pays
argument serialization in the sender's send stage and deserialization in
the receiver's receive stage — CPU-intensive work proportional to payload
size — while a *local* call pays only a deep copy of the arguments
(actor isolation still requires the copy) and goes straight to the
compute stage.  Removing the serialize/deserialize pairs is where ActOp's
partitioning recovers both latency and CPU headroom.

Defaults are calibrated to the common observation that .NET binary
serialization of small RPC payloads costs tens of microseconds, and deep
copies a fraction of that.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SerializationModel"]


@dataclass(frozen=True)
class SerializationModel:
    """CPU costs of the three argument-passing paths.

    Attributes:
        serialize_base / serialize_per_byte: sender-side RPC marshalling.
        deserialize_base / deserialize_per_byte: receiver-side unmarshalling.
        copy_base / copy_per_byte: LPC deep copy (actor isolation).
    """

    serialize_base: float = 55e-6
    serialize_per_byte: float = 60e-9
    deserialize_base: float = 45e-6
    deserialize_per_byte: float = 50e-9
    copy_base: float = 5e-6
    copy_per_byte: float = 6e-9

    def serialize_cost(self, size: int) -> float:
        return self.serialize_base + self.serialize_per_byte * size

    def deserialize_cost(self, size: int) -> float:
        return self.deserialize_base + self.deserialize_per_byte * size

    def copy_cost(self, size: int) -> float:
        return self.copy_base + self.copy_per_byte * size

    def remote_overhead(self, size: int) -> float:
        """Total extra CPU of RPC over LPC for one message."""
        return (
            self.serialize_cost(size)
            + self.deserialize_cost(size)
            - self.copy_cost(size)
        )

    def scaled(self, factor: float) -> "SerializationModel":
        """All costs multiplied by ``factor`` (the time-scaling trick:
        stretch every duration by s and divide request rates by s —
        utilization and latency *shape* are invariant while the event
        count drops s-fold)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return SerializationModel(
            serialize_base=self.serialize_base * factor,
            serialize_per_byte=self.serialize_per_byte * factor,
            deserialize_base=self.deserialize_base * factor,
            deserialize_per_byte=self.deserialize_per_byte * factor,
            copy_base=self.copy_base * factor,
            copy_per_byte=self.copy_per_byte * factor,
        )
