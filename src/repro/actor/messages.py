"""Runtime messages.

Three kinds flow through the cluster (Fig. 1/Fig. 2 of the paper):

* client requests entering from frontends,
* actor-to-actor calls (the RPCs/LPCs of Fig. 3), and
* responses heading back to the calling actor or client.

A message's ``size`` drives serialization cost on the remote path; its
trace timestamps feed the latency recorders.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum, auto
from typing import Any, Optional

from .ids import ActorId

__all__ = ["MessageKind", "Message", "next_call_id"]

_call_ids = itertools.count(1)


def next_call_id() -> int:
    """Globally unique call correlation id."""
    return next(_call_ids)


class MessageKind(Enum):
    CLIENT_REQUEST = auto()
    CALL = auto()            # actor-to-actor request (expects a response)
    ONEWAY = auto()          # actor-to-actor fire-and-forget
    RESPONSE = auto()        # response to a CALL or CLIENT_REQUEST


@dataclass
class Message:
    """One message in flight.

    Attributes:
        kind: message kind.
        target: destination actor (for responses: the *caller's silo*
            consumes it, target names the original caller actor, if any).
        method: method to invoke (requests only).
        args: positional arguments (passed by simulated deep copy).
        size: payload bytes, for serialization/copy cost.
        call_id: correlation id linking a response to its call.
        sender: calling actor (None for client traffic).
        reply_to_server: silo that holds the pending-call continuation
            (requests) / is the response's destination (responses).
        result: return value carried by a response.
        created_at: simulated time the message was created.
        client_tag: opaque cookie for client-request latency accounting.
        trace: optional :class:`~repro.obs.spans.TraceContext` carrying
            the causal-trace lineage; ``None`` means untraced.
    """

    kind: MessageKind
    target: Optional[ActorId]
    method: str = ""
    args: tuple = ()
    size: int = 256
    call_id: int = 0
    sender: Optional[ActorId] = None
    reply_to_server: Optional[int] = None
    result: Any = None
    created_at: float = 0.0
    client_tag: Any = None
    response_size: int = 128
    trace: Any = None

    @property
    def expects_reply(self) -> bool:
        return self.kind in (MessageKind.CALL, MessageKind.CLIENT_REQUEST)

    def make_response(self, result: Any, size: int, server_id: int) -> "Message":
        """Build the response message for this request.

        The response reuses the request's trace context: a call and its
        response are two legs of the same logical span.
        """
        return Message(
            kind=MessageKind.RESPONSE,
            target=self.sender,
            size=size,
            call_id=self.call_id,
            sender=self.target,
            reply_to_server=self.reply_to_server,
            result=result,
            created_at=self.created_at,
            client_tag=self.client_tag,
            trace=self.trace,
        )
