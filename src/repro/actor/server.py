"""The silo: one Orleans-style server.

A silo hosts activations and runs the paper's four SEDA stages (Fig. 2):

* **receiver** — deserializes inbound remote messages,
* **worker** — executes application logic (actor turns),
* **server_sender** — serializes actor-to-actor RPCs to other silos,
* **client_sender** — serializes responses going back to clients.

Message paths follow Fig. 3 exactly: a remote call pays
serialize -> network -> deserialize -> compute, while a local call pays a
deep copy and enqueues straight into the worker stage.  Turn execution
implements the generator-coroutine actor model of
:mod:`repro.actor.actor`, with per-activation single-threading and
(optional) reentrancy at yield points.

Transparent migration (§4.3) is implemented opportunistically: the silo
deactivates the actor once quiescent, unregisters it from the directory,
drops location-cache hints on itself and the destination, and re-drives
any messages that raced with the deactivation; the *next* message then
re-places the actor — usually on the hinted server.
"""

from __future__ import annotations

import inspect
from typing import Any, Optional

from ..obs.events import (
    ActivationEvent,
    DeactivationEvent,
    FailoverEvent,
    MigrationEvent,
    SiloLifecycleEvent,
)
from ..seda.server import StagedServer
from ..seda.stage import Stage, StageEvent
from .activation import Activation, WorkItem, WorkKind
from .calls import All, Call, Sleep, Tell
from .commtable import CommTable
from .directory import LocationCache
from .errors import ActorError, CallTimeout
from .ids import ActorId
from .messages import Message, MessageKind, next_call_id

__all__ = ["Silo", "STAGE_NAMES"]

STAGE_NAMES = ("receiver", "worker", "server_sender", "client_sender")


class _Continuation:
    """A turn suspended at a yield, waiting for its responses."""

    __slots__ = ("activation", "generator", "origin", "remaining", "results", "join",
                 "issue_time")

    def __init__(self, activation: Activation, generator, origin: Message,
                 expected: int, join: bool, issue_time: float):
        self.activation = activation
        self.generator = generator
        self.origin = origin
        self.remaining = expected
        self.results: list[Any] = [None] * expected
        self.join = join
        self.issue_time = issue_time


class Silo:
    """One server of the cluster.  Created and owned by the runtime."""

    # Armed race sanitizer; class-level None keeps the disarmed turn
    # path to a single attribute load.
    _san = None

    def __init__(self, runtime, server_id: int):
        self.runtime = runtime
        self.sim = runtime.sim
        self.server_id = server_id
        cfg = runtime.config

        self.server = StagedServer(
            self.sim,
            processors=cfg.processors,
            switch_factor=cfg.switch_factor,
            dispatch_overhead=cfg.dispatch_overhead * cfg.time_scale,
            name=f"silo{server_id}",
        )
        threads = cfg.initial_threads or cfg.processors
        self.receiver = self.server.add_stage("receiver", threads)
        self.worker = self.server.add_stage("worker", threads, blocking=True)
        self.server_sender = self.server.add_stage("server_sender", threads)
        self.client_sender = self.server.add_stage("client_sender", threads)

        self.activations: dict[ActorId, Activation] = {}
        self.comm_table = CommTable()
        self.location_cache = LocationCache(cfg.location_cache_capacity)
        self._pending: dict[int, tuple[_Continuation, int]] = {}
        self._call_timers: dict[int, Any] = {}
        self.dead = False
        # Graceful scale-down (repro.autoscale): a draining silo keeps
        # serving its hosted activations but stops being a placement /
        # gateway target; once empty and idle it decommissions (dead).
        self.draining = False

        # Monotone counters (samplers diff them per window).
        self.msgs_local = 0
        self.msgs_remote = 0
        self.client_requests = 0
        self.rejected_requests = 0
        self.migrations_out = 0
        # Placement-path counters (§4.3's opportunistic-migration claim):
        # how re-placements were decided by THIS silo.
        self.placements_hinted = 0     # location-cache hint used
        self.placements_at_caller = 0  # re-placement with no hint
        self.placements_new = 0        # brand-new actor via policy

    # ------------------------------------------------------------------
    # Inbound path (from the network)
    # ------------------------------------------------------------------
    def deliver(self, message: Message) -> None:
        """A message arrives off the wire: deserialize, then route."""
        if self.dead:
            return  # dropped on the floor; callers' timeouts handle it
        cap = self.runtime.max_receiver_queue
        if (
            cap is not None
            and message.kind is MessageKind.CLIENT_REQUEST
            and self.receiver.queue_length >= cap
        ):
            self.rejected_requests += 1
            self.runtime.rejected_requests += 1
            return
        cost = self.runtime.serialization.deserialize_cost(message.size)
        event = self.receiver.submit(cost, self._received, message)
        if message.trace is not None:
            event.ctx = message.trace

    def _received(self, event: StageEvent, message: Message) -> None:
        if self.dead:
            return
        self._route(message, arrived_remote=True)

    def _route(self, message: Message, arrived_remote: bool) -> None:
        if message.kind is MessageKind.RESPONSE:
            self._handle_response(message, extra_compute=0.0)
            return
        if message.kind is MessageKind.CLIENT_REQUEST:
            self.client_requests += 1
        target = message.target
        assert target is not None
        activation = self.activations.get(target)
        if activation is not None:
            # A deactivating (migrating) actor keeps serving until it hits
            # a quiescent instant.  Parking new arrivals instead would
            # deadlock on call cycles: the actor cannot quiesce while its
            # own pending call depends on a message parked behind it.
            self._enqueue_invocation(activation, message, extra_compute=0.0)
            return
        # Not hosted here (migrated away, or we were never the host):
        # re-resolve and forward.  §4.3's "placed on the server which
        # originated the call" materializes here via _resolve_or_place.
        self._dispatch_request(message)

    # ------------------------------------------------------------------
    # Resolution, placement, dispatch
    # ------------------------------------------------------------------
    def _resolve_or_place(self, target: ActorId) -> int:
        location = self.runtime.directory.lookup(target)
        if location is not None:
            return location
        hint = self.location_cache.get(target)
        if hint is not None:
            # §4.3: a server that witnessed the migration places the
            # actor on the migration destination.
            destination = hint
            self.placements_hinted += 1
        elif target in self.runtime.storage or target in self.runtime.discarded:
            # §4.3: an actor that existed before (deactivated, e.g. by a
            # migration this server did not witness) is re-placed "on the
            # server which originated the call".
            destination = self.server_id
            self.placements_at_caller += 1
        else:
            # Brand-new actor: the configured placement policy decides.
            destination = self.runtime.placement.choose(
                target, self.server_id, self.runtime.num_servers
            )
            self.placements_new += 1
        dest_silo = self.runtime.silos[destination]
        if dest_silo.dead or dest_silo.draining:
            # Membership view: never place onto a failed or draining
            # silo.  Fold the chosen destination into the live set
            # deterministically (no RNG draw) so placements stay uniform
            # — under elastic membership most of the fleet can be parked,
            # and redirecting to the caller would pile every re-placed
            # actor onto the silos that happen to originate calls.
            dead = destination
            live = [s.server_id for s in self.runtime.silos
                    if not (s.dead or s.draining)]
            if not live:
                raise RuntimeError("every silo in the cluster has failed")
            destination = live[destination % len(live)]
            self.runtime.failovers += 1
            obs = self.runtime.obs
            if obs is not None:
                obs.events.emit(FailoverEvent(
                    self.sim.now, actor=str(target), dead_server=dead,
                    new_server=destination))
        self.runtime.activate(target, destination)
        return destination

    def _dispatch_request(self, message: Message) -> None:
        """Send a request toward its target, wherever that now is."""
        target = message.target
        assert target is not None
        destination = self._resolve_or_place(target)
        if destination == self.server_id:
            activation = self.activations[target]
            copy = self.runtime.serialization.copy_cost(message.size)
            if message.kind is not MessageKind.CLIENT_REQUEST:
                self.msgs_local += 1
                self.runtime.msgs_local += 1
            self._enqueue_invocation(activation, message, extra_compute=copy)
        else:
            if message.kind is not MessageKind.CLIENT_REQUEST:
                self.msgs_remote += 1
                self.runtime.msgs_remote += 1
            self._send_remote(message, destination)

    def _send_remote(self, message: Message, destination: int) -> None:
        cost = self.runtime.serialization.serialize_cost(message.size)
        event = self.server_sender.submit(cost, self._serialized, message,
                                          destination)
        if message.trace is not None:
            event.ctx = message.trace

    def _serialized(self, event: StageEvent, message: Message, destination: int) -> None:
        if self.dead:
            return
        silo = self.runtime.silos[destination]
        latency = self.runtime.network.deliver(message.size, silo.deliver,
                                               message, src=self.server_id,
                                               dst=destination)
        ctx = message.trace
        if ctx is not None:
            obs = self.runtime.obs
            if obs is not None:
                obs.tracer.network_hop(ctx, self.server_id, destination,
                                       message.size, latency)

    # ------------------------------------------------------------------
    # Turn execution
    # ------------------------------------------------------------------
    def _enqueue_invocation(
        self, activation: Activation, message: Message, extra_compute: float
    ) -> None:
        if message.sender is not None:
            self.comm_table.record(activation.actor_id, message.sender)
        activation.last_active = self.sim.now
        cls = type(activation.instance)
        scale = self.runtime.time_scale
        item = WorkItem(
            WorkKind.START,
            compute=extra_compute + cls.compute_cost(message.method) * scale,
            wait=cls.wait_cost(message.method) * scale,
            message=message,
        )
        activation.queue.append(item)
        self._pump(activation)

    def _queue_resume(
        self,
        continuation: _Continuation,
        value: Any,
        extra_compute: float,
        throw: bool = False,
    ) -> None:
        item = WorkItem(
            WorkKind.RESUME,
            compute=extra_compute + self.runtime.resume_compute,
            continuation=continuation,
            value=value,
            throw=throw,
        )
        continuation.activation.queue.append(item)
        self._pump(continuation.activation)

    def _pump(self, activation: Activation) -> None:
        item = activation.next_eligible()
        if item is None:
            return
        activation.segment_running = True
        event = self.worker.submit(item.compute, self._segment_done, activation,
                                   item, wait=item.wait)
        # Attribute the worker segment to the message that caused it: the
        # inbound message for a fresh turn, the turn's origin for a resume.
        trace = (item.message.trace if item.message is not None
                 else item.continuation.origin.trace)
        if trace is not None:
            event.ctx = trace

    def _segment_done(self, event: StageEvent, activation: Activation, item: WorkItem) -> None:
        if self.dead:
            return
        activation.segment_running = False
        san = self._san
        if san is not None:
            # Attribute everything this turn segment touches to the
            # activation whose turn is running: the sanitizer's conflict
            # detection keys on cross-activation access at one instant.
            san.push_context(f"activation:{activation.actor_id}")
        try:
            if item.kind is WorkKind.START:
                activation.open_turns += 1
                activation.messages_handled += 1
                assert item.message is not None
                self._start_turn(activation, item.message)
            else:
                self._advance_turn(
                    activation,
                    item.continuation.generator,
                    item.value,
                    item.continuation.origin,
                    throw=item.throw,
                )
        finally:
            if san is not None:
                san.pop_context()
        self._pump(activation)
        self._maybe_finalize_deactivation(activation)

    def _start_turn(self, activation: Activation, message: Message) -> None:
        method = getattr(activation.instance, message.method)
        if inspect.isgeneratorfunction(method):
            generator = method(*message.args)
            self._advance_turn(activation, generator, None, message)
        else:
            try:
                result = method(*message.args)
            except ActorError as error:
                # Application-level failure: becomes the call's result and
                # re-raises at the caller's await point.
                result = error
            self._complete_turn(activation, message, result)

    def _advance_turn(
        self, activation: Activation, generator, send_value: Any, origin: Message,
        throw: bool = False,
    ) -> None:
        while True:
            try:
                if throw:
                    throw = False
                    yielded = generator.throw(send_value)
                else:
                    yielded = generator.send(send_value)
            except StopIteration as stop:
                self._complete_turn(activation, origin, stop.value)
                return
            except ActorError as error:
                # Uncaught at this level: fail the whole turn; the error
                # propagates to this turn's own caller.
                self._complete_turn(activation, origin, error)
                return
            if not isinstance(yielded, Tell):
                break
            # Fire-and-forget: dispatch and resume the turn immediately.
            oneway = Message(
                kind=MessageKind.ONEWAY,
                target=yielded.target.id,
                method=yielded.method,
                args=yielded.args,
                size=yielded.size,
                sender=activation.actor_id,
                created_at=self.sim.now,
                trace=self._child_trace(origin),
            )
            self.comm_table.record(activation.actor_id, yielded.target.id)
            self._dispatch_request(oneway)
            send_value = None

        if isinstance(yielded, Sleep):
            continuation = _Continuation(
                activation, generator, origin, expected=1, join=False,
                issue_time=self.sim.now,
            )
            activation.pending_calls += 1
            self.sim.defer(yielded.duration, self._sleep_done, continuation)
            return

        if isinstance(yielded, Call):
            calls = [yielded]
            join = False
        elif isinstance(yielded, All):
            calls = yielded.calls
            join = True
        else:
            raise TypeError(
                f"actor {activation.actor_id} yielded {yielded!r}; expected "
                "Call, All, or Sleep"
            )
        continuation = _Continuation(
            activation, generator, origin, expected=len(calls), join=join,
            issue_time=self.sim.now,
        )
        default_timeout = self.runtime.call_timeout
        for slot, call in enumerate(calls):
            call_id = next_call_id()
            self._pending[call_id] = (continuation, slot)
            activation.pending_calls += 1
            self.comm_table.record(activation.actor_id, call.target.id)
            trace = self._child_trace(origin)
            request = Message(
                kind=MessageKind.CALL,
                target=call.target.id,
                method=call.method,
                args=call.args,
                size=call.size,
                call_id=call_id,
                sender=activation.actor_id,
                reply_to_server=self.server_id,
                created_at=self.sim.now,
                response_size=call.response_size,
                trace=trace,
            )
            if trace is not None:
                self.runtime.obs.tracer.call_issued(
                    call_id, trace, f"{call.target.id}.{call.method}",
                    self.server_id,
                )
            timeout = (call.timeout * self.runtime.time_scale
                       if call.timeout is not None else default_timeout)
            if timeout is not None:
                self._call_timers[call_id] = self.sim.schedule(
                    timeout, self._call_timed_out, call_id,
                    call.target.id, call.method,
                )
            self._dispatch_request(request)

    def _child_trace(self, origin: Message):
        """A child trace context for a message caused by ``origin``.

        None-in, None-out: untraced turns spawn untraced messages, so the
        whole causal tree shares one sampling decision.
        """
        ctx = origin.trace
        if ctx is None:
            return None
        obs = self.runtime.obs
        return obs.tracer.child(ctx) if obs is not None else None

    def _sleep_done(self, continuation: _Continuation) -> None:
        if self.dead:
            return
        continuation.activation.pending_calls -= 1
        self._queue_resume(continuation, None, extra_compute=0.0)
        self._maybe_finalize_deactivation(continuation.activation)

    def _complete_turn(self, activation: Activation, origin: Message, result: Any) -> None:
        activation.open_turns -= 1
        if origin.kind is MessageKind.ONEWAY:
            return
        if origin.kind is MessageKind.CLIENT_REQUEST:
            response = origin.make_response(
                result, size=self.runtime.config.client_response_size,
                server_id=self.server_id,
            )
            cost = self.runtime.serialization.serialize_cost(response.size)
            event = self.client_sender.submit(cost, self._client_response_ready,
                                              response)
            if response.trace is not None:
                event.ctx = response.trace
            return
        # Actor-to-actor response.
        response = origin.make_response(result, size=origin.response_size,
                                        server_id=self.server_id)
        self.comm_table.record(activation.actor_id, origin.sender)
        destination = origin.reply_to_server
        assert destination is not None
        if destination == self.server_id:
            copy = self.runtime.serialization.copy_cost(response.size)
            self.msgs_local += 1
            self.runtime.msgs_local += 1
            self._handle_response(response, extra_compute=copy)
        else:
            self.msgs_remote += 1
            self.runtime.msgs_remote += 1
            self._send_remote(response, destination)

    def _client_response_ready(self, event: StageEvent, response: Message) -> None:
        if self.dead:
            return
        latency = self.runtime.network.deliver(
            response.size, self.runtime.complete_client_request, response,
            src=self.server_id,
        )
        ctx = response.trace
        if ctx is not None:
            obs = self.runtime.obs
            if obs is not None:
                obs.tracer.network_hop(ctx, self.server_id, None,
                                       response.size, latency)

    def _handle_response(self, response: Message, extra_compute: float) -> None:
        resolved = self._resolve_call(response.call_id, response.result,
                                      extra_compute, sender=response.sender)
        if resolved:
            self.runtime.record_call_latency(
                self.sim.now - resolved.issue_time
            )

    def _call_timed_out(self, call_id: int, target: ActorId, method: str) -> None:
        if self.dead:
            return
        self._call_timers.pop(call_id, None)
        timeout = self.runtime.call_timeout or 0.0
        self._resolve_call(
            call_id,
            CallTimeout(target, method, timeout / self.runtime.time_scale),
            extra_compute=0.0,
        )

    def _resolve_call(
        self,
        call_id: int,
        result: Any,
        extra_compute: float,
        sender: Optional[ActorId] = None,
    ) -> Optional[_Continuation]:
        """Fill one awaited slot; resume the turn when the join completes.

        A result that is an :class:`ActorError` is re-thrown inside the
        awaiting generator once all its calls resolved (first error wins).
        Returns the continuation, or None for a stale call id.
        """
        entry = self._pending.pop(call_id, None)
        if entry is None:
            return None  # stale: already timed out or responded
        obs = self.runtime.obs
        if obs is not None:
            obs.tracer.call_resolved(
                call_id, ok=not isinstance(result, ActorError))
        timer = self._call_timers.pop(call_id, None)
        if timer is not None:
            timer.cancel()
        continuation, slot = entry
        continuation.results[slot] = result
        continuation.remaining -= 1
        activation = continuation.activation
        activation.pending_calls -= 1
        if sender is not None:
            self.comm_table.record(activation.actor_id, sender)
        if continuation.remaining == 0:
            errors = [r for r in continuation.results
                      if isinstance(r, ActorError)]
            if errors:
                self._queue_resume(continuation, errors[0], extra_compute,
                                   throw=True)
            else:
                value = (continuation.results if continuation.join
                         else continuation.results[0])
                self._queue_resume(continuation, value, extra_compute)
        self._maybe_finalize_deactivation(activation)
        return continuation

    # ------------------------------------------------------------------
    # Activation lifecycle & migration (§4.3)
    # ------------------------------------------------------------------
    def host(self, actor_id: ActorId) -> Activation:
        """Create an activation for ``actor_id`` on this silo."""
        if actor_id in self.activations:
            raise ValueError(f"{actor_id} is already active on silo {self.server_id}")
        cls = self.runtime.actor_types[actor_id.actor_type]
        instance = cls()
        instance._bind(actor_id, self.server_id)
        san = self._san
        if san is not None:
            # Lifecycle writes (restore/on_activate) belong to the
            # activation itself, not to whichever stage triggered hosting.
            san.push_context(f"activation:{actor_id}")
        try:
            state = self.runtime.storage.get(actor_id)
            if state is not None:
                instance.restore_state(state)
            activation = Activation(actor_id, instance)
            self.activations[actor_id] = activation
            instance.on_activate()
        finally:
            if san is not None:
                san.pop_context()
        obs = self.runtime.obs
        if obs is not None:
            obs.events.emit(ActivationEvent(
                self.sim.now, server=self.server_id, actor=str(actor_id)))
        return activation

    def migrate(self, actor_id: ActorId, destination: int) -> bool:
        """Begin opportunistic migration of a hosted actor toward
        ``destination``.  Returns False if the actor is not here or is
        already being deactivated."""
        activation = self.activations.get(actor_id)
        if activation is None or activation.deactivating:
            return False
        if destination == self.server_id:
            return False
        activation.deactivating = True
        activation.deactivation_hint = destination
        self._maybe_finalize_deactivation(activation)
        return True

    def deactivate(self, actor_id: ActorId, discard_state: bool = False) -> bool:
        """Plain deactivation (idle collection) — no placement hint."""
        activation = self.activations.get(actor_id)
        if activation is None or activation.deactivating:
            return False
        activation.deactivating = True
        activation.discard_state = discard_state
        activation.deactivation_hint = None
        self._maybe_finalize_deactivation(activation)
        return True

    def collect_idle(self, max_age: float) -> int:
        """Deactivate every quiescent actor idle for longer than
        ``max_age`` seconds (Orleans' activation garbage collection).
        Returns the number of actors collected."""
        now = self.sim.now
        collected = 0
        for actor_id in [
            aid for aid, act in self.activations.items()
            if not act.deactivating
            and act.quiescent
            and now - act.last_active > max_age
        ]:
            if self.deactivate(actor_id):
                collected += 1
        return collected

    def _maybe_finalize_deactivation(self, activation: Activation) -> None:
        if not activation.deactivating or not activation.quiescent:
            return
        actor_id = activation.actor_id
        destination = activation.deactivation_hint
        activation.instance.on_deactivate()
        if activation.discard_state:
            self.runtime.storage.pop(actor_id, None)
            self.runtime.discarded.add(actor_id)
        else:
            self.runtime.storage[actor_id] = activation.instance.capture_state()
        del self.activations[actor_id]
        self.runtime.directory.unregister(actor_id)
        obs = self.runtime.obs
        if obs is not None:
            obs.events.emit(DeactivationEvent(
                self.sim.now, server=self.server_id, actor=str(actor_id),
                migration_hint=destination))
        if destination is not None:
            # Both parties remember where the actor should land (§4.3).
            self.location_cache.hint(actor_id, destination)
            self.runtime.silos[destination].location_cache.hint(actor_id, destination)
            self.migrations_out += 1
            self.runtime.record_migration()
            if obs is not None:
                obs.events.emit(MigrationEvent(
                    self.sim.now, actor=str(actor_id),
                    source=self.server_id, destination=destination))

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Crash this silo: volatile actor state is lost, in-flight work
        is dropped, inbound messages fall on the floor.  Actors it hosted
        are re-instantiated elsewhere on their next call, restored from
        the last *persisted* state (their most recent deactivation), per
        the Orleans fault-tolerance contract (§2)."""
        if self.dead:
            return
        self.dead = True
        self.draining = False  # a crash preempts any graceful drain
        lost = len(self.activations)
        for actor_id in list(self.activations):
            self.runtime.directory.unregister(actor_id)
        self.activations.clear()
        for timer in self._call_timers.values():
            timer.cancel()
        self._call_timers.clear()
        self._pending.clear()
        obs = self.runtime.obs
        if obs is not None:
            obs.events.emit(SiloLifecycleEvent(
                self.sim.now, server=self.server_id, up=False,
                activations_lost=lost))

    def restart(self) -> None:
        """Bring a failed silo back (empty, ready to host again)."""
        if not self.dead:
            return
        self.dead = False
        self.draining = False
        obs = self.runtime.obs
        if obs is not None:
            obs.events.emit(SiloLifecycleEvent(
                self.sim.now, server=self.server_id, up=True))

    # ------------------------------------------------------------------
    # Graceful scale-down (repro.autoscale)
    # ------------------------------------------------------------------
    @property
    def quiesced(self) -> bool:
        """True when nothing is hosted, awaited, queued, or running here.

        The drain poll waits for this before decommissioning, so no
        in-flight turn segment or queued response is dropped on the
        floor the way a crash drops them.
        """
        if self.activations or self._pending:
            return False
        for stage in self.server.stages.values():
            if stage.queue_length or stage.busy_threads:
                return False
        return True

    def decommission(self) -> None:
        """Leave service after a graceful drain.

        Unlike :meth:`fail`, nothing is lost: the silo is already empty
        and idle, it simply stops accepting messages.  The same ``dead``
        flag governs membership, so placement, gateways, and failover
        treat a decommissioned silo exactly like a crashed one — and
        :meth:`restart` (via ``ActorRuntime.add_silo``) brings it back.
        """
        if self.dead:
            return
        self.dead = True
        self.draining = False
        for timer in self._call_timers.values():
            timer.cancel()
        self._call_timers.clear()
        self._pending.clear()
        obs = self.runtime.obs
        if obs is not None:
            obs.events.emit(SiloLifecycleEvent(
                self.sim.now, server=self.server_id, up=False,
                activations_lost=0))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_activations(self) -> int:
        return len(self.activations)

    def stage(self, name: str) -> Stage:
        return self.server.stage(name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Silo({self.server_id}, actors={len(self.activations)})"
