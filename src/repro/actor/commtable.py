"""Silo-level communication counters (§4.3), packed flat.

The paper keeps "the relevant counters locally at each actor" and folds
them into the per-server graph summary periodically.  A literal
translation — one ``dict[ActorId, float]`` per activation — costs a few
hundred bytes per actor even when idle, which alone rules out the 10^6
actor populations of §6 on one machine.

``CommTable`` is the memory-lean equivalent: ONE table per silo,
aggregating (source actor, peer) -> weight in parallel arrays.  Each
edge costs one slot in an insertion-ordered index dict (keyed by the
two ids' interned ``seq`` numbers packed into a single int), two list
cells holding the canonical :class:`ActorId` objects, and one C double
— no per-actor containers anywhere.  The periodic partitioning fold
drains the whole table in one pass instead of touching every
activation, which also turns the fold from O(activations) into
O(active edges).

Iteration order is the insertion order of first recording — a
deterministic function of the seeded event schedule — never hash order.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator

from .ids import ActorId

__all__ = ["CommTable"]

# seq numbers are dense interning indices; two of them fit a single
# machine word.  ActorId.__new__ enforces seq < 2^32 at intern time, so
# the pack below can never alias two distinct edges.
_SHIFT = 32


class CommTable:
    """Flat (source, peer) -> weight aggregation for one silo."""

    __slots__ = ("_index", "_src", "_dst", "_weights")

    def __init__(self) -> None:
        self._index: dict[int, int] = {}
        self._src: list[ActorId] = []
        self._dst: list[ActorId] = []
        self._weights: array = array("d")

    def __len__(self) -> int:
        return len(self._weights)

    def record(self, src: ActorId, dst: ActorId, weight: float = 1.0) -> None:
        """Bump the edge counter from ``src`` toward ``dst``."""
        key = (src.seq << _SHIFT) | dst.seq
        slot = self._index.get(key)
        if slot is None:
            self._index[key] = len(self._weights)
            self._src.append(src)
            self._dst.append(dst)
            self._weights.append(weight)
        else:
            self._weights[slot] += weight

    def weight(self, src: ActorId, dst: ActorId) -> float:
        slot = self._index.get((src.seq << _SHIFT) | dst.seq)
        return self._weights[slot] if slot is not None else 0.0

    def items(self) -> Iterable[tuple[tuple[ActorId, ActorId], float]]:
        """((src, dst), weight) pairs in insertion order; non-destructive."""
        return zip(zip(self._src, self._dst), self._weights)

    def drain(self) -> Iterator[tuple[tuple[ActorId, ActorId], float]]:
        """Hand all counters to the per-server graph fold and reset."""
        src, dst, weights = self._src, self._dst, self._weights
        self._index = {}
        self._src = []
        self._dst = []
        self._weights = array("d")
        return zip(zip(src, dst), weights)

    def merge(self, other: "CommTable") -> None:
        """Exact merge: add ``other``'s counters edge by edge.

        Edges new to ``self`` are appended in ``other``'s insertion
        order, so merging per-silo tables in silo order (as the window
        barrier does) yields one deterministic combined order.
        ``other`` is left untouched.
        """
        for (src, dst), weight in other.items():
            self.record(src, dst, weight)

    def clear(self) -> None:
        self._index = {}
        del self._src[:]
        del self._dst[:]
        self._weights = array("d")
