"""Deterministic named random-number substreams.

Every stochastic component (workload arrivals, service times, network
jitter, placement policies, the partitioning protocol's peer selection)
draws from its own named substream so that changing one component does not
perturb another — the standard variance-reduction discipline for
simulation studies.  Substreams are derived from a root seed with a stable
hash of the stream name, so runs are reproducible across processes
(``PYTHONHASHSEED`` does not affect them).
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

__all__ = ["RngRegistry", "exponential", "bounded_pareto"]


def _derive_seed(root_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory of named, deterministic :class:`random.Random` substreams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the substream for ``name``, creating it on first use.

        When the race sanitizer is armed, newly created streams are
        wrapped so each draw is recorded as a write to the stream's
        generator state.  The check runs once per stream *creation*
        (streams are cached), so the disarmed path is unchanged.
        """
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(_derive_seed(self.seed, name))
            from repro.analysis.sanitizer import current as _active_sanitizer

            san = _active_sanitizer()
            if san is not None:
                rng = san.wrap_rng(name, rng)
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RngRegistry":
        """Return a child registry whose streams are independent of ours."""
        return RngRegistry(_derive_seed(self.seed, f"child:{name}"))


def exponential(rng: random.Random, rate: float) -> float:
    """An exponential variate with the given rate (events per second)."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    return rng.expovariate(rate)


def bounded_pareto(rng: random.Random, alpha: float, lo: float, hi: float) -> float:
    """A bounded Pareto variate on [lo, hi].

    Used for heavy-tailed payload sizes; interactive-service message sizes
    are known to be heavy-tailed but bounded by protocol limits.
    """
    if not (0 < lo < hi):
        raise ValueError("need 0 < lo < hi")
    u = rng.random()
    la, ha = lo**alpha, hi**alpha
    return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)


def poisson_process(rng: random.Random, rate: float) -> Iterator[float]:
    """Yield successive inter-arrival gaps of a Poisson process."""
    while True:
        yield rng.expovariate(rate)
