"""Discrete-event simulation substrate.

The paper's testbed is ten 8-core Windows servers; ours is this package:
a deterministic event engine (:mod:`.engine`), named RNG substreams
(:mod:`.rng`), simulated processors with a FIFO run queue and
context-switch costs (:mod:`.cpu`), and a datacenter network model
(:mod:`.network`).
"""

from .cpu import CpuBurst, CpuPool
from .engine import Event, SimulationError, Simulator
from .network import Network
from .rng import RngRegistry

__all__ = [
    "CpuBurst",
    "CpuPool",
    "Event",
    "Network",
    "RngRegistry",
    "SimulationError",
    "Simulator",
]
