"""Simulated processors with a FIFO run queue.

This module models the machine layer that gives the paper's measurements
their meaning.  §5.4 of the paper breaks the processing of one event into

* time queued in the SEDA stage (modeled by :mod:`repro.seda.stage`),
* **ready time** ``r`` — runnable but waiting for a processor,
* **compute time** ``x`` — actually executing on a core,
* **blocking wait** ``w`` — off-CPU, waiting on a synchronous call.

:class:`CpuPool` provides ``r`` and ``x``: stage threads submit compute
bursts; with ``p`` processors at most ``p`` bursts run concurrently and the
rest queue FIFO, accruing ready time.  Because all stages of a server share
one pool, allocating more threads to one stage steals processor time from
the others — exactly the coupling the thread-allocation optimization
exploits.

Oversubscription cost.  Real kernels charge context-switch and cache-
pollution overhead when runnable threads exceed cores.  We model it as a
multiplicative inflation of compute time::

    inflation = 1 + switch_factor * max(0, registered_threads - processors)

plus a fixed per-dispatch overhead.  This is what makes the Figure-5
heatmap non-trivial: too few threads and stage queues blow up; too many
and every burst pays the inflation.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from .engine import Simulator

__all__ = ["CpuBurst", "CpuPool"]


class CpuBurst:
    """One compute burst submitted to the pool.

    Attributes record the Fig.-9 breakdown for the burst: ``submit_time``
    (entered the run queue), ``grant_time`` (started on a core) and
    ``finish_time``; ``ready_time`` is the difference the §5.4 estimator
    infers but never observes directly.
    """

    __slots__ = (
        "compute",
        "inflated",
        "callback",
        "args",
        "submit_time",
        "grant_time",
        "finish_time",
    )

    def __init__(self, compute: float, callback: Callable[..., Any], args: tuple):
        self.compute = compute
        self.inflated = compute
        self.callback = callback
        self.args = args
        self.submit_time = 0.0
        self.grant_time = 0.0
        self.finish_time = 0.0

    @property
    def ready_time(self) -> float:
        """Time spent runnable but not running (``r`` in the paper)."""
        return self.grant_time - self.submit_time


class CpuPool:
    """``processors`` simulated cores shared by all stages of one server."""

    def __init__(
        self,
        sim: Simulator,
        processors: int,
        switch_factor: float = 0.05,
        dispatch_overhead: float = 2e-6,
    ):
        if processors < 1:
            raise ValueError("need at least one processor")
        self.sim = sim
        self.processors = processors
        self.switch_factor = switch_factor
        self.dispatch_overhead = dispatch_overhead
        self.registered_threads = 0
        # Fault-injection hook: compute runs `throttle`x slower while a
        # SlowSilo fault is active.  Exactly 1.0 means untouched — the
        # grant path multiplies only when it differs, so fault-free runs
        # perform the identical float arithmetic as before.
        self.throttle = 1.0

        self._free = processors
        self._queue: deque[CpuBurst] = deque()

        # Accounting (monotone counters; callers diff them per window).
        self.busy_time = 0.0
        self.ready_time_total = 0.0
        self.bursts_completed = 0

    # ------------------------------------------------------------------
    # Thread registration (drives the oversubscription penalty)
    # ------------------------------------------------------------------
    def register_threads(self, delta: int) -> None:
        """Inform the pool that the server's total thread count changed."""
        self.registered_threads += delta
        if self.registered_threads < 0:
            raise ValueError("registered thread count went negative")

    def inflation(self) -> float:
        """Current compute-time inflation factor from oversubscription."""
        excess = max(0, self.registered_threads - self.processors)
        return 1.0 + self.switch_factor * excess

    # ------------------------------------------------------------------
    # Burst submission
    # ------------------------------------------------------------------
    def submit(self, compute: float, callback: Callable[..., Any], *args: Any) -> CpuBurst:
        """Submit a compute burst; ``callback(burst, *args)`` fires when done."""
        if compute < 0:
            raise ValueError(f"negative compute time {compute}")
        burst = CpuBurst(compute, callback, args)
        burst.submit_time = self.sim.now
        if self._free > 0:
            self._grant(burst)
        else:
            self._queue.append(burst)
        return burst

    def _grant(self, burst: CpuBurst) -> None:
        self._free -= 1
        now = self.sim.now
        burst.grant_time = now
        # Inline inflation(): this runs once per burst.
        excess = self.registered_threads - self.processors
        factor = 1.0 + self.switch_factor * excess if excess > 0 else 1.0
        inflated = burst.compute * factor + self.dispatch_overhead
        if self.throttle != 1.0:
            inflated *= self.throttle
        burst.inflated = inflated
        self.sim.defer(inflated, self._finish, burst)

    def _finish(self, burst: CpuBurst) -> None:
        now = self.sim.now
        burst.finish_time = now
        self.busy_time += burst.inflated
        self.ready_time_total += burst.grant_time - burst.submit_time
        self.bursts_completed += 1
        self._free += 1
        queue = self._queue
        if queue:
            self._grant(queue.popleft())
        burst.callback(burst, *burst.args)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def run_queue_length(self) -> int:
        """Bursts waiting for a core right now."""
        return len(self._queue)

    @property
    def cores_busy(self) -> int:
        return self.processors - self._free

    def utilization(self, busy_before: float, time_before: float) -> float:
        """Mean utilization over the window since a prior sample.

        Callers snapshot ``(pool.busy_time, sim.now)`` and pass the old
        values here; returns busy core-seconds divided by available
        core-seconds, in [0, ~1].
        """
        elapsed = self.sim.now - time_before
        if elapsed <= 0:
            return 0.0
        return (self.busy_time - busy_before) / (elapsed * self.processors)
