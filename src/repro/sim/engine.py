"""Discrete-event simulation engine.

Everything in the reproduction — SEDA servers, the CPU scheduler, the
network, the actor runtime — is driven by one :class:`Simulator` instance.
Determinism matters because the paper's algorithms (partitioning rounds,
controller periods) are sensitive to ordering, and reproducible runs are
what make the benchmark tables comparable across machines.  Events fire
in ``(time, seq)`` order: timestamp first, then FIFO insertion order for
events scheduled at the same instant.

The engine is the hot path of every experiment, so its internals are
organised for throughput rather than elegance:

* **Tuple heap + slab.**  The heap holds bare ``(time, seq)`` tuples,
  which CPython compares in C — no Python-level ``__lt__`` per sift step.
  Callbacks live in a slab (``dict`` keyed by ``seq``); cancellation is
  an O(1) slab pop, and :meth:`pending` is an O(1) ``len`` of the slab.
* **Same-instant FIFO fast path.**  :meth:`call_soon` (and ``at(now)``)
  append to a deque instead of paying two O(log n) heap operations; the
  run loop merges the deque with the heap by ``(time, seq)`` so ordering
  is bit-for-bit identical to a pure-heap engine.
* **Self-compacting heap.**  Cancelled entries are skipped lazily when
  popped, but when they outnumber live entries (e.g. the per-call timeout
  timers that the actor server schedules and almost always cancels) the
  queues are rebuilt with only live entries, bounding memory and pop cost
  under cancellation-heavy load.
* **Handle-free scheduling.**  :meth:`defer` is :meth:`schedule` without
  the :class:`Event` cancellation handle, for internal hot paths that
  never cancel (CPU burst completions, stage wake-ups, network delivery).

Time is a float in **seconds** of simulated time.
"""

from __future__ import annotations

import math
from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (e.g. scheduling in the past)."""


class Event:
    """A cancellation handle for a scheduled callback.

    Returned by :meth:`Simulator.schedule` and :meth:`Simulator.at` so the
    caller can cancel it.  Cancellation is O(1): the callback is dropped
    from the engine's slab and the dead queue entry is skipped (or
    compacted away) later.
    """

    __slots__ = ("_sim", "time", "seq", "cancelled")

    def __init__(self, sim: "Simulator", time: float, seq: int):
        self._sim = sim
        self.time = time
        self.seq = seq
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Safe to call more than once."""
        if not self.cancelled:
            self.cancelled = True
            self._sim._discard(self.seq)

    def __lt__(self, other: "Event") -> bool:
        # Kept for API compatibility: order by time, then insertion order.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """A minimal deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, print, "fires at t=1.5")
        sim.run(until=10.0)

    Callbacks may schedule further events; :meth:`run` drains the queues in
    ``(time, seq)`` order until the horizon is reached or no events remain.
    """

    # Compact only past this queue size: tiny queues are cheap to scan and
    # rebuilding them would dominate.
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        self._now = 0.0
        # seq -> (callback, args): the single source of truth for liveness.
        self._slab: dict[int, tuple[Callable[..., Any], tuple]] = {}
        self._heap: list[tuple[float, int]] = []
        # Entries scheduled at the current instant; appended in (time, seq)
        # order so the leftmost element is always the deque's minimum.
        self._soon: deque[tuple[float, int]] = deque()
        self._seq = 0
        self._dead = 0  # cancelled entries still sitting in _heap/_soon
        self._events_processed = 0
        self._running = False
        # Armed race sanitizer (repro.analysis.sanitizer), or None.  One
        # hoisted None check per drain keeps the disarmed hot loop intact.
        self._san = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total callbacks fired so far (cancelled events excluded)."""
        return self._events_processed

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return len(self._slab)

    def queue_size(self) -> int:
        """Total queue entries including not-yet-compacted cancelled ones.

        ``queue_size() - pending()`` is the current garbage count; the
        compaction regression tests assert it stays bounded.
        """
        return len(self._heap) + len(self._soon)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule with negative/NaN delay {delay!r}")
        time = self._now + delay
        return Event(self, time, self._push(time, callback, args))

    def at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire at absolute ``time``."""
        if time < self._now or math.isnan(time):
            raise SimulationError(
                f"cannot schedule at t={time} (already at t={self._now})"
            )
        return Event(self, time, self._push(time, callback, args))

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at the current instant (after any
        events already queued for this instant)."""
        return Event(self, self._now, self._push(self._now, callback, args))

    def defer(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """:meth:`schedule` without allocating a cancellation handle.

        For internal hot paths that fire-and-forget (burst completions,
        stage wake-ups, message delivery).  The event cannot be cancelled.
        """
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule with negative/NaN delay {delay!r}")
        self._push(self._now + delay, callback, args)

    def _push(self, time: float, callback: Callable[..., Any], args: tuple) -> int:
        seq = self._seq
        self._seq = seq + 1
        self._slab[seq] = (callback, args)
        if time == self._now:
            # Same-instant fast path: seq is strictly increasing and _now
            # is nondecreasing, so appends keep the deque sorted.
            self._soon.append((time, seq))
        else:
            heappush(self._heap, (time, seq))
        return seq

    # ------------------------------------------------------------------
    # Cancellation / compaction
    # ------------------------------------------------------------------
    def _discard(self, seq: int) -> None:
        if self._slab.pop(seq, None) is None:
            return  # already fired or already cancelled
        self._dead += 1
        garbage = self._dead
        if garbage > self._COMPACT_MIN and 2 * garbage > len(self._heap) + len(self._soon):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the queues with live entries only."""
        slab = self._slab
        self._heap = [entry for entry in self._heap if entry[1] in slab]
        heapify(self._heap)
        if len(self._heap) + len(self._soon) > len(slab):
            self._soon = deque(entry for entry in self._soon if entry[1] in slab)
        self._dead = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event.  Returns False when no live events remain."""
        fired = self._drain(until=None, max_events=1)
        return fired == 1

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event queues.

        Args:
            until: stop once simulated time would exceed this horizon; the
                clock is advanced to exactly ``until``.  ``None`` runs to
                exhaustion.
            max_events: optional safety valve on the number of callbacks.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly from a callback")
        self._running = True
        try:
            self._drain(until, max_events)
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def _drain(self, until: Optional[float], max_events: Optional[int]) -> int:
        heap = self._heap
        slab = self._slab
        san = self._san
        fired = 0
        while True:
            soon = self._soon  # rebound: _compact may replace the deque
            heap = self._heap
            if soon and (not heap or soon[0] <= heap[0]):
                time, seq = soon[0]
                from_heap = False
            elif heap:
                time, seq = heap[0]
                from_heap = True
            else:
                break
            item = slab.pop(seq, None)
            if item is None:
                # Cancelled: purge the dead entry and keep going.
                if from_heap:
                    heappop(heap)
                else:
                    soon.popleft()
                self._dead -= 1
                continue
            if until is not None and time > until:
                slab[seq] = item  # not consumed after all
                break
            if from_heap:
                heappop(heap)
            else:
                soon.popleft()
            self._now = time
            self._events_processed += 1
            callback, args = item
            if san is not None:
                san.on_event()
            callback(*args)
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        return fired

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(t={self._now:.6f}, pending={len(self._slab)})"
