"""Discrete-event simulation engine.

Everything in the reproduction — SEDA servers, the CPU scheduler, the
network, the actor runtime — is driven by one :class:`Simulator` instance.
The engine is deliberately small: a binary heap of timestamped callbacks
with deterministic FIFO tie-breaking for events scheduled at the same
instant.  Determinism matters because the paper's algorithms (partitioning
rounds, controller periods) are sensitive to ordering, and reproducible
runs are what make the benchmark tables comparable across machines.

Time is a float in **seconds** of simulated time.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Optional

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Returned by :meth:`Simulator.schedule` and :meth:`Simulator.at` so the
    caller can cancel it.  Cancellation is O(1): the heap entry is marked
    dead and skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        # Heap ordering: by time, then insertion order (FIFO at equal times).
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """A minimal deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, print, "fires at t=1.5")
        sim.run(until=10.0)

    Callbacks may schedule further events; :meth:`run` drains the heap in
    timestamp order until the horizon is reached or no events remain.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total callbacks fired so far (cancelled events excluded)."""
        return self._events_processed

    def pending(self) -> int:
        """Number of live (non-cancelled) events still on the heap."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule with negative/NaN delay {delay!r}")
        return self.at(self._now + delay, callback, *args)

    def at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to fire at absolute ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (already at t={self._now})"
            )
        event = Event(time, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def call_soon(self, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at the current instant (after any
        events already queued for this instant)."""
        return self.at(self._now, callback, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event.  Returns False when the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event heap.

        Args:
            until: stop once simulated time would exceed this horizon; the
                clock is advanced to exactly ``until``.  ``None`` runs to
                exhaustion.
            max_events: optional safety valve on the number of callbacks.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly from a callback")
        self._running = True
        fired = 0
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                self._events_processed += 1
                event.callback(*event.args)
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(t={self._now:.6f}, pending={len(self._heap)})"
