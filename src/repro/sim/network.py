"""Inter-server network model.

The paper's clusters sit on a single datacenter LAN; Figure 4 shows the
network contributes ~1% of end-to-end latency.  What makes remote calls
expensive is the *serialization CPU work* charged in the send/receive
stages (modeled in :mod:`repro.actor.serialization`), not the wire.  The
network model is therefore simple: a base propagation latency plus
lognormal jitter, with deterministic per-link substreams.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .engine import Simulator
from .rng import RngRegistry

__all__ = ["Network"]


class Network:
    """Point-to-point message delivery with latency and jitter.

    Args:
        sim: the driving simulator.
        rng: registry for the jitter substream.
        base_latency: one-way propagation + switching delay in seconds
            (default 0.5 ms, typical intra-datacenter).
        jitter: multiplicative lognormal sigma; 0 disables jitter.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: RngRegistry,
        base_latency: float = 0.0005,
        jitter: float = 0.1,
    ):
        self.sim = sim
        self.base_latency = base_latency
        self.jitter = jitter
        self._rng = rng.stream("network.jitter")
        self.messages_sent = 0
        self.bytes_sent = 0
        # Optional fault hook (a repro.faults.injector.LinkFaultModel);
        # installed only when a fault plan has network actions, so the
        # plain path below stays byte-identical for fault-free runs.
        self.faults = None
        # Optional window-shadow hook (a repro.analysis.par.WindowShadow);
        # observes (src, dst, send time, latency) per delivery while the
        # PAR sanitizer mode is armed.  Pure recording — it never draws
        # from an RNG or schedules an event, so the digest is unchanged
        # even when attached; when None the cost is one attribute load.
        self.shadow = None

    def latency(self) -> float:
        """Draw a one-way delivery latency."""
        if self.jitter <= 0:
            return self.base_latency
        return self.base_latency * self._rng.lognormvariate(0.0, self.jitter)

    def deliver(
        self,
        size_bytes: int,
        callback: Callable[..., Any],
        *args: Any,
        src: Optional[int] = None,
        dst: Optional[int] = None,
    ) -> float:
        """Deliver a message: fire ``callback(*args)`` after one latency draw.

        ``src``/``dst`` identify the link endpoints (silo ids; ``None``
        means the client side) so an installed fault model can target
        specific links.  Returns the drawn latency so instrumentation
        (e.g. the causal tracer's network-hop spans) can report transit
        time without a second draw.
        """
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        if self.faults is not None:
            latency = self.faults.transmit(size_bytes, callback, args, src, dst)
        else:
            latency = self.latency()
            self.sim.defer(latency, callback, *args)
        if self.shadow is not None:
            self.shadow.observe(src, dst, self.sim.now, latency)
        return latency
