"""Balancing policies for data-parallel actor pools.

A policy decides, per routed request, which worker replica serves it.
Policies live *inside* the :class:`~repro.pools.router.RouterActor`'s
state — they migrate with the router, hold only plain-Python fields, and
draw no randomness (ties break by a rotating cursor, not an RNG), so a
seeded run routes identically every time.

Routers are sharded (one per silo is the usual shape), and each shard
balances on its *own* in-flight counts — so anything that biases ties
toward a fixed index makes every shard herd onto the same replicas at
once.  Two structural defenses, both deterministic: tie-breaks rotate
(an all-idle pool degenerates to round-robin, not to replica 0), and
:meth:`BalancingPolicy.bind` tells a policy which shard it serves so
:class:`DpaPolicy` can place its active window at a per-shard offset
(shards consolidate onto *disjoint* replica ranges instead of piling
onto a shared prefix).

Three policies, in ascending awareness:

* :class:`RoundRobinPolicy` — the classic oblivious baseline.
* :class:`LeastOutstandingPolicy` — routes to the replica with the
  fewest in-flight requests (join-shortest-queue on the router's own
  bookkeeping).
* :class:`DpaPolicy` — DPA-style load-aware balancing (after the
  distributed pool-adaptation scheme of arXiv:2308.00938): scores each
  replica by in-flight count *plus* its host silo's reported SEDA
  worker-stage backpressure, and adapts the number of *active* replicas
  to demand — concentrating traffic on few replicas at low load (better
  locality, fewer activations) and spreading across the whole pool as
  pressure rises.
"""

from __future__ import annotations

__all__ = [
    "BalancingPolicy",
    "RoundRobinPolicy",
    "LeastOutstandingPolicy",
    "DpaPolicy",
    "POLICIES",
    "make_policy",
]


class BalancingPolicy:
    """Base class: pick a replica index in ``[0, limit)``.

    ``outstanding[i]`` counts requests the router has in flight toward
    replica ``i``; ``loads[i]`` is the latest reported load signal for
    replica ``i`` (SEDA backpressure of its host silo, scaled — see
    :class:`~repro.pools.router.ActorPool`), zero when unreported.
    """

    name = "base"

    def choose(self, outstanding: list[int], loads: list[float],
               limit: int) -> int:
        raise NotImplementedError

    def resize(self, replicas: int) -> None:
        """Hook: the pool was resized to ``replicas`` slots."""

    def bind(self, shard: int, shards: int) -> None:
        """Hook: this policy instance serves router shard ``shard`` of
        ``shards`` (called once at configure time)."""


class RoundRobinPolicy(BalancingPolicy):
    """Cycle through replicas obliviously."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, outstanding: list[int], loads: list[float],
               limit: int) -> int:
        idx = self._next % limit
        self._next = (idx + 1) % limit
        return idx


class LeastOutstandingPolicy(BalancingPolicy):
    """Join the shortest queue the router can see (its own in-flight
    counts).  The scan starts one past the previous pick and wraps, so
    ties rotate: an idle pool spreads like round-robin instead of every
    shard dogpiling replica 0."""

    name = "least_outstanding"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, outstanding: list[int], loads: list[float],
               limit: int) -> int:
        start = self._next % limit
        best = start
        best_value = outstanding[start]
        for step in range(1, limit):
            i = (start + step) % limit
            if outstanding[i] < best_value:
                best = i
                best_value = outstanding[i]
        self._next = (best + 1) % limit
        return best


class DpaPolicy(BalancingPolicy):
    """Load-aware scoring over a demand-adapted active replica set.

    Each choice first adapts ``active`` (how many of the pool's replicas
    receive traffic at all).  Replicas are single-threaded actors, so the
    signal is idleness, not queue depth: when *every* active replica has
    at least ``grow_at`` requests in flight there is no idle capacity
    left and one more replica activates; when mean in-flight pressure
    falls to ``shrink_at`` one retires.  The request then goes to the
    active replica minimizing ``outstanding[i] + loads[i]`` — in-flight
    work plus the host silo's reported worker-stage backpressure, so a
    replica behind a saturated (or deliberately slowed) silo is avoided
    even when few requests are charged to it.

    The active window starts at a per-shard offset (see
    :meth:`BalancingPolicy.bind`): shard ``s`` of ``S`` consolidates onto
    replicas from ``s/S`` of the way around the ring, so low-load
    consolidation lands different shards on different replicas instead
    of serializing the whole pool behind a shared prefix.  Deterministic:
    no RNG, rotating tie-breaks.
    """

    name = "dpa"

    def __init__(self, grow_at: float = 1.0, shrink_at: float = 0.25,
                 min_active: int = 1) -> None:
        if grow_at <= shrink_at:
            raise ValueError("grow_at must exceed shrink_at")
        if min_active < 1:
            raise ValueError("min_active must be >= 1")
        self.grow_at = grow_at
        self.shrink_at = shrink_at
        self.min_active = min_active
        self.active = min_active
        self.grow_steps = 0
        self.shrink_steps = 0
        self._next = 0
        self._offset_frac = 0.0
        self._shards = 1

    def bind(self, shard: int, shards: int) -> None:
        self._offset_frac = shard / shards
        self._shards = shards

    def resize(self, replicas: int) -> None:
        self.active = max(self.min_active, min(self.active, replicas))

    def choose(self, outstanding: list[int], loads: list[float],
               limit: int) -> int:
        active = max(self.min_active, min(self.active, limit))
        offset = int(self._offset_frac * limit) % limit
        pressure = 0.0
        least = None
        for j in range(active):
            value = outstanding[(offset + j) % limit]
            pressure += value
            if least is None or value < least:
                least = value
        mean = pressure / active
        if least >= self.grow_at and active < limit:
            active += 1
            self.grow_steps += 1
        elif mean <= self.shrink_at and active > self.min_active:
            active -= 1
            self.shrink_steps += 1
        self.active = active

        # Unit match: loads[i] is the replica's *global* queue (every
        # shard's traffic lands in it) while outstanding[i] is only this
        # shard's slice — scale it up by the shard count or a shard keeps
        # feeding a replica whose reported load is merely stale-low while
        # its own pile there already exceeds the alternative's capacity.
        start = self._next % active
        best = offset % limit
        best_pos = start
        best_score = None
        for step in range(active):
            j = (start + step) % active
            i = (offset + j) % limit
            score = (self._shards * outstanding[i]
                     + (loads[i] if i < len(loads) else 0.0))
            if best_score is None or score < best_score:
                best = i
                best_pos = j
                best_score = score
        self._next = (best_pos + 1) % active
        return best


POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastOutstandingPolicy.name: LeastOutstandingPolicy,
    DpaPolicy.name: DpaPolicy,
}


def make_policy(name: str) -> BalancingPolicy:
    """Instantiate a registered policy by name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown balancing policy {name!r} "
            f"(choices: {', '.join(sorted(POLICIES))})") from None
