"""Data-parallel actor pools (router + replicated workers).

See :mod:`repro.pools.router` for the ensemble and
:mod:`repro.pools.policy` for the balancing policies.
"""

from .policy import (
    POLICIES,
    BalancingPolicy,
    DpaPolicy,
    LeastOutstandingPolicy,
    RoundRobinPolicy,
    make_policy,
)
from .router import ActorPool, RouterActor

__all__ = [
    "BalancingPolicy",
    "RoundRobinPolicy",
    "LeastOutstandingPolicy",
    "DpaPolicy",
    "POLICIES",
    "make_policy",
    "RouterActor",
    "ActorPool",
]
