"""Data-parallel actor pools: a router actor fronting N worker replicas.

Orleans actors are single-threaded by contract, so a hot stateless stage
(an inference step, an enrichment lookup) cannot be scaled by making one
actor faster — it is scaled *horizontally* by running N replicas keyed
``0..N-1`` and putting a :class:`RouterActor` in front.  The router is
itself an ordinary actor: requests arrive as messages, balancing state
(in-flight counts, reported loads, the policy object) is actor state,
and the whole ensemble migrates, fails, and rebalances under ActOp like
any other actors.

:class:`ActorPool` is the harness-side handle — it registers the types,
installs the router, resizes the replica set (under autoscale control),
and runs the optional SEDA load-report loop that feeds
:class:`~repro.pools.policy.DpaPolicy` each replica's host-silo
worker-stage backpressure.
"""

from __future__ import annotations

from typing import Optional, Union

from ..actor.actor import Actor, idempotent
from ..actor.calls import Call
from ..actor.errors import ActorError
from ..actor.ids import ActorRef
from ..obs.events import PoolResizeEvent
from .policy import BalancingPolicy, make_policy

__all__ = ["RouterActor", "ActorPool"]


class RouterActor(Actor):
    """Routes each request to one replica of a worker actor type.

    Configured once at install time (worker type name, default method,
    replica count, policy); thereafter every ``route`` turn charges the
    chosen replica's in-flight counter, forwards the payload, and releases
    the counter when the reply (or failure) comes back.  ``REENTRANT``
    stays True — many routed requests are in flight through the router's
    suspended turns at once, which is the entire point.
    """

    COMPUTE = {
        "route": 8e-6,         # policy evaluation + forward
        "configure": 5e-6,
        "set_replicas": 5e-6,
        "report_load": 5e-6,
    }

    def __init__(self) -> None:
        super().__init__()
        self.worker_type: Optional[str] = None
        self.method: str = "handle"
        self.replicas: int = 0
        self.policy: Optional[BalancingPolicy] = None
        self.outstanding: list[int] = []
        self.loads: list[float] = []
        self.routed = 0

    # ------------------------------------------------------------------
    def configure(self, worker_type: str, method: str, replicas: int,
                  policy: Union[str, BalancingPolicy],
                  shard: int = 0, shards: int = 1) -> int:
        if replicas < 1:
            raise ActorError(f"pool needs >= 1 replica, got {replicas}")
        self.worker_type = worker_type
        self.method = method
        self.replicas = replicas
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.outstanding = [0] * replicas
        self.loads = [0.0] * replicas
        self.policy.bind(shard, shards)
        self.policy.resize(replicas)
        return replicas

    @idempotent
    def set_replicas(self, replicas: int) -> int:
        """Resize the replica set; shrink only narrows the routing window
        (replicas beyond the limit stop receiving *new* requests but
        drain in-flight ones — no work is dropped)."""
        if replicas < 1:
            raise ActorError(f"pool needs >= 1 replica, got {replicas}")
        while len(self.outstanding) < replicas:
            self.outstanding.append(0)
            self.loads.append(0.0)
        self.replicas = replicas
        if self.policy is not None:
            self.policy.resize(replicas)
        return replicas

    @idempotent
    def report_load(self, loads: tuple) -> None:
        """Last-writer-wins load signal per replica (SEDA backpressure of
        each replica's host silo, gathered by :class:`ActorPool`)."""
        for i, value in enumerate(loads):
            if i < len(self.loads):
                self.loads[i] = value

    def route(self, payload, method: Optional[str] = None):
        if self.policy is None or self.worker_type is None:
            raise ActorError(f"router {self.id} is not configured")
        idx = self.policy.choose(self.outstanding, self.loads, self.replicas)
        self.outstanding[idx] += 1
        self.routed += 1
        try:
            result = yield Call(ActorRef(self.worker_type, idx),
                                method or self.method, payload)
        finally:
            self.outstanding[idx] -= 1
        return result


class ActorPool:
    """Harness-side handle for one router + replica ensemble.

    ``ActorPool(runtime, "enrich", EnrichWorker, replicas=8)`` registers
    ``enrich.router`` / ``enrich.worker`` actor types, and ``start()``
    installs and configures the routers directly (state install, no
    configure/traffic message race).  Workloads then route through
    :meth:`shard_ref`; the autoscale controller calls :meth:`resize`.

    Routers are **sharded**: ``shards`` independent router activations
    are deployed round-robin across live silos, each with the full
    replica view.  A single router activation is a single-threaded actor
    — every request pays its turn (policy + serialization) serially, so
    one router caps the whole pool's throughput regardless of worker
    capacity.  Per-silo dispatcher shards are exactly how the DPA scheme
    scales its routing tier (arXiv:2308.00938); callers pick a shard by
    any stable key (:meth:`shard_ref`).

    ``report_period`` (seconds, workload time units) enables the DPA load
    feed: every period, each replica's host silo is sampled —
    **worker-stage occupancy** and **CPU run-queue pressure** — and the
    vector is sent to every router shard as a ``report_load`` message,
    steering routing away from saturated or slowed silos even before
    queueing shows up in a shard's own in-flight counts.  ``None``
    (default) runs no loop and sends nothing.
    """

    # Gain on the reported silo-contention signal, in in-flight-request
    # units.  Kept LOW on purpose: the report arrives up to a period
    # late, and a stale signal with high gain is a herd oscillator —
    # every shard steers to the "idle" silo at once, overshoots, and
    # flips when the next report lands.  At gain 1 the load term breaks
    # ties and flags genuinely slow/saturated silos without drowning the
    # fresh per-shard in-flight counts.
    LOAD_WEIGHT = 1.0

    def __init__(self, runtime, name: str, worker_cls, replicas: int, *,
                 policy: Union[str, BalancingPolicy] = "round_robin",
                 method: str = "handle", shards: int = 1,
                 report_period: Optional[float] = None):
        if replicas < 1:
            raise ValueError(f"pool {name!r} needs >= 1 replica")
        if shards < 1:
            raise ValueError(f"pool {name!r} needs >= 1 router shard")
        if shards > 1 and not isinstance(policy, str):
            raise ValueError(
                f"pool {name!r}: pass the policy by name when sharding "
                "(each shard needs its own policy instance)")
        self.runtime = runtime
        self.name = name
        self.worker_cls = worker_cls
        self.replicas = replicas
        self.policy = policy
        self.method = method
        self.shards = shards
        self.report_period = report_period
        self.router_type = f"{name}.router"
        self.worker_type = f"{name}.worker"
        runtime.register_actor(self.router_type, RouterActor)
        runtime.register_actor(self.worker_type, worker_cls)
        self.router_refs = [ActorRef(self.router_type, r)
                            for r in range(shards)]
        self.router_ref = self.router_refs[0]
        self.resizes = 0
        self._started = False

    def shard_ref(self, key: int) -> ActorRef:
        """The router shard a caller with stable ``key`` should use."""
        return self.router_refs[key % self.shards]

    # ------------------------------------------------------------------
    def start(self) -> "ActorPool":
        """Install and configure the router shards (direct state install,
        like the Halo bootstrap: no message, so traffic may start at
        t=0), and deploy the worker replicas round-robin across live
        silos."""
        if self._started:
            raise RuntimeError(f"pool {self.name!r} started twice")
        self._started = True
        rt = self.runtime
        live = [s.server_id for s in rt.silos
                if not (s.dead or s.draining)]
        for r, ref in enumerate(self.router_refs):
            dest = live[r % len(live)]
            rt.activate(ref.id, dest)
            router = rt.silos[dest].activations[ref.id].instance
            router.configure(self.worker_type, self.method, self.replicas,
                             self.policy, shard=r, shards=self.shards)
        self._deploy_workers(0, self.replicas)
        if self.report_period is not None:
            rt.sim.schedule(self.report_period, self._report_tick)
        return self

    def _deploy_workers(self, lo: int, hi: int) -> None:
        """Pre-activate replicas ``[lo, hi)`` round-robin over live silos.

        A pool is a *deployment unit*: replicas are spread evenly by
        construction instead of falling through lazy first-message
        placement (which is per-actor random and can pile a pool's whole
        capacity onto few silos).  Deterministic — live silo ids in
        order, index modulo; no RNG draw.
        """
        rt = self.runtime
        live = [s.server_id for s in rt.silos
                if not (s.dead or s.draining)]
        for i in range(lo, hi):
            ref = ActorRef(self.worker_type, i)
            if rt.locate(ref.id) is None:
                rt.activate(ref.id, live[i % len(live)])

    def route_call(self, payload, *, method: Optional[str] = None,
                   size: int = 256) -> Call:
        """Build the ``Call`` an actor yields to route through this pool."""
        if method is None:
            return Call(self.router_ref, "route", payload, size=size)
        return Call(self.router_ref, "route", payload, method, size=size)

    # ------------------------------------------------------------------
    def resize(self, replicas: int) -> None:
        """Grow or shrink the routing window (autoscale entry point)."""
        if replicas == self.replicas or replicas < 1:
            return
        rt = self.runtime
        if rt.obs is not None:
            rt.obs.events.emit(PoolResizeEvent(
                rt.sim.now, pool=self.name,
                replicas_before=self.replicas, replicas_after=replicas))
        grew_from = self.replicas
        self.replicas = replicas
        self.resizes += 1
        if replicas > grew_from:
            # New replicas deploy onto the current live set — after a
            # grow plan that includes the just-added silos, which is how
            # capacity actually lands on them.
            self._deploy_workers(grew_from, replicas)
        for ref in self.router_refs:
            rt.client_request(ref, "set_replicas", replicas,
                              size=64, response_size=64)

    # ------------------------------------------------------------------
    def _report_tick(self) -> None:
        rt = self.runtime
        loads = []
        for i in range(self.replicas):
            ref = ActorRef(self.worker_type, i)
            location = rt.locate(ref.id)
            if location is None or rt.silos[location].dead:
                loads.append(0.0)
                continue
            silo = rt.silos[location]
            # Host-silo contention only: worker-stage occupancy (queued
            # + running per thread) and the CPU run queue.  A replica
            # behind a saturated (or slowed) silo scores high even when
            # its own mailbox is empty — the turns it would run are
            # stuck at the stage and core level, not the actor level.
            # Deliberately NOT the replica's mailbox depth: that echoes
            # the routers' own past choices half a period late, which is
            # the classic stale-signal herd oscillator (and the fresh
            # per-shard in-flight counts already cover it).
            worker = silo.worker
            stage_occupancy = ((worker.queue_length + worker.busy_threads)
                               / max(1, worker.threads))
            cpu = silo.server.cpu
            cpu_pressure = cpu.run_queue_length / cpu.processors
            loads.append(self.LOAD_WEIGHT
                         * (stage_occupancy + cpu_pressure))
        for ref in self.router_refs:
            rt.client_request(ref, "report_load", tuple(loads),
                              size=64, response_size=64)
        rt.sim.schedule(self.report_period, self._report_tick)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ActorPool({self.name!r}, replicas={self.replicas}, "
                f"shards={self.shards}, policy={self.policy!r})")
