"""Trace analysis: critical paths and Fig.-4/Fig.-9 breakdowns from spans.

Everything here is *derived* from the causal trace alone — no access to
the runtime — so the same analysis applies to a live run, a JSONL replay,
or a synthetic trace in a test.  The stage-time totals it computes are
cross-checked against the independent :class:`~repro.seda.stage.Stage`
recorders (``repro trace`` enforces agreement within 1%), which pins the
tracer's attribution to the measurement infrastructure the estimator
(§5.4) already trusts.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping, Optional

from .spans import Span

__all__ = [
    "spans_by_trace",
    "critical_path",
    "stage_totals",
    "recorder_totals",
    "cross_check",
    "breakdown_shares",
]

#: span categories -> stage-component keys shared with the recorders
_STAGE_COMPONENTS = {
    "stage.queue": "queue",
    "stage.ready": "ready",
    "stage.compute": "compute",
    "stage.wait": "wait",
}


def _in_window(span: Span, t0: Optional[float], t1: Optional[float]) -> bool:
    """Window membership by *completion* time, exactly like the stage
    recorders (which add to their sums when an event completes).

    Stage-component spans end before their event completes (the queue
    span ends at dispatch, the ready span at grant, ...); the tracer
    stamps the owning event's completion time in ``args["completed"]``
    and windowing uses it so both sides classify edge-straddling events
    identically.
    """
    end = span.end
    if span.args is not None:
        end = span.args.get("completed", end)
    if t0 is not None and end <= t0:
        return False
    if t1 is not None and end > t1:
        return False
    return True


def spans_by_trace(spans: Iterable[Span]) -> dict[int, list[Span]]:
    """Group spans by trace id, preserving recording order."""
    grouped: dict[int, list[Span]] = defaultdict(list)
    for span in spans:
        grouped[span.trace_id].append(span)
    return dict(grouped)


def critical_path(trace_spans: Iterable[Span]) -> list[Span]:
    """The latest-finishing causal chain of one trace, root first.

    At each level the child that finished last is the one the parent's
    completion actually waited for (joins resume when the slowest
    response arrives), so greedily descending by ``end`` yields the
    critical path through fan-out/fan-in structures.
    """
    spans = list(trace_spans)
    children: dict[Optional[int], list[Span]] = defaultdict(list)
    for span in spans:
        children[span.parent_id].append(span)
    roots = [s for s in spans if s.cat == "request"] or children.get(None, [])
    if not roots:
        return []
    path = [max(roots, key=lambda s: s.end)]
    while True:
        step = children.get(path[-1].span_id)
        if not step:
            return path
        path.append(max(step, key=lambda s: s.end))


def stage_totals(
    spans: Iterable[Span],
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> dict[str, dict[str, float]]:
    """Trace-derived per-stage time totals, summed across servers.

    Returns ``{stage_name: {"queue": s, "ready": s, "compute": s,
    "wait": s}}`` in simulated seconds, for spans completing in
    ``(t0, t1]``.
    """
    totals: dict[str, dict[str, float]] = defaultdict(
        lambda: {"queue": 0.0, "ready": 0.0, "compute": 0.0, "wait": 0.0}
    )
    for span in spans:
        component = _STAGE_COMPONENTS.get(span.cat)
        if component is None or not _in_window(span, t0, t1):
            continue
        totals[span.track][component] += span.duration
    return dict(totals)


def recorder_totals(
    windows_by_server: Mapping[int, Mapping[str, object]],
) -> dict[str, dict[str, float]]:
    """The same shape as :func:`stage_totals`, from the Stage recorders.

    ``windows_by_server`` maps server id to the per-stage
    :class:`~repro.seda.stage.StatsWindow` dict that
    :meth:`StagedServer.end_window` returns; the window means are
    multiplied back into sums so both sides total the same quantity.
    """
    totals: dict[str, dict[str, float]] = defaultdict(
        lambda: {"queue": 0.0, "ready": 0.0, "compute": 0.0, "wait": 0.0}
    )
    for windows in windows_by_server.values():
        for stage_name, window in windows.items():
            n = window.completions
            if n <= 0:
                continue
            bucket = totals[stage_name]
            bucket["queue"] += window.mean_queue_wait * n
            bucket["ready"] += window.mean_ready * n
            bucket["compute"] += window.mean_x * n
            bucket["wait"] += window.mean_wait * n
    return dict(totals)


def cross_check(
    trace: Mapping[str, Mapping[str, float]],
    recorder: Mapping[str, Mapping[str, float]],
) -> tuple[float, dict[str, float]]:
    """Compare trace-derived vs recorder stage totals.

    Returns ``(max_relative_error, per_component_errors)`` where the
    errors are relative to the recorder side.  Components too small to
    compare meaningfully (below 1e-9 of the largest recorder total on
    both sides) are skipped.
    """
    reference_max = max(
        (value for bucket in recorder.values() for value in bucket.values()),
        default=0.0,
    )
    floor = 1e-9 * reference_max
    errors: dict[str, float] = {}
    for stage_name in sorted(set(trace) | set(recorder)):
        trace_bucket = trace.get(stage_name, {})
        recorder_bucket = recorder.get(stage_name, {})
        for component in ("queue", "ready", "compute", "wait"):
            expected = recorder_bucket.get(component, 0.0)
            observed = trace_bucket.get(component, 0.0)
            if expected <= floor and observed <= floor:
                continue
            if expected <= 0.0:
                errors[f"{stage_name}.{component}"] = float("inf")
                continue
            errors[f"{stage_name}.{component}"] = abs(observed - expected) / expected
    return (max(errors.values(), default=0.0), errors)


def breakdown_shares(
    spans: Iterable[Span],
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> dict[str, float]:
    """A Fig.-4-style end-to-end latency breakdown derived from traces.

    For requests completing in the window, sums each component (per-stage
    queue/processing, ready time, blocking wait, network) and reports it
    as a percentage of total end-to-end request time.  ``other`` is the
    unattributed residual (clamped at 0: with fan-out, concurrent
    branches can legitimately account for more than wall-clock).
    Returns an empty dict when no request completed in the window.
    """
    spans = list(spans)
    window_traces = {
        s.trace_id for s in spans if s.cat == "request" and _in_window(s, t0, t1)
    }
    if not window_traces:
        return {}
    total_e2e = 0.0
    components: dict[str, float] = defaultdict(float)
    for span in spans:
        if span.trace_id not in window_traces:
            continue
        if span.cat == "request":
            total_e2e += span.duration
        elif span.cat == "stage.queue":
            components[f"{span.track} queue"] += span.duration
        elif span.cat == "stage.compute":
            components[f"{span.track} processing"] += span.duration
        elif span.cat == "stage.ready":
            components["ready (run queue)"] += span.duration
        elif span.cat == "stage.wait":
            components["blocking wait"] += span.duration
        elif span.cat == "net":
            components["network"] += span.duration
    if total_e2e <= 0.0:
        return {}
    shares = {name: 100.0 * value / total_e2e
              for name, value in sorted(components.items())}
    shares["other"] = max(0.0, 100.0 - sum(shares.values()))
    return shares
