"""The one-call wiring of tracing + event logging onto a live cluster.

``Observability(runtime)`` attaches a :class:`~repro.obs.tracer.Tracer`
and an :class:`~repro.obs.events.EventLog` to an
:class:`~repro.actor.runtime.ActorRuntime`: the runtime starts sampling
client requests at injection, every silo stage reports traced events
through its observer hooks, and the control plane (partitioning agents,
thread controllers, migration machinery) emits structured events.
``detach()`` undoes all of it; a detached runtime is exactly as
uninstrumented as one that never saw this module.
"""

from __future__ import annotations

from typing import Any, Optional

from .events import EventLog, RuntimeEvent
from .export import chrome_trace_document, write_chrome_trace, write_jsonl
from .spans import Span
from .tracer import Tracer

__all__ = ["Observability"]


class Observability:
    """Tracing + runtime-event collection for one cluster runtime.

    Args:
        runtime: the :class:`~repro.actor.runtime.ActorRuntime` to
            instrument.  At most one Observability may be attached to a
            runtime at a time.
        sample_rate: fraction of client requests to trace (systematic
            sampling; see :class:`~repro.obs.tracer.Tracer`).
        max_spans / max_events: buffer caps (drops are counted, not
            silent).
        attach: attach immediately (default); pass False to construct
            detached and call :meth:`attach` later.
    """

    def __init__(self, runtime, sample_rate: float = 1.0,
                 max_spans: int = 2_000_000, max_events: int = 1_000_000,
                 attach: bool = True):
        self.runtime = runtime
        self.tracer = Tracer(runtime.sim, sample_rate=sample_rate,
                             max_spans=max_spans)
        self.events = EventLog(max_events=max_events)
        self._stage_hooks: list[tuple[Any, Any]] = []
        self._recorder_snapshot: Optional[tuple[float, dict]] = None
        self.attached = False
        if attach:
            self.attach()

    # ------------------------------------------------------------------
    def attach(self) -> "Observability":
        """Wire this instance into the runtime and every silo stage."""
        if self.attached:
            return self
        existing = getattr(self.runtime, "obs", None)
        if existing is not None and existing is not self:
            raise RuntimeError(
                "runtime already has an Observability attached; detach it first"
            )
        self.runtime.obs = self
        for silo in self.runtime.silos:
            hook = self._stage_observer(silo.server_id)
            for stage in silo.server.stages.values():
                stage.observers.append(hook)
                self._stage_hooks.append((stage, hook))
        self.attached = True
        return self

    def detach(self) -> None:
        """Remove every hook; collected spans/events stay readable."""
        if not self.attached:
            return
        for stage, hook in self._stage_hooks:
            try:
                stage.observers.remove(hook)
            except ValueError:  # pragma: no cover - stage replaced/reset
                pass
        self._stage_hooks.clear()
        if getattr(self.runtime, "obs", None) is self:
            self.runtime.obs = None
        self.attached = False

    def _stage_observer(self, server_id: int):
        """A per-silo completion hook for :attr:`Stage.observers`.

        Untraced events carry ``ctx is None`` and cost one attribute
        load + branch — the tracing-disabled overhead budget.
        """
        tracer = self.tracer
        def observe(stage, event):
            ctx = event.ctx
            if ctx is not None:
                tracer.stage_event(server_id, stage.name, ctx, event)
        return observe

    # ------------------------------------------------------------------
    # Controller-safe recorder windows
    # ------------------------------------------------------------------
    def begin_recorder_window(self) -> float:
        """Privately snapshot every stage's monotone counters.

        ``StagedServer.begin_window``/``end_window`` share one snapshot
        slot per server, and the thread-allocation controllers re-arm it
        on every tick — an external measurement window taken through the
        server API silently shrinks to "since the last controller tick".
        This pair diffs the monotone :class:`~repro.seda.stage.StageStats`
        counters directly, so it coexists with any number of controllers.

        Returns the window start time (``sim.now``).
        """
        now = self.runtime.sim.now
        self._recorder_snapshot = (now, {
            silo.server_id: {
                name: stage.stats.snapshot()
                for name, stage in silo.server.stages.items()
            }
            for silo in self.runtime.silos
        })
        return now

    def end_recorder_window(self) -> dict[int, dict[str, Any]]:
        """Close the private window: per-server per-stage StatsWindows.

        The result plugs straight into
        :func:`~repro.obs.analysis.recorder_totals` for cross-checking
        against :func:`~repro.obs.analysis.stage_totals` of the spans.
        """
        if self._recorder_snapshot is None:
            raise RuntimeError("begin_recorder_window() was never called")
        t0, snapshots = self._recorder_snapshot
        self._recorder_snapshot = None
        elapsed = self.runtime.sim.now - t0
        windows: dict[int, dict[str, Any]] = {}
        for silo in self.runtime.silos:
            before = snapshots.get(silo.server_id, {})
            windows[silo.server_id] = {
                name: stage.stats.window(
                    before.get(name, (0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)),
                    elapsed,
                )
                for name, stage in silo.server.stages.items()
            }
        return windows

    # ------------------------------------------------------------------
    # Convenience accessors / exporters
    # ------------------------------------------------------------------
    @property
    def spans(self) -> list[Span]:
        return self.tracer.spans

    @property
    def runtime_events(self) -> list[RuntimeEvent]:
        return self.events.events

    def chrome_document(self, time_scale: Optional[float] = None) -> dict:
        """Chrome trace-event document of everything collected so far.

        ``time_scale`` defaults to the runtime's own, so durations render
        in paper-equivalent time like the benches report them.
        """
        if time_scale is None:
            time_scale = getattr(self.runtime, "time_scale", 1.0)
        return chrome_trace_document(self.tracer.spans, self.events,
                                     time_scale=time_scale)

    def write_chrome_trace(self, path: str,
                           time_scale: Optional[float] = None) -> dict:
        if time_scale is None:
            time_scale = getattr(self.runtime, "time_scale", 1.0)
        return write_chrome_trace(path, self.tracer.spans, self.events,
                                  time_scale=time_scale)

    def write_jsonl(self, path: str) -> int:
        return write_jsonl(path, self.tracer.spans, self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "attached" if self.attached else "detached"
        return (f"Observability({state}, spans={len(self.tracer.spans)}, "
                f"events={len(self.events)})")
