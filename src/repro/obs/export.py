"""Trace exporters: Chrome trace-event JSON and JSONL streams.

The Chrome format (the ``chrome://tracing`` / Perfetto "JSON object
format") renders each silo as a process row and each stage as a thread
row, so a loaded trace shows the paper's Fig.-2 pipeline per server with
the Fig.-9 per-event lifecycle nested inside it, and structured runtime
events (migrations, exchanges, re-allocations) as instant markers.

Reference: the Trace Event Format document (Google), "JSON Object
Format": ``{"traceEvents": [...], ...}`` where each complete event is
``{"name", "cat", "ph": "X", "ts", "dur", "pid", "tid", "args"}`` with
timestamps in microseconds.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Optional

from .events import EventLog, RuntimeEvent
from .spans import Span

__all__ = [
    "CLIENT_PID",
    "chrome_trace_document",
    "write_chrome_trace",
    "write_jsonl",
]

#: Synthetic "process" id for the client side (requests/network rows that
#: do not belong to any silo).
CLIENT_PID = 1_000_000


def _pid(server: Optional[int]) -> int:
    return CLIENT_PID if server is None else server


def _event_server(doc: dict[str, Any]) -> Optional[int]:
    """Best-effort silo attribution for a runtime event record."""
    for field in ("server", "source", "initiator"):
        value = doc.get(field)
        if isinstance(value, int):
            return value
        if isinstance(value, str) and value.startswith("silo"):
            suffix = value[4:]
            if suffix.isdigit():
                return int(suffix)
    return None


def chrome_trace_document(
    spans: Iterable[Span],
    events: Optional[Iterable[RuntimeEvent]] = None,
    time_scale: float = 1.0,
) -> dict[str, Any]:
    """Build a Chrome trace-event document from spans + runtime events.

    Args:
        spans: finished spans (any order; the viewer sorts by ``ts``).
        events: optional structured runtime events, rendered as instant
            markers on their server's row.
        time_scale: the run's :attr:`ClusterConfig.time_scale`; simulated
            seconds are divided by it so the viewer shows paper-equivalent
            time, matching how the benches report latencies.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    to_us = 1e6 / time_scale
    trace_events: list[dict[str, Any]] = []
    # (pid, track name) -> tid, assigned in first-seen order per pid.
    tids: dict[tuple[int, str], int] = {}
    next_tid: dict[int, int] = {}

    def tid_for(pid: int, track: str) -> int:
        key = (pid, track)
        tid = tids.get(key)
        if tid is None:
            tid = next_tid.get(pid, 1)
            next_tid[pid] = tid + 1
            tids[key] = tid
        return tid

    for span in spans:
        pid = _pid(span.server)
        event: dict[str, Any] = {
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": round(span.start * to_us, 3),
            "dur": round(span.duration * to_us, 3),
            "pid": pid,
            "tid": tid_for(pid, span.track or span.cat),
            "args": {
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
            },
        }
        if span.args:
            event["args"].update(span.args)
        trace_events.append(event)

    for record in events or ():
        doc = record.to_dict()
        pid = _pid(_event_server(doc))
        trace_events.append({
            "name": doc["kind"],
            "cat": "runtime",
            "ph": "i",
            "s": "p",  # process-scoped instant marker
            "ts": round(record.time * to_us, 3),
            "pid": pid,
            "tid": tid_for(pid, "events"),
            "args": {k: v for k, v in doc.items()
                     if k not in ("type", "kind", "time")},
        })

    # Metadata: name the process/thread rows so the viewer reads like the
    # paper's figures ("silo0" / "receiver" / "worker" / ...).
    metadata: list[dict[str, Any]] = []
    for pid in sorted(next_tid):
        name = "clients" if pid == CLIENT_PID else f"silo{pid}"
        metadata.append({"name": "process_name", "ph": "M", "pid": pid,
                         "args": {"name": name}})
    for (pid, track), tid in sorted(tids.items(), key=lambda kv: (kv[0][0], kv[1])):
        metadata.append({"name": "thread_name", "ph": "M", "pid": pid,
                         "tid": tid, "args": {"name": track}})

    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "time_scale": time_scale,
        },
    }


def write_chrome_trace(
    path: str,
    spans: Iterable[Span],
    events: Optional[Iterable[RuntimeEvent]] = None,
    time_scale: float = 1.0,
) -> dict[str, Any]:
    """Write :func:`chrome_trace_document` to ``path``; returns the doc."""
    doc = chrome_trace_document(spans, events, time_scale=time_scale)
    with open(path, "w") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return doc


def write_jsonl(
    path: str,
    spans: Iterable[Span],
    events: Optional[Iterable[RuntimeEvent]] = None,
) -> int:
    """Stream spans + events to ``path`` as one JSON object per line.

    Spans carry ``"type": "span"``, runtime events ``"type": "event"``;
    times stay in raw simulated seconds (no time_scale normalization) so
    downstream tooling can join against simulator logs.  Returns the
    number of lines written.
    """
    lines = 0
    with open(path, "w") as fh:
        for span in spans:
            fh.write(json.dumps(span.to_dict()) + "\n")
            lines += 1
        for record in events or ():
            fh.write(json.dumps(record.to_dict()) + "\n")
            lines += 1
    return lines
