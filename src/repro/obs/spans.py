"""Trace contexts and spans — the vocabulary of causal tracing.

A *trace* is the causal tree of everything one client request touches:
stage traversals, CPU grants, network hops, actor-to-actor calls, across
every silo it fans out to.  A :class:`TraceContext` is the tiny immutable
token that rides on :class:`~repro.actor.messages.Message` objects to
carry the (trace id, span id) lineage through the cluster; a
:class:`Span` is one finished, timestamped piece of work in that tree.

Spans are only ever *recorded at completion* — every interesting
timestamp in the simulation (stage enqueue/dispatch/grant/complete,
network send + drawn latency, call issue/resolve) is known by the time
the work finishes, so there is no open-span bookkeeping on the hot path
and tracing cannot perturb the simulation.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["TraceContext", "Span", "SPAN_CATEGORIES"]

#: Every category a Span.cat may carry (exporters and analysis key on these).
SPAN_CATEGORIES = (
    "request",        # client request, injection to response delivery
    "call",           # actor-to-actor Call, issue to resolution
    "stage.queue",    # stage-queue wait (enqueue -> thread dispatch)
    "stage.ready",    # runnable but waiting for a core (Fig. 9's ``r``)
    "stage.compute",  # on-CPU time (Fig. 9's ``x``, switch inflation included)
    "stage.wait",     # blocking wait holding the thread (Fig. 9's ``w``)
    "net",            # network transit of one message
)


class TraceContext:
    """The propagated lineage token: (trace id, span id, parent span id).

    ``span_id`` names the logical span of the *message being handled*;
    fine-grained spans recorded while handling it (stage hops, network
    transit) become its children.  Contexts are immutable; derive one for
    a child message with :meth:`Tracer.child`.
    """

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(self, trace_id: int, span_id: int,
                 parent_id: Optional[int] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TraceContext(trace={self.trace_id}, span={self.span_id}, "
                f"parent={self.parent_id})")


class Span:
    """One finished unit of traced work.

    Times are in simulated seconds (un-normalized; exporters divide by the
    run's ``time_scale`` when rendering paper-equivalent durations).
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "cat",
                 "start", "end", "server", "track", "args")

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        cat: str,
        start: float,
        end: float,
        server: Optional[int] = None,
        track: str = "",
        args: Optional[dict[str, Any]] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.start = start
        self.end = end
        self.server = server   # silo id; None means the client side
        self.track = track     # display row: stage name, "network", ...
        self.args = args

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """JSONL-friendly representation."""
        doc: dict[str, Any] = {
            "type": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "cat": self.cat,
            "start": self.start,
            "end": self.end,
            "server": self.server,
            "track": self.track,
        }
        if self.args:
            doc["args"] = self.args
        return doc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.cat} {self.name!r}, trace={self.trace_id}, "
                f"[{self.start:.6f}, {self.end:.6f}])")
