"""Structured runtime events: the cluster's control plane, made visible.

The data plane is covered by spans (:mod:`repro.obs.spans`); this module
covers the *decisions* — partitioning rounds and exchanges, migrations,
thread re-allocations, activation lifecycle, silo failure/recovery —
as typed records collected in an append-only :class:`EventLog`.

These were previously invisible internals (counters at best); related
adaptive systems (DPA load balancing, dynamic reconfiguration engines)
treat exactly this telemetry as the *input* to adaptation, so the log is
designed for consumption: typed records, subscribers for online
consumers, JSONL export for offline analysis, and instant-event rendering
in the Chrome trace viewer alongside the spans they explain.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Callable, ClassVar, Iterator, Optional, Type, TypeVar

__all__ = [
    "RuntimeEvent",
    "ActivationEvent",
    "DeactivationEvent",
    "MigrationEvent",
    "SiloLifecycleEvent",
    "PartitionRoundEvent",
    "ExchangeEvent",
    "ThreadAllocationEvent",
    "FaultInjectionEvent",
    "RetryEvent",
    "ShedEvent",
    "FailoverEvent",
    "PoolResizeEvent",
    "SiloScaleEvent",
    "ScalePlanEvent",
    "EventLog",
]

E = TypeVar("E", bound="RuntimeEvent")


@dataclass(frozen=True, slots=True)
class RuntimeEvent:
    """Base record: every event carries its simulated timestamp."""

    KIND: ClassVar[str] = "event"

    time: float

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"type": "event", "kind": self.KIND}
        for f in fields(self):
            doc[f.name] = getattr(self, f.name)
        return doc


@dataclass(frozen=True, slots=True)
class ActivationEvent(RuntimeEvent):
    """An actor was activated (hosted) on a silo."""

    KIND: ClassVar[str] = "activation"

    server: int = 0
    actor: str = ""


@dataclass(frozen=True, slots=True)
class DeactivationEvent(RuntimeEvent):
    """An actor finished deactivating (idle collection or migration)."""

    KIND: ClassVar[str] = "deactivation"

    server: int = 0
    actor: str = ""
    migration_hint: Optional[int] = None  # destination silo, None = plain GC


@dataclass(frozen=True, slots=True)
class MigrationEvent(RuntimeEvent):
    """One opportunistic migration committed (§4.3)."""

    KIND: ClassVar[str] = "migration"

    actor: str = ""
    source: int = 0
    destination: int = 0


@dataclass(frozen=True, slots=True)
class SiloLifecycleEvent(RuntimeEvent):
    """A silo crashed or came back."""

    KIND: ClassVar[str] = "silo"

    server: int = 0
    up: bool = True
    activations_lost: int = 0


@dataclass(frozen=True, slots=True)
class PartitionRoundEvent(RuntimeEvent):
    """One Alg.-1 initiation on a silo (§4.2)."""

    KIND: ClassVar[str] = "partition_round"

    server: int = 0
    proposals: int = 0   # ranked peers worth trying this round
    candidates: int = 0  # candidate-set size k used


@dataclass(frozen=True, slots=True)
class ExchangeEvent(RuntimeEvent):
    """Outcome of one pairwise exchange attempt, as seen by the initiator."""

    KIND: ClassVar[str] = "exchange"

    initiator: int = 0
    target: int = 0
    accepted: bool = False
    moves: int = 0       # |S0| + |T0|
    sent: int = 0        # |S0|: initiator -> target
    received: int = 0    # |T0|: target -> initiator
    estimated_gain: float = 0.0
    reason: str = ""     # rejection reason when not accepted


@dataclass(frozen=True, slots=True)
class ThreadAllocationEvent(RuntimeEvent):
    """A thread controller re-allocated a server's stage pools (§5)."""

    KIND: ClassVar[str] = "thread_allocation"

    server: str = ""
    allocation: dict[str, int] = None  # type: ignore[assignment]
    alpha: float = 0.0
    feasible: bool = True
    controller: str = "model"  # "model" (§5.3) or "queue" ([34]-style)


@dataclass(frozen=True, slots=True)
class FaultInjectionEvent(RuntimeEvent):
    """One fault-plan action began or ended (see :mod:`repro.faults`)."""

    KIND: ClassVar[str] = "fault"

    fault: str = ""      # action class name, e.g. "SiloCrash"
    phase: str = "start"  # "start" or "end"
    detail: dict[str, Any] = None  # type: ignore[assignment]


@dataclass(frozen=True, slots=True)
class RetryEvent(RuntimeEvent):
    """A timed-out client request was re-dispatched with backoff."""

    KIND: ClassVar[str] = "retry"

    target: str = ""
    method: str = ""
    attempt: int = 0      # the attempt that just failed (1-based)
    backoff: float = 0.0  # scheduled delay before the next attempt


@dataclass(frozen=True, slots=True)
class ShedEvent(RuntimeEvent):
    """Admission control shed a client request."""

    KIND: ClassVar[str] = "shed"

    target: str = ""
    method: str = ""
    policy: str = "reject"   # which shedding policy fired
    victim_age: float = 0.0  # in-flight time of a drop_oldest victim


@dataclass(frozen=True, slots=True)
class FailoverEvent(RuntimeEvent):
    """Placement routed around a dead silo (§2 fault tolerance)."""

    KIND: ClassVar[str] = "failover"

    actor: str = ""
    dead_server: int = 0
    new_server: int = 0


@dataclass(frozen=True, slots=True)
class PoolResizeEvent(RuntimeEvent):
    """An actor pool changed its replica count (see :mod:`repro.pools`)."""

    KIND: ClassVar[str] = "pool_resize"

    pool: str = ""
    replicas_before: int = 0
    replicas_after: int = 0


@dataclass(frozen=True, slots=True)
class SiloScaleEvent(RuntimeEvent):
    """Elastic cluster membership changed (see :mod:`repro.autoscale`).

    ``action`` is ``"add"`` (a parked/crashed silo re-entered service),
    ``"drain_begin"`` (placement stopped targeting the silo and its
    activations started migrating off), or ``"drain_done"`` (the silo
    emptied and left service).
    """

    KIND: ClassVar[str] = "silo_scale"

    server: int = 0
    action: str = "add"
    activations: int = 0  # hosted activations when the action fired


@dataclass(frozen=True, slots=True)
class ScalePlanEvent(RuntimeEvent):
    """An integrated reconfiguration plan began or committed.

    One plan bundles silo add/drain, activation migration, pool resizes,
    and an ActOp rebalance kick (Madsen-Zhou-Cao-style integrated
    scaling).  ``grow`` plans commit synchronously; ``shrink`` plans
    commit when the drained silo has emptied.
    """

    KIND: ClassVar[str] = "scale_plan"

    plan_id: int = 0
    phase: str = "begin"   # "begin" or "commit"
    kind: str = "grow"     # "grow" or "shrink"
    server: int = -1       # the silo added/drained (attribution field)
    utilization: float = 0.0
    active_before: int = 0
    active_after: int = 0


class EventLog:
    """Append-only, bounded, subscribable log of runtime events.

    Subscribers fire synchronously on :meth:`emit` — they must follow the
    same neutrality contract as the tracer (no scheduling, no RNG).
    """

    def __init__(self, max_events: int = 1_000_000):
        if max_events < 0:
            raise ValueError("max_events must be non-negative")
        self.max_events = max_events
        self.events: list[RuntimeEvent] = []
        self.dropped = 0
        self._subscribers: list[Callable[[RuntimeEvent], None]] = []

    def emit(self, event: RuntimeEvent) -> None:
        for subscriber in self._subscribers:
            subscriber(event)
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def subscribe(self, callback: Callable[[RuntimeEvent], None]) -> None:
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[RuntimeEvent], None]) -> None:
        self._subscribers.remove(callback)

    def of_kind(self, event_type: Type[E]) -> list[E]:
        """All recorded events of one type, in emission order."""
        return [e for e in self.events if isinstance(e, event_type)]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[RuntimeEvent]:
        return iter(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventLog({len(self.events)} events, dropped={self.dropped})"
