"""The causal tracer: id assignment, sampling, span recording.

One :class:`Tracer` serves a whole cluster.  It assigns a trace id at
client-request injection (subject to per-trace sampling), hands out child
span ids as the request fans out through actor calls, and records
finished :class:`~repro.obs.spans.Span` objects as each piece of work
completes.

Neutrality contract: the tracer never schedules simulator events, never
draws from any RNG stream, and never mutates runtime state — it only
*reads* ``sim.now`` and appends to its own buffers.  A seeded run with
tracing enabled is therefore bit-for-bit identical to the same run with
tracing disabled (asserted by ``tests/integration/test_tracing.py``).

Sampling is systematic (an error-diffusion accumulator), not random: a
``sample_rate`` of 0.25 traces exactly every 4th request, deterministic
across runs and free of any RNG coupling.
"""

from __future__ import annotations

from typing import Optional

from .spans import Span, TraceContext

__all__ = ["Tracer"]


class Tracer:
    """Cluster-wide causal tracer.

    Args:
        sim: the driving simulator (read for timestamps only).
        sample_rate: fraction of client requests to trace, in [0, 1].
            Sampling is decided once per request at injection; everything
            the request causes inherits the decision via context
            propagation.
        max_spans: hard cap on buffered spans; further spans are counted
            in :attr:`dropped_spans` instead of silently vanishing.
    """

    def __init__(self, sim, sample_rate: float = 1.0,
                 max_spans: int = 2_000_000):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        if max_spans < 0:
            raise ValueError("max_spans must be non-negative")
        self.sim = sim
        self.sample_rate = sample_rate
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped_spans = 0
        self.requests_seen = 0       # all injected client requests
        self.traces_started = 0      # requests that passed sampling
        self.requests_finished = 0   # traced requests completed (or timed out)
        self._accum = 0.0            # systematic-sampling error accumulator
        self._next_trace_id = 1
        self._next_span_id = 1
        # trace_id -> (root name, root ctx, injection time)
        self._open_requests: dict[int, tuple[str, TraceContext, float]] = {}
        # call_id -> (request ctx, call name, caller silo, issue time)
        self._open_calls: dict[int, tuple[TraceContext, str, int, float]] = {}

    # ------------------------------------------------------------------
    # Context lifecycle
    # ------------------------------------------------------------------
    def begin_request(self, name: str) -> Optional[TraceContext]:
        """Sampling decision + root context for one client request.

        Returns None when the request is not sampled; callers propagate
        the None and the whole causal tree stays untraced.
        """
        self.requests_seen += 1
        rate = self.sample_rate
        if rate <= 0.0:
            return None
        if rate < 1.0:
            self._accum += rate
            if self._accum < 1.0:
                return None
            self._accum -= 1.0
        trace_id = self._next_trace_id
        self._next_trace_id = trace_id + 1
        ctx = TraceContext(trace_id, self._new_span_id(), None)
        self._open_requests[trace_id] = (name, ctx, self.sim.now)
        self.traces_started += 1
        return ctx

    def end_request(self, ctx: TraceContext,
                    error: Optional[str] = None) -> None:
        """Close the root span (response delivered, or timed out)."""
        entry = self._open_requests.pop(ctx.trace_id, None)
        if entry is None:
            return  # already closed (e.g. timeout raced the response)
        name, root, start = entry
        self.requests_finished += 1
        self._record(Span(
            root.trace_id, root.span_id, None, name, "request",
            start, self.sim.now, None, "requests",
            {"error": error} if error else None,
        ))

    def child(self, ctx: TraceContext) -> TraceContext:
        """A context for a message caused by the one carrying ``ctx``."""
        return TraceContext(ctx.trace_id, self._new_span_id(), ctx.span_id)

    # ------------------------------------------------------------------
    # Span sources (called from the instrumented runtime)
    # ------------------------------------------------------------------
    def call_issued(self, call_id: int, ctx: TraceContext, name: str,
                    server: int) -> None:
        """An actor-to-actor Call left a turn; span emitted at resolution."""
        self._open_calls[call_id] = (ctx, name, server, self.sim.now)

    def call_resolved(self, call_id: int, ok: bool = True) -> None:
        """The response (or timeout) for ``call_id`` reached the caller."""
        entry = self._open_calls.pop(call_id, None)
        if entry is None:
            return  # untraced or stale call id
        ctx, name, server, start = entry
        self._record(Span(
            ctx.trace_id, ctx.span_id, ctx.parent_id, name, "call",
            start, self.sim.now, server, "calls",
            None if ok else {"error": True},
        ))

    def network_hop(self, ctx: TraceContext, source: Optional[int],
                    destination: Optional[int], size: int,
                    latency: float) -> None:
        """One message entered the wire; transit time is already drawn."""
        now = self.sim.now
        src = "client" if source is None else source
        dst = "client" if destination is None else destination
        self._record(Span(
            ctx.trace_id, self._new_span_id(), ctx.span_id,
            f"net {src}->{dst}", "net", now, now + latency,
            destination, "network", {"bytes": size},
        ))

    def stage_event(self, server: int, stage_name: str, ctx: TraceContext,
                    event) -> None:
        """Emit the Fig.-9 lifecycle of one completed StageEvent.

        Zero-length components (no queue wait, no ready time, no blocking
        wait) are elided; the compute span is always emitted so every
        stage hop is visible in the timeline.

        Every component span carries the event's completion time in
        ``args["completed"]``: the stage recorders attribute the whole
        breakdown to the completion instant, so window filters must use
        it too or events straddling a window edge are split differently
        on the two sides (see :func:`~repro.obs.analysis.stage_totals`).
        """
        trace_id = ctx.trace_id
        parent = ctx.span_id
        record = self._record
        meta = {"completed": event.complete_time}
        if event.dispatch_time > event.enqueue_time:
            record(Span(trace_id, self._new_span_id(), parent,
                        f"{stage_name}.queue", "stage.queue",
                        event.enqueue_time, event.dispatch_time,
                        server, stage_name, meta))
        if event.grant_time > event.dispatch_time:
            record(Span(trace_id, self._new_span_id(), parent,
                        f"{stage_name}.ready", "stage.ready",
                        event.dispatch_time, event.grant_time,
                        server, stage_name, meta))
        record(Span(trace_id, self._new_span_id(), parent,
                    f"{stage_name}.compute", "stage.compute",
                    event.grant_time, event.compute_done_time,
                    server, stage_name, meta))
        if event.complete_time > event.compute_done_time:
            record(Span(trace_id, self._new_span_id(), parent,
                        f"{stage_name}.wait", "stage.wait",
                        event.compute_done_time, event.complete_time,
                        server, stage_name, meta))

    # ------------------------------------------------------------------
    def _new_span_id(self) -> int:
        span_id = self._next_span_id
        self._next_span_id = span_id + 1
        return span_id

    def _record(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return
        self.spans.append(span)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Tracer(rate={self.sample_rate}, spans={len(self.spans)}, "
                f"traces={self.traces_started})")
