"""``repro.obs`` — observability for the whole stack.

Three layers, composable but independent:

* **Causal tracing** (:mod:`~repro.obs.spans`, :mod:`~repro.obs.tracer`):
  trace/span ids assigned at client-request injection and propagated
  through actor calls, stage traversals, and network hops — RPC and LPC
  paths alike — with deterministic per-trace sampling.
* **Structured runtime events** (:mod:`~repro.obs.events`): typed records
  of the control plane — partitioning rounds and exchanges, migrations,
  thread re-allocations, activation lifecycle, silo failures.
* **Export + analysis** (:mod:`~repro.obs.export`,
  :mod:`~repro.obs.analysis`): Chrome trace-event JSON (loadable in
  Perfetto / ``chrome://tracing``), JSONL streams, per-request critical
  paths, and Fig.-4-style latency breakdowns cross-checked against the
  stage recorders.

:class:`~repro.obs.observability.Observability` wires all of it onto an
:class:`~repro.actor.runtime.ActorRuntime` in one call; ``repro trace``
is the CLI front-end.  Everything observes and nothing perturbs: a
seeded run is bit-for-bit identical with tracing on or off.
"""

from .analysis import (
    breakdown_shares,
    critical_path,
    cross_check,
    recorder_totals,
    spans_by_trace,
    stage_totals,
)
from .events import (
    ActivationEvent,
    DeactivationEvent,
    EventLog,
    ExchangeEvent,
    FailoverEvent,
    FaultInjectionEvent,
    MigrationEvent,
    PartitionRoundEvent,
    PoolResizeEvent,
    RetryEvent,
    ScalePlanEvent,
    RuntimeEvent,
    ShedEvent,
    SiloLifecycleEvent,
    SiloScaleEvent,
    ThreadAllocationEvent,
)
from .export import (
    CLIENT_PID,
    chrome_trace_document,
    write_chrome_trace,
    write_jsonl,
)
from .observability import Observability
from .spans import SPAN_CATEGORIES, Span, TraceContext
from .tracer import Tracer

__all__ = [
    # spans / tracer
    "TraceContext",
    "Span",
    "SPAN_CATEGORIES",
    "Tracer",
    # runtime events
    "RuntimeEvent",
    "ActivationEvent",
    "DeactivationEvent",
    "MigrationEvent",
    "SiloLifecycleEvent",
    "PartitionRoundEvent",
    "ExchangeEvent",
    "ThreadAllocationEvent",
    "FaultInjectionEvent",
    "RetryEvent",
    "ShedEvent",
    "FailoverEvent",
    "PoolResizeEvent",
    "SiloScaleEvent",
    "ScalePlanEvent",
    "EventLog",
    # export
    "CLIENT_PID",
    "chrome_trace_document",
    "write_chrome_trace",
    "write_jsonl",
    # analysis
    "spans_by_trace",
    "critical_path",
    "stage_totals",
    "recorder_totals",
    "cross_check",
    "breakdown_shares",
    # facade
    "Observability",
]
