"""The paper's contribution: locality-aware actor partitioning (§4),
latency-optimized thread allocation (§5), and the integrated ActOp
runtime optimizer (§6)."""

from .actop import ActOp, ActOpConfig, ThreadControllerConfig
from .partitioning import OfflinePartitioner, PartitionAgent, PartitioningConfig
from .threads import ModelBasedController, QueueLengthController, ThreadAllocationProblem

__all__ = [
    "ActOp",
    "ActOpConfig",
    "ModelBasedController",
    "OfflinePartitioner",
    "PartitionAgent",
    "PartitioningConfig",
    "QueueLengthController",
    "ThreadAllocationProblem",
    "ThreadControllerConfig",
]
