"""Latency-optimized thread allocation (§5) — the paper's second
contribution: the SEDA queuing model, Theorem 2's closed-form solver,
runtime parameter estimation, and the two controllers (ActOp's
model-based one and the queue-length baseline it replaces)."""

from .controller import ModelBasedController, QueueLengthController
from .estimator import (
    MeasuredStage,
    estimate_alpha,
    estimate_stage_loads,
    estimate_stage_loads_direct,
    measure_windows,
)
from .model import ThreadAllocationProblem
from .optimizer import (
    grid_search,
    integerize,
    solve_closed_form,
    solve_fractional,
    solve_integer,
    solve_numeric,
)

__all__ = [
    "MeasuredStage",
    "ModelBasedController",
    "QueueLengthController",
    "ThreadAllocationProblem",
    "estimate_alpha",
    "estimate_stage_loads",
    "estimate_stage_loads_direct",
    "grid_search",
    "integerize",
    "measure_windows",
    "solve_closed_form",
    "solve_fractional",
    "solve_integer",
    "solve_numeric",
]
