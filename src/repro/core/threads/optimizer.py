"""Solving problem (*): Theorem 2's closed form, a convex numeric
fallback, and integerization.

Theorem 2: if the system is feasible and eta >= zeta, the optimum is

    t_i = lambda_i / s_i + sqrt( lambda_i / (lambda_tot * eta * s_i) ).

The first term is the stability minimum (enough service rate to keep up);
the second spreads slack proportionally to sqrt(lambda_i / s_i) — heavily
loaded or slow stages get more headroom.  When eta < zeta the processor
constraint binds and the problem, still convex, is solved numerically
(SLSQP).  Real thread pools are integers, so :func:`integerize` rounds
the fractional solution by exhaustive floor/ceil choice (K is small) and
:func:`grid_search` provides the brute-force reference the ablation bench
and property tests compare against.
"""

from __future__ import annotations

import itertools
import math
from typing import Optional, Sequence

import numpy as np
from scipy.optimize import minimize

from .model import ThreadAllocationProblem

__all__ = [
    "solve_closed_form",
    "solve_numeric",
    "solve_fractional",
    "integerize",
    "solve_integer",
    "grid_search",
]


def solve_closed_form(problem: ThreadAllocationProblem) -> Optional[list[float]]:
    """Theorem 2.  Returns None when its premise (eta >= zeta) fails."""
    if not problem.is_feasible():
        return None
    if problem.eta < problem.zeta():
        return None
    lam_tot = problem.lambda_tot
    threads = []
    for stage in problem.stages:
        lam, s = stage.arrival_rate, stage.service_rate_per_thread
        if lam <= 0:
            threads.append(0.0)
            continue
        threads.append(lam / s + math.sqrt(lam / (lam_tot * problem.eta * s)))
    return threads


def solve_numeric(problem: ThreadAllocationProblem) -> Optional[list[float]]:
    """SLSQP on the convex problem, for the eta < zeta regime."""
    if not problem.is_feasible():
        return None
    stages = problem.stages
    lam = np.array([s.arrival_rate for s in stages])
    srv = np.array([s.service_rate_per_thread for s in stages])
    beta = np.array([s.cpu_fraction for s in stages])
    lam_tot = lam.sum()
    if lam_tot <= 0:
        return [0.0] * len(stages)

    # Stability lower bounds with a small margin so the objective stays finite.
    lower = lam / srv * 1.0001 + 1e-9

    def objective(t: np.ndarray) -> float:
        mu = t * srv
        gap = mu - lam
        if np.any(gap <= 0):
            return 1e18
        return float((lam / gap).sum() / lam_tot + problem.eta * t.sum())

    def gradient(t: np.ndarray) -> np.ndarray:
        gap = t * srv - lam
        return -lam * srv / gap**2 / lam_tot + problem.eta

    # Start from a feasible interior point: scale slack to fit the CPU cap.
    slack_budget = problem.processors - float((lower * beta).sum())
    if slack_budget <= 0:
        return None
    weights = np.sqrt(np.maximum(lam, 1e-12) / srv)
    weights_sum = float((weights * beta).sum())
    start = lower + weights * (0.5 * slack_budget / max(weights_sum, 1e-12))

    constraints = [
        {
            "type": "ineq",
            "fun": lambda t: problem.processors - float((t * beta).sum()),
            "jac": lambda t: -beta,
        }
    ]
    bounds = [(lo, None) for lo in lower]
    result = minimize(
        objective,
        start,
        jac=gradient,
        bounds=bounds,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": 500, "ftol": 1e-12},
    )
    if not result.success:
        return None
    return [float(t) for t in result.x]


def solve_fractional(problem: ThreadAllocationProblem) -> Optional[list[float]]:
    """Closed form when applicable, numeric otherwise (the paper's §5.3)."""
    closed = solve_closed_form(problem)
    if closed is not None:
        return closed
    return solve_numeric(problem)


def integerize(
    problem: ThreadAllocationProblem,
    fractional: Sequence[float],
    min_threads: int = 1,
) -> list[int]:
    """Round a fractional allocation to integers, minimizing (*).

    Tries every floor/ceil combination (2^K, K is at most a handful of
    stages) and keeps the feasible combination with the best objective.
    Stages forced below stability are bumped to their ceil.  Falls back to
    all-ceil clamped to ``min_threads`` if nothing is feasible.
    """
    lower = problem.min_feasible_threads()
    choices: list[list[int]] = []
    for t, lo in zip(fractional, lower):
        floor_t = max(min_threads, math.floor(t))
        ceil_t = max(min_threads, math.ceil(t))
        opts = {ceil_t}
        if floor_t > lo:  # floor keeps the stage stable
            opts.add(floor_t)
        choices.append(sorted(opts))

    best: Optional[list[int]] = None
    best_obj = math.inf
    for combo in itertools.product(*choices):
        alloc = list(combo)
        if not problem.satisfies_cpu_constraint(alloc):
            continue
        obj = problem.objective(alloc)
        if obj < best_obj:
            best, best_obj = alloc, obj
    if best is not None:
        return best
    return [max(min_threads, math.ceil(t)) for t in fractional]


def solve_integer(
    problem: ThreadAllocationProblem, min_threads: int = 1
) -> Optional[list[int]]:
    """End-to-end: fractional solve then integerize."""
    fractional = solve_fractional(problem)
    if fractional is None:
        return None
    return integerize(problem, fractional, min_threads=min_threads)


def grid_search(
    problem: ThreadAllocationProblem,
    max_threads: int,
    min_threads: int = 1,
) -> tuple[list[int], float]:
    """Brute-force integer optimum over [min_threads, max_threads]^K.

    Exponential in K — reference implementation for tests and the
    optimizer ablation only.
    """
    best: Optional[list[int]] = None
    best_obj = math.inf
    rng = range(min_threads, max_threads + 1)
    for combo in itertools.product(rng, repeat=len(problem.stages)):
        alloc = list(combo)
        if not problem.satisfies_cpu_constraint(alloc):
            continue
        obj = problem.objective(alloc)
        if obj < best_obj:
            best, best_obj = alloc, obj
    if best is None:
        raise ValueError("no feasible integer allocation in the search box")
    return best, best_obj
