"""Runtime thread controllers.

Two controllers retune a :class:`~repro.seda.server.StagedServer`
periodically:

* :class:`QueueLengthController` — the prior art the paper argues against
  (§5.1, after Welsh [34]): every period, any stage with queue length
  above Th gets one more thread, below Tl loses one.  Fig. 7 shows why
  this oscillates: queue length responds to capacity through the wildly
  non-linear rho/(1-rho).

* :class:`ModelBasedController` — ActOp's controller: sample per-stage
  (lambda, z, x), estimate (s, beta) via the alpha trick (§5.4), solve
  problem (*) (§5.3), integerize, apply.  A single global solve replaces
  per-stage local feedback, which is what kills the fluctuations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ...bench.metrics import TimeSeries
from ...obs.events import ThreadAllocationEvent
from ...seda.server import StagedServer
from ...sim.engine import Simulator
from .estimator import estimate_stage_loads, measure_windows
from .model import ThreadAllocationProblem
from .optimizer import integerize, solve_fractional

__all__ = ["QueueLengthController", "ModelBasedController"]


class _PeriodicController:
    """Shared machinery: periodic ticks + history recording."""

    def __init__(self, sim: Simulator, server: StagedServer, period: float):
        if period <= 0:
            raise ValueError("period must be positive")
        self.sim = sim
        self.server = server
        self.period = period
        self.queue_history: dict[str, TimeSeries] = {
            name: TimeSeries(name) for name in server.stages
        }
        self.thread_history: dict[str, TimeSeries] = {
            name: TimeSeries(name) for name in server.stages
        }
        # Per-stage backpressure samples (all zeros unless the cluster
        # configured AdmissionConfig.stage_soft_limit); controllers can
        # read it as an overload indicator without perturbing the run.
        self.backpressure_history: dict[str, TimeSeries] = {
            name: TimeSeries(name) for name in server.stages
        }
        self.ticks = 0
        self._running = False
        # Optional repro.obs EventLog; ActOp.start() wires it when an
        # Observability is attached to the runtime.
        self.event_log = None

    def start(self) -> None:
        self._running = True
        self.server.begin_window()
        self.sim.schedule(self.period, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        self._record()
        self._control()
        self.sim.schedule(self.period, self._tick)

    def _record(self) -> None:
        now = self.sim.now
        for name, stage in self.server.stages.items():
            self.queue_history[name].record(now, stage.queue_length)
            self.thread_history[name].record(now, stage.threads)
            self.backpressure_history[name].record(now, stage.backpressure)

    def _control(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class QueueLengthController(_PeriodicController):
    """Threshold feedback on queue lengths (the [34]-style baseline).

    Args:
        sim, server: the controlled server.
        period: control interval (the paper's emulator uses 30 s).
        high_threshold: queue length above which a stage gains a thread (Th).
        low_threshold: queue length below which a stage loses one (Tl).
        max_threads: optional per-stage cap.
    """

    def __init__(
        self,
        sim: Simulator,
        server: StagedServer,
        period: float = 30.0,
        high_threshold: int = 100,
        low_threshold: int = 10,
        max_threads: Optional[int] = None,
    ):
        super().__init__(sim, server, period)
        if low_threshold >= high_threshold:
            raise ValueError("need low_threshold < high_threshold")
        self.high_threshold = high_threshold
        self.low_threshold = low_threshold
        self.max_threads = max_threads

    def _control(self) -> None:
        changed = False
        for stage in self.server.stages.values():
            qlen = stage.queue_length
            if qlen > self.high_threshold:
                target = stage.threads + 1
                if self.max_threads is None or target <= self.max_threads:
                    stage.set_threads(target)
                    changed = True
            elif qlen < self.low_threshold and stage.threads > 1:
                stage.set_threads(stage.threads - 1)
                changed = True
        if changed and self.event_log is not None:
            self.event_log.emit(ThreadAllocationEvent(
                self.sim.now, server=self.server.name,
                allocation=self.server.thread_allocation(),
                alpha=0.0, feasible=True, controller="queue"))


@dataclass
class AllocationEvent:
    """One model-based re-allocation, for post-hoc inspection."""

    time: float
    allocation: dict[str, int]
    alpha_estimate: float
    feasible: bool


class ModelBasedController(_PeriodicController):
    """ActOp's controller: estimate, solve (*), apply (§5.3–5.4).

    Args:
        sim, server: the controlled server.
        eta: thread-penalty coefficient (calibrated once; §6.2 uses
            100 µs/thread).
        period: re-optimization interval.
        blocking_stages: names of stages that may block on synchronous
            calls (their complement is the alpha-calibration set S0).
        min_threads / max_threads: per-stage clamps.
        min_events: skip a tick whose busiest stage completed fewer
            events than this (too noisy to fit).
    """

    def __init__(
        self,
        sim: Simulator,
        server: StagedServer,
        eta: float = 1e-4,
        period: float = 10.0,
        blocking_stages: Sequence[str] = (),
        min_threads: int = 1,
        max_threads: Optional[int] = None,
        min_events: int = 50,
    ):
        super().__init__(sim, server, period)
        self.eta = eta
        self.blocking_stages = tuple(blocking_stages)
        self.min_threads = min_threads
        self.max_threads = max_threads
        self.min_events = min_events
        self.allocations: list[AllocationEvent] = []

    def _control(self) -> None:
        windows = self.server.end_window()
        if max(w.completions for w in windows.values()) < self.min_events:
            return
        measured = measure_windows(windows, self.blocking_stages)
        loads = estimate_stage_loads(measured)
        from .estimator import estimate_alpha  # local import to log alpha

        alpha = estimate_alpha(measured)
        problem = ThreadAllocationProblem(
            stages=loads, processors=self.server.cpu.processors, eta=self.eta
        )
        if not problem.is_feasible():
            # Overloaded: fall back to CPU-proportional shares (min 1 each).
            allocation = self._proportional_fallback(problem)
            self._apply(allocation, alpha, feasible=False)
            return
        fractional = solve_fractional(problem)
        if fractional is None:
            return
        integral = integerize(problem, fractional, min_threads=self.min_threads)
        allocation = {
            load.name: self._clamp(t) for load, t in zip(loads, integral)
        }
        self._apply(allocation, alpha, feasible=True)

    def _clamp(self, threads: int) -> int:
        threads = max(self.min_threads, threads)
        if self.max_threads is not None:
            threads = min(self.max_threads, threads)
        return threads

    def _proportional_fallback(self, problem: ThreadAllocationProblem) -> dict[str, int]:
        demands = {
            s.name: s.arrival_rate * s.cpu_fraction / s.service_rate_per_thread
            for s in problem.stages
        }
        total = sum(demands.values()) or 1.0
        budget = problem.processors
        return {
            name: self._clamp(round(budget * d / total))
            for name, d in demands.items()
        }

    def _apply(self, allocation: dict[str, int], alpha: float, feasible: bool) -> None:
        self.server.apply_allocation(allocation)
        self.allocations.append(
            AllocationEvent(self.sim.now, dict(allocation), alpha, feasible)
        )
        if self.event_log is not None:
            self.event_log.emit(ThreadAllocationEvent(
                self.sim.now, server=self.server.name,
                allocation=dict(allocation), alpha=alpha, feasible=feasible,
                controller="model"))

    @property
    def last_allocation(self) -> Optional[dict[str, int]]:
        return self.allocations[-1].allocation if self.allocations else None
