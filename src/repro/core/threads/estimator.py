"""Estimating model parameters from runtime measurements (§5.4).

The optimizer needs lambda_i, s_i and beta_i per stage, but a production
runtime can only measure

* z_i — wall-clock time processing one event (thread held), and
* x_i — on-CPU time (cycle counters),

while ready time r_i (runnable, no core) and blocking wait w_i are
invisible without OS tracing support.  The paper's trick: assume the OS
scheduler is fair, so the ratio alpha = r_i / x_i is the same for every
stage; calibrate alpha on the stages known to never block (S0, where
beta = 1 and hence r = z - x); then for every stage

    r_i = alpha * x_i,   s_i = 1 / (z_i - r_i),   beta_i = x_i / (z_i - r_i).

This module implements exactly that, deliberately *not* peeking at the
simulator's ground-truth ready times (tests compare against them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ...queueing.jackson import StageLoad
from ...seda.stage import StatsWindow

__all__ = [
    "MeasuredStage",
    "estimate_alpha",
    "estimate_stage_loads",
    "estimate_stage_loads_direct",
    "measure_windows",
]


@dataclass(frozen=True)
class MeasuredStage:
    """What the runtime can observe about one stage over a window.

    ``mean_wait`` is the directly-measured blocking time per event; it is
    only available "on platforms that provide direct OS support for
    measuring I/O blocking time (such as ETW)" (§5.4) and defaults to
    None — the alpha estimator never needs it.
    """

    name: str
    arrival_rate: float  # lambda_i
    mean_z: float        # wall-clock per event
    mean_x: float        # CPU time per event
    blocking: bool       # whether the stage may issue synchronous calls
    mean_wait: Optional[float] = None  # measured w_i (ETW mode only)

    def __post_init__(self) -> None:
        if self.mean_x < 0 or self.mean_z < 0:
            raise ValueError(f"negative times for stage {self.name!r}")


def measure_windows(
    windows: Mapping[str, StatsWindow],
    blocking_stages: Sequence[str] = (),
    os_wait_tracing: bool = False,
) -> list[MeasuredStage]:
    """Convert per-stage sampling windows into measurements.

    ``blocking_stages`` names the stages that may block on synchronous
    calls; the complement is the paper's S0 calibration set.  With
    ``os_wait_tracing`` the measured per-event blocking time is included
    (the §5.4 ETW alternative); the default leaves it hidden, as on the
    paper's target platforms.
    """
    blocking = set(blocking_stages)
    return [
        MeasuredStage(
            name=name,
            arrival_rate=w.arrival_rate,
            mean_z=w.mean_z,
            mean_x=w.mean_x,
            blocking=name in blocking,
            mean_wait=w.mean_wait if os_wait_tracing else None,
        )
        for name, w in windows.items()
    ]


def estimate_alpha(measured: Sequence[MeasuredStage]) -> float:
    """alpha = mean over S0 of (z - x) / x.

    On S0 stages w = 0, so z - x is pure ready time.  Stages with no
    completed events (x == 0) are skipped.  Returns 0.0 when no usable S0
    stage exists (an idle server: no contention, so r ≈ 0 anyway).
    """
    ratios = []
    for m in measured:
        if m.blocking or m.mean_x <= 0:
            continue
        ratios.append(max(0.0, m.mean_z - m.mean_x) / m.mean_x)
    if not ratios:
        return 0.0
    return sum(ratios) / len(ratios)


def estimate_stage_loads(
    measured: Sequence[MeasuredStage],
    min_service_time: float = 1e-7,
) -> list[StageLoad]:
    """Derive (lambda_i, s_i, beta_i) for every stage via the alpha trick.

    Stages that recorded no events keep a nominal tiny load so the
    optimizer can still hand them their minimum thread.

    Args:
        measured: per-stage runtime measurements.
        min_service_time: floor on the estimated x_i + w_i, guarding the
            division when a window catches only sub-microsecond events.
    """
    alpha = estimate_alpha(measured)
    loads = []
    for m in measured:
        if m.mean_x <= 0:
            # Idle stage: expose zero arrivals; optimizer gives it the floor.
            loads.append(StageLoad(0.0, 1.0 / min_service_time, 1.0, name=m.name))
            continue
        ready = alpha * m.mean_x
        # Estimated x + w.  Clamp below by x (w cannot be negative) to
        # absorb alpha overestimation on lightly-contended stages.
        busy = max(m.mean_z - ready, m.mean_x, min_service_time)
        service_rate = 1.0 / busy
        beta = min(1.0, m.mean_x / busy)
        loads.append(
            StageLoad(m.arrival_rate, service_rate, max(beta, 1e-6), name=m.name)
        )
    return loads


def estimate_stage_loads_direct(
    measured: Sequence[MeasuredStage],
    min_service_time: float = 1e-7,
) -> list[StageLoad]:
    """The §5.4 alternative for platforms with OS wait tracing (ETW):
    with w_i measured directly, s_i = 1/(x_i + w_i) and
    beta_i = x_i/(x_i + w_i) need no inference at all.

    Raises:
        ValueError: if any loaded stage lacks a measured wait (the caller
            forgot ``os_wait_tracing=True`` in :func:`measure_windows`).
    """
    loads = []
    for m in measured:
        if m.mean_x <= 0:
            loads.append(StageLoad(0.0, 1.0 / min_service_time, 1.0, name=m.name))
            continue
        if m.mean_wait is None:
            raise ValueError(
                f"stage {m.name!r} has no measured wait; direct estimation "
                "requires os_wait_tracing"
            )
        busy = max(m.mean_x + m.mean_wait, min_service_time)
        loads.append(
            StageLoad(
                m.arrival_rate,
                1.0 / busy,
                max(min(1.0, m.mean_x / busy), 1e-6),
                name=m.name,
            )
        )
    return loads
