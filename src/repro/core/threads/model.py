"""The SEDA queuing model and optimization problem (*) of §5.2–5.3.

A server has K stages; stage i sees arrival rate lambda_i, has t_i
threads each serving at rate s_i = 1/(x_i + w_i) and consuming a fraction
beta_i = x_i/(x_i + w_i) of a processor while busy.  The objective is the
Jackson latency proxy (Eq. 1) plus a thread penalty:

    minimize   (1/lambda_tot) sum_i lambda_i/(mu_i - lambda_i) + eta sum_i t_i
    subject to mu_i >= lambda_i,  mu_i = s_i t_i,  sum_i t_i beta_i <= p.

This module holds the problem description and the feasibility / zeta
computations that Theorem 2's closed form hinges on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ...queueing.jackson import StageLoad, jackson_latency_with_penalty

__all__ = ["ThreadAllocationProblem"]


@dataclass
class ThreadAllocationProblem:
    """One instance of problem (*).

    Attributes:
        stages: per-stage loads (lambda_i, s_i, beta_i).
        processors: p, cores available at the server.
        eta: thread-penalty coefficient (time per thread); the paper
            calibrates it once per deployment (100 µs/thread on their
            servers) and keeps it fixed.
    """

    stages: Sequence[StageLoad]
    processors: int
    eta: float

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("processors must be >= 1")
        if self.eta <= 0:
            raise ValueError("eta must be positive")
        if not self.stages:
            raise ValueError("need at least one stage")

    # ------------------------------------------------------------------
    @property
    def lambda_tot(self) -> float:
        return sum(s.arrival_rate for s in self.stages)

    def cpu_demand(self) -> float:
        """sum_i lambda_i beta_i / s_i — processor-seconds needed per second."""
        return sum(
            s.arrival_rate * s.cpu_fraction / s.service_rate_per_thread
            for s in self.stages
        )

    def is_feasible(self) -> bool:
        """Theorem 2's premise: the offered CPU load fits within p."""
        return self.cpu_demand() < self.processors

    def zeta(self) -> float:
        """The threshold zeta of Theorem 2.

        zeta = (1/lambda_tot) * [ sum_i beta_i sqrt(lambda_i/s_i)
                                  / (p - sum_i lambda_i beta_i / s_i) ]^2

        If eta >= zeta, the unconstrained stationary point already
        satisfies the processor constraint and is therefore the optimum.
        """
        lam_tot = self.lambda_tot
        if lam_tot <= 0:
            return 0.0
        headroom = self.processors - self.cpu_demand()
        if headroom <= 0:
            return math.inf
        numer = sum(
            s.cpu_fraction * math.sqrt(s.arrival_rate / s.service_rate_per_thread)
            for s in self.stages
        )
        return (numer / headroom) ** 2 / lam_tot

    # ------------------------------------------------------------------
    def objective(self, threads: Sequence[float]) -> float:
        """Evaluate (*) at a (possibly fractional) allocation."""
        return jackson_latency_with_penalty(self.stages, threads, self.eta)

    def satisfies_cpu_constraint(self, threads: Sequence[float], tol: float = 1e-9) -> bool:
        used = sum(t * s.cpu_fraction for t, s in zip(threads, self.stages))
        return used <= self.processors + tol

    def min_feasible_threads(self) -> list[float]:
        """Per-stage lower bounds lambda_i / s_i (stability boundary)."""
        return [s.arrival_rate / s.service_rate_per_thread for s in self.stages]
