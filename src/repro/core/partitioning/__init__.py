"""Locality-aware actor partitioning (§4) — the paper's first contribution.

Pure algorithm layers (view → transfer scores → candidate sets → greedy
exchange → pairwise protocol), an offline driver for static-graph
analysis (Theorem 1), and the online per-server agent that runs the
protocol inside the simulated actor runtime.
"""

from .candidate import Candidate, PeerProposal, candidate_set, rank_peers
from .coordinator import PartitionAgent, PartitioningConfig
from .exchange import ExchangeOutcome, greedy_exchange
from .offline import OfflinePartitioner
from .protocol import (
    ExchangeRequest,
    ExchangeResponse,
    build_request,
    handle_request,
    rescore_candidates,
)
from .transfer_score import transfer_score
from .view import PartitionView
from .weighted import WeightedOfflinePartitioner, weighted_candidate_set

__all__ = [
    "Candidate",
    "ExchangeOutcome",
    "ExchangeRequest",
    "ExchangeResponse",
    "OfflinePartitioner",
    "PartitionAgent",
    "PartitionView",
    "PartitioningConfig",
    "PeerProposal",
    "build_request",
    "candidate_set",
    "greedy_exchange",
    "handle_request",
    "rank_peers",
    "rescore_candidates",
    "transfer_score",
    "WeightedOfflinePartitioner",
    "weighted_candidate_set",
]
