"""The §4.2 extension: heterogeneous actor sizes and migration costs.

The paper sketches (but does not evaluate) how Algorithm 1 generalizes
when actors are not uniform:

* the transfer score gets a term accounting for the cost of migrating
  the actor, so that heavy-state actors move only when the communication
  saving justifies hauling their state;
* the candidate set is limited by the *sum of sizes* of its actors
  rather than a count k;
* the imbalance tolerance δ is measured in total size instead of actor
  count.

This module implements that extension on top of the same primitives.
Our concrete migration-cost model: moving a vertex costs
``migration_penalty * size(v)`` in score units (migration traffic grows
with state size), so the adjusted score is ``R - penalty * size`` — an
actor is only proposed if its communication saving beats its haul cost.
"""

from __future__ import annotations

import heapq
import random
from typing import Hashable, Mapping, Optional

from ...graph.comm_graph import CommGraph
from ...graph.quality import cut_cost
from .candidate import Candidate
from .exchange import greedy_exchange
from .transfer_score import transfer_score
from .view import PartitionView

__all__ = ["weighted_candidate_set", "WeightedOfflinePartitioner"]

Vertex = Hashable
ServerId = int


def weighted_candidate_set(
    view: PartitionView,
    target: ServerId,
    sizes: Mapping[Vertex, float],
    size_budget: float,
    migration_penalty: float = 0.0,
) -> list[Candidate]:
    """Top candidates toward ``target`` under a total-size budget.

    Candidates are ranked by migration-cost-adjusted score
    ``R_{p,q}(v) - migration_penalty * size(v)`` and accepted greedily
    until the cumulative size reaches ``size_budget`` (the extension's
    analogue of the count limit k).
    """
    if size_budget <= 0:
        return []
    scored: list[tuple[float, Vertex]] = []
    for v in view.local_vertices():
        raw = transfer_score(view.neighbors(v), view.locate, view.server_id,
                             target)
        adjusted = raw - migration_penalty * sizes.get(v, 1.0)
        if adjusted > 0:
            scored.append((adjusted, v))
    out: list[Candidate] = []
    used = 0.0
    for adjusted, v in heapq.nlargest(len(scored), scored, key=lambda sv: sv[0]):
        size = sizes.get(v, 1.0)
        if used + size > size_budget:
            continue
        used += size
        edges = dict(view.neighbors(v))
        locations = {}
        for u in edges:
            loc = view.locate(u)
            if loc is not None:
                locations[u] = loc
        out.append(Candidate(v, adjusted, edges, locations))
    return out


class WeightedOfflinePartitioner:
    """Offline Alg. 1 with per-vertex sizes (static-graph evaluation).

    Args:
        graph: the communication graph.
        sizes: vertex -> size (memory footprint units).
        num_servers: n.
        size_delta: imbalance tolerance in total size units.
        size_budget: per-exchange candidate-set size budget.
        migration_penalty: score units charged per size unit moved.
        seed: randomness for the initial size-balanced assignment.
    """

    def __init__(
        self,
        graph: CommGraph,
        sizes: Mapping[Vertex, float],
        num_servers: int,
        size_delta: float,
        size_budget: float,
        migration_penalty: float = 0.0,
        seed: int = 0,
        initial: Optional[dict[Vertex, ServerId]] = None,
    ):
        if num_servers < 2:
            raise ValueError("partitioning needs at least two servers")
        self.graph = graph
        self.sizes = dict(sizes)
        for v in graph.vertices():
            self.sizes.setdefault(v, 1.0)
        self.num_servers = num_servers
        self.size_delta = size_delta
        self.size_budget = size_budget
        self.migration_penalty = migration_penalty
        self._rng = random.Random(seed)

        if initial is None:
            # Size-aware greedy balance: heaviest first onto lightest server.
            self.assignment: dict[Vertex, ServerId] = {}
            loads = [0.0] * num_servers
            order = sorted(graph.vertices(), key=lambda v: -self.sizes[v])
            for v in order:
                target = loads.index(min(loads))
                self.assignment[v] = target
                loads[target] += self.sizes[v]
        else:
            self.assignment = dict(initial)
        self.total_migrated_size = 0.0
        self.cost_history: list[float] = [cut_cost(graph, self.assignment)]

    # ------------------------------------------------------------------
    def server_load(self, server: ServerId) -> float:
        return sum(
            self.sizes[v] for v, loc in self.assignment.items() if loc == server
        )

    def view_of(self, server: ServerId) -> PartitionView:
        edges = {
            v: self.graph.neighbors(v)
            for v, loc in self.assignment.items()
            if loc == server
        }
        loads = {p: self.server_load(p) for p in range(self.num_servers)}
        return PartitionView(
            server_id=server,
            edges=edges,
            locate=self.assignment.get,
            size=loads[server],
            peer_sizes=loads,
        )

    def run_round(self, initiator: ServerId) -> int:
        """One exchange attempt by ``initiator``; returns vertices moved."""
        view_p = self.view_of(initiator)
        proposals = []
        for q in view_p.peers():
            cands = weighted_candidate_set(
                view_p, q, self.sizes, self.size_budget, self.migration_penalty
            )
            if cands:
                proposals.append((sum(c.score for c in cands), q, cands))
        proposals.sort(reverse=True, key=lambda pr: pr[0])
        for _, q, s_cands in proposals:
            view_q = self.view_of(q)
            t_cands = weighted_candidate_set(
                view_q, initiator, self.sizes, self.size_budget,
                self.migration_penalty,
            )
            outcome = greedy_exchange(
                s_cands, t_cands,
                size_p=view_p.size, size_q=view_q.size,
                delta=self.size_delta,
                vertex_sizes=self.sizes,
            )
            if outcome.moves == 0:
                continue
            for v in outcome.accepted:
                self.assignment[v] = q
                self.total_migrated_size += self.sizes[v]
            for v in outcome.returned:
                self.assignment[v] = initiator
                self.total_migrated_size += self.sizes[v]
            self.cost_history.append(cut_cost(self.graph, self.assignment))
            return outcome.moves
        return 0

    def run(self, max_sweeps: int = 50) -> dict[Vertex, ServerId]:
        for _ in range(max_sweeps):
            moved = 0
            order = list(range(self.num_servers))
            self._rng.shuffle(order)
            for p in order:
                moved += self.run_round(p)
            if moved == 0:
                break
        return self.assignment

    # ------------------------------------------------------------------
    @property
    def cost(self) -> float:
        return cut_cost(self.graph, self.assignment)

    @property
    def size_imbalance(self) -> float:
        loads = [self.server_load(p) for p in range(self.num_servers)]
        return max(loads) - min(loads)
