"""Candidate-set selection (§4.2, "Determining the candidate set").

For every remote server q, the initiator p ranks its local vertices by
transfer score R_{p,q}(v) and keeps the top k with positive scores; the
candidate set is deliberately a small fraction of p's vertices, which is
how the algorithm bounds per-exchange migration volume (§4.1).  p then
targets the peer whose candidate set has the highest *total* score.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Hashable

from .transfer_score import transfer_score
from .view import PartitionView

__all__ = ["Candidate", "candidate_set", "rank_peers", "PeerProposal"]

Vertex = Hashable
ServerId = int


@dataclass
class Candidate:
    """A vertex proposed for migration, with enough context for the
    receiver to re-score it: its sampled edge list and the proposer's
    belief about each endpoint's location."""

    vertex: Vertex
    score: float
    edges: dict[Vertex, float] = field(default_factory=dict)
    endpoint_locations: dict[Vertex, ServerId] = field(default_factory=dict)


@dataclass
class PeerProposal:
    """A ranked exchange opportunity: peer q plus p's candidate set S."""

    peer: ServerId
    candidates: list[Candidate]

    @property
    def total_score(self) -> float:
        return sum(c.score for c in self.candidates)


def candidate_set(view: PartitionView, target: ServerId, k: int) -> list[Candidate]:
    """Top-k positive-score local vertices for migration to ``target``.

    Each candidate ships its edge list and the proposer's location beliefs
    so the receiver can recompute scores against fresher knowledge
    (§4.2: q "may decide to reject some or even all of the vertices").
    """
    if k < 1:
        return []
    scored: list[tuple[float, Vertex]] = []
    for v in view.local_vertices():
        score = transfer_score(view.neighbors(v), view.locate, view.server_id, target)
        if score > 0:
            scored.append((score, v))
    top = heapq.nlargest(k, scored, key=lambda sv: sv[0])
    out = []
    for score, v in top:
        edges = dict(view.neighbors(v))
        locations = {}
        for u in edges:
            loc = view.locate(u)
            if loc is not None:
                locations[u] = loc
        out.append(Candidate(v, score, edges, locations))
    return out


def rank_peers(view: PartitionView, k: int) -> list[PeerProposal]:
    """All peers with a non-empty candidate set, best total score first.

    This is the order in which p attempts exchanges when peers reject
    (§4.2: "p attempts an exchange with a remote server which would lead
    to the second best cost reduction, and proceeds ...").
    """
    proposals = []
    for q in view.peers():
        cands = candidate_set(view, q, k)
        if cands:
            proposals.append(PeerProposal(q, cands))
    proposals.sort(key=lambda pr: pr.total_score, reverse=True)
    return proposals
