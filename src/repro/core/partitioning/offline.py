"""Offline driver: Algorithm 1 on a static graph with full knowledge.

Theorem 1 is stated for static graphs: the protocol converges to a
locally optimal balanced partition in finitely many executions, and the
overall communication cost decreases monotonically with every migration.
This driver lets us test exactly that, and powers the ablation bench that
compares the distributed algorithm's cut quality against the centralized
multilevel partitioner and Ja-Be-Ja.
"""

from __future__ import annotations

import random
from typing import Hashable, Optional

from ...graph.comm_graph import CommGraph
from ...graph.quality import cut_cost, max_imbalance
from .candidate import rank_peers
from .protocol import ExchangeRequest, handle_request
from .view import PartitionView

__all__ = ["OfflinePartitioner"]

Vertex = Hashable
ServerId = int


class OfflinePartitioner:
    """Runs pairwise exchanges over a static graph until convergence.

    Args:
        graph: the full communication graph.
        num_servers: n.
        delta: imbalance tolerance δ (>= 1 so exchanges are possible even
            with an odd total; the paper's constraint is ``<= delta``).
        k: candidate-set size per exchange.
        cooldown_rounds: a server that exchanged within this many protocol
            steps rejects incoming requests (the paper uses 1 minute of
            wall time; rounds are the offline analogue).
        seed: randomness for the initial balanced-random assignment.
        initial: optional starting assignment (defaults to shuffled
            round-robin — the random placement baseline).
    """

    def __init__(
        self,
        graph: CommGraph,
        num_servers: int,
        delta: int = 2,
        k: int = 16,
        cooldown_rounds: int = 0,
        seed: int = 0,
        initial: Optional[dict[Vertex, ServerId]] = None,
    ):
        if num_servers < 2:
            raise ValueError("partitioning needs at least two servers")
        self.graph = graph
        self.num_servers = num_servers
        self.delta = delta
        self.k = k
        self.cooldown_rounds = cooldown_rounds
        self._rng = random.Random(seed)

        if initial is None:
            vertices = list(graph.vertices())
            self._rng.shuffle(vertices)
            self.assignment: dict[Vertex, ServerId] = {
                v: i % num_servers for i, v in enumerate(vertices)
            }
        else:
            self.assignment = dict(initial)
            missing = [v for v in graph.vertices() if v not in self.assignment]
            if missing:
                raise ValueError(f"initial assignment misses {len(missing)} vertices")

        self._last_exchange_step: dict[ServerId, int] = {}
        self._step = 0
        self.total_migrations = 0
        self.cost_history: list[float] = [cut_cost(graph, self.assignment)]

    # ------------------------------------------------------------------
    def view_of(self, server: ServerId) -> PartitionView:
        """Full-knowledge view of one server (static-graph setting)."""
        edges = {
            v: self.graph.neighbors(v)
            for v, loc in self.assignment.items()
            if loc == server
        }
        sizes: dict[ServerId, int] = {p: 0 for p in range(self.num_servers)}
        for loc in self.assignment.values():
            sizes[loc] += 1
        return PartitionView(
            server_id=server,
            edges=edges,
            locate=self.assignment.get,
            size=sizes[server],
            peer_sizes=sizes,
        )

    # ------------------------------------------------------------------
    def run_round(self, initiator: ServerId) -> int:
        """One Alg.-1 invocation by ``initiator``; returns migrations made.

        The initiator walks its ranked peer list until some peer accepts
        (or every positive-gain peer rejected), exactly as §4.2 describes.
        """
        self._step += 1
        view_p = self.view_of(initiator)
        for proposal in rank_peers(view_p, self.k):
            q = proposal.peer
            request = ExchangeRequest(
                initiator=initiator,
                target=q,
                candidates=proposal.candidates,
                initiator_size=view_p.size,
            )
            recent = (
                self.cooldown_rounds > 0
                and self._step - self._last_exchange_step.get(q, -10**9)
                <= self.cooldown_rounds
            )
            response = handle_request(
                self.view_of(q), request, self.k, self.delta, exchanged_recently=recent
            )
            if not response.accepted:
                continue
            outcome = response.outcome
            assert outcome is not None
            if outcome.moves == 0:
                # q accepted but found nothing worth exchanging (its
                # fresher knowledge disagreed with ours); keep walking
                # the ranked peer list.
                continue
            for v in outcome.accepted:
                self.assignment[v] = q
            for v in outcome.returned:
                self.assignment[v] = initiator
            self._last_exchange_step[initiator] = self._step
            self._last_exchange_step[q] = self._step
            self.total_migrations += outcome.moves
            self.cost_history.append(cut_cost(self.graph, self.assignment))
            return outcome.moves
        return 0

    def run(self, max_sweeps: int = 50) -> dict[Vertex, ServerId]:
        """Sweep all servers as initiators until a full quiet sweep.

        Returns the converged assignment.  Termination is guaranteed on
        static graphs (Theorem 1); ``max_sweeps`` is a safety valve.
        """
        for _ in range(max_sweeps):
            moved = 0
            order = list(range(self.num_servers))
            self._rng.shuffle(order)
            for p in order:
                moved += self.run_round(p)
            if moved == 0:
                break
        return self.assignment

    # ------------------------------------------------------------------
    @property
    def cost(self) -> float:
        return cut_cost(self.graph, self.assignment)

    @property
    def imbalance(self) -> int:
        return max_imbalance(self.assignment, self.num_servers)
